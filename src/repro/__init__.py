"""repro — a full reproduction of "An 80-Fold Speedup, 15.0 TFlops Full GPU
Acceleration of Non-Hydrostatic Weather Model ASUCA Production Code"
(Shimokawabe et al., SC'10).

Subpackages
-----------
``repro.core``
    the ASUCA dynamical core: Arakawa-C terrain-following grid, flux-form
    FVM advection with the Koren limiter, HE-VI split-explicit time
    integration (Wicker-Skamarock RK3 + vertically implicit tridiagonal
    Helmholtz solve), the paper's primary contribution rebuilt from its
    equations.
``repro.physics``
    Kessler warm rain and rain sedimentation.
``repro.gpu``
    the virtual CUDA substrate: device specs (Tesla S1070 / Fermi /
    Opteron), roofline Eq. 6, streams/engines with a simulated clock,
    memory capacity accounting, coalescing and shared-memory models.
``repro.dist``
    the simulated multi-GPU cluster: Table-I 2-D decomposition,
    in-process MPI with bit-identical halo exchange, and the paper's
    three communication-overlap optimizations.
``repro.perf``
    FLOP counting (PAPI substitute), the calibrated kernel cost table,
    weak-scaling sweeps and the TSUBAME 2.0 projection.
``repro.obs``
    unified tracing & metrics: TraceSession spans, device/comm
    collectors, Chrome-trace / JSONL / text exporters, and the run
    metrics registry (see docs/OBSERVABILITY.md).
``repro.workloads``
    mountain wave (the paper's benchmark), moist warm bubble, and the
    synthetic "real data" forecast case.
``repro.resilience``
    fault injection (dropped/corrupted/delayed halo messages, PCIe
    failures, rank crashes), retry/backoff, and atomic checkpoint-restart
    (see docs/RESILIENCE.md).
``repro.analysis``
    the compute-sanitizer: racecheck (happens-before over op timelines),
    memcheck (DeviceArray lifecycle), asuca-lint (AST invariants), and
    the ``repro analyze`` report/CI gate (see docs/ANALYSIS.md).
``repro.api``
    the unified run facade: ``RunSpec`` -> ``Experiment`` -> ``RunResult``
    over the cpu / gpu / multigpu backends — the single way entry points
    construct and drive runs.
``repro.serve``
    forecast-as-a-service over the run facade: a virtual ``GpuFleet``
    with atomic gang allocation, FIFO/priority/SJF gang scheduling with
    EASY backfill, bounded-queue load shedding, a content-addressed
    result cache keyed on ``RunSpec.spec_hash()``, and the
    deterministic modeled-time ``ForecastService`` event loop behind
    ``repro serve`` (see docs/SERVING.md).
"""
from . import constants
from .api import Experiment, RunResult, RunSpec
from .core import (
    AsucaModel,
    DynamicsConfig,
    ModelConfig,
    State,
    bell_mountain,
    make_grid,
    make_reference_state,
    state_from_reference,
)

__version__ = "1.0.0"

__all__ = [
    "constants",
    "Experiment", "RunResult", "RunSpec",
    "AsucaModel", "DynamicsConfig", "ModelConfig", "State",
    "bell_mountain", "make_grid", "make_reference_state",
    "state_from_reference",
    "__version__",
]
