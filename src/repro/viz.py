"""Terminal field rendering (no matplotlib in the offline environment).

The examples render cross-sections and maps as ASCII art; this module is
their shared implementation, usable on any 2-D array:

* :func:`render_field` — signed fields, density ramp, UPPERCASE for
  positive values (the mountain-wave examples);
* :func:`render_map` — non-negative fields (precipitation maps);
* :func:`field_stats` — one-line summary string.
"""
from __future__ import annotations

import numpy as np

__all__ = ["render_field", "render_map", "field_stats"]

_RAMP = " .:-=+*#%@"


def render_field(
    field: np.ndarray,
    *,
    ramp: str = _RAMP,
    transpose: bool = False,
    flip_y: bool = True,
) -> str:
    """Render a signed 2-D field: character density encodes |value| scaled
    to the field max; positive values print UPPERCASE (where letters
    exist) so sign structure is visible.

    ``field[i, j]`` is drawn with i across and j up (column-major rows),
    matching an (x, z) cross-section; pass ``flip_y=False`` for (x, y)
    maps indexed from the top.
    """
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("render_field expects a 2-D array")
    if transpose:
        f = f.T
    vmax = np.abs(f).max()
    if vmax == 0.0:
        vmax = 1.0
    idx = np.minimum((np.abs(f) / vmax * (len(ramp) - 1)).astype(int),
                     len(ramp) - 1)
    rows = []
    j_range = range(f.shape[1] - 1, -1, -1) if flip_y else range(f.shape[1])
    for j in j_range:
        chars = []
        for i in range(f.shape[0]):
            ch = ramp[idx[i, j]]
            chars.append(ch.upper() if f[i, j] > 0 else ch)
        rows.append("".join(chars))
    return "\n".join(rows)


def render_map(field: np.ndarray, *, ramp: str = _RAMP) -> str:
    """Render a non-negative 2-D map (e.g. accumulated precipitation),
    rows top-to-bottom in decreasing j."""
    f = np.asarray(field, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("render_map expects a 2-D array")
    if np.any(f < 0):
        raise ValueError("render_map expects non-negative values")
    vmax = f.max() or 1.0
    idx = np.minimum((f / vmax * (len(ramp) - 1)).astype(int), len(ramp) - 1)
    return "\n".join(
        "".join(ramp[idx[i, j]] for i in range(f.shape[0]))
        for j in range(f.shape[1] - 1, -1, -1)
    )


def field_stats(name: str, field: np.ndarray, unit: str = "") -> str:
    """``name: min .. max (mean m, rms r) unit`` one-liner."""
    f = np.asarray(field, dtype=np.float64)
    return (f"{name}: {f.min():.4g} .. {f.max():.4g} "
            f"(mean {f.mean():.4g}, rms {np.sqrt((f ** 2).mean()):.4g})"
            + (f" {unit}" if unit else ""))
