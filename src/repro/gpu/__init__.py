"""Virtual CUDA GPU substrate: device specs, roofline model (paper Eq. 6),
streams/engines with a simulated clock, device memory accounting, kernels
with cost models, coalescing and shared-memory models."""
from .spec import DeviceSpec, Precision, TESLA_S1070, FERMI_M2050, OPTERON_CORE
from .device import Access, GPUDevice, Stream, Event, Op
from .memory import DeviceArray, DeviceAllocator, max_grid_fits
from .kernel import Kernel, KernelCostModel, LaunchConfig
from .roofline import kernel_time, attainable_flops, arithmetic_intensity, ridge_intensity
from .coalescing import ArrayOrder, bandwidth_fraction, stride_microbenchmark
from .sharedmem import TileSpec, ASUCA_ADVECTION_TILE, global_reads_per_point
from .occupancy import SMLimits, GT200_LIMITS, FERMI_LIMITS, Occupancy, occupancy
from .runtime import GpuAsucaRunner

__all__ = [
    "DeviceSpec", "Precision", "TESLA_S1070", "FERMI_M2050", "OPTERON_CORE",
    "Access", "GPUDevice", "Stream", "Event", "Op",
    "DeviceArray", "DeviceAllocator", "max_grid_fits",
    "Kernel", "KernelCostModel", "LaunchConfig",
    "kernel_time", "attainable_flops", "arithmetic_intensity", "ridge_intensity",
    "ArrayOrder", "bandwidth_fraction", "stride_microbenchmark",
    "TileSpec", "ASUCA_ADVECTION_TILE", "global_reads_per_point",
    "SMLimits", "GT200_LIMITS", "FERMI_LIMITS", "Occupancy", "occupancy",
    "GpuAsucaRunner",
]
