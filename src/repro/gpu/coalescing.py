"""Array-ordering / memory-coalescing model (paper Sec. IV-A-1).

The original Fortran stores 3-D fields z-fastest ("kij-ordering"), which is
cache friendly when a CPU marches up a column.  On the GPU, threads of a
warp are laid out along x, so coalesced global-memory transactions require
x to be the fastest-varying dimension; the paper therefore stores arrays in
x-z-y order.  This module provides

* a transaction-level model of the effective-bandwidth fraction each
  ordering achieves, used by the kernel cost model, and
* a *real* NumPy stride microbenchmark demonstrating the same effect on
  the host (the ordering ablation benchmark runs it).
"""
from __future__ import annotations

import time
from enum import Enum

import numpy as np

__all__ = ["ArrayOrder", "bandwidth_fraction", "stride_microbenchmark"]


class ArrayOrder(Enum):
    """Storage order of a (x, y, z) field, named by the fastest-varying
    dimension first."""

    XZY = "xzy"   #: GPU-friendly: x fastest, then z, then y (paper's choice)
    KIJ = "kij"   #: CPU/Fortran heritage: z fastest, then x, then y
    IJK = "ijk"   #: C-order (x, y, z) with z fastest -- same class as KIJ


def bandwidth_fraction(
    order: ArrayOrder,
    *,
    warp_size: int = 32,
    transaction_bytes: int = 64,
    itemsize: int = 4,
) -> float:
    """Fraction of peak bandwidth achieved by a warp reading one element
    per thread along x.

    Coalesced (x fastest): one warp touches ``warp_size * itemsize``
    contiguous bytes -> ceil(warp bytes / transaction) transactions.
    Uncoalesced (x strided): every thread falls in its own memory segment
    -> ``warp_size`` transactions of which only ``itemsize`` bytes are
    useful.  The GT200 coalescer of the paper's era worked exactly this
    way, which is why the kij-ordering "should be avoided on GPUs".
    """
    useful = warp_size * itemsize
    if order is ArrayOrder.XZY:
        transactions = -(-useful // transaction_bytes)  # ceil division
    else:
        transactions = warp_size
    return useful / (transactions * transaction_bytes)


def stride_microbenchmark(
    n: int = 1_000_000, stride: int = 64, repeats: int = 5
) -> dict[str, float]:
    """Measure the real host-memory cost of strided access.

    Updates ``n`` elements in place, once through a unit-stride view and
    once through a view of the given stride (each touched element sits on
    its own cache line — the CPU analogue of an uncoalesced warp).
    Returns elapsed seconds per pattern; the contiguous walk wins,
    mirroring (in direction, not magnitude) the GPU coalescing gap of
    Sec. IV-A-1.
    """
    base = np.zeros(n * stride, dtype=np.float32)
    contig = base[:n]
    strided = base[::stride]
    assert strided.shape == contig.shape

    def timed(view: np.ndarray) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            np.add(view, 1.0, out=view)
            best = min(best, time.perf_counter() - t0)
        return best

    return {
        "contiguous_seconds": timed(contig),
        "strided_seconds": timed(strided),
    }
