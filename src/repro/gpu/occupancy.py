"""CUDA occupancy model (GT200-era rules).

The paper's launch configurations — (64, 4, 1) thread blocks with a
(64+3)x(4+3) shared-memory tile — were chosen so enough blocks stay
resident per SM to hide the 400-600-cycle global-memory latency
(Sec. III/IV).  This module reproduces the CUDA occupancy calculator for
that hardware generation: resident blocks are limited by threads, shared
memory, registers and the per-SM block cap; occupancy is resident warps
over the maximum.

Used by the tests to verify the paper's configuration is sound and by the
kernel model to justify the latency-hiding saturation curve.
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SMLimits", "GT200_LIMITS", "FERMI_LIMITS", "Occupancy", "occupancy"]


@dataclass(frozen=True)
class SMLimits:
    """Per-multiprocessor resource limits."""

    name: str
    max_threads: int
    max_blocks: int
    max_warps: int
    warp_size: int
    registers: int            #: 32-bit registers per SM
    shared_memory: int        #: bytes per SM
    register_granularity: int = 512   #: allocation rounding (per block)
    shared_granularity: int = 512


GT200_LIMITS = SMLimits(
    name="GT200 (Tesla S1070)",
    max_threads=1024,
    max_blocks=8,
    max_warps=32,
    warp_size=32,
    registers=16384,
    shared_memory=16 * 1024,
)

FERMI_LIMITS = SMLimits(
    name="Fermi (M2050)",
    max_threads=1536,
    max_blocks=8,
    max_warps=48,
    warp_size=32,
    registers=32768,
    shared_memory=48 * 1024,
)


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float                   #: resident warps / max warps
    limiter: str                       #: which resource binds

    @property
    def latency_hiding_ok(self) -> bool:
        """Rule of thumb from the paper's era: >= 50% occupancy suffices
        to hide global-memory latency for streaming kernels."""
        return self.occupancy >= 0.5


def _round_up(x: int, gran: int) -> int:
    return -(-x // gran) * gran


def occupancy(
    threads_per_block: int,
    *,
    registers_per_thread: int = 16,
    shared_per_block: int = 0,
    limits: SMLimits = GT200_LIMITS,
) -> Occupancy:
    """Resident blocks/warps per SM and the binding resource."""
    if threads_per_block < 1 or threads_per_block > limits.max_threads:
        raise ValueError(
            f"block of {threads_per_block} threads outside (0, "
            f"{limits.max_threads}]"
        )
    warps_per_block = -(-threads_per_block // limits.warp_size)

    candidates = {
        "thread limit": limits.max_threads // threads_per_block,
        "block limit": limits.max_blocks,
        "warp limit": limits.max_warps // warps_per_block,
    }
    if registers_per_thread > 0:
        regs_block = _round_up(
            registers_per_thread * threads_per_block, limits.register_granularity
        )
        candidates["registers"] = limits.registers // regs_block
    if shared_per_block > 0:
        sh_block = _round_up(shared_per_block, limits.shared_granularity)
        candidates["shared memory"] = limits.shared_memory // sh_block

    limiter = min(candidates, key=lambda k: candidates[k])
    blocks = candidates[limiter]
    if blocks < 1:
        return Occupancy(0, 0, 0.0, limiter)
    warps = blocks * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / limits.max_warps,
        limiter=limiter,
    )
