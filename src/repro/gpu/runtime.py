"""Run the real NumPy model "on" the virtual GPU — the paper's Fig. 1
execution flow.

``GpuAsucaRunner`` wires an :class:`~repro.core.model.AsucaModel` to a
:class:`~repro.gpu.device.GPUDevice`:

* ``upload()`` stages the initial state into device arrays (charging PCIe
  time once, like the paper's "Initial data" arrow);
* ``step()`` advances the *actual* numerics (bit-identical to running the
  model directly — the analogue of the paper's "agree within machine
  round-off" check is exact equality here) while charging the modeled
  kernel times of one long step to the device timeline;
* ``download()`` fetches only the output fields (the paper: "minimum
  necessary data are transferred from the GPU").

Afterwards the device reports the modeled sustained GFlops, which is how
the single-GPU benchmark numbers connect to real executions of the
reproduction.
"""
from __future__ import annotations

from ..core.model import AsucaModel
from ..core.state import State
from .coalescing import ArrayOrder
from .device import GPUDevice
from .memory import DeviceArray
from .spec import Precision, TESLA_S1070

__all__ = ["GpuAsucaRunner"]


class GpuAsucaRunner:
    """Executes model steps with device-time accounting."""

    def __init__(
        self,
        model: AsucaModel,
        device: GPUDevice | None = None,
        *,
        precision: Precision = Precision.SINGLE,
        order: ArrayOrder = ArrayOrder.XZY,
        ns: int | None = None,
        counters: bool = False,
        counter_every: int = 1,
    ):
        from ..perf.costmodel import DEFAULT_NS, launch_schedule, ASUCA_KERNELS

        self.model = model
        self.device = device or GPUDevice(TESLA_S1070)
        self.precision = precision
        self.order = order
        self._schedule = launch_schedule(ns or DEFAULT_NS)
        self._kernels = ASUCA_KERNELS
        self._device_arrays: dict[str, DeviceArray] = {}
        self.steps_taken = 0
        g = model.grid
        self.n_points = g.nx * g.ny * g.nz
        #: optional :class:`~repro.gpu.counters.CountingHook` measuring
        #: per-launch FLOP/byte counts (``counters=True``); sampling every
        #: Nth step bounds the measurement overhead
        self.counting = None
        if counters:
            from .counters import CountingHook

            self.counting = CountingHook(
                model.grid, model.ref,
                precision=precision, sample_every=counter_every,
            )

    # ------------------------------------------------------------- staging
    def upload(self, state: State) -> None:
        """Stage the prognostic fields into device memory (Fig. 1 input
        transfer).  Capacity accounting raises MemoryError exactly like
        the paper's 4 GB limit.  Re-uploading frees and replaces any
        previously staged arrays, so repeated uploads never leak modeled
        device memory."""
        for name in state.prognostic_names():
            stale = self._device_arrays.pop(name, None)
            if stale is not None:
                stale.free()
            arr = state.get(name)
            d = DeviceArray(self.device, arr.shape, arr.dtype, self.order,
                            name=name)
            d.copy_from_host(arr, tag="init")
            self._device_arrays[name] = d

    def teardown(self) -> None:
        """Free every staged device array (end-of-run cleanup; the
        sanitizer's leak-at-teardown check keys on this having happened)."""
        for d in self._device_arrays.values():
            d.free()
        self._device_arrays.clear()

    def sync_device(self, state: State) -> None:
        """Overwrite the staged device copies with ``state`` without
        charging PCIe time — used by checkpoint-restart recovery, where
        the restore cost is accounted by the checkpoint layer, and the
        arrays are already allocated."""
        if not self._device_arrays:
            self.upload(state)
            return
        for name, d in self._device_arrays.items():
            d.fill_from(state.get(name))

    def download(self, state: State, names: list[str] | None = None) -> None:
        """Fetch output fields to the host (Fig. 1 output transfer),
        writing the device data into the caller's state arrays."""
        for name in names or ["rhou", "rhov", "rhow", "rhotheta"]:
            d = self._device_arrays.get(name)
            if d is not None:
                d.copy_to_host(state.get(name), tag="output")

    # ---------------------------------------------------------------- step
    def step(self, state: State) -> State:
        """Advance the real model one long step and charge the modeled
        kernel launches to the device."""
        new = self.model.step(state)
        sampled = (self.counting is not None
                   and self.counting.begin_step(self.steps_taken, state))
        for name, count in self._schedule:
            k = self._kernels[name]
            for _ in range(count):
                _, op = k.launch(
                    self.device, self.n_points,
                    precision=self.precision, order=self.order,
                )
                if sampled:
                    self.counting.annotate(op, name, self.n_points)
        # keep the staged device copies current (no PCIe traffic: this is
        # device-resident data, the whole point of the full-GPU port)
        for name, d in self._device_arrays.items():
            d.fill_from(new.get(name))
        self.steps_taken += 1
        return new

    def run(self, state: State, n_steps: int) -> State:
        for _ in range(n_steps):
            state = self.step(state)
        return state

    # ---------------------------------------------------------- reporting
    def sustained_gflops(self) -> float:
        return self.device.sustained_flops() / 1e9

    def modeled_step_time(self) -> float:
        """Average modeled device time per long step taken so far."""
        if self.steps_taken == 0:
            return 0.0
        return self.device.busy_time("kernel") / self.steps_taken
