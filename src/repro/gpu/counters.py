"""Per-launch FLOP/byte accounting for the virtual GPU runtime.

This is the live-roofline measurement layer (ROADMAP item 1): instead of
trusting the hand-entered per-point costs in
:mod:`repro.perf.costmodel`, a :class:`CountingHook` runs every bound
reference kernel once per sampled step with its field arguments wrapped
in :class:`~repro.perf.counting.CountingArray`\\ s — the pure-Python
equivalent of the paper's PAPI counters (Sec. IV-B) — and annotates that
step's device ops with the measured per-point counts scaled to each
launch's size (:attr:`~repro.gpu.device.Op.measured`).

The hook never touches the run's numerics or the modeled timeline: it
measures on *copies/views* of the state via the accounting bindings
(:func:`~repro.gpu.asuca_kernels.bind_accounting_kernels`), and the
modeled durations still come from the cost table.  ``sample_every=N``
bounds the measurement overhead to every Nth step; unsampled steps carry
no ``measured`` payload.

The drift bands here are shared by the doctor's ``--roofline`` check and
the measured-vs-table tests: measured flops should land within
:data:`DEFAULT_DRIFT_BAND` of the table (ufunc weights differ from the
hand counts — e.g. a divide is 4 weighted flops), while measured
*streamed* traffic legitimately exceeds the table's global-memory bytes
by a large factor (NumPy materializes every temporary; the CUDA kernels
keep them in registers), hence the much wider :data:`BYTES_DRIFT_BAND`.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..perf.counting import FlopCounter
from ..stencil import (
    StencilExecutor,
    declared_bytes_band,
    declared_flops_band,
    use_executor,
)
from .asuca_kernels import accounting_args, bind_accounting_kernels
from .spec import Precision

__all__ = [
    "DEFAULT_DRIFT_BAND",
    "BYTES_DRIFT_BAND",
    "DRIFT_BANDS",
    "drift_band",
    "flops_drift",
    "bytes_drift",
    "CountingHook",
]

#: acceptable measured/table flops-per-point ratio (outside → ROOF01).
#: The spread is real: ufunc weights charge a divide at 4 and an exp at 8
#: where the hand table counts 1, and the table rounds stencils up.
DEFAULT_DRIFT_BAND: tuple[float, float] = (0.2, 5.0)

#: acceptable measured/table bytes-per-point ratio (outside → ROOF02).
#: Streamed NumPy traffic counts every temporary array — measured bytes
#: run up to ~40x the table's global-memory estimate on fused stencils —
#: so this band only catches gross drift (a kernel reading fields the
#: table never knew about, or touching almost nothing).
BYTES_DRIFT_BAND: tuple[float, float] = (0.25, 64.0)

#: per-kernel overrides of :data:`DEFAULT_DRIFT_BAND` for flops drift
#: (checked before the stencil declarations)
DRIFT_BANDS: dict[str, tuple[float, float]] = {}


def drift_band(name: str) -> tuple[float, float]:
    """The (lo, hi) measured/table flops ratio band for one kernel:
    the local override, else the band the kernel's ``@stencil``
    declaration carries (``flops_band=``), else the default."""
    band = DRIFT_BANDS.get(name)
    if band is None:
        band = declared_flops_band(name)
    return band if band is not None else DEFAULT_DRIFT_BAND


def flops_drift(name: str, measured_pp: float, table_pp: float) -> float | None:
    """Measured/table flops ratio when out of band, else None (in band).

    Kernels the table prices at zero flops (``array_copy``) are skipped —
    there is no ratio to take.
    """
    if table_pp <= 0:
        return None
    ratio = measured_pp / table_pp
    lo, hi = drift_band(name)
    return None if lo <= ratio <= hi else ratio


def bytes_drift(name: str, measured_pp: float, table_pp: float) -> float | None:
    """Measured/table bytes ratio when out of band, else None (in band).
    A ``bytes_band=`` on the kernel's ``@stencil`` declaration tightens
    the default band."""
    if table_pp <= 0:
        return None
    ratio = measured_pp / table_pp
    band = declared_bytes_band(name)
    lo, hi = band if band is not None else BYTES_DRIFT_BAND
    return None if lo <= ratio <= hi else ratio


_REFERENCE_EXECUTOR: StencilExecutor | None = None


def _reference_executor() -> StencilExecutor:
    global _REFERENCE_EXECUTOR
    if _REFERENCE_EXECUTOR is None:
        _REFERENCE_EXECUTOR = StencilExecutor("reference")
    return _REFERENCE_EXECUTOR


@dataclass
class MeasuredKernel:
    """Accumulated measurement of one kernel over a run."""

    name: str
    flops_per_point: float = 0.0
    reads_per_point: float = 0.0
    writes_per_point: float = 0.0
    measurements: int = 0       #: sampled steps contributing
    launches: int = 0           #: annotated launches
    points: float = 0.0         #: total points over annotated launches

    def update_per_point(self, fpp: float, rpp: float, wpp: float) -> None:
        # running mean over sampled steps (counts are shape functions, so
        # in practice every sample agrees; the mean guards solver kernels
        # whose iteration count could vary with the state)
        n = self.measurements
        self.flops_per_point = (self.flops_per_point * n + fpp) / (n + 1)
        self.reads_per_point = (self.reads_per_point * n + rpp) / (n + 1)
        self.writes_per_point = (self.writes_per_point * n + wpp) / (n + 1)
        self.measurements = n + 1


class CountingHook:
    """Measures per-point FLOP/element counts of the ASUCA kernels and
    annotates device ops with them.

    Lifecycle per step::

        sampled = hook.begin_step(step_index, state)   # measures if due
        ...
        op = kernel.launch(...)
        if sampled:
            hook.annotate(op, name, n_points)

    ``begin_step`` runs every accounting kernel once on (copies of) the
    live state fields under a :class:`~repro.perf.counting.FlopCounter`,
    yielding per-point counts; ``annotate`` scales them to the launch
    size and precision and stores the result on the op.  Steps where
    ``step_index % sample_every != 0`` are skipped entirely.
    """

    def __init__(self, grid, ref, *, precision: Precision = Precision.SINGLE,
                 sample_every: int = 1):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.grid = grid
        self.ref = ref
        self.precision = precision
        self.sample_every = int(sample_every)
        self.kernels = bind_accounting_kernels(grid, ref)
        self.counter = FlopCounter()
        #: name -> {'flops','reads','writes'} per point, from the last sample
        self._per_point: dict[str, dict[str, float]] = {}
        #: name -> :class:`MeasuredKernel` accumulated over the run
        self.measured: dict[str, MeasuredKernel] = {}
        self.steps_seen = 0
        self.steps_sampled = 0

    # ------------------------------------------------------- measurement
    def due(self, step_index: int) -> bool:
        return step_index % self.sample_every == 0

    def begin_step(self, step_index: int, state) -> bool:
        """Measure all kernels if this step is sampled; returns whether
        subsequent launches of this step should be annotated."""
        self.steps_seen += 1
        if not self.due(step_index):
            return False
        args = accounting_args(self.grid, self.ref, state)
        for name, kernel in self.kernels.items():
            spec = args.get(name)
            if spec is None or kernel.fn is None:
                continue
            self._measure_one(name, kernel, spec)
        self.steps_sampled += 1
        return True

    def _measure_one(self, name: str, kernel, spec) -> None:
        call_args, points = spec
        c = self.counter
        f0, r0, w0 = c.flops, c.elements_read, c.elements_written
        # always measure the *reference* implementation: counts are shape
        # functions of the kernel, and the fused backend's pooled plain-
        # ndarray temporaries would escape the CountingArray accounting
        with use_executor(_reference_executor()):
            kernel.fn(*(c.wrap(a) if isinstance(a, np.ndarray) else a
                        for a in call_args))
        pp = {
            "flops": (c.flops - f0) / points,
            "reads": (c.elements_read - r0) / points,
            "writes": (c.elements_written - w0) / points,
        }
        self._per_point[name] = pp
        mk = self.measured.setdefault(name, MeasuredKernel(name))
        mk.update_per_point(pp["flops"], pp["reads"], pp["writes"])

    # -------------------------------------------------------- annotation
    def annotate(self, op, name: str, n_points: float) -> None:
        """Attach measured counts (scaled to this launch) to a device op."""
        pp = self._per_point.get(name)
        if pp is None:
            return
        itemsize = self.precision.itemsize
        flops = pp["flops"] * n_points
        bytes_read = pp["reads"] * n_points * itemsize
        bytes_written = pp["writes"] * n_points * itemsize
        traffic = bytes_read + bytes_written
        op.measured = {
            "flops": flops,
            "bytes_read": bytes_read,
            "bytes_written": bytes_written,
            "intensity": flops / traffic if traffic > 0 else 0.0,
            "points": float(n_points),
        }
        mk = self.measured.setdefault(name, MeasuredKernel(name))
        mk.launches += 1
        mk.points += float(n_points)

    # --------------------------------------------------------- reporting
    def per_point(self, name: str) -> dict[str, float] | None:
        """Latest sampled per-point counts for one kernel (or None)."""
        return self._per_point.get(name)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-kernel measured per-point counts and launch totals."""
        return {
            name: {
                "flops_per_point": mk.flops_per_point,
                "reads_per_point": mk.reads_per_point,
                "writes_per_point": mk.writes_per_point,
                "measurements": mk.measurements,
                "launches": mk.launches,
                "points": mk.points,
            }
            for name, mk in sorted(self.measured.items())
        }
