"""Kernel abstraction: launch configuration + cost model + real function.

A :class:`Kernel` couples

* an optional NumPy function that produces the *actual numerical result*
  (so GPU-path executions are bit-identical to direct calls — the paper's
  "agree within machine round-off" claim becomes an exact test here), and
* a :class:`KernelCostModel` that converts the launch size into a modeled
  execution time via the paper's Eq. 6 roofline, coalescing fraction and
  launch overhead, charged to the device timeline.

Launch configurations mirror the paper's Sec. IV-A: ``(nx/64, nz/4, 1)``
blocks of ``(64, 4, 1)`` threads marching along y for advection-style
kernels, and ``(nx/64, ny/4, 1)`` blocks marching along z for the
Helmholtz solver.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .coalescing import ArrayOrder, bandwidth_fraction
from .device import Event, GPUDevice, Stream
from .roofline import kernel_time
from .spec import Precision

__all__ = ["LaunchConfig", "KernelCostModel", "Kernel"]


def _unwrap(result):
    """Strip CountingArray views off a measured launch's result so the
    instrumentation never leaks into caller-held arrays."""
    from ..perf.counting import CountingArray

    if isinstance(result, CountingArray):
        return result.view(np.ndarray)
    if isinstance(result, tuple):
        return tuple(_unwrap(r) for r in result)
    return result


@dataclass(frozen=True)
class LaunchConfig:
    """CUDA-style grid/block geometry (for reporting and occupancy sanity
    checks; the time model keys off total points)."""

    block: tuple[int, int, int] = (64, 4, 1)
    march_axis: str = "y"     #: 'y' for stencil kernels, 'z' for Helmholtz

    def blocks_for(self, nx: int, ny: int, nz: int) -> tuple[int, int, int]:
        bx, b2, _ = self.block
        if self.march_axis == "y":
            # threads cover the (x, z) slice, march along y (paper Fig. 2a)
            return (-(-nx // bx), -(-nz // b2), 1)
        # threads cover the (x, y) slice, march along z (paper Fig. 2b)
        return (-(-nx // bx), -(-ny // b2), 1)

    def threads_for(self, nx: int, ny: int, nz: int) -> int:
        bl = self.blocks_for(nx, ny, nz)
        return bl[0] * bl[1] * bl[2] * self.block[0] * self.block[1] * self.block[2]


@dataclass(frozen=True)
class KernelCostModel:
    """Per-point cost in element accesses and flops.

    ``reads/writes_per_point`` count *field elements*; bytes follow from
    the precision.  ``alpha`` is the fixed launch overhead of Eq. 6.
    """

    flops_per_point: float
    reads_per_point: float
    writes_per_point: float
    alpha: float = 5.0e-6
    compute_fraction: float | None = None  #: override device efficiency

    def flops(self, n_points: float) -> float:
        return self.flops_per_point * n_points

    def bytes_moved(self, n_points: float, precision: Precision) -> float:
        return (self.reads_per_point + self.writes_per_point) * n_points * precision.itemsize

    def intensity(self, precision: Precision) -> float:
        """Arithmetic intensity [flop/B] — x axis of the paper's Fig. 5."""
        return self.flops_per_point / (
            (self.reads_per_point + self.writes_per_point) * precision.itemsize
        )


@dataclass
class Kernel:
    """A launchable kernel with cost model and optional real function."""

    name: str
    cost: KernelCostModel
    fn: Callable | None = None
    launch_config: LaunchConfig = field(default_factory=LaunchConfig)
    tag: str = ""

    def duration(
        self,
        n_points: float,
        spec,
        precision: Precision = Precision.SINGLE,
        order: ArrayOrder = ArrayOrder.XZY,
    ) -> float:
        """Modeled execution time for a launch over ``n_points``."""
        bw_frac = bandwidth_fraction(order, itemsize=precision.itemsize)
        return kernel_time(
            self.cost.flops(n_points),
            self.cost.bytes_moved(n_points, precision),
            spec,
            precision,
            alpha=self.cost.alpha,
            n_points=n_points,
            bandwidth_fraction=bw_frac,
            compute_fraction=self.cost.compute_fraction,
        )

    def launch(
        self,
        device: GPUDevice,
        n_points: float,
        *,
        stream: Stream | None = None,
        precision: Precision = Precision.SINGLE,
        order: ArrayOrder = ArrayOrder.XZY,
        args: tuple = (),
        kwargs: dict | None = None,
        after: tuple[Event, ...] = (),
        tag: str | None = None,
        counter=None,
    ):
        """Run the real function (if any) and charge modeled time.
        Returns ``(result, Op)``.

        With a :class:`~repro.perf.counting.FlopCounter` as ``counter``,
        every ndarray argument is wrapped in a ``CountingArray`` for this
        launch and the measured FLOP/element deltas are attached to the
        op as :attr:`~repro.gpu.device.Op.measured` — the PAPI-per-launch
        path of the live roofline.  The modeled duration and the numeric
        result are unaffected (counting arrays are bit-transparent)."""
        kwargs = kwargs or {}
        measured: dict | None = None
        if counter is not None and self.fn is not None:
            f0, r0, w0 = (counter.flops, counter.elements_read,
                          counter.elements_written)
            result = self.fn(
                *(counter.wrap(a) if isinstance(a, np.ndarray) else a
                  for a in args),
                **{k: counter.wrap(v) if isinstance(v, np.ndarray) else v
                   for k, v in kwargs.items()})
            result = _unwrap(result)
            itemsize = precision.itemsize
            flops = counter.flops - f0
            bytes_read = (counter.elements_read - r0) * itemsize
            bytes_written = (counter.elements_written - w0) * itemsize
            traffic = bytes_read + bytes_written
            measured = {
                "flops": flops,
                "bytes_read": bytes_read,
                "bytes_written": bytes_written,
                "intensity": flops / traffic if traffic > 0 else 0.0,
                "points": float(n_points),
            }
        else:
            result = self.fn(*args, **kwargs) if self.fn is not None else None
        dur = self.duration(n_points, device.spec, precision, order)
        op = device.schedule(
            self.name, "kernel", stream or device.default_stream, dur,
            flops=self.cost.flops(n_points),
            bytes_moved=self.cost.bytes_moved(n_points, precision),
            after=after,
            tag=self.tag if tag is None else tag,
        )
        op.measured = measured
        return result, op
