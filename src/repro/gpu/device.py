"""Virtual CUDA device: streams, events, engines, and a simulated clock.

This is the execution-model substitute for real CUDA hardware (DESIGN.md
Sec. 2).  Work is submitted in host order exactly like the CUDA runtime:

* every operation belongs to a :class:`Stream` (in-order within a stream);
* every operation occupies an engine — ``compute`` for kernels (the GT200
  of the paper runs one kernel at a time), ``copy`` for DMA transfers
  (one copy engine on the S1070, so H2D and D2H serialize against each
  other but overlap with compute);
* an op starts at ``max(stream available, engine available, explicit
  dependencies)`` and runs for its modeled duration.

The recorded timeline is what the Fig. 9 / Fig. 11 benchmarks read out.
Functional results are produced by really executing the wrapped NumPy
functions; the clock is purely virtual.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .spec import DeviceSpec, TESLA_S1070

__all__ = ["Op", "Event", "Stream", "GPUDevice"]


@dataclass
class Op:
    """One scheduled operation on the virtual timeline."""

    name: str
    kind: str          #: 'kernel' | 'h2d' | 'd2h'
    stream: int
    start: float
    end: float
    flops: float = 0.0
    bytes_moved: float = 0.0
    tag: str = ""      #: free-form grouping label for breakdown reports

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Event:
    """CUDA-event analogue: a point on a stream's timeline."""

    time: float


class Stream:
    """In-order work queue (CUDA stream analogue)."""

    def __init__(self, device: "GPUDevice", sid: int):
        self.device = device
        self.sid = sid
        self.available_at = 0.0

    def record_event(self) -> Event:
        return Event(self.available_at)

    def wait_event(self, event: Event) -> None:
        """Subsequent ops on this stream start no earlier than the event."""
        self.available_at = max(self.available_at, event.time)

    def synchronize(self) -> float:
        return self.available_at


class GPUDevice:
    """One virtual GPU (or CPU core) with a simulated clock.

    ``copy_engines=1`` mirrors the single DMA engine of the Tesla S1070;
    pass 2 for devices with dual copy engines.
    """

    def __init__(self, spec: DeviceSpec = TESLA_S1070, *, copy_engines: int = 1,
                 label: str = "gpu0", fault_injector=None):
        self.spec = spec
        #: track identity for telemetry (e.g. ``rank3``); collectors use
        #: it to stamp this device's ops in merged multi-rank traces
        self.label = label
        #: optional :class:`~repro.resilience.faults.FaultInjector`; a
        #: scheduled PCIE event makes the next H2D/D2H copy fail once and
        #: be redone, charging the retry to this device's timeline
        self.fault_injector = fault_injector
        # the 'mpi' engine stands for the host-side network: MPI transfers
        # occupy it without blocking the GPU engines (paper Fig. 8)
        self._engines: dict[str, float] = {"compute": 0.0, "mpi": 0.0}
        for i in range(copy_engines):
            self._engines[f"copy{i}"] = 0.0
        self._n_copy = copy_engines
        self.streams: list[Stream] = []
        self.timeline: list[Op] = []
        self.allocated_bytes = 0
        self.default_stream = self.create_stream()

    # ----------------------------------------------------------- streams
    def create_stream(self) -> Stream:
        s = Stream(self, len(self.streams))
        self.streams.append(s)
        return s

    # --------------------------------------------------------- schedule
    def _engine_for(self, kind: str) -> str:
        if kind == "kernel":
            return "compute"
        if kind == "mpi":
            return "mpi"
        # copies round-robin over DMA engines by direction when there are
        # two, otherwise share the single engine
        if self._n_copy >= 2:
            return "copy0" if kind == "h2d" else "copy1"
        return "copy0"

    def schedule(
        self,
        name: str,
        kind: str,
        stream: Stream,
        duration: float,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        after: Iterable[Event] = (),
        tag: str = "",
    ) -> Op:
        """Place an op on the timeline; returns it (its ``end`` is when a
        subsequent dependent op may start).

        A transient PCIe fault (see :attr:`fault_injector`) inserts a
        same-duration ``[failed]`` attempt first; the real copy then
        serializes behind it on the DMA engine, so the retry shows up in
        the timeline and in the copy-time aggregates.
        """
        if duration < 0:
            raise ValueError("negative duration")
        if (self.fault_injector is not None and kind in ("h2d", "d2h")
                and self.fault_injector.on_pcie(self.label)):
            self._place(f"{name}[failed]", kind, stream, duration,
                        flops=0.0, bytes_moved=bytes_moved, after=after,
                        tag="pcie_retry")
        return self._place(name, kind, stream, duration, flops=flops,
                           bytes_moved=bytes_moved, after=after, tag=tag)

    def _place(
        self,
        name: str,
        kind: str,
        stream: Stream,
        duration: float,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        after: Iterable[Event] = (),
        tag: str = "",
    ) -> Op:
        engine = self._engine_for(kind)
        start = max(
            stream.available_at,
            self._engines[engine],
            *(ev.time for ev in after),
        ) if after else max(stream.available_at, self._engines[engine])
        end = start + duration
        stream.available_at = end
        self._engines[engine] = end
        op = Op(name=name, kind=kind, stream=stream.sid, start=start, end=end,
                flops=flops, bytes_moved=bytes_moved, tag=tag)
        self.timeline.append(op)
        return op

    # ------------------------------------------------------------- clock
    def synchronize(self) -> float:
        """Wait for everything (returns the makespan) and align all
        streams/engines to it — cudaDeviceSynchronize analogue."""
        t = self.elapsed()
        for s in self.streams:
            s.available_at = t
        for k in self._engines:
            self._engines[k] = t
        return t

    def elapsed(self) -> float:
        """Current makespan of all submitted work."""
        if not self.timeline:
            return 0.0
        return max(op.end for op in self.timeline)

    def reset(self) -> None:
        """Clear the timeline and rewind the clock (memory stays)."""
        self.timeline.clear()
        for s in self.streams:
            s.available_at = 0.0
        for k in self._engines:
            self._engines[k] = 0.0

    # --------------------------------------------------------- reporting
    def busy_time(self, kind: str | None = None, tag: str | None = None) -> float:
        """Total op time filtered by kind and/or tag (may exceed the
        makespan when work overlaps across engines)."""
        return sum(
            op.duration
            for op in self.timeline
            if (kind is None or op.kind == kind) and (tag is None or op.tag == tag)
        )

    def total_flops(self) -> float:
        return sum(op.flops for op in self.timeline)

    def sustained_flops(self) -> float:
        """FLOP / makespan — the quantity the paper reports as GFlops."""
        t = self.elapsed()
        return self.total_flops() / t if t > 0 else 0.0
