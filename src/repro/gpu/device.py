"""Virtual CUDA device: streams, events, engines, and a simulated clock.

This is the execution-model substitute for real CUDA hardware (DESIGN.md
Sec. 2).  Work is submitted in host order exactly like the CUDA runtime:

* every operation belongs to a :class:`Stream` (in-order within a stream);
* every operation occupies an engine — ``compute`` for kernels (the GT200
  of the paper runs one kernel at a time), ``copy`` for DMA transfers
  (one copy engine on the S1070, so H2D and D2H serialize against each
  other but overlap with compute);
* an op starts at ``max(stream available, engine available, explicit
  dependencies)`` and runs for its modeled duration.

The recorded timeline is what the Fig. 9 / Fig. 11 benchmarks read out.
Functional results are produced by really executing the wrapped NumPy
functions; the clock is purely virtual.

Every op also records the *happens-before* facts of its submission — the
explicit event/`after` dependencies it was given, its position in stream
program order, and the device-synchronize epoch it belongs to — plus the
memory regions it declares via :class:`Access`.  None of this changes the
schedule; it is what :mod:`repro.analysis.racecheck` replays to find
conflicting accesses with no ordering edge (the virtual machine's
``racecheck``, after cuda-memcheck's tool of the same name).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .spec import DeviceSpec, TESLA_S1070

__all__ = ["Access", "Op", "Event", "Stream", "GPUDevice"]


@dataclass(frozen=True)
class Access:
    """A declared memory access of one op: a named buffer (a
    :class:`~repro.gpu.memory.DeviceArray` region, a host staging buffer,
    a halo strip) and an optional element range within it.

    ``hi=None`` means "to the end of the buffer"; two accesses conflict
    when they touch the same buffer, their ranges intersect, and at least
    one of them writes.
    """

    buffer: str
    mode: str            #: 'r' | 'w' | 'rw'
    lo: int = 0
    hi: int | None = None

    def overlaps(self, other: "Access") -> bool:
        if self.buffer != other.buffer:
            return False
        a_hi = float("inf") if self.hi is None else self.hi
        b_hi = float("inf") if other.hi is None else other.hi
        return self.lo < b_hi and other.lo < a_hi

    def conflicts(self, other: "Access") -> bool:
        return ("w" in self.mode or "w" in other.mode) and self.overlaps(other)


@dataclass
class Op:
    """One scheduled operation on the virtual timeline."""

    name: str
    kind: str          #: 'kernel' | 'h2d' | 'd2h'
    stream: int
    start: float
    end: float
    flops: float = 0.0
    bytes_moved: float = 0.0
    tag: str = ""      #: free-form grouping label for breakdown reports
    #: submission order on the device (unique, monotonically increasing)
    seq: int = -1
    #: device-synchronize epoch; a device sync orders everything before it
    epoch: int = 0
    #: seqs of the ops this op explicitly waited on (events / ``after``)
    deps: tuple[int, ...] = ()
    #: memory regions this op declared (empty = opaque to racecheck)
    accesses: tuple[Access, ...] = ()
    #: measured FLOP/byte counts of this launch (None = not instrumented).
    #: Filled by the counting hook (:mod:`repro.gpu.counters`) or a
    #: ``counter=`` launch; keys: ``flops``, ``bytes_read``,
    #: ``bytes_written``, ``intensity`` [flop/B], ``points``.  Unlike
    #: :attr:`flops`/:attr:`bytes_moved` (the analytic cost model) these
    #: come from actually running the kernel under instrumented arrays.
    measured: dict | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Event:
    """CUDA-event analogue: a point on a stream's timeline.

    ``op`` is provenance for the happens-before analysis: the operation
    whose completion this event marks (None for synthetic time-only
    events, which order the *schedule* but carry no dependency edge).
    """

    time: float
    op: Op | None = None


class Stream:
    """In-order work queue (CUDA stream analogue)."""

    def __init__(self, device: "GPUDevice", sid: int):
        self.device = device
        self.sid = sid
        self.available_at = 0.0
        #: last op placed on this stream (event provenance)
        self.last_op: Op | None = None
        #: dependency ops from wait_event, consumed by the next placed op
        self._pending_deps: list[Op] = []

    def record_event(self) -> Event:
        return Event(self.available_at, op=self.last_op)

    def wait_event(self, event: Event) -> None:
        """Subsequent ops on this stream start no earlier than the event.
        When the event carries op provenance, the next op placed here also
        records a happens-before edge to that op."""
        self.available_at = max(self.available_at, event.time)
        if event.op is not None:
            self._pending_deps.append(event.op)

    def synchronize(self) -> float:
        return self.available_at


class GPUDevice:
    """One virtual GPU (or CPU core) with a simulated clock.

    ``copy_engines=1`` mirrors the single DMA engine of the Tesla S1070;
    pass 2 for devices with dual copy engines.
    """

    def __init__(self, spec: DeviceSpec = TESLA_S1070, *, copy_engines: int = 1,
                 label: str = "gpu0", fault_injector=None):
        self.spec = spec
        #: track identity for telemetry (e.g. ``rank3``); collectors use
        #: it to stamp this device's ops in merged multi-rank traces
        self.label = label
        #: optional :class:`~repro.resilience.faults.FaultInjector`; a
        #: scheduled PCIE event makes the next H2D/D2H copy fail once and
        #: be redone, charging the retry to this device's timeline
        self.fault_injector = fault_injector
        # the 'mpi' engine stands for the host-side network: MPI transfers
        # occupy it without blocking the GPU engines (paper Fig. 8)
        self._engines: dict[str, float] = {"compute": 0.0, "mpi": 0.0}
        for i in range(copy_engines):
            self._engines[f"copy{i}"] = 0.0
        self._n_copy = copy_engines
        self.streams: list[Stream] = []
        self.timeline: list[Op] = []
        self.allocated_bytes = 0
        #: optional lifecycle hook (duck-typed; see
        #: :class:`repro.analysis.memcheck.MemcheckTracker`) notified by
        #: :class:`~repro.gpu.memory.DeviceArray` alloc/free/transfer calls
        self.memcheck = None
        self._seq = 0          #: next op submission number
        self._epoch = 0        #: current synchronize epoch
        self._alloc_seq = 0    #: DeviceArray naming counter
        self.default_stream = self.create_stream()

    # ----------------------------------------------------------- streams
    def create_stream(self) -> Stream:
        s = Stream(self, len(self.streams))
        self.streams.append(s)
        return s

    # --------------------------------------------------------- schedule
    def _engine_for(self, kind: str) -> str:
        if kind == "kernel":
            return "compute"
        if kind == "mpi":
            return "mpi"
        # copies round-robin over DMA engines by direction when there are
        # two, otherwise share the single engine
        if self._n_copy >= 2:
            return "copy0" if kind == "h2d" else "copy1"
        return "copy0"

    def schedule(
        self,
        name: str,
        kind: str,
        stream: Stream,
        duration: float,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        after: Iterable[Event] = (),
        tag: str = "",
        accesses: Iterable[Access] = (),
    ) -> Op:
        """Place an op on the timeline; returns it (its ``end`` is when a
        subsequent dependent op may start).

        A transient PCIe fault (see :attr:`fault_injector`) inserts a
        same-duration ``[failed]`` attempt first; the real copy then
        serializes behind it on the DMA engine, so the retry shows up in
        the timeline and in the copy-time aggregates.
        """
        if duration < 0:
            raise ValueError("negative duration")
        if (self.fault_injector is not None and kind in ("h2d", "d2h")
                and self.fault_injector.on_pcie(self.label)):
            self._place(f"{name}[failed]", kind, stream, duration,
                        flops=0.0, bytes_moved=bytes_moved, after=after,
                        tag="pcie_retry")
        return self._place(name, kind, stream, duration, flops=flops,
                           bytes_moved=bytes_moved, after=after, tag=tag,
                           accesses=accesses)

    def _place(
        self,
        name: str,
        kind: str,
        stream: Stream,
        duration: float,
        *,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        after: Iterable[Event] = (),
        tag: str = "",
        accesses: Iterable[Access] = (),
    ) -> Op:
        after = tuple(after)
        engine = self._engine_for(kind)
        start = max(
            stream.available_at,
            self._engines[engine],
            *(ev.time for ev in after),
        ) if after else max(stream.available_at, self._engines[engine])
        end = start + duration
        stream.available_at = end
        self._engines[engine] = end
        # happens-before edges: explicit `after` provenance plus any
        # wait_event deps pending on the stream (program order is implied
        # by `stream`/`seq` and need not be recorded)
        deps = [ev.op for ev in after if ev.op is not None]
        deps.extend(stream._pending_deps)
        stream._pending_deps = []
        op = Op(name=name, kind=kind, stream=stream.sid, start=start, end=end,
                flops=flops, bytes_moved=bytes_moved, tag=tag,
                seq=self._seq, epoch=self._epoch,
                deps=tuple(d.seq for d in deps),
                accesses=tuple(accesses))
        self._seq += 1
        stream.last_op = op
        self.timeline.append(op)
        return op

    # ------------------------------------------------------------- clock
    def synchronize(self) -> float:
        """Wait for everything (returns the makespan) and align all
        streams/engines to it — cudaDeviceSynchronize analogue.  Also a
        happens-before barrier: every later op is ordered after every
        earlier one (the epoch stamp racecheck keys on)."""
        t = self.elapsed()
        for s in self.streams:
            s.available_at = t
            s._pending_deps = []
        for k in self._engines:
            self._engines[k] = t
        self._epoch += 1
        return t

    def elapsed(self) -> float:
        """Current makespan of all submitted work."""
        if not self.timeline:
            return 0.0
        return max(op.end for op in self.timeline)

    def reset(self) -> None:
        """Clear the timeline and rewind the clock (memory stays)."""
        self.timeline.clear()
        for s in self.streams:
            s.available_at = 0.0
            s.last_op = None
            s._pending_deps = []
        for k in self._engines:
            self._engines[k] = 0.0
        self._seq = 0
        self._epoch = 0

    # --------------------------------------------------------- reporting
    def busy_time(self, kind: str | None = None, tag: str | None = None) -> float:
        """Total op time filtered by kind and/or tag (may exceed the
        makespan when work overlaps across engines)."""
        return sum(
            op.duration
            for op in self.timeline
            if (kind is None or op.kind == kind) and (tag is None or op.tag == tag)
        )

    def total_flops(self) -> float:
        return sum(op.flops for op in self.timeline)

    def sustained_flops(self) -> float:
        """FLOP / makespan — the quantity the paper reports as GFlops."""
        t = self.elapsed()
        return self.total_flops() / t if t > 0 else 0.0
