"""Device memory: allocation accounting, layouts, and host<->device
transfers.

Allocation is tracked against the device's capacity so the paper's
memory-limit observations are reproducible (Sec. IV-B: "The amount of
memory on Tesla S1070 (4 GByte) limits a grid size to no more than
320 x 256 x 48 in single precision" — and half that extent in double).
Transfers really move the data (``np.copyto``) and charge PCIe time on the
device timeline.

Every array has a stable ``buffer`` identity and notifies the device's
optional ``memcheck`` hook (see
:class:`repro.analysis.memcheck.MemcheckTracker`) on alloc, free and each
transfer — the instrumentation points behind the sanitizer's
use-after-free / double-free / leak / uninitialized-read checks.  The
hooks are plain attribute calls, so this module stays free of analysis
imports and costs one ``None`` check when no tracker is attached.
"""
from __future__ import annotations

import numpy as np

from .coalescing import ArrayOrder
from .device import Access, Event, GPUDevice, Stream

__all__ = ["DeviceArray", "DeviceAllocator", "asuca_field_count", "max_grid_fits"]

#: Effective number of resident 3-D fields of the full-GPU ASUCA: 5
#: dynamical prognostics + 7 water substances, each with long-step base
#: copies, RK-stage values, slow tendencies, acoustic work arrays,
#: pressure/EOS diagnostics and halo-packing buffers.  Calibrated so that
#: 320 x 256 x 48 in single precision is the largest (ny multiple of 32)
#: mesh fitting a 4 GiB Tesla S1070 and 320 x 128 x 48 the largest in
#: double precision — exactly the paper's Sec. IV-B statements.
ASUCA_RESIDENT_FIELDS = 256


def asuca_field_count() -> int:
    return ASUCA_RESIDENT_FIELDS


class DeviceArray:
    """An array resident in (virtual) device memory."""

    def __init__(self, device: GPUDevice, shape: tuple[int, ...], dtype,
                 order: ArrayOrder = ArrayOrder.XZY, *, name: str = ""):
        self.device = device
        self.order = order
        self.data = np.zeros(shape, dtype=dtype)
        #: stable identity for access declarations and lifecycle findings
        self.buffer = f"{name or 'arr'}@{device.label}#{device._alloc_seq}"
        device._alloc_seq += 1
        device_mem = self.data.nbytes
        if device.allocated_bytes + device_mem > device.spec.mem_capacity:
            raise MemoryError(
                f"device OOM: {device.allocated_bytes + device_mem} B needed, "
                f"{device.spec.mem_capacity} B capacity ({device.spec.name})"
            )
        device.allocated_bytes += device_mem
        self._freed = False
        #: set by the first H2D copy or device-side write; a D2H copy of a
        #: never-written array is the sanitizer's uninitialized-read case
        self._initialized = False
        if device.memcheck is not None:
            device.memcheck.on_alloc(self)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    def free(self) -> None:
        """Release the modeled allocation.  Idempotent — a second call
        never double-decrements the device accounting, but it is reported
        as a double-free when a memcheck tracker is attached."""
        if self.device.memcheck is not None:
            self.device.memcheck.on_free(self, redundant=self._freed)
        if not self._freed:
            self.device.allocated_bytes -= self.data.nbytes
            self._freed = True

    # ------------------------------------------------------- transfers
    def copy_from_host(self, host: np.ndarray, stream: Stream | None = None,
                       *, tag: str = "") -> Event:
        """cudaMemcpyAsync(H2D) analogue: move data now, charge PCIe time
        on the stream.  Returns an event marking completion."""
        if self.device.memcheck is not None:
            self.device.memcheck.on_transfer(self, "h2d")
        np.copyto(self.data, host)
        self._initialized = True
        return self._charge("h2d", host.nbytes, stream, tag, mode="w")

    def copy_to_host(self, host: np.ndarray, stream: Stream | None = None,
                     *, tag: str = "") -> Event:
        if self.device.memcheck is not None:
            self.device.memcheck.on_transfer(self, "d2h")
        np.copyto(host, self.data)
        return self._charge("d2h", host.nbytes, stream, tag, mode="r")

    def fill_from(self, src: np.ndarray) -> None:
        """Overwrite the device copy in place with no PCIe accounting —
        a device-side (kernel) write, e.g. the step loop keeping resident
        fields current, or checkpoint restore re-seeding staged arrays."""
        if self.device.memcheck is not None:
            self.device.memcheck.on_device_write(self)
        np.copyto(self.data, src)
        self._initialized = True

    def _charge(self, kind: str, nbytes: int, stream: Stream | None, tag: str,
                *, mode: str) -> Event:
        dev = self.device
        stream = stream or dev.default_stream
        duration = nbytes / dev.spec.pcie_bandwidth
        op = dev.schedule(f"{kind}:{nbytes}B", kind, stream, duration,
                          bytes_moved=nbytes, tag=tag,
                          accesses=(Access(self.buffer, mode),))
        return Event(op.end, op=op)


class DeviceAllocator:
    """Helper answering 'does this grid fit?' for capacity planning."""

    def __init__(self, device: GPUDevice, n_fields: int = ASUCA_RESIDENT_FIELDS):
        self.device = device
        self.n_fields = n_fields

    def grid_bytes(self, nx: int, ny: int, nz: int, itemsize: int) -> int:
        return nx * ny * nz * itemsize * self.n_fields

    def fits(self, nx: int, ny: int, nz: int, itemsize: int) -> bool:
        return self.grid_bytes(nx, ny, nz, itemsize) <= self.device.spec.mem_capacity


def max_grid_fits(
    capacity: int, nx: int, nz: int, itemsize: int,
    n_fields: int = ASUCA_RESIDENT_FIELDS,
) -> int:
    """Largest ny such that (nx, ny, nz) fits — regenerates the paper's
    320 x 256 x 48 (SP) / 320 x 128 x 48 (DP) observations."""
    per_y = nx * nz * itemsize * n_fields
    return capacity // per_y
