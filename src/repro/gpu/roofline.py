"""The paper's performance model (Eq. 6) and roofline utilities.

    Performance = FLOP / ( FLOP/Fpeak + Byte/Bpeak + alpha )

``alpha`` is "the time taken by other operations except both
floating-point and memory access operations" — kernel-launch latency,
instruction overhead, synchronization.  Fig. 5 plots attainable GFlops
against arithmetic intensity (FLOP/Byte); this module regenerates that
curve and places kernels on it.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import DeviceSpec, Precision, TESLA_S1070

__all__ = [
    "kernel_time",
    "attainable_flops",
    "arithmetic_intensity",
    "ridge_intensity",
    "RooflinePlacement",
    "place_kernel",
    "place_cost_table",
]


def kernel_time(
    flops: float,
    bytes_moved: float,
    spec: DeviceSpec,
    precision: Precision = Precision.SINGLE,
    *,
    alpha: float = 0.0,
    n_points: float | None = None,
    bandwidth_fraction: float = 1.0,
    compute_fraction: float | None = None,
) -> float:
    """Execution time [s] of one kernel under Eq. 6.

    ``bandwidth_fraction`` models coalescing losses (Sec. IV-A-1 array
    ordering); ``n_points`` activates the latency-hiding saturation curve;
    ``compute_fraction`` overrides the device's sustained-compute
    efficiency.
    """
    fpeak = spec.peak_flops(precision) * (
        compute_fraction if compute_fraction is not None else spec.compute_efficiency
    )
    bw = (
        spec.effective_bandwidth(n_points) if n_points is not None else spec.mem_bandwidth
    ) * bandwidth_fraction * spec.bandwidth_efficiency
    # a zero-point launch (e.g. a boundary kernel on a rank with no such
    # boundary) moves no bytes; avoid 0/0 through the saturation curve
    mem_time = bytes_moved / bw if bytes_moved > 0.0 else 0.0
    return flops / fpeak + mem_time + alpha


def attainable_flops(
    intensity: float | np.ndarray,
    spec: DeviceSpec,
    precision: Precision = Precision.SINGLE,
    *,
    alpha_per_byte: float = 0.0,
    compute_fraction: float = 1.0,
) -> np.ndarray:
    """Attainable performance [flop/s] vs arithmetic intensity [flop/B]
    — the curved line of Fig. 5 (with alpha = 0 "because of
    simplification", as the paper notes)."""
    intensity = np.asarray(intensity, dtype=np.float64)
    fpeak = spec.peak_flops(precision) * compute_fraction
    denom = intensity / fpeak + 1.0 / spec.mem_bandwidth + alpha_per_byte
    return intensity / denom


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOP/Byte ratio."""
    return flops / bytes_moved


def ridge_intensity(spec: DeviceSpec, precision: Precision = Precision.SINGLE) -> float:
    """Intensity at which a kernel turns compute bound
    (``Fpeak / Bpeak``); ~6.75 flop/B for the Tesla S1070 in SP."""
    return spec.peak_flops(precision) / spec.mem_bandwidth


@dataclass(frozen=True)
class RooflinePlacement:
    """One kernel's point on the Fig. 5 plot: where it sits on the x axis
    (arithmetic intensity) and the y axis (achieved GFlops), alongside
    the Eq.-6 ceiling at that intensity and the raw device peak."""

    name: str
    intensity: float        #: FLOP/Byte (x axis)
    gflops: float           #: achieved performance (y axis)
    ceiling_gflops: float   #: Eq. 6 attainable performance at this intensity
    peak_gflops: float      #: device peak (the flat compute roof)

    @property
    def ceiling_fraction(self) -> float:
        """Achieved / attainable — how close to its own roofline."""
        return self.gflops / self.ceiling_gflops if self.ceiling_gflops else 0.0

    @property
    def peak_fraction(self) -> float:
        """Achieved / device peak — the paper's %-of-peak figure."""
        return self.gflops / self.peak_gflops if self.peak_gflops else 0.0


def place_kernel(
    name: str,
    flops: float,
    bytes_moved: float,
    time_s: float,
    spec: DeviceSpec = TESLA_S1070,
    precision: Precision = Precision.SINGLE,
) -> RooflinePlacement:
    """Place one kernel on the roofline from its (measured or modeled)
    totals: FLOPs executed, bytes moved, and execution time."""
    intensity = flops / bytes_moved if bytes_moved > 0 else 0.0
    gflops = flops / time_s / 1e9 if time_s > 0 else 0.0
    ceiling = float(attainable_flops(intensity, spec, precision)) / 1e9
    peak = spec.peak_flops(precision) / 1e9
    return RooflinePlacement(name=name, intensity=intensity, gflops=gflops,
                             ceiling_gflops=ceiling, peak_gflops=peak)


def place_cost_table(
    n_points: float,
    *,
    spec: DeviceSpec = TESLA_S1070,
    precision: Precision = Precision.SINGLE,
    kernels=None,
) -> list[RooflinePlacement]:
    """Fig. 5 placements of the cost-table kernels at one launch size —
    the single implementation behind ``repro bench roofline`` and the
    Fig. 5 benchmark.  ``kernels`` is a sequence of ``(label, name)``
    pairs, defaulting to the paper's five
    :data:`~repro.perf.costmodel.ROOFLINE_KERNELS`.
    """
    # late import: costmodel imports gpu.kernel, which imports this module
    from ..perf.costmodel import ASUCA_KERNELS, ROOFLINE_KERNELS

    placements = []
    for label, name in (kernels if kernels is not None else ROOFLINE_KERNELS):
        k = ASUCA_KERNELS[name]
        t = k.duration(n_points, spec, precision)
        placements.append(place_kernel(
            label,
            k.cost.flops(n_points),
            k.cost.bytes_moved(n_points, precision),
            t, spec, precision,
        ))
    return placements
