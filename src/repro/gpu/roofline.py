"""The paper's performance model (Eq. 6) and roofline utilities.

    Performance = FLOP / ( FLOP/Fpeak + Byte/Bpeak + alpha )

``alpha`` is "the time taken by other operations except both
floating-point and memory access operations" — kernel-launch latency,
instruction overhead, synchronization.  Fig. 5 plots attainable GFlops
against arithmetic intensity (FLOP/Byte); this module regenerates that
curve and places kernels on it.
"""
from __future__ import annotations

import numpy as np

from .spec import DeviceSpec, Precision

__all__ = [
    "kernel_time",
    "attainable_flops",
    "arithmetic_intensity",
    "ridge_intensity",
]


def kernel_time(
    flops: float,
    bytes_moved: float,
    spec: DeviceSpec,
    precision: Precision = Precision.SINGLE,
    *,
    alpha: float = 0.0,
    n_points: float | None = None,
    bandwidth_fraction: float = 1.0,
    compute_fraction: float | None = None,
) -> float:
    """Execution time [s] of one kernel under Eq. 6.

    ``bandwidth_fraction`` models coalescing losses (Sec. IV-A-1 array
    ordering); ``n_points`` activates the latency-hiding saturation curve;
    ``compute_fraction`` overrides the device's sustained-compute
    efficiency.
    """
    fpeak = spec.peak_flops(precision) * (
        compute_fraction if compute_fraction is not None else spec.compute_efficiency
    )
    bw = (
        spec.effective_bandwidth(n_points) if n_points is not None else spec.mem_bandwidth
    ) * bandwidth_fraction * spec.bandwidth_efficiency
    # a zero-point launch (e.g. a boundary kernel on a rank with no such
    # boundary) moves no bytes; avoid 0/0 through the saturation curve
    mem_time = bytes_moved / bw if bytes_moved > 0.0 else 0.0
    return flops / fpeak + mem_time + alpha


def attainable_flops(
    intensity: float | np.ndarray,
    spec: DeviceSpec,
    precision: Precision = Precision.SINGLE,
    *,
    alpha_per_byte: float = 0.0,
    compute_fraction: float = 1.0,
) -> np.ndarray:
    """Attainable performance [flop/s] vs arithmetic intensity [flop/B]
    — the curved line of Fig. 5 (with alpha = 0 "because of
    simplification", as the paper notes)."""
    intensity = np.asarray(intensity, dtype=np.float64)
    fpeak = spec.peak_flops(precision) * compute_fraction
    denom = intensity / fpeak + 1.0 / spec.mem_bandwidth + alpha_per_byte
    return intensity / denom


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """FLOP/Byte ratio."""
    return flops / bytes_moved


def ridge_intensity(spec: DeviceSpec, precision: Precision = Precision.SINGLE) -> float:
    """Intensity at which a kernel turns compute bound
    (``Fpeak / Bpeak``); ~6.75 flop/B for the Tesla S1070 in SP."""
    return spec.peak_flops(precision) / spec.mem_bandwidth
