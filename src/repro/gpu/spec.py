"""Hardware specifications of the devices the paper benchmarks.

The numbers are the paper's own (Sec. III): Tesla S1070 GPUs with
691.2 GFlops single / 86.4 GFlops double peak and 102.4 GB/s device-memory
bandwidth, 30 SMs x 8 SPs at 1.44 GHz with 16 KB shared memory per SM and
4 GB of device memory; nodes attach two GPUs via PCI-Express Gen1 x8; the
TSUBAME 2.0 projection (Sec. VII) uses Fermi-class GPUs.  The CPU baseline
is one 2.4 GHz AMD Opteron core running the original Fortran.
"""
from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "Precision",
    "DeviceSpec",
    "TESLA_S1070",
    "FERMI_M2050",
    "OPTERON_CORE",
    "DEVICE_SPECS",
    "device_spec",
    "GIB",
]

GIB = 1024 ** 3


class Precision(Enum):
    """Floating-point precision of a run (paper Fig. 4 compares both)."""

    SINGLE = 4
    DOUBLE = 8

    @property
    def itemsize(self) -> int:
        return self.value


@dataclass(frozen=True)
class DeviceSpec:
    """Performance-relevant description of one device."""

    name: str
    peak_flops_sp: float          #: [flop/s]
    peak_flops_dp: float
    mem_bandwidth: float          #: device/main memory bandwidth [B/s]
    mem_capacity: int             #: [B]
    pcie_bandwidth: float         #: host link bandwidth, one direction [B/s]
    sm_count: int = 0             #: streaming multiprocessors (0 for CPUs)
    sp_per_sm: int = 0
    clock_hz: float = 0.0
    shared_mem_per_sm: int = 0    #: [B]
    is_gpu: bool = True
    #: sustained fraction of peak flops actually achievable by real code
    #: (instruction mix, dual-issue limits); calibrated in perf.costmodel
    compute_efficiency: float = 1.0
    #: sustained fraction of peak memory bandwidth achieved by real stencil
    #: kernels (GT200-era codes streamed at ~60-75% of peak)
    bandwidth_efficiency: float = 1.0
    #: grid points needed to reach ~half of peak memory throughput
    #: (latency-hiding saturation; shapes the rising part of Fig. 4)
    saturation_points: float = 150_000.0

    def peak_flops(self, precision: Precision) -> float:
        if precision is Precision.SINGLE:
            return self.peak_flops_sp
        return self.peak_flops_dp

    def effective_bandwidth(self, n_points: float) -> float:
        """Bandwidth after the latency-hiding saturation curve
        ``B_eff = B * n / (n + n_sat)``; ~B for large grids."""
        if not self.is_gpu or self.saturation_points <= 0:
            return self.mem_bandwidth
        return self.mem_bandwidth * n_points / (n_points + self.saturation_points)

    @property
    def total_sp(self) -> int:
        return self.sm_count * self.sp_per_sm


#: the paper's GPU (one of the four in a Tesla S1070 box)
TESLA_S1070 = DeviceSpec(
    name="NVIDIA Tesla S1070 (GT200)",
    peak_flops_sp=691.2e9,
    peak_flops_dp=86.4e9,
    mem_bandwidth=102.4e9,
    mem_capacity=4 * GIB,
    pcie_bandwidth=1.5e9,       # PCIe Gen1 x8, effective
    sm_count=30,
    sp_per_sm=8,
    clock_hz=1.44e9,
    shared_mem_per_sm=16 * 1024,
    compute_efficiency=0.36,
    bandwidth_efficiency=0.54,
    saturation_points=150_000.0,
)

#: TSUBAME 2.0 GPU for the Sec. VII projection ("assuming a Fermi GPU
#: provides almost the same computational performance and device memory
#: bandwidth as Tesla S1070" — we carry the real Fermi numbers and let the
#: projection use either assumption)
FERMI_M2050 = DeviceSpec(
    name="NVIDIA Tesla M2050 (Fermi)",
    peak_flops_sp=1030.0e9,
    peak_flops_dp=515.0e9,
    mem_bandwidth=148.0e9,
    mem_capacity=3 * GIB,
    pcie_bandwidth=6.0e9,       # PCIe Gen2 x16, effective
    sm_count=14,
    sp_per_sm=32,
    clock_hz=1.15e9,
    shared_mem_per_sm=48 * 1024,
    compute_efficiency=0.36,
    bandwidth_efficiency=0.54,
    saturation_points=120_000.0,
)

#: short names accepted wherever a device spec is chosen by string
#: (``repro serve --device ...``, fleet construction)
DEVICE_SPECS: dict[str, DeviceSpec] = {}


def device_spec(name: "str | DeviceSpec") -> DeviceSpec:
    """Look up a :class:`DeviceSpec` by short name ('s1070', 'm2050',
    'opteron'), case-insensitively; passes specs through unchanged."""
    if isinstance(name, DeviceSpec):
        return name
    try:
        return DEVICE_SPECS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; choose one of "
            f"{', '.join(sorted(DEVICE_SPECS))}") from None


#: one 2.4 GHz Opteron core running the original Fortran (paper Fig. 4
#: baseline).  ``compute_efficiency`` is calibrated so the sustained
#: double-precision throughput of the production code is ~0.53 GFlops
#: (= 44.3 / 83.4, the paper's measured ratio).
OPTERON_CORE = DeviceSpec(
    name="AMD Opteron 2.4 GHz core",
    peak_flops_sp=9.6e9,
    peak_flops_dp=4.8e9,
    mem_bandwidth=6.4e9,
    mem_capacity=32 * GIB,
    pcie_bandwidth=6.4e9,
    is_gpu=False,
    compute_efficiency=0.11,
    saturation_points=0.0,
)

DEVICE_SPECS.update({
    "s1070": TESLA_S1070,
    "m2050": FERMI_M2050,
    "opteron": OPTERON_CORE,
})
