"""The ASUCA kernels as *launchable* objects: the cost-table entries bound
to the real NumPy functions they model.

This is the glue the paper's Fig. 5 rests on: each named kernel has (a) an
analytic cost (flops/bytes per point, calibrated in
:mod:`repro.perf.costmodel`) and (b) an executable implementation.  With
both in one object we can

* launch the real computation on the virtual device and get modeled Tesla
  timings (`Kernel.launch`), and
* cross-validate the model: the *measured wall-time ranking* of the NumPy
  kernels must agree with the modeled memory-traffic ranking, because
  both the host CPU and the modeled GPU are bandwidth-bound on these
  stencils (`measure_kernel_times`).
"""
from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from ..core import advection as adv
from ..core.grid import Grid
from ..core.helmholtz import HelmholtzOperator
from ..core.pressure import eos_pressure, linearization_coefficient
from ..core.reference import ReferenceState
from ..perf.costmodel import ASUCA_KERNELS
from ..physics.ice import IceConfig, cold_rain_step
from ..physics.kessler import KesslerConfig, kessler_step
from .kernel import Kernel

__all__ = [
    "bind_dycore_kernels",
    "bind_accounting_kernels",
    "accounting_args",
    "measure_kernel_times",
]


def bind_dycore_kernels(grid: Grid, ref: ReferenceState) -> dict[str, Kernel]:
    """Return cost-table kernels with ``fn`` bound to real implementations
    operating on the given grid.  Each ``fn`` takes the arrays it needs
    and returns the computed field — launching one through
    :meth:`~repro.gpu.kernel.Kernel.launch` therefore does the real work
    *and* charges modeled device time.
    """
    jac3 = grid.jac[:, :, None]
    rhotheta_ref = ref.rhotheta_c * jac3
    p_ref = eos_pressure(rhotheta_ref, grid)
    cp_lin = linearization_coefficient(p_ref, rhotheta_ref)
    helm = HelmholtzOperator(grid, ref.theta_wf, cp_lin, dtau=0.5, beta=0.55)

    def coord_transform(rho_hat: np.ndarray) -> np.ndarray:
        # the paper's kernel (1): rho = J * rho^ (1 flop, 2 reads, 1 write)
        return rho_hat / jac3

    def pgf_x(pp: np.ndarray) -> np.ndarray:
        out = np.zeros(grid.shape_u, dtype=pp.dtype)
        out[1:-1] = -grid.jac_u[1:-1, :, None] * (pp[1:] - pp[:-1]) / grid.dx
        return out

    def advection(phi, fx, fy, fz):
        return adv.advect_scalar(phi, fx, fy, fz, grid)

    def helmholtz(rhs):
        return helm.solve(rhs)

    def eos(rhotheta_hat):
        return eos_pressure(rhotheta_hat, grid)

    bindings: dict[str, Callable] = {
        "coord_transform": coord_transform,
        "pgf_x": pgf_x,
        "advection": advection,
        "helmholtz": helmholtz,
        "eos_pressure": eos,
    }
    out: dict[str, Kernel] = {}
    for name, fn in bindings.items():
        out[name] = dataclasses.replace(ASUCA_KERNELS[name], fn=fn)
    return out


def bind_accounting_kernels(grid: Grid, ref: ReferenceState) -> dict[str, Kernel]:
    """Every cost-table kernel bound to a reference implementation, for
    measured FLOP/byte accounting (the counting hook's kernel set).

    :func:`bind_dycore_kernels` covers the five Fig. 5 kernels; this
    extends the set to the whole :data:`~repro.perf.costmodel.ASUCA_KERNELS`
    table so a counted run can place *every* on-path kernel on the
    roofline from measured counts.  The implementations follow the
    paper's Sec. IV kernel descriptions (e.g. the pressure-gradient
    kernels carry the terrain-following metric-correction term, the
    boundary kernel is a dense Davies-relaxation masked update), and they
    multiply by precomputed inverse spacings the way the CUDA kernels do
    rather than dividing per point.
    """
    out = dict(bind_dycore_kernels(grid, ref))

    jac3 = grid.jac[:, :, None]
    inv_jac3 = 1.0 / jac3
    inv_dx, inv_dy = 1.0 / grid.dx, 1.0 / grid.dy
    inv_dz3 = (1.0 / grid.dz_c)[None, None, :]
    # spacing between neighboring cell centers (interior faces)
    inv_dzf = (1.0 / grid.dz_f[1:-1])[None, None, :]
    jac_u3 = grid.jac_u[:, :, None]
    jac_v3 = grid.jac_v[:, :, None]
    dzdx_u = grid.dzdx_at_u()
    dzdy_v = grid.dzdy_at_v()
    rhotheta_ref = ref.rhotheta_c * jac3
    p_ref = eos_pressure(rhotheta_ref, grid)
    cp_lin = linearization_coefficient(p_ref, rhotheta_ref)
    theta_w = ref.theta_wf
    # acoustic substep length and Rayleigh-damping rate of the explicit
    # updates (representative constants; the counts are data-independent)
    dtau, rdamp = 0.5, 1.0e-3
    # Davies relaxation mask: nonzero on a halo-wide rim, zero inside —
    # the kernel sweeps the full field exactly like the GPU launch does
    wmask = np.zeros((grid.nxh, grid.nyh, 1))
    rim = 2 * grid.halo
    ramp = np.linspace(1.0, 0.0, rim)
    for i, w in enumerate(ramp):
        wmask[i, :, 0] = np.maximum(wmask[i, :, 0], w)
        wmask[-1 - i, :, 0] = np.maximum(wmask[-1 - i, :, 0], w)
        wmask[:, i, 0] = np.maximum(wmask[:, i, 0], w)
        wmask[:, -1 - i, 0] = np.maximum(wmask[:, -1 - i, 0], w)

    def pgf_metric(rt: np.ndarray) -> np.ndarray:
        # pressure perturbation from the prognostic via the linearized EOS
        # (2 flops/pt), shared by both horizontal PGF kernels
        return cp_lin * (rt - rhotheta_ref)

    def pgf_x(rt: np.ndarray) -> np.ndarray:
        pp = pgf_metric(rt)
        dpdx = (pp[1:] - pp[:-1]) * inv_dx                    # u faces
        dpdz = (pp[:, :, 1:] - pp[:, :, :-1]) * inv_dzf       # c levels
        dpdz_u = 0.5 * (dpdz[1:] + dpdz[:-1])
        grad = dpdx.copy()
        # terrain-following metric correction: + dz/dx * dp/dz
        grad[:, :, :-1] += dzdx_u[1:-1, :, :-1] * dpdz_u
        out_u = np.zeros(grid.shape_u, dtype=np.asarray(rt).dtype)
        out_u[1:-1] = -jac_u3[1:-1] * grad
        return out_u

    def pgf_y(rt: np.ndarray) -> np.ndarray:
        pp = pgf_metric(rt)
        dpdy = (pp[:, 1:] - pp[:, :-1]) * inv_dy
        dpdz = (pp[:, :, 1:] - pp[:, :, :-1]) * inv_dzf
        dpdz_v = 0.5 * (dpdz[:, 1:] + dpdz[:, :-1])
        grad = dpdy.copy()
        grad[:, :, :-1] += dzdy_v[:, 1:-1, :-1] * dpdz_v
        out_v = np.zeros(grid.shape_v, dtype=np.asarray(rt).dtype)
        out_v[:, 1:-1] = -jac_v3[:, 1:-1] * grad
        return out_v

    def momentum_update(rhou, pgf_t, adv_t):
        # explicit acoustic momentum update with Rayleigh damping
        return rhou + dtau * (pgf_t + adv_t - rdamp * rhou)

    def continuity(rhou, rhov, rhow):
        div = ((rhou[1:] - rhou[:-1]) * inv_dx
               + (rhov[:, 1:] - rhov[:, :-1]) * inv_dy
               + (rhow[:, :, 1:] - rhow[:, :, :-1]) * inv_dz3)
        return -div * inv_jac3

    def theta_update(rt, fx, fy, fz):
        div = ((fx[1:] - fx[:-1]) * inv_dx
               + (fy[:, 1:] - fy[:, :-1]) * inv_dy)
        divw = (fz[:, :, 1:] * theta_w[:, :, 1:]
                - fz[:, :, :-1] * theta_w[:, :, :-1]) * inv_dz3
        return rt - dtau * (div + divw)

    def vertical_flux(phi, rhow):
        wc = 0.5 * (rhow[:, :, 1:] + rhow[:, :, :-1])
        flux = wc * phi
        out_c = np.zeros_like(np.asarray(phi))
        out_c[:, :, 1:-1] = (flux[:, :, 2:] - flux[:, :, :-2]) * inv_dz3[:, :, 1:-1]
        return out_c

    f0 = 1.0e-4  # f-plane Coriolis parameter

    def coriolis(rhou, rhov):
        vc = 0.5 * (rhov[:, 1:] + rhov[:, :-1])       # v at cell centers
        uc = 0.5 * (rhou[1:] + rhou[:-1])             # u at cell centers
        du = f0 * vc
        dv = -f0 * uc
        return du, dv

    def array_copy(src):
        return np.positive(src)                        # 0 flops, 1r + 1w

    def boundary_ops(phi):
        # dense masked Davies relaxation toward the reference (the mask is
        # zero in the interior; the launch still sweeps the whole field)
        return phi - wmask * (phi - ref.rhotheta_c)

    def warm_rain(rho, rt):
        st = _physics_state(grid, rho, rt, ice=False)
        kessler_step(st, ref, 5.0, KesslerConfig(sedimentation=True))
        return st.get("rhotheta")

    def cold_rain(rho, rt):
        st = _physics_state(grid, rho, rt, ice=True)
        cold_rain_step(st, ref, 5.0, IceConfig())
        return st.get("rhotheta")

    bindings: dict[str, Callable] = {
        "pgf_x": pgf_x,
        "pgf_y": pgf_y,
        "momentum_update": momentum_update,
        "continuity": continuity,
        "theta_update": theta_update,
        "vertical_flux": vertical_flux,
        "coriolis": coriolis,
        "array_copy": array_copy,
        "boundary_ops": boundary_ops,
        "warm_rain": warm_rain,
        "cold_rain": cold_rain,
    }
    for name, fn in bindings.items():
        out[name] = dataclasses.replace(ASUCA_KERNELS[name], fn=fn)
    return out


def _physics_state(grid: Grid, rho: np.ndarray, rt: np.ndarray, *, ice: bool):
    """A throwaway supersaturated state for measuring the microphysics
    kernels: all condensation/evaporation/autoconversion branches are
    active (the production intent of the kernel), and the input arrays
    are copied so measurement never mutates the live run state."""
    from ..core.state import State

    rho = rho.copy()
    q = {"qv": 0.02 * rho, "qc": 2e-3 * rho, "qr": 1e-3 * rho}
    if ice:
        q.update({"qi": 5e-4 * rho, "qs": 5e-4 * rho})
    return State(grid=grid, rho=rho, rhou=grid.zeros_u(), rhov=grid.zeros_v(),
                 rhow=grid.zeros_w(), rhotheta=rt.copy(), q=q)


def accounting_args(grid: Grid, ref: ReferenceState, state) -> dict[str, tuple]:
    """Per-kernel ``(args, points)`` for one measurement pass of the
    accounting kernels: the argument tuple each bound ``fn`` takes —
    real prognostic fields of the live ``state`` wherever the kernel
    reads one — and the point count the measured totals normalize by
    (processed elements; interior cells for the column-wise physics)."""
    rho = state.get("rho")
    rhou = state.get("rhou")
    rhov = state.get("rhov")
    rhow = state.get("rhow")
    rt = state.get("rhotheta")
    n_c = float(rho.size)
    zeros_u = np.zeros_like(np.asarray(rhou))
    return {
        "coord_transform": ((rho,), n_c),
        "pgf_x": ((rt,), float(rhou.size)),
        "pgf_y": ((rt,), float(rhov.size)),
        "advection": ((rt, rhou, rhov, rhow), n_c),
        "helmholtz": ((rhow[:, :, 1:-1],), float(rhow[:, :, 1:-1].size)),
        "eos_pressure": ((rt,), n_c),
        "momentum_update": ((rhou, zeros_u, zeros_u), float(rhou.size)),
        "continuity": ((rhou, rhov, rhow), n_c),
        "theta_update": ((rt, rhou, rhov, rhow), n_c),
        "vertical_flux": ((rho, rhow), n_c),
        "coriolis": ((rhou, rhov), n_c),
        "array_copy": ((rt,), n_c),
        "boundary_ops": ((rt,), n_c),
        "warm_rain": ((rho, rt), float(grid.n_interior_cells)),
        "cold_rain": ((rho, rt), float(grid.n_interior_cells)),
    }


def measure_kernel_times(
    grid: Grid, ref: ReferenceState, *, repeats: int = 3
) -> dict[str, float]:
    """Best-of-N wall times [s] of the bound kernels on this machine."""
    kernels = bind_dycore_kernels(grid, ref)
    rng = np.random.default_rng(0)
    rho_hat = ref.rho_c * grid.jac[:, :, None]
    pp = rng.normal(scale=10.0, size=grid.shape_c)
    phi = 300.0 + rng.normal(size=grid.shape_c)
    fx = rng.normal(size=grid.shape_u)
    fy = rng.normal(size=grid.shape_v)
    fz = rng.normal(size=grid.shape_w)
    fz[..., 0] = fz[..., -1] = 0.0
    rhs = rng.normal(size=(grid.nxh, grid.nyh, grid.nz - 1))
    rhotheta_hat = ref.rhotheta_c * grid.jac[:, :, None]

    args = {
        "coord_transform": (rho_hat,),
        "pgf_x": (pp,),
        "advection": (phi, fx, fy, fz),
        "helmholtz": (rhs,),
        "eos_pressure": (rhotheta_hat,),
    }
    times: dict[str, float] = {}
    for name, k in kernels.items():
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            k.fn(*args[name])
            best = min(best, time.perf_counter() - t0)
        times[name] = best
    return times
