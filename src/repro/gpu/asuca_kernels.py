"""The ASUCA kernels as *launchable* objects: the cost-table entries bound
to the real NumPy functions they model.

This is the glue the paper's Fig. 5 rests on: each named kernel has (a) an
analytic cost (flops/bytes per point, calibrated in
:mod:`repro.perf.costmodel`) and (b) an executable implementation.  With
both in one object we can

* launch the real computation on the virtual device and get modeled Tesla
  timings (`Kernel.launch`), and
* cross-validate the model: the *measured wall-time ranking* of the NumPy
  kernels must agree with the modeled memory-traffic ranking, because
  both the host CPU and the modeled GPU are bandwidth-bound on these
  stencils (`measure_kernel_times`).
"""
from __future__ import annotations

import dataclasses
import time
from typing import Callable

import numpy as np

from ..core import advection as adv
from ..core.grid import Grid
from ..core.helmholtz import HelmholtzOperator
from ..core.pressure import eos_pressure, linearization_coefficient
from ..core.reference import ReferenceState
from ..perf.costmodel import ASUCA_KERNELS
from .kernel import Kernel

__all__ = ["bind_dycore_kernels", "measure_kernel_times"]


def bind_dycore_kernels(grid: Grid, ref: ReferenceState) -> dict[str, Kernel]:
    """Return cost-table kernels with ``fn`` bound to real implementations
    operating on the given grid.  Each ``fn`` takes the arrays it needs
    and returns the computed field — launching one through
    :meth:`~repro.gpu.kernel.Kernel.launch` therefore does the real work
    *and* charges modeled device time.
    """
    jac3 = grid.jac[:, :, None]
    rhotheta_ref = ref.rhotheta_c * jac3
    p_ref = eos_pressure(rhotheta_ref, grid)
    cp_lin = linearization_coefficient(p_ref, rhotheta_ref)
    helm = HelmholtzOperator(grid, ref.theta_wf, cp_lin, dtau=0.5, beta=0.55)

    def coord_transform(rho_hat: np.ndarray) -> np.ndarray:
        # the paper's kernel (1): rho = J * rho^ (1 flop, 2 reads, 1 write)
        return rho_hat / jac3

    def pgf_x(pp: np.ndarray) -> np.ndarray:
        out = np.zeros(grid.shape_u, dtype=pp.dtype)
        out[1:-1] = -grid.jac_u[1:-1, :, None] * (pp[1:] - pp[:-1]) / grid.dx
        return out

    def advection(phi, fx, fy, fz):
        return adv.advect_scalar(phi, fx, fy, fz, grid)

    def helmholtz(rhs):
        return helm.solve(rhs)

    def eos(rhotheta_hat):
        return eos_pressure(rhotheta_hat, grid)

    bindings: dict[str, Callable] = {
        "coord_transform": coord_transform,
        "pgf_x": pgf_x,
        "advection": advection,
        "helmholtz": helmholtz,
        "eos_pressure": eos,
    }
    out: dict[str, Kernel] = {}
    for name, fn in bindings.items():
        out[name] = dataclasses.replace(ASUCA_KERNELS[name], fn=fn)
    return out


def measure_kernel_times(
    grid: Grid, ref: ReferenceState, *, repeats: int = 3
) -> dict[str, float]:
    """Best-of-N wall times [s] of the bound kernels on this machine."""
    kernels = bind_dycore_kernels(grid, ref)
    rng = np.random.default_rng(0)
    rho_hat = ref.rho_c * grid.jac[:, :, None]
    pp = rng.normal(scale=10.0, size=grid.shape_c)
    phi = 300.0 + rng.normal(size=grid.shape_c)
    fx = rng.normal(size=grid.shape_u)
    fy = rng.normal(size=grid.shape_v)
    fz = rng.normal(size=grid.shape_w)
    fz[..., 0] = fz[..., -1] = 0.0
    rhs = rng.normal(size=(grid.nxh, grid.nyh, grid.nz - 1))
    rhotheta_hat = ref.rhotheta_c * grid.jac[:, :, None]

    args = {
        "coord_transform": (rho_hat,),
        "pgf_x": (pp,),
        "advection": (phi, fx, fy, fz),
        "helmholtz": (rhs,),
        "eos_pressure": (rhotheta_hat,),
    }
    times: dict[str, float] = {}
    for name, k in kernels.items():
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            k.fn(*args[name])
            best = min(best, time.perf_counter() - t0)
        times[name] = best
    return times
