"""Shared-memory tiling model for stencil kernels (paper Sec. IV-A-2,
Figs. 2-3).

The advection kernel loads a ``(64+3) x (4+3)`` tile of the current j
slice into the 16 KB shared memory of each SM and keeps the three
y-neighbors of each thread in registers while marching along j
(Micikevicius-style 3-D stencil).  The effect on the cost model is a
reduction of global-memory traffic: without tiling every one of the
``S``-point stencil reads hits global memory; with tiling each element of
a slice is loaded once (plus the tile halo).
"""
from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TileSpec", "ASUCA_ADVECTION_TILE", "global_reads_per_point"]


@dataclass(frozen=True)
class TileSpec:
    """One thread block's shared-memory tile for a marching stencil."""

    block_x: int = 64
    block_z: int = 4
    halo_x: int = 3           #: 4-point stencil -> 3 halo cells per slice
    halo_z: int = 3
    march_registers: int = 3  #: y-neighbors held in registers (Fig. 3)

    @property
    def tile_elements(self) -> int:
        """(64+3) x (4+3) elements staged in shared memory per slice."""
        return (self.block_x + self.halo_x) * (self.block_z + self.halo_z)

    @property
    def interior_elements(self) -> int:
        return self.block_x * self.block_z

    def shared_bytes(self, itemsize: int) -> int:
        return self.tile_elements * itemsize

    def fits(self, shared_mem_per_sm: int, itemsize: int, blocks_per_sm: int = 1) -> bool:
        """Does the tile fit in the SM's shared memory?  The paper's
        (64+3)x(4+3) single-precision tile is 1876 B -- comfortably inside
        the 16 KB of a GT200 SM even with several resident blocks."""
        return blocks_per_sm * self.shared_bytes(itemsize) <= shared_mem_per_sm

    @property
    def load_amplification(self) -> float:
        """Global loads per interior point with tiling: each slice element
        loaded once, amortized over the interior; register marching makes
        the y-direction free."""
        return self.tile_elements / self.interior_elements


#: the paper's advection tile
ASUCA_ADVECTION_TILE = TileSpec()


def global_reads_per_point(
    stencil_points: int,
    tile: TileSpec | None = ASUCA_ADVECTION_TILE,
) -> float:
    """Effective global reads per output point for an S-point stencil.

    ``None`` tile = naive kernel (every stencil read goes to global
    memory).  With tiling, reads drop to the tile amplification factor
    (~1.47 for the paper's tile) regardless of S -- this is the main
    single-GPU optimization the paper credits for its performance.
    """
    if tile is None:
        return float(stencil_points)
    return min(float(stencil_points), tile.load_amplification)
