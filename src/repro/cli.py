"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      integrate a workload (mountain-wave / warm-bubble / real-case),
             optionally decomposed and/or with a history file; ``--trace``
             writes a Chrome/Perfetto trace, ``--metrics`` prints the run
             metrics, ``--profile`` prints the phase breakdown
``trace``    replay a workload under tracing and write the trace artifacts
             (Chrome Trace JSON + optional JSONL) with a text summary
``bench``    print one of the paper-reproduction tables (fig4, roofline,
             fig9, fig10, fig11, table1, projection)
``info``     device specs and calibration anchors

The CLI is a thin veneer over the public API; everything it does is shown
in examples/ as library code.
"""
from __future__ import annotations

import argparse
import contextlib
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="SC'10 ASUCA GPU-paper reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="integrate a workload")
    run.add_argument("workload",
                     choices=["mountain-wave", "warm-bubble", "real-case"])
    run.add_argument("--nx", type=int, default=None)
    run.add_argument("--ny", type=int, default=None)
    run.add_argument("--nz", type=int, default=None)
    run.add_argument("--steps", type=int, default=50)
    run.add_argument("--dt", type=float, default=None)
    run.add_argument("--ranks", type=str, default=None, metavar="PXxPY",
                     help="decompose, e.g. 2x3 (verifies against single-domain)")
    run.add_argument("--history", type=str, default=None,
                     help="write snapshots to this .npz")
    run.add_argument("--history-every", type=float, default=60.0,
                     help="seconds of model time between snapshots")
    run.add_argument("--ice", action="store_true",
                     help="enable the cold-rain (ice) extension")
    run.add_argument("--trace", type=str, default=None, metavar="OUT.json",
                     help="record the run and write a Chrome Trace Format "
                          "JSON (open in chrome://tracing or Perfetto)")
    run.add_argument("--trace-jsonl", type=str, default=None,
                     metavar="OUT.jsonl",
                     help="also write the trace as a JSONL event stream")
    run.add_argument("--metrics", action="store_true",
                     help="print the run metrics registry at the end")
    run.add_argument("--profile", action="store_true",
                     help="activate the phase profiler and print its "
                          "report after integration")
    run.add_argument("--summary", action="store_true",
                     help="print the trace summary (implies a session)")

    tr = sub.add_parser(
        "trace", help="replay a workload under tracing (run + artifacts)")
    tr.add_argument("workload",
                    choices=["mountain-wave", "warm-bubble", "real-case"])
    tr.add_argument("-o", "--output", default="trace.json",
                    help="Chrome Trace Format output path")
    tr.add_argument("--jsonl", type=str, default=None,
                    help="also write a JSONL event stream here")
    tr.add_argument("--nx", type=int, default=None)
    tr.add_argument("--ny", type=int, default=None)
    tr.add_argument("--nz", type=int, default=None)
    tr.add_argument("--steps", type=int, default=5)
    tr.add_argument("--dt", type=float, default=None)
    tr.add_argument("--ranks", type=str, default=None, metavar="PXxPY",
                    help="decompose, e.g. 2x2 (one device track per rank)")
    tr.add_argument("--ice", action="store_true")

    bench = sub.add_parser("bench", help="print a paper table")
    bench.add_argument("table",
                       choices=["fig4", "roofline", "fig9", "fig10", "fig11",
                                "table1", "projection"])

    sub.add_parser("info", help="device specs and calibration anchors")

    rep = sub.add_parser("reproduce",
                         help="rebuild EXPERIMENTS.md from benchmark reports")
    rep.add_argument("-o", "--output", default="EXPERIMENTS.md")
    rep.add_argument("--reports", default="benchmarks/reports")
    return p


# --------------------------------------------------------------------- run
def _make_case(args):
    from .workloads.mountain_wave import make_mountain_wave_case
    from .workloads.real_case import make_real_case
    from .workloads.warm_bubble import make_warm_bubble_case

    kw = {}
    for name in ("nx", "ny", "nz", "dt"):
        v = getattr(args, name)
        if v is not None:
            kw[name] = v
    if args.workload == "mountain-wave":
        return make_mountain_wave_case(**kw)
    if args.workload == "warm-bubble":
        return make_warm_bubble_case(**kw)
    return make_real_case(**kw)


def _cmd_run(args) -> int:
    from .dist.multigpu import MultiGpuAsuca
    from .history import HistoryWriter

    case = _make_case(args)
    model, state, grid = case.model, case.state, case.grid
    if args.ice:
        model.config.ice_enabled = True
        model.config.physics_enabled = True
    print(f"{args.workload}: {grid.nx}x{grid.ny}x{grid.nz}, "
          f"dt={model.config.dynamics.dt}s, {args.steps} steps")

    trace_path = getattr(args, "trace", None)
    jsonl_path = getattr(args, "trace_jsonl", None)
    want_metrics = getattr(args, "metrics", False)
    want_summary = getattr(args, "summary", False)
    session = None
    if trace_path or jsonl_path or want_metrics or want_summary:
        from .obs import TraceSession

        session = TraceSession(name=args.workload)
    timer = None
    if getattr(args, "profile", False):
        from .profiling import PhaseTimer

        timer = PhaseTimer()

    hist = None
    if args.history:
        hist = HistoryWriter(grid, args.history,
                             every_seconds=args.history_every)
        hist.save(state)

    machine = runner = None
    with contextlib.ExitStack() as stack:
        if session is not None:
            from .obs import use_session

            stack.enter_context(use_session(session))
        if timer is not None:
            from .profiling import use_timer

            stack.enter_context(use_timer(timer))

        if args.ranks:
            px, py = (int(x) for x in args.ranks.lower().split("x"))
            machine = MultiGpuAsuca(grid, case.ref, px, py, model.config,
                                    relaxation=getattr(model, "relaxation", None))
            if session is not None:
                machine.attach_devices()
            rank_states = machine.scatter_state(state)
            machine.exchange_all(rank_states, None)
            for i in range(args.steps):
                rank_states = machine.step(rank_states)
                if hist and (i + 1) % 10 == 0:
                    hist.maybe_save(machine.gather_state(rank_states))
            state = machine.gather_state(rank_states)
            from .core.boundary import fill_halos_state

            fill_halos_state(state)
            stats = machine.comm.stats
            print(f"ranks {px}x{py}: {stats.messages} messages, "
                  f"{stats.bytes_total / 1e6:.1f} MB halo traffic")
        elif session is not None:
            # traced single-domain runs go through the virtual GPU so the
            # trace carries kernel/copy tracks (same arithmetic, Fig. 1 flow)
            from .gpu.runtime import GpuAsucaRunner

            runner = GpuAsucaRunner(model)
            runner.upload(state)
            for i in range(args.steps):
                state = runner.step(state)
                if hist:
                    hist.maybe_save(state)
            runner.download(state)
        else:
            for i in range(args.steps):
                state = model.step(state)
                if hist:
                    hist.maybe_save(state)

    if session is not None:
        if machine is not None:
            for r, device in enumerate(machine.devices or []):
                session.collect_device(device, rank=r)
            session.collect_comm(machine.comm)
        elif runner is not None:
            session.collect_device(runner.device, rank=0)
        session.finalize(steps=args.steps)
        from .obs import summary_text, write_chrome_trace, write_jsonl

        if trace_path:
            print(f"trace: {write_chrome_trace(session, trace_path)}")
        if jsonl_path:
            print(f"trace events: {write_jsonl(session, jsonl_path)}")
        if want_summary:
            print(summary_text(session))
        elif want_metrics:
            print(session.metrics.report())
    if timer is not None:
        print(timer.report())

    d = model.diagnostics(state)
    print(f"t={d.time:.0f}s  max|w|={d.max_w:.3f} m/s  "
          f"max wind={d.max_wind:.2f} m/s  "
          f"theta {d.min_theta:.1f}..{d.max_theta:.1f} K")
    if state.precip_accum is not None and float(np.max(state.precip_accum)) > 0:
        print(f"max accumulated precipitation: "
              f"{float(np.max(state.precip_accum)):.3f} mm")
    if hist:
        path = hist.close()
        print(f"history: {hist.n_snapshots} snapshots -> {path}")
    return 0


# -------------------------------------------------------------------- trace
def _cmd_trace(args) -> int:
    """Replay a workload under tracing: a ``run`` with a session always
    active, trace artifacts written, and the summary printed."""
    run_args = argparse.Namespace(
        workload=args.workload, nx=args.nx, ny=args.ny, nz=args.nz,
        steps=args.steps, dt=args.dt, ranks=args.ranks, ice=args.ice,
        history=None, history_every=60.0,
        trace=args.output, trace_jsonl=args.jsonl,
        metrics=True, profile=False, summary=True,
    )
    return _cmd_run(run_args)


# -------------------------------------------------------------------- bench
def _cmd_bench(args) -> int:
    from .gpu.spec import Precision, TESLA_S1070
    from .perf.costmodel import (
        ASUCA_KERNELS,
        ROOFLINE_KERNELS,
        asuca_step_cost,
        cpu_step_time,
    )
    from .perf.report import format_table

    if args.table == "fig4":
        rows = []
        for ny in (32, 64, 96, 128, 160, 192, 224, 256):
            sp = asuca_step_cost(320, ny, 48)
            dp = (asuca_step_cost(320, ny, 48, precision=Precision.DOUBLE)
                  if ny <= 128 else None)
            rows.append([320 * ny * 48, sp.gflops,
                         dp.gflops if dp else float("nan"),
                         sp.total_flops / cpu_step_time(320, ny, 48) / 1e9])
        print(format_table(
            ["grid pts", "GPU SP", "GPU DP", "CPU DP"], rows,
            title="Fig. 4 — single-GPU GFlops vs grid size"))
    elif args.table == "roofline":
        n = 320 * 256 * 48
        rows = []
        for label, name in ROOFLINE_KERNELS:
            k = ASUCA_KERNELS[name]
            t = k.duration(n, TESLA_S1070, Precision.SINGLE)
            rows.append([label, k.cost.intensity(Precision.SINGLE),
                         k.cost.flops(n) / t / 1e9])
        print(format_table(["kernel", "AI [flop/B]", "GFlops"], rows,
                           title="Fig. 5 — kernel roofline (SP)"))
    elif args.table == "fig9":
        from .dist.overlap import OverlapModel

        rows = [
            [vb.name, vb.whole * 1e6, vb.inner * 1e6, vb.boundary_y * 1e6,
             vb.boundary_x * 1e6, vb.communication * 1e6]
            for vb in OverlapModel().breakdown_rows()
        ]
        print(format_table(
            ["variable", "whole [us]", "inner", "bnd-y", "bnd-x", "comm"],
            rows, title="Fig. 9 — short-step breakdown at 528 GPUs"))
    elif args.table == "fig10":
        from .perf.scaling import weak_scaling_efficiency, weak_scaling_sweep

        pts = weak_scaling_sweep()
        rows = [[p.n_gpus, f"{p.mesh[0]}x{p.mesh[1]}x{p.mesh[2]}",
                 p.tflops_overlap, p.tflops_nonoverlap, p.tflops_cpu]
                for p in pts]
        print(format_table(
            ["GPUs", "mesh", "overlap TF", "non-ov TF", "CPU TF"], rows,
            title="Fig. 10 — weak scaling"))
        print(f"weak-scaling efficiency: "
              f"{100 * weak_scaling_efficiency(pts):.1f}% (paper >= 93%)")
    elif args.table == "fig11":
        from .dist.overlap import OverlapModel

        m = OverlapModel()
        rows = []
        for overlap in (True, False):
            tl = m.step_timeline(overlap)
            rows.append(["overlap" if overlap else "serial",
                         tl.total * 1e3, tl.compute * 1e3, tl.mpi * 1e3,
                         tl.gpu_cpu * 1e3])
        print(format_table(
            ["method", "total ms", "compute", "MPI", "GPU-CPU"], rows,
            title="Fig. 11 — one-step breakdown at 528 GPUs"))
    elif args.table == "table1":
        from .dist.decomposition import TABLE1_CONFIGS, table1_mesh

        rows = [[px * py, f"{px}x{py}",
                 "x".join(map(str, table1_mesh(px, py)))]
                for px, py in TABLE1_CONFIGS]
        print(format_table(["GPUs", "grid", "mesh"], rows,
                           title="Table I — GPU counts and mesh sizes"))
    elif args.table == "projection":
        from .perf.projection import model_projection, paper_formula_projection

        f = paper_formula_projection()
        c = model_projection(fermi_throughput=False)
        r = model_projection(fermi_throughput=True)
        print(format_table(
            ["method", "TFlops"],
            [[f.method, f.tflops], [c.method, c.tflops], [r.method, r.tflops]],
            title="Sec. VII — TSUBAME 2.0 projection"))
    return 0


# --------------------------------------------------------------------- info
def _cmd_info(_args) -> int:
    from .gpu.spec import FERMI_M2050, OPTERON_CORE, Precision, TESLA_S1070
    from .perf.costmodel import asuca_step_cost, cpu_step_time

    for spec in (TESLA_S1070, FERMI_M2050, OPTERON_CORE):
        print(f"{spec.name}:")
        print(f"  peak {spec.peak_flops_sp/1e9:.1f} GF SP / "
              f"{spec.peak_flops_dp/1e9:.1f} GF DP, "
              f"{spec.mem_bandwidth/1e9:.1f} GB/s, "
              f"{spec.mem_capacity/2**30:.0f} GiB")
    sp = asuca_step_cost(320, 256, 48)
    dp = asuca_step_cost(320, 128, 48, precision=Precision.DOUBLE)
    t_cpu = cpu_step_time(320, 256, 48)
    print("\ncalibration anchors (paper / model):")
    print(f"  single GPU SP : 44.3 / {sp.gflops:.1f} GFlops")
    print(f"  single GPU DP : 14.6 / {dp.gflops:.1f} GFlops")
    print(f"  speedup vs CPU: 83.4 / {t_cpu / sp.total_time:.1f} x")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "reproduce":
        from .reproduce import write_experiments

        path = write_experiments(args.output, args.reports)
        print(f"wrote {path}")
        return 0
    return _cmd_info(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
