"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      integrate a workload (mountain-wave / warm-bubble / real-case /
             shear-layer), optionally decomposed and/or with a history file;
             ``--trace`` writes a Chrome/Perfetto trace, ``--metrics`` prints
             the run metrics, ``--profile`` prints the phase breakdown;
             ``--faults`` / ``--checkpoint-every`` / ``--resume`` exercise
             the resilience layer (docs/RESILIENCE.md)
``trace``    replay a workload under tracing and write the trace artifacts
             (Chrome Trace JSON + optional JSONL) with a text summary
``bench``    print one of the paper-reproduction tables (fig4, roofline,
             fig9, fig10, fig11, table1, projection)
``analyze``  run the compute-sanitizer (docs/ANALYSIS.md): asuca-lint,
             racecheck over the overlap methods, and sanitized smoke runs;
             exits nonzero on any finding (the CI gate)
``serve``    operate a forecast service on a virtual GPU fleet: replay a
             JSONL workload (or a seeded Poisson stream) through the gang
             scheduler + result cache and print the service report;
             ``--slo`` adds declarative health objectives (docs/SERVING.md)
``ensemble`` run a perturbed-member forecast ensemble as a gang through
             the service and print the probabilistic product — mean /
             spread / percentiles plus the coverage stamp; exit 1 flags
             a degraded product (docs/ENSEMBLE.md)
``doctor``   the perf doctor (docs/DOCTOR.md): critical-path and overlap
             attribution over a trace or the modeled overlap methods, the
             ``--regress`` bench regression gate over BENCH_*.json
             (wall-clock keys ignored unless ``--strict-wall``), and the
             ``--fleet`` telemetry summary of a serve trace
``top``      terminal fleet view from serve telemetry — live (a seeded
             Poisson run, scheduling only) or ``--replay`` of an exported
             serve trace; utilization, queue depth, wait/turnaround
             p50/p95/p99, cache hit rate, alerts (docs/OBSERVABILITY.md)
``info``     device specs and calibration anchors

Diagnostic commands (``trace``, ``analyze``, ``doctor``, ``serve``,
``ensemble``, ``top``) share one exit-code convention: 0 = clean, 1 =
findings/alerts, 2 = usage error.

The CLI is a thin veneer over :class:`repro.api.Experiment`; everything it
does is shown in examples/ as library code.
"""
from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]

#: shared exit-code contract, shown in each diagnostic command's --help
_EXIT_CODES = ("exit codes: 0 = clean, 1 = findings/alerts were reported, "
               "2 = usage error (bad arguments or unreadable input)")

#: overlap method configurations the doctor knows; mirrors
#: repro.dist.overlap.METHOD_CONFIGS (asserted by tests/obs/test_doctor.py)
_METHODS = ["serial", "method1", "method1+2", "method1+2+3"]

#: mirrors repro.api.WORKLOADS (asserted by tests/test_cli.py)
_WORKLOADS = ["mountain-wave", "warm-bubble", "real-case", "shear-layer",
              "vortex"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="SC'10 ASUCA GPU-paper reproduction toolkit",
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="integrate a workload")
    run.add_argument("workload", nargs="?", default="warm-bubble",
                     choices=_WORKLOADS)
    run.add_argument("--nx", type=int, default=None)
    run.add_argument("--ny", type=int, default=None)
    run.add_argument("--nz", type=int, default=None)
    run.add_argument("--steps", type=int, default=50)
    run.add_argument("--dt", type=float, default=None)
    run.add_argument("--seed", type=int, default=None,
                     help="perturbation seed: applies the workload's "
                          "seeded IC noise (ensemble members set this; "
                          "semantic — enters the spec hash)")
    run.add_argument("--backend", default="auto",
                     choices=["auto", "cpu", "gpu", "multigpu"],
                     help="execution backend (auto: multigpu when --ranks "
                          "is given, gpu when traced, else cpu)")
    run.add_argument("--ranks", type=str, default=None, metavar="PXxPY",
                     help="decompose, e.g. 2x3 (verifies against single-domain)")
    run.add_argument("--stencil-backend", default="auto",
                     choices=["auto", "reference", "fused", "numba"],
                     help="stencil executor backend (docs/STENCILS.md): "
                          "'fused' reuses pooled temporaries and "
                          "precompiled slice plans, bit-identical to "
                          "'reference'; 'auto' follows "
                          "$REPRO_STENCIL_BACKEND, else 'reference'")
    run.add_argument("--history", type=str, default=None,
                     help="write snapshots to this .npz")
    run.add_argument("--history-every", type=float, default=60.0,
                     help="seconds of model time between snapshots")
    run.add_argument("--ice", action="store_true",
                     help="enable the cold-rain (ice) extension")
    run.add_argument("--trace", type=str, default=None, metavar="OUT.json",
                     help="record the run and write a Chrome Trace Format "
                          "JSON (open in chrome://tracing or Perfetto)")
    run.add_argument("--trace-jsonl", type=str, default=None,
                     metavar="OUT.jsonl",
                     help="also write the trace as a JSONL event stream")
    run.add_argument("--metrics", action="store_true",
                     help="print the run metrics registry at the end")
    run.add_argument("--profile", action="store_true",
                     help="activate the phase profiler and print its "
                          "report after integration")
    run.add_argument("--summary", action="store_true",
                     help="print the trace summary (implies a session)")
    run.add_argument("--counters", action="store_true",
                     help="measure FLOP/byte counts per kernel launch (the "
                          "live roofline; see docs/OBSERVABILITY.md) — "
                          "counts land in the trace/metrics and feed "
                          "'repro doctor --roofline'")
    run.add_argument("--counter-every", type=int, default=1, metavar="N",
                     help="measure every Nth step only (default 1; bounds "
                          "counting overhead)")
    run.add_argument("--faults", type=str, default=None, metavar="PLAN",
                     help="fault-injection plan: 'demo', 'random:SEED', or "
                          "a comma list like drop@1,crash@3:r2 "
                          "(see docs/RESILIENCE.md)")
    run.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                     help="checkpoint the run state every K long steps")
    run.add_argument("--checkpoint-dir", type=str, default=None,
                     help="checkpoint directory (default: 'checkpoints' "
                          "when checkpointing or resuming)")
    run.add_argument("--resume", action="store_true",
                     help="resume from the latest checkpoint in the "
                          "checkpoint directory (--steps is the absolute "
                          "target step)")

    tr = sub.add_parser(
        "trace", help="replay a workload under tracing (run + artifacts)",
        epilog=_EXIT_CODES)
    tr.add_argument("workload", nargs="?", default="warm-bubble",
                    choices=_WORKLOADS)
    tr.add_argument("-o", "--output", default="trace.json",
                    help="Chrome Trace Format output path")
    tr.add_argument("--jsonl", type=str, default=None,
                    help="also write a JSONL event stream here")
    tr.add_argument("--nx", type=int, default=None)
    tr.add_argument("--ny", type=int, default=None)
    tr.add_argument("--nz", type=int, default=None)
    tr.add_argument("--steps", type=int, default=5)
    tr.add_argument("--dt", type=float, default=None)
    tr.add_argument("--ranks", type=str, default=None, metavar="PXxPY",
                    help="decompose, e.g. 2x2 (one device track per rank)")
    tr.add_argument("--ice", action="store_true")

    bench = sub.add_parser("bench", help="print a paper table")
    bench.add_argument("table",
                       choices=["fig4", "roofline", "fig9", "fig10", "fig11",
                                "table1", "projection"])
    bench.add_argument("--device", default="s1070",
                       choices=["s1070", "m2050"],
                       help="device spec for the roofline table "
                            "(default s1070)")

    an = sub.add_parser(
        "analyze",
        help="run the compute-sanitizer (racecheck/memcheck/asuca-lint)",
        epilog=_EXIT_CODES)
    an.add_argument("--lint", nargs="?", const="src/repro", default=None,
                    metavar="PATH",
                    help="run the asuca-lint pass over PATH (default "
                         "src/repro); selecting any pass flag disables the "
                         "others unless they are also given")
    an.add_argument("--racecheck", action="store_true",
                    help="racecheck the overlap-method schedules")
    an.add_argument("--smoke", action="store_true",
                    help="run the sanitized single-GPU and multi-GPU "
                         "smoke runs (memcheck + racecheck)")
    an.add_argument("--dataflow", action="store_true",
                    help="run the whole-program dataflow pass (stale "
                         "halos, liveness, fusion drift, precision flow) "
                         "over the model step graphs")
    an.add_argument("--baseline", type=str, default=None, metavar="FILE",
                    help="dataflow baseline file (default the checked-in "
                         "analysis/baseline.json; 'none' disables it)")
    an.add_argument("--sarif", type=str, default=None, metavar="OUT.sarif",
                    help="also write the report as SARIF 2.1.0 to "
                         "OUT.sarif")
    an.add_argument("--list-codes", action="store_true",
                    help="print the finding-code registry and exit")
    an.add_argument("--workload", default="shear-layer",
                    choices=_WORKLOADS,
                    help="workload driven by the smoke runs")
    an.add_argument("--steps", type=int, default=2,
                    help="smoke-run long steps")
    an.add_argument("--ranks", type=str, default="2x2", metavar="PXxPY",
                    help="multi-GPU smoke decomposition (default 2x2)")
    an.add_argument("--json", action="store_true",
                    help="emit the report as JSON instead of text")
    an.add_argument("--trace", type=str, default=None, metavar="OUT.json",
                    help="record the smoke runs and file each finding as "
                         "an instant on the offending device track")
    an.add_argument("--seed-hazard", default=None,
                    choices=["missing-event", "uaf"],
                    help=argparse.SUPPRESS)  # test fixture: plant a fault

    srv = sub.add_parser(
        "serve",
        help="operate a forecast service on a virtual GPU fleet "
             "(docs/SERVING.md)",
        epilog=_EXIT_CODES)
    srv.add_argument("--workload-file", type=str, default=None,
                     metavar="FILE.jsonl",
                     help="replay this JSONL workload (default: a "
                          "synthetic seeded Poisson workload)")
    srv.add_argument("--jobs", type=int, default=30,
                     help="synthetic workload size (ignored with "
                          "--workload-file)")
    srv.add_argument("--rate", type=float, default=80.0,
                     help="synthetic Poisson arrival rate [jobs per "
                          "modeled second]")
    srv.add_argument("--seed", type=int, default=0,
                     help="synthetic workload seed (same seed = same "
                          "workload = same report)")
    srv.add_argument("--gpus", type=int, default=8,
                     help="fleet size")
    srv.add_argument("--device", default="s1070",
                     choices=["s1070", "m2050"],
                     help="fleet device spec")
    srv.add_argument("--policy", default="fifo",
                     choices=["fifo", "priority", "sjf"],
                     help="queue ordering policy")
    srv.add_argument("--queue-limit", type=int, default=64,
                     help="queue bound; submissions beyond it are shed")
    srv.add_argument("--no-backfill", action="store_true",
                     help="disable EASY backfill behind gang "
                          "reservations")
    srv.add_argument("--cache-size", type=int, default=64,
                     help="result-cache capacity (0 disables caching)")
    srv.add_argument("--faults", type=str, default=None, metavar="PLAN",
                     help="service-level crash plan; CRASH events are "
                          "keyed by job index, e.g. crash@3:x5 crashes "
                          "job 3 on five consecutive attempts")
    srv.add_argument("--max-retries", type=int, default=2,
                     help="job retries before eviction")
    srv.add_argument("--no-execute", action="store_true",
                     help="schedule only (skip the real runs); for "
                          "scheduling studies on huge fleets")
    srv.add_argument("--trace", type=str, default=None, metavar="OUT.json",
                     help="export the whole service run as one Chrome "
                          "trace (per-job spans + queue-depth counters)")
    srv.add_argument("--trace-jsonl", type=str, default=None,
                     metavar="OUT.jsonl",
                     help="also export the run as a JSONL event stream "
                          "(replayable with 'repro top --replay')")
    srv.add_argument("--flight-recorder", type=str, default=None,
                     metavar="OUT.jsonl",
                     help="attach the black-box flight recorder: a "
                          "bounded ring of service events dumped here "
                          "automatically on crash/alert, or in full at "
                          "the end of a clean run (docs/OBSERVABILITY.md)")
    srv.add_argument("--recorder-capacity", type=int, default=4096,
                     metavar="N",
                     help="flight-recorder ring capacity (default 4096)")
    srv.add_argument("--prometheus", type=str, default=None,
                     metavar="OUT.prom",
                     help="write the final telemetry snapshot in "
                          "Prometheus text exposition format")
    srv.add_argument("--timeseries-csv", type=str, default=None,
                     metavar="OUT.csv",
                     help="write the fixed-interval snapshot grid as CSV")
    srv.add_argument("--ts-interval", type=float, default=0.05,
                     metavar="SECONDS",
                     help="snapshot grid interval in modeled seconds "
                          "(default 0.05)")
    srv.add_argument("--profile-scheduler", action="store_true",
                     help="print the scheduler self-profile (event rates, "
                          "pass durations, queue-scan stats) to stderr")
    srv.add_argument("--slo", type=str, default=None, metavar="RULES",
                     help="comma-separated health objectives, e.g. "
                          "'p95_wait_s<0.5,queue_depth<32' or burn-rate "
                          "'wait_s<0.5@0.2'; fired alerts land in the "
                          "report (and trace) and set exit status 1 "
                          "(docs/DOCTOR.md)")
    srv.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of text")
    srv.add_argument("--jobs-table", action="store_true",
                     help="append the per-job table to the text report")

    ens = sub.add_parser(
        "ensemble",
        help="run a perturbed-member forecast ensemble through the "
             "service and print the probabilistic product "
             "(docs/ENSEMBLE.md)",
        epilog=_EXIT_CODES + "; for ensembles, exit 1 also flags a "
               "degraded product (coverage < 1)")
    ens.add_argument("workload", nargs="?", default="vortex",
                     choices=_WORKLOADS)
    ens.add_argument("--members", type=int, default=8,
                     help="ensemble size (member 0 is the unperturbed "
                          "control unless --no-control)")
    ens.add_argument("--seed", type=int, default=0,
                     help="ensemble seed; every member derives its own "
                          "sub-seed from (seed, member, perturbation)")
    ens.add_argument("--steps", type=int, default=5)
    ens.add_argument("--nx", type=int, default=None)
    ens.add_argument("--ny", type=int, default=None)
    ens.add_argument("--nz", type=int, default=None)
    ens.add_argument("--dt", type=float, default=None)
    ens.add_argument("--perturb", action="append", default=None,
                     metavar="PERT",
                     help="perturbation (repeatable; replaces the "
                          "default catalogue): 'ic[:THETA[,WIND]]' for "
                          "IC noise, 'KEY~SIGMA' for lognormal parameter "
                          "jitter, e.g. vmax~0.15")
    ens.add_argument("--no-control", action="store_true",
                     help="perturb member 0 too")
    ens.add_argument("--gpus", type=int, default=4, help="fleet size")
    ens.add_argument("--device", default="s1070",
                     choices=["s1070", "m2050"])
    ens.add_argument("--policy", default="fifo",
                     choices=["fifo", "priority", "sjf"])
    ens.add_argument("--cache-size", type=int, default=8,
                     help="result-cache capacity (kept small: folded "
                          "members are released, the cache is the only "
                          "state holder)")
    ens.add_argument("--faults", type=str, default=None, metavar="PLAN",
                     help="service-level crash plan keyed by member "
                          "index, e.g. crash@3:x2 crashes member 3 twice")
    ens.add_argument("--max-retries", type=int, default=2,
                     help="member retries before eviction (an evicted "
                          "member shrinks the ensemble: coverage < 1)")
    ens.add_argument("--trace", type=str, default=None, metavar="OUT.json",
                     help="export the ensemble run as one Chrome trace "
                          "(member spans + fold/skip instants)")
    ens.add_argument("--json", action="store_true",
                     help="emit the product + service report as JSON")

    doc = sub.add_parser(
        "doctor",
        help="perf doctor: critical-path/overlap attribution and the "
             "bench regression gate (docs/DOCTOR.md)",
        epilog=_EXIT_CODES)
    doc.add_argument("--trace", type=str, default=None, metavar="TRACE",
                     help="diagnose an exported trace artifact (Chrome "
                          "Trace JSON or JSONL) instead of the model")
    doc.add_argument("--method", default="method1+2+3", choices=_METHODS,
                     help="overlap method configuration to diagnose "
                          "(model mode)")
    doc.add_argument("--ranks", type=str, default="2x2", metavar="PXxPY",
                     help="rank grid for the modeled step; an interior "
                          "rank's neighbor links per axis follow from it "
                          "(default 2x2)")
    doc.add_argument("--nx", type=int, default=None,
                     help="grid override (model mode default 320; "
                          "roofline-run mode default 16)")
    doc.add_argument("--ny", type=int, default=None,
                     help="grid override (model mode default 256; "
                          "roofline-run mode default 16)")
    doc.add_argument("--nz", type=int, default=None,
                     help="grid override (model mode default 48; "
                          "roofline-run mode default 12)")
    doc.add_argument("--roofline", action="store_true",
                     help="live roofline: place every on-path kernel on "
                          "the Eq.-6 curve from *measured* FLOP/byte "
                          "counts (from --trace if it was recorded with "
                          "--counters, else from a fresh counted run) and "
                          "flag drift vs the cost table "
                          "(docs/DOCTOR.md)")
    doc.add_argument("--workload", default="shear-layer",
                     choices=_WORKLOADS,
                     help="workload for the counted --roofline run "
                          "(default shear-layer)")
    doc.add_argument("--steps", type=int, default=2,
                     help="steps of the counted --roofline run (default 2)")
    doc.add_argument("--counter-every", type=int, default=1, metavar="N",
                     help="sampling cadence of the counted --roofline run")
    doc.add_argument("--device", default="s1070",
                     choices=["s1070", "m2050"],
                     help="device spec for --roofline placement")
    doc.add_argument("--seed-drift", default=None, metavar="KERNEL:FACTOR",
                     help=argparse.SUPPRESS)  # test fixture: perturb table
    doc.add_argument("--min-hidden", type=float, default=None,
                     metavar="FRAC",
                     help="gate: fail (exit 1) when the hidden-"
                          "communication fraction is below FRAC")
    doc.add_argument("--fleet", action="store_true",
                     help="fleet telemetry summary of a serve --trace "
                          "artifact (the single-shot form of 'repro "
                          "top'); exit 1 when alerts fired")
    doc.add_argument("--regress", type=str, default=None,
                     metavar="CURRENT.json",
                     help="bench regression gate: diff this BENCH_*.json "
                          "against --baseline and exit 1 on drift")
    doc.add_argument("--baseline", type=str, default=None,
                     metavar="BASELINE.json",
                     help="baseline artifact for --regress")
    doc.add_argument("--rel-tol", type=float, default=0.05,
                     help="relative drift tolerance for --regress "
                          "(default 0.05)")
    doc.add_argument("--tolerance", action="append", default=None,
                     metavar="GLOB=TOL",
                     help="per-metric tolerance override, e.g. "
                          "'*.gflops=0.1'; TOL 'ignore' skips the metric "
                          "(repeatable)")
    doc.add_argument("--strict-wall", action="store_true",
                     help="--regress: gate wall-clock keys (dotted path "
                          "matching *wall*) too; they are ignored by "
                          "default because they measure the machine, "
                          "not the model")
    doc.add_argument("--json", action="store_true",
                     help="emit the report as JSON instead of text")

    top = sub.add_parser(
        "top",
        help="terminal fleet view from serve telemetry "
             "(docs/OBSERVABILITY.md)",
        epilog=_EXIT_CODES)
    top.add_argument("--replay", type=str, default=None, metavar="TRACE",
                     help="replay an exported serve trace (Chrome JSON "
                          "or JSONL, from 'repro serve --trace/"
                          "--trace-jsonl') instead of running live")
    top.add_argument("--interval", type=float, default=0.05,
                     metavar="SECONDS",
                     help="snapshot grid interval in modeled seconds "
                          "(default 0.05)")
    top.add_argument("--frames", type=int, default=12,
                     help="frame-table rows to print (0 hides the "
                          "frame-by-frame replay)")
    top.add_argument("--json", action="store_true",
                     help="emit the fleet view as JSON instead of text")
    top.add_argument("--jobs", type=int, default=100,
                     help="live mode: synthetic Poisson workload size")
    top.add_argument("--rate", type=float, default=80.0,
                     help="live mode: arrival rate [jobs per modeled s]")
    top.add_argument("--seed", type=int, default=0,
                     help="live mode: workload seed")
    top.add_argument("--gpus", type=int, default=8,
                     help="live mode: fleet size")
    top.add_argument("--policy", default="fifo",
                     choices=["fifo", "priority", "sjf"],
                     help="live mode: queue ordering policy")
    top.add_argument("--queue-limit", type=int, default=64,
                     help="live mode: queue bound")
    top.add_argument("--slo", type=str, default=None, metavar="RULES",
                     help="live mode: health objectives (as in 'repro "
                          "serve --slo')")

    sub.add_parser("info", help="device specs and calibration anchors")

    rep = sub.add_parser("reproduce",
                         help="rebuild EXPERIMENTS.md from benchmark reports")
    rep.add_argument("-o", "--output", default="EXPERIMENTS.md")
    rep.add_argument("--reports", default="benchmarks/reports")
    return p


# --------------------------------------------------------------------- run
def _spec_from_args(args) -> "RunSpec":
    from .api import RunSpec

    ckpt_dir = getattr(args, "checkpoint_dir", None)
    if ckpt_dir is None and (getattr(args, "checkpoint_every", 0)
                             or getattr(args, "resume", False)):
        ckpt_dir = "checkpoints"
    return RunSpec(
        workload=args.workload,
        steps=args.steps,
        nx=args.nx, ny=args.ny, nz=args.nz, dt=args.dt,
        seed=getattr(args, "seed", None),
        backend=getattr(args, "backend", "auto"),
        stencil_backend=getattr(args, "stencil_backend", "auto"),
        ranks=args.ranks or None,
        ice=args.ice,
        trace_path=getattr(args, "trace", None),
        trace_jsonl=getattr(args, "trace_jsonl", None),
        metrics=getattr(args, "metrics", False),
        profile=getattr(args, "profile", False),
        summary=getattr(args, "summary", False),
        counters=getattr(args, "counters", False),
        counter_every=getattr(args, "counter_every", 1),
        history_path=getattr(args, "history", None),
        history_every=getattr(args, "history_every", 60.0),
        faults=getattr(args, "faults", None),
        checkpoint_every=getattr(args, "checkpoint_every", 0),
        checkpoint_dir=ckpt_dir,
        resume=getattr(args, "resume", False),
    )


def _cmd_run(args) -> int:
    from .api import Experiment

    exp = Experiment(_spec_from_args(args)).prepare()
    grid = exp.grid
    print(f"{exp.spec.workload}: {grid.nx}x{grid.ny}x{grid.nz}, "
          f"dt={exp.model.config.dynamics.dt}s, {exp.spec.steps} steps")
    if exp.resumed_from is not None:
        print(f"resumed from checkpoint at step {exp.resumed_from}")
    result = exp.run()
    state = result.state

    if exp.spec.backend == "multigpu":
        px, py = exp.spec.ranks
        print(f"ranks {px}x{py}: {result.halo_messages} messages, "
              f"{result.halo_bytes / 1e6:.1f} MB halo traffic")
    if result.session is not None:
        from .obs import summary_text, write_chrome_trace, write_jsonl

        if exp.spec.trace_path:
            print(f"trace: {write_chrome_trace(result.session, exp.spec.trace_path)}")
        if exp.spec.trace_jsonl:
            print(f"trace events: {write_jsonl(result.session, exp.spec.trace_jsonl)}")
        if exp.spec.summary:
            print(summary_text(result.session))
        elif exp.spec.metrics:
            print(result.session.metrics.report())
    if exp.timer is not None:
        print(exp.timer.report())
    if exp.executor is not None and exp.executor.backend != "reference":
        print(exp.executor.report())
    if exp.spec.counters:
        hooks = ([exp.runner.counting] if exp.runner is not None
                 else list(getattr(exp.machine, "_dev_counting", None) or []))
        hooks = [h for h in hooks if h is not None]
        if hooks:
            launches = sum(mk.launches for h in hooks
                           for mk in h.measured.values())
            sampled = max(h.steps_sampled for h in hooks)
            print(f"counters: {launches} kernel launches measured over "
                  f"{sampled} sampled step(s) "
                  f"(see 'repro doctor --roofline')")
    if result.fault_log or result.recoveries or result.checkpoints_written:
        print(f"resilience: {result.resilience_report()}")

    d = result.diagnostics
    print(f"t={d.time:.0f}s  max|w|={d.max_w:.3f} m/s  "
          f"max wind={d.max_wind:.2f} m/s  "
          f"theta {d.min_theta:.1f}..{d.max_theta:.1f} K")
    if state.precip_accum is not None and float(np.max(state.precip_accum)) > 0:
        print(f"max accumulated precipitation: "
              f"{float(np.max(state.precip_accum)):.3f} mm")
    if exp.history is not None:
        print(f"history: {exp.history.n_snapshots} snapshots -> "
              f"{exp.history.path}")
    return 0


# -------------------------------------------------------------------- trace
def _cmd_trace(args) -> int:
    """Replay a workload under tracing: a ``run`` with a session always
    active, trace artifacts written, and the summary printed."""
    run_args = argparse.Namespace(
        workload=args.workload, nx=args.nx, ny=args.ny, nz=args.nz,
        steps=args.steps, dt=args.dt, ranks=args.ranks, ice=args.ice,
        backend="auto", history=None, history_every=60.0,
        trace=args.output, trace_jsonl=args.jsonl,
        metrics=True, profile=False, summary=True,
        faults=None, checkpoint_every=0, checkpoint_dir=None, resume=False,
    )
    return _cmd_run(run_args)


# -------------------------------------------------------------------- bench
def _cmd_bench(args) -> int:
    from .gpu.spec import Precision
    from .perf.costmodel import asuca_step_cost, cpu_step_time
    from .perf.report import format_table

    if args.table == "fig4":
        rows = []
        for ny in (32, 64, 96, 128, 160, 192, 224, 256):
            sp = asuca_step_cost(320, ny, 48)
            dp = (asuca_step_cost(320, ny, 48, precision=Precision.DOUBLE)
                  if ny <= 128 else None)
            rows.append([320 * ny * 48, sp.gflops,
                         dp.gflops if dp else float("nan"),
                         sp.total_flops / cpu_step_time(320, ny, 48) / 1e9])
        print(format_table(
            ["grid pts", "GPU SP", "GPU DP", "CPU DP"], rows,
            title="Fig. 4 — single-GPU GFlops vs grid size"))
    elif args.table == "roofline":
        from .gpu.roofline import place_cost_table
        from .gpu.spec import device_spec

        spec = device_spec(getattr(args, "device", "s1070"))
        rows = [[p.name, p.intensity, p.gflops]
                for p in place_cost_table(320 * 256 * 48, spec=spec)]
        print(format_table(["kernel", "AI [flop/B]", "GFlops"], rows,
                           title=f"Fig. 5 — kernel roofline (SP, "
                                 f"{spec.name})"))
    elif args.table == "fig9":
        from .dist.overlap import OverlapModel

        rows = [
            [vb.name, vb.whole * 1e6, vb.inner * 1e6, vb.boundary_y * 1e6,
             vb.boundary_x * 1e6, vb.communication * 1e6]
            for vb in OverlapModel().breakdown_rows()
        ]
        print(format_table(
            ["variable", "whole [us]", "inner", "bnd-y", "bnd-x", "comm"],
            rows, title="Fig. 9 — short-step breakdown at 528 GPUs"))
    elif args.table == "fig10":
        from .perf.scaling import weak_scaling_efficiency, weak_scaling_sweep

        pts = weak_scaling_sweep()
        rows = [[p.n_gpus, f"{p.mesh[0]}x{p.mesh[1]}x{p.mesh[2]}",
                 p.tflops_overlap, p.tflops_nonoverlap, p.tflops_cpu]
                for p in pts]
        print(format_table(
            ["GPUs", "mesh", "overlap TF", "non-ov TF", "CPU TF"], rows,
            title="Fig. 10 — weak scaling"))
        print(f"weak-scaling efficiency: "
              f"{100 * weak_scaling_efficiency(pts):.1f}% (paper >= 93%)")
    elif args.table == "fig11":
        from .dist.overlap import OverlapModel

        m = OverlapModel()
        rows = []
        for overlap in (True, False):
            tl = m.step_timeline(overlap)
            rows.append(["overlap" if overlap else "serial",
                         tl.total * 1e3, tl.compute * 1e3, tl.mpi * 1e3,
                         tl.gpu_cpu * 1e3])
        print(format_table(
            ["method", "total ms", "compute", "MPI", "GPU-CPU"], rows,
            title="Fig. 11 — one-step breakdown at 528 GPUs"))
    elif args.table == "table1":
        from .dist.decomposition import TABLE1_CONFIGS, table1_mesh

        rows = [[px * py, f"{px}x{py}",
                 "x".join(map(str, table1_mesh(px, py)))]
                for px, py in TABLE1_CONFIGS]
        print(format_table(["GPUs", "grid", "mesh"], rows,
                           title="Table I — GPU counts and mesh sizes"))
    elif args.table == "projection":
        from .perf.projection import model_projection, paper_formula_projection

        f = paper_formula_projection()
        c = model_projection(fermi_throughput=False)
        r = model_projection(fermi_throughput=True)
        print(format_table(
            ["method", "TFlops"],
            [[f.method, f.tflops], [c.method, c.tflops], [r.method, r.tflops]],
            title="Sec. VII — TSUBAME 2.0 projection"))
    return 0


# ------------------------------------------------------------------ analyze
def _cmd_analyze(args) -> int:
    """Drive :func:`repro.analysis.run_all` and gate on its findings."""
    from .analysis import codes_table, run_all, write_sarif
    from .api import parse_ranks

    if args.list_codes:
        print(codes_table())
        return 0

    sel_lint = args.lint is not None
    sel_race = args.racecheck
    sel_smoke = args.smoke
    sel_flow = args.dataflow
    if not (sel_lint or sel_race or sel_smoke or sel_flow):
        sel_lint = sel_race = sel_smoke = sel_flow = True
    px, py = parse_ranks(args.ranks)

    session = None
    if args.trace:
        from .obs import TraceSession

        session = TraceSession(name="analyze")
    report = run_all(
        src_root=args.lint,
        lint=sel_lint, racecheck=sel_race, smoke=sel_smoke,
        dataflow=sel_flow, baseline=args.baseline,
        workload=args.workload, steps=args.steps, px=px, py=py,
        session=session, seed_hazard=args.seed_hazard,
    )
    if session is not None:
        from .obs import write_chrome_trace

        session.finalize(steps=max(1, args.steps))
        print(f"trace: {write_chrome_trace(session, args.trace)}",
              file=sys.stderr)
    if args.sarif:
        from pathlib import Path

        path = write_sarif(report, args.sarif,
                           root=Path(__file__).resolve().parents[2])
        print(f"sarif: {path}", file=sys.stderr)
    for note in report.notes:
        print(f"note: {note}", file=sys.stderr)
    print(report.as_json() if args.json else report.text())
    return report.exit_status()


# -------------------------------------------------------------------- serve
def _cmd_serve(args) -> int:
    """Operate a :class:`~repro.serve.ForecastService` over a workload
    file or a synthetic Poisson stream, and print the service report."""
    import json as _json

    from .gpu.spec import device_spec
    from .resilience.retry import RetryPolicy
    from .serve import ForecastService, GpuFleet, load_workload, poisson_workload

    if args.workload_file:
        try:
            submissions = load_workload(args.workload_file)
        except (OSError, ValueError) as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
    else:
        submissions = poisson_workload(args.jobs, rate=args.rate,
                                       seed=args.seed)

    session = None
    if (args.trace or args.trace_jsonl or args.prometheus
            or args.timeseries_csv):
        from .obs import TraceSession

        session = TraceSession(name="serve")
    recorder = None
    if args.flight_recorder:
        from .obs import FlightRecorder

        try:
            recorder = FlightRecorder(args.recorder_capacity,
                                      path=args.flight_recorder)
        except ValueError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return 2
    try:
        service = ForecastService(
            GpuFleet(args.gpus, device_spec(args.device)),
            policy=args.policy,
            queue_limit=args.queue_limit,
            backfill=not args.no_backfill,
            cache_capacity=args.cache_size,
            retry=RetryPolicy(max_retries=args.max_retries),
            faults=args.faults,
            session=session,
            slo=args.slo,
            recorder=recorder,
            execute=not args.no_execute,
        )
    except ValueError as exc:        # e.g. a malformed --slo expression
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    report = service.run(submissions)
    if session is not None:
        from .obs import write_chrome_trace, write_jsonl

        session.finalize()
        if args.trace:
            print(f"trace: {write_chrome_trace(session, args.trace)}",
                  file=sys.stderr)
        if args.trace_jsonl:
            print(f"trace events: "
                  f"{write_jsonl(session, args.trace_jsonl)}",
                  file=sys.stderr)
        if args.prometheus or args.timeseries_csv:
            from .obs import fleet_view_from_session

            view = fleet_view_from_session(session,
                                           interval=args.ts_interval)
            snaps = view.snapshots
            # fold the end-of-run registry onto the grid so the scrape
            # also carries the serve gauges and job counters
            snaps.ingest_registry(session.metrics,
                                  max(snaps.t_max, report.makespan_s))
            if args.prometheus:
                print(f"prometheus: "
                      f"{snaps.write_prometheus(args.prometheus)}",
                      file=sys.stderr)
            if args.timeseries_csv:
                print(f"timeseries: "
                      f"{snaps.write_csv(args.timeseries_csv)}",
                      file=sys.stderr)
    if recorder is not None:
        state = (f"tripped by {recorder.last_trip}" if recorder.trips
                 else "clean run, full history")
        print(f"flight recorder: {args.flight_recorder} "
              f"({len(recorder)} events, {state})", file=sys.stderr)
    if args.profile_scheduler:
        print(service.profile.text(), file=sys.stderr)
    if args.json:
        print(_json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(jobs_table=args.jobs_table))
    # failures are part of a service report, not a CLI error; trouble
    # means fired SLO alerts or a fleet that completed nothing
    if report.alerts:
        return 1
    return 0 if (report.n_done + report.n_cached) or not report.n_submitted else 1


# ----------------------------------------------------------------- ensemble
def _cmd_ensemble(args) -> int:
    """Run a perturbed-member ensemble through the forecast service and
    print the probabilistic product; exit 1 flags a degraded product
    (coverage < 1) or fired alerts."""
    import json as _json

    from .api import RunSpec
    from .ensemble import EnsembleRunner, EnsembleSpec, parse_perturbation
    from .gpu.spec import device_spec
    from .resilience.retry import RetryPolicy
    from .serve import GpuFleet

    session = None
    if args.trace:
        from .obs import TraceSession

        session = TraceSession(name="ensemble")
    try:
        perturbations = (tuple(parse_perturbation(p) for p in args.perturb)
                         if args.perturb else None)
        ensemble = EnsembleSpec(
            base=RunSpec(workload=args.workload, steps=args.steps,
                         nx=args.nx, ny=args.ny, nz=args.nz, dt=args.dt),
            members=args.members,
            seed=args.seed,
            perturbations=perturbations,
            control=not args.no_control,
        )
        runner = EnsembleRunner(
            ensemble,
            fleet=GpuFleet(args.gpus, device_spec(args.device)),
            policy=args.policy,
            faults=args.faults,
            retry=RetryPolicy(max_retries=args.max_retries),
            cache_capacity=args.cache_size,
            session=session,
        )
    except ValueError as exc:
        print(f"ensemble: {exc}", file=sys.stderr)
        return 2
    result = runner.run()
    if session is not None:
        from .obs import write_chrome_trace

        session.finalize()
        print(f"trace: {write_chrome_trace(session, args.trace)}",
              file=sys.stderr)
    if args.json:
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    # a degraded product is a finding: the forecast exists but lost
    # members (coverage < 1) — callers must see that in the exit status
    if not result.complete or result.report.alerts:
        return 1
    return 0


# ------------------------------------------------------------------- doctor
def _parse_tolerances(items: "list[str] | None") -> "dict[str, float | None] | None":
    """['*.gflops=0.1', 'foo.*=ignore'] -> {'*.gflops': 0.1, 'foo.*': None}"""
    if not items:
        return None
    out: dict[str, float | None] = {}
    for item in items:
        pattern, sep, value = item.partition("=")
        if not sep or not pattern:
            raise ValueError(f"--tolerance {item!r}: expected GLOB=TOL")
        if value.strip().lower() == "ignore":
            out[pattern] = None
        else:
            try:
                out[pattern] = float(value)
            except ValueError:
                raise ValueError(f"--tolerance {item!r}: TOL must be a "
                                 f"number or 'ignore'") from None
    return out


def _drifted_table(seed_drift: str) -> dict:
    """Test fixture behind the hidden ``--seed-drift KERNEL:FACTOR``: a
    copy of the cost table with one kernel's flops/point multiplied, so
    CI can prove the ROOF01 gate fires."""
    import dataclasses as _dc

    from .perf.costmodel import ASUCA_KERNELS

    name, sep, factor = seed_drift.partition(":")
    if not sep or name not in ASUCA_KERNELS:
        raise ValueError(f"--seed-drift {seed_drift!r}: expected "
                         f"KERNEL:FACTOR with a cost-table kernel name")
    try:
        factor = float(factor)
    except ValueError:
        raise ValueError(f"--seed-drift {seed_drift!r}: FACTOR must be "
                         f"a number") from None
    table = dict(ASUCA_KERNELS)
    k = table[name]
    table[name] = _dc.replace(k, cost=_dc.replace(
        k.cost, flops_per_point=k.cost.flops_per_point * factor))
    return table


def _doctor_roofline(args) -> int:
    """``repro doctor --roofline``: measured kernel placements + drift
    findings, from a counted trace or a fresh counted run."""
    import json as _json

    from .gpu.spec import Precision, device_spec
    from .obs.doctor import roofline_from_records

    try:
        table = (_drifted_table(args.seed_drift)
                 if args.seed_drift else None)
        if args.trace:
            from .obs.doctor import load_trace

            trace = load_trace(args.trace)
            ops = [op for per_pid in trace.device_ops.values()
                   for op in per_pid]
            if not any(op.kind == "kernel" and op.measured is not None
                       for op in ops):
                raise ValueError(
                    f"{args.trace}: no measured counts in the trace "
                    f"(record it with 'repro run --counters')")
        else:
            from .api import Experiment, RunSpec

            spec = RunSpec(
                workload=args.workload, steps=max(1, args.steps),
                nx=args.nx if args.nx is not None else 16,
                ny=args.ny if args.ny is not None else 16,
                nz=args.nz if args.nz is not None else 12,
                backend="gpu", counters=True,
                counter_every=args.counter_every)
            exp = Experiment(spec).prepare()
            exp.run()
            ops = list(exp.runner.device.timeline)
    except (OSError, ValueError) as exc:
        print(f"doctor: {exc}", file=sys.stderr)
        return 2
    report = roofline_from_records(
        ops, spec=device_spec(args.device),
        precision=Precision.SINGLE, table=table)
    print(_json.dumps(report.as_dict(), indent=2, sort_keys=True)
          if args.json else report.text())
    return report.exit_status()


def _cmd_doctor(args) -> int:
    """Run the perf doctor (docs/DOCTOR.md): the bench regression gate
    when ``--regress`` is given, the live roofline with ``--roofline``,
    otherwise a trace or model diagnosis."""
    import json as _json

    from .obs.doctor import SchemaMismatch, regression_gate

    if args.regress or args.baseline:
        if not (args.regress and args.baseline):
            print("doctor: --regress and --baseline go together",
                  file=sys.stderr)
            return 2
        try:
            tolerances = _parse_tolerances(args.tolerance)
            gate = regression_gate(args.baseline, args.regress,
                                   rel_tol=args.rel_tol,
                                   tolerances=tolerances,
                                   ignore_wall=not args.strict_wall)
        except (OSError, SchemaMismatch, ValueError) as exc:
            print(f"doctor: {exc}", file=sys.stderr)
            return 2
        print(_json.dumps(gate.as_dict(), indent=2, sort_keys=True)
              if args.json else gate.text())
        return gate.exit_status()

    if args.fleet:
        if not args.trace:
            print("doctor: --fleet needs --trace TRACE (a serve trace "
                  "artifact)", file=sys.stderr)
            return 2
        from .obs import fleet_view_from_trace, render_fleet_view
        from .obs.doctor import load_trace

        try:
            view = fleet_view_from_trace(load_trace(args.trace))
        except (OSError, ValueError) as exc:
            print(f"doctor: {exc}", file=sys.stderr)
            return 2
        print(_json.dumps(view.as_dict(), indent=2, sort_keys=True)
              if args.json else render_fleet_view(view))
        return 1 if view.alerts else 0

    if args.roofline:
        return _doctor_roofline(args)

    from .api import parse_ranks
    from .obs.doctor import diagnose_model, diagnose_trace

    try:
        if args.trace:
            report = diagnose_trace(args.trace)
        else:
            px, py = parse_ranks(args.ranks)
            # an interior rank of a PX x PY grid has this many neighbor
            # links per axis (2 in the middle of an axis, 1 on a pair)
            report = diagnose_model(
                method=args.method,
                links_x=min(2, px - 1), links_y=min(2, py - 1),
                nx=args.nx if args.nx is not None else 320,
                ny=args.ny if args.ny is not None else 256,
                nz=args.nz if args.nz is not None else 48)
    except (OSError, ValueError) as exc:
        print(f"doctor: {exc}", file=sys.stderr)
        return 2
    if args.min_hidden is not None:
        report.require_min_hidden(args.min_hidden)
    print(report.as_json() if args.json else report.text())
    return report.exit_status()


# ----------------------------------------------------------------------- top
def _cmd_top(args) -> int:
    """``repro top``: the terminal fleet view — replay an exported serve
    trace, or run a live scheduling-only Poisson workload and view it."""
    import json as _json

    from .obs import (fleet_view_from_session, fleet_view_from_trace,
                      render_fleet_view, render_frames)

    if args.replay:
        from .obs.doctor import load_trace

        try:
            view = fleet_view_from_trace(load_trace(args.replay),
                                         interval=args.interval)
        except (OSError, ValueError) as exc:
            print(f"top: {exc}", file=sys.stderr)
            return 2
    else:
        from .obs import TraceSession
        from .serve import ForecastService, GpuFleet, poisson_workload

        session = TraceSession(name="top")
        try:
            service = ForecastService(
                GpuFleet(args.gpus), policy=args.policy,
                queue_limit=args.queue_limit, session=session,
                slo=args.slo, execute=False)
        except ValueError as exc:
            print(f"top: {exc}", file=sys.stderr)
            return 2
        service.run(poisson_workload(args.jobs, rate=args.rate,
                                     seed=args.seed))
        session.finalize()
        view = fleet_view_from_session(session, interval=args.interval)
    if args.json:
        print(_json.dumps(view.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_fleet_view(view))
        if args.frames:
            print()
            print(render_frames(view, frames=args.frames))
    return 1 if view.alerts else 0


# --------------------------------------------------------------------- info
def _cmd_info(_args) -> int:
    from .gpu.spec import FERMI_M2050, OPTERON_CORE, Precision, TESLA_S1070
    from .perf.costmodel import asuca_step_cost, cpu_step_time

    for spec in (TESLA_S1070, FERMI_M2050, OPTERON_CORE):
        print(f"{spec.name}:")
        print(f"  peak {spec.peak_flops_sp/1e9:.1f} GF SP / "
              f"{spec.peak_flops_dp/1e9:.1f} GF DP, "
              f"{spec.mem_bandwidth/1e9:.1f} GB/s, "
              f"{spec.mem_capacity/2**30:.0f} GiB")
    sp = asuca_step_cost(320, 256, 48)
    dp = asuca_step_cost(320, 128, 48, precision=Precision.DOUBLE)
    t_cpu = cpu_step_time(320, 256, 48)
    print("\ncalibration anchors (paper / model):")
    print(f"  single GPU SP : 44.3 / {sp.gflops:.1f} GFlops")
    print(f"  single GPU DP : 14.6 / {dp.gflops:.1f} GFlops")
    print(f"  speedup vs CPU: 83.4 / {t_cpu / sp.total_time:.1f} x")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "ensemble":
        return _cmd_ensemble(args)
    if args.command == "doctor":
        return _cmd_doctor(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "reproduce":
        from .reproduce import write_experiments

        path = write_experiments(args.output, args.reports)
        print(f"wrote {path}")
        return 0
    return _cmd_info(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
