"""Whole-program dataflow passes over the step graph (LINT04–LINT08).

The step graph (:mod:`repro.analysis.stepgraph`) linearizes one model
step — kernel invocations, halo exchanges, and the derivations between
them — trusting the ``@stencil`` declarations for per-kernel reads,
writes, and halo widths.  Five passes interpret that sequence:

* ``LINT04`` **stale-halo read** — simulate per-axis halo staleness
  through the step: an interior write (kernel, physics, subscript store)
  dirties a field's halos on both topology axes; an exchange cleans the
  axes it covers; a ``halo > 0`` kernel that then reads a still-dirty
  field (directly or through a derived temporary) consumes a neighbor's
  stale cells.  The sequence is simulated twice so staleness that
  survives a whole step is caught at the *next* step's first reader —
  the cyclic case a one-pass scan misses.
* ``LINT05`` **read before first write** — a local consumed before any
  binding on the walked path (collected during graph construction).
* ``LINT06`` **dead store** — a killing definition (full rebind) whose
  value is overwritten, on an always-reached branch, before any read.
* ``LINT07`` **fusion legality** — every ``register_fused`` /
  ``register_numba`` implementation must match its declaration: the
  reference signature (plus the leading ``pool`` for fused), no stores
  into read-only roles, and no leaked pool-leased buffers.
* ``LINT08`` **precision flow** — under ``dtype_policy='preserve'``
  (the paper's single-precision design point, Sec. IV) neither the
  reference kernel nor an unguarded backend implementation may upcast:
  float64 allocations, ``dtype=np.float64``, ``.astype(np.float64)``.

Suppression is the shared inline convention
(``# sanitizer: allow[LINTnn] why``) plus a checked-in *baseline* file
(:data:`DEFAULT_BASELINE`) for findings that cannot carry an inline
comment; stale baseline entries are reported as ``SUPP01`` warnings.
"""
from __future__ import annotations

import ast
import inspect
import json
import textwrap
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from .findings import Finding, origin_suppressed
from .stepgraph import (
    PROGNOSTIC_FIELDS,
    Node,
    StepGraph,
    build_step_graph,
)

__all__ = [
    "DEFAULT_BASELINE", "BaselineEntry", "load_baseline", "apply_baseline",
    "stale_halo_findings", "read_before_write_findings",
    "dead_store_findings", "fusion_findings", "precision_findings",
    "dataflow_pass",
]

#: the repo's checked-in baseline file (empty suppression list while the
#: tree is clean — the schema is exercised by the tests)
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"

_AXIS_NAMES = {0: "x", 1: "y"}


def _axis_label(axes: Iterable[int]) -> str:
    return "/".join(_AXIS_NAMES.get(a, str(a)) for a in sorted(axes))


def _is_field(name: str) -> bool:
    """Tokens are scoped (``fn#3:x``); bare names are state fields."""
    return ":" not in name


# ------------------------------------------------------------------ LINT04
def stale_halo_findings(graph: StepGraph) -> list[Finding]:
    """Per-axis stale-halo simulation over the doubled step sequence."""
    nodes = graph.nodes
    doubled = list(nodes) + list(nodes)
    stale: dict[str, set[int]] = {}
    writer: dict[str, tuple[str, int]] = {}
    seen: set[tuple[str, int, str]] = set()
    findings: list[Finding] = []

    for i, node in enumerate(doubled):
        steady = i >= len(nodes)
        if node.kind == "exchange":
            covered = (node.exch_fields if node.exch_fields is not None
                       else tuple(PROGNOSTIC_FIELDS))
            for f in covered:
                axes = stale.get(f)
                if axes:
                    axes.difference_update(node.axes)
            continue
        # reads are consumed before this node's writes land
        if node.halo > 0:
            for name in sorted(node.reads | node.fields):
                axes = stale.get(name)
                if not axes:
                    continue
                if not steady:
                    continue  # warm-up pass: only establish steady state
                display = name.split(":")[-1]
                key = (node.file, node.line, display)
                if key in seen:
                    continue
                seen.add(key)
                src = writer.get(name)
                where = f" (written at {src[0]}:{src[1]})" if src else ""
                findings.append(Finding(
                    code="LINT04",
                    message=(f"kernel '{node.name}' (halo {node.halo}) "
                             f"reads '{display}' whose "
                             f"{_axis_label(axes)}-axis halos are stale"
                             f"{where} — no exchange since the last "
                             f"interior write"),
                    file=node.file, line=node.line,
                    suggestion="exchange the field (on the stale axes) "
                               "before this kernel, or declare halo=0 if "
                               "the kernel is pointwise",
                ))
        # taint: a derived value inherits the staleness of its inputs
        taint: set[int] = set()
        for r in node.reads | node.fields:
            taint |= stale.get(r, set())
        for w in node.writes:
            if _is_field(w):
                stale[w] = {0, 1}  # interior write dirties both axes
                writer[w] = (node.file, node.line)
            else:
                stale[w] = set(taint)
                if taint:
                    writer[w] = (node.file, node.line)
    return findings


# ------------------------------------------------------------------ LINT05
def read_before_write_findings(graph: StepGraph) -> list[Finding]:
    findings = []
    for name, file, line in graph.use_before_def:
        findings.append(Finding(
            code="LINT05",
            message=(f"'{name}' is read before any write on the step "
                     f"path — at step entry its value is undefined"),
            file=file, line=line,
            suggestion="initialize the value before the step loop or "
                       "define it earlier in the sequence",
        ))
    return findings


# ------------------------------------------------------------------ LINT06
def _always_reaches(killer: Node, definition: Node) -> bool:
    """True when the killer executes whenever the definition does: its
    branch context is a prefix of the definition's."""
    kb, db = killer.branch, definition.branch
    return kb == db[:len(kb)]


def _live_via_backedge(node: Node, token: str,
                       nodes: list[Node]) -> bool:
    """A definition inside a loop body is live when any node of the same
    loop reads it — the walker unrolls loops once, so a loop-carried
    value's consumer appears *earlier* in the linearized body."""
    prefixes = [node.branch[:i + 1]
                for i, seg in enumerate(node.branch)
                if seg.startswith("loop@")]
    if not prefixes:
        return False
    for other in nodes:
        if token not in other.reads:
            continue
        for p in prefixes:
            if other.branch[:len(p)] == p:
                return True
    return False


def dead_store_findings(graph: StepGraph) -> list[Finding]:
    nodes = graph.nodes
    doubled = list(nodes) + list(nodes)
    seen: set[tuple[str, int, str]] = set()
    findings: list[Finding] = []
    for i, node in enumerate(nodes):
        for t in sorted(node.kills & node.writes):
            verdict: tuple[str, int] | None = None
            for later in doubled[i + 1:]:
                if t in later.reads:
                    break
                if t in later.kills and _always_reaches(later, node):
                    verdict = (later.file, later.line)
                    break
            else:
                continue  # never overwritten: not a dead store
            if verdict is None:
                continue
            if _live_via_backedge(node, t, nodes):
                continue
            display = t.split(":")[-1]
            key = (node.file, node.line, display)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                code="LINT06",
                message=(f"dead store: '{display}' written here is "
                         f"overwritten at {verdict[0]}:{verdict[1]} "
                         f"before any read"),
                file=node.file, line=node.line,
                suggestion="drop the first write, or read it before the "
                           "overwrite if the value was meant to be used",
            ))
    return findings


# ------------------------------------------------------------------ LINT07
def _impl_location(fn: Callable[..., Any]) -> tuple[str, int]:
    code = getattr(fn, "__code__", None)
    if code is not None:
        return code.co_filename, code.co_firstlineno
    return "<unknown>", 0


def _impl_params(fn: Callable[..., Any]) -> list[str] | None:
    try:
        return list(inspect.signature(fn).parameters)
    except (TypeError, ValueError):
        return None


def _impl_tree(fn: Callable[..., Any]) -> tuple[ast.AST, str, int] | None:
    """Parsed body of an implementation, with line numbers rebased to
    the source file."""
    try:
        src = textwrap.dedent(inspect.getsource(fn))
        file = inspect.getsourcefile(fn) or "<unknown>"
        first = fn.__code__.co_firstlineno
    except (OSError, TypeError, AttributeError):
        return None
    tree = ast.parse(src)
    ast.increment_lineno(tree, first - 1)
    return tree, file, first


def _reference_of(entry: Any) -> Callable[..., Any] | None:
    return getattr(entry, "reference", None)


def _spec_of(entry: Any) -> Any:
    return getattr(entry, "spec", entry)


def _stored_names(tree: ast.AST) -> dict[str, int]:
    """Names stored into via subscript/augmented assignment → first line."""
    out: dict[str, int] = {}
    for node in ast.walk(tree):
        tgt = None
        if isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Subscript):
                    tgt = t
        elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, (ast.Subscript, ast.Name)):
            tgt = node.target
        if tgt is None:
            continue
        base = tgt.value if isinstance(tgt, ast.Subscript) else tgt
        if isinstance(base, ast.Name) and base.id not in out:
            out[base.id] = node.lineno
    return out


def _leased_returns(tree: ast.AST) -> list[int]:
    """Lines returning a buffer obtained from a pool lease (``mem.take``
    where ``mem`` is a ``pool.lease()`` with-target), traced through
    simple aliasing assignments."""
    lease_targets: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            ctx = item.context_expr
            if (isinstance(ctx, ast.Call)
                    and isinstance(ctx.func, ast.Attribute)
                    and ctx.func.attr == "lease"
                    and isinstance(item.optional_vars, ast.Name)):
                lease_targets.add(item.optional_vars.id)

    def is_leased(expr: ast.expr) -> bool:
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "take"
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id in lease_targets):
            return True
        if isinstance(expr, ast.Name) and expr.id in leased_names:
            return True
        if isinstance(expr, ast.Call):  # np.moveaxis(leased, ...) etc.
            return any(is_leased(a) for a in expr.args)
        return False

    leased_names: set[str] = set()
    lines: list[int] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and is_leased(node.value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    leased_names.add(t.id)
        if (isinstance(node, ast.Return) and node.value is not None
                and is_leased(node.value)):
            lines.append(node.lineno)
    return lines


def fusion_findings(
    specs: Mapping[str, Any] | None = None,
    fused: Mapping[str, Callable[..., Any]] | None = None,
    numba: Mapping[str, Callable[..., Any]] | None = None,
) -> list[Finding]:
    """LINT07 over registered alternate-backend implementations."""
    if specs is None:
        specs = _registry()
    if fused is None or numba is None:
        from ..stencil.spec import FUSED_IMPLS, NUMBA_IMPLS
        fused = dict(FUSED_IMPLS) if fused is None else fused
        numba = dict(NUMBA_IMPLS) if numba is None else numba

    findings: list[Finding] = []
    for backend, impls, needs_pool in (("fused", fused, True),
                                       ("numba", numba, False)):
        for name, impl in sorted(impls.items()):
            file, line = _impl_location(impl)

            def emit(message: str, *, at: int | None = None,
                     suggestion: str = "") -> None:
                findings.append(Finding(
                    code="LINT07", message=message, file=file,
                    line=at if at is not None else line,
                    suggestion=suggestion or
                    "make the implementation match the @stencil "
                    "declaration (the spec is the source of truth)",
                ))

            entry = specs.get(name)
            if entry is None:
                emit(f"{backend} impl registered for '{name}' but no "
                     f"@stencil declaration exists under that name")
                continue
            spec = _spec_of(entry)
            ref = _reference_of(entry)
            ref_params = _impl_params(ref) if ref is not None else None
            impl_params = _impl_params(impl)
            if ref_params is not None and impl_params is not None:
                expected = (["pool"] + ref_params if needs_pool
                            else list(ref_params))
                if needs_pool and (not impl_params
                                   or impl_params[0] != "pool"):
                    emit(f"fused impl of '{name}' must take the scratch "
                         f"pool as its first parameter "
                         f"(got {tuple(impl_params)})")
                elif impl_params != expected:
                    emit(f"{backend} impl of '{name}' signature "
                         f"{tuple(impl_params)} does not match the "
                         f"reference {tuple(expected)} — callers "
                         f"dispatch by the declared signature")
            parsed = _impl_tree(impl)
            if parsed is None:
                continue
            tree, file, _ = parsed
            read_only = [r for r in spec.reads if r not in spec.writes]
            stored = _stored_names(tree)
            for role in read_only:
                if role in stored and impl_params and role in impl_params:
                    emit(f"{backend} impl of '{name}' writes into "
                         f"'{role}', declared read-only by its spec",
                         at=stored[role])
            if needs_pool:
                for lineno in _leased_returns(tree):
                    emit(f"fused impl of '{name}' returns a pool-leased "
                         f"buffer — the lease ends at the with-block and "
                         f"the caller would alias recycled scratch",
                         at=lineno,
                         suggestion="copy into a fresh array (or take "
                                    "the output outside the lease) "
                                    "before returning")
    return findings


# ------------------------------------------------------------------ LINT08
_ALLOC_DEFAULT_F64 = {"zeros", "ones", "empty", "full"}
_NP_MODULES = {"np", "numpy"}


def _is_float64(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Attribute) and expr.attr == "float64":
        return True
    if isinstance(expr, ast.Name) and expr.id == "float64":
        return True
    if isinstance(expr, ast.Constant) and expr.value == "float64":
        return True
    return False


def _guarded(tree: ast.AST) -> bool:
    """True for impls that return NotImplemented somewhere — their
    dtype gate falls back to the reference for non-native dtypes, so a
    float64 constant inside is behind an explicit opt-in."""
    for node in ast.walk(tree):
        if (isinstance(node, ast.Return)
                and isinstance(node.value, ast.Constant)
                and node.value.value is NotImplemented):
            return True
        if (isinstance(node, ast.Return)
                and isinstance(node.value, ast.Name)
                and node.value.id == "NotImplemented"):
            return True
    return False


def _precision_violations(tree: ast.AST) -> list[tuple[int, str]]:
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NP_MODULES):
            if func.attr in _ALLOC_DEFAULT_F64:
                if not any(kw.arg == "dtype" for kw in node.keywords):
                    out.append((node.lineno,
                                f"np.{func.attr}(...) without dtype= "
                                f"allocates float64"))
            if func.attr == "float64":
                out.append((node.lineno, "np.float64(...) cast"))
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if any(_is_float64(a) for a in node.args):
                out.append((node.lineno, ".astype(np.float64)"))
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_float64(kw.value):
                out.append((node.lineno, "dtype=np.float64"))
    return out


def precision_findings(
    specs: Mapping[str, Any] | None = None,
    fused: Mapping[str, Callable[..., Any]] | None = None,
    numba: Mapping[str, Callable[..., Any]] | None = None,
) -> list[Finding]:
    """LINT08 over reference kernels and unguarded backend impls of
    every ``dtype_policy='preserve'`` spec."""
    if specs is None:
        specs = _registry()
    if fused is None or numba is None:
        from ..stencil.spec import FUSED_IMPLS, NUMBA_IMPLS
        fused = dict(FUSED_IMPLS) if fused is None else fused
        numba = dict(NUMBA_IMPLS) if numba is None else numba

    findings: list[Finding] = []
    seen: set[tuple[str, int]] = set()
    for name, entry in sorted(specs.items()):
        spec = _spec_of(entry)
        if getattr(spec, "dtype_policy", "preserve") != "preserve":
            continue
        bodies: list[tuple[str, Callable[..., Any]]] = []
        ref = _reference_of(entry)
        if ref is not None:
            bodies.append(("reference", ref))
        if name in fused:
            bodies.append(("fused impl", fused[name]))
        if name in numba:
            bodies.append(("numba impl", numba[name]))
        for label, fn in bodies:
            parsed = _impl_tree(fn)
            if parsed is None:
                continue
            tree, file, _ = parsed
            if label != "reference" and _guarded(tree):
                continue  # dtype-gated: float64 args never reach it
            for lineno, what in _precision_violations(tree):
                key = (file, lineno)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    code="LINT08",
                    message=(f"{what} in the {label} of '{name}' — the "
                             f"spec declares dtype_policy='preserve' "
                             f"(the paper's single-precision design "
                             f"point)"),
                    file=file, line=lineno,
                    suggestion="derive the dtype from an input array "
                               "(x.dtype), or declare "
                               "dtype_policy='widen' if the upcast is "
                               "intentional",
                ))
    return findings


# ----------------------------------------------------------------- baseline
@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding in the checked-in baseline file."""

    code: str
    file: str            #: path suffix the finding's file must end with
    reason: str
    contains: str = ""   #: optional message substring

    def matches(self, f: Finding) -> bool:
        return (f.code == self.code
                and f.file is not None and f.file.endswith(self.file)
                and (not self.contains or self.contains in f.message))


def load_baseline(path: str | Path) -> list[BaselineEntry]:
    data = json.loads(Path(path).read_text())
    if data.get("version") != 1:
        raise ValueError(f"baseline {path}: unsupported version "
                         f"{data.get('version')!r}")
    entries = []
    for raw in data.get("suppressions", []):
        entries.append(BaselineEntry(
            code=raw["code"], file=raw["file"],
            reason=raw.get("reason", ""),
            contains=raw.get("contains", "")))
    return entries


def apply_baseline(
    findings: list[Finding], entries: list[BaselineEntry], *,
    baseline_path: str | Path | None = None,
) -> tuple[list[Finding], list[Finding], list[Finding]]:
    """Split ``findings`` into (kept, baseline-suppressed, stale-entry
    warnings).  Entries that match nothing produce ``SUPP01`` warnings
    anchored at the baseline file."""
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[int] = set()
    for f in findings:
        hit = next((i for i, e in enumerate(entries) if e.matches(f)),
                   None)
        if hit is None:
            kept.append(f)
        else:
            used.add(hit)
            # tag the provenance so the SARIF export can mark this as
            # an 'external' suppression (vs an in-source allow-comment)
            f._suppressed_via = "baseline"
            suppressed.append(f)
    stale: list[Finding] = []
    for i, e in enumerate(entries):
        if i in used:
            continue
        stale.append(Finding(
            code="SUPP01", severity="warning",
            message=(f"baseline entry ({e.code}, {e.file!r}) matches no "
                     f"finding — the suppression is stale"),
            file=str(baseline_path) if baseline_path else None,
            line=0,
            suggestion="remove the entry from the baseline file",
        ))
    return kept, suppressed, stale


# --------------------------------------------------------------- the pass
def _registry() -> dict[str, Any]:
    from .stepgraph import _default_registry

    return _default_registry()


def graph_findings(graph: StepGraph) -> list[Finding]:
    """All per-graph passes (LINT04/05/06) on one step graph."""
    return (stale_halo_findings(graph)
            + read_before_write_findings(graph)
            + dead_store_findings(graph))


def dataflow_pass(
    *,
    entries: tuple[str, ...] = ("single", "multigpu"),
    registry: Mapping[str, Any] | None = None,
    baseline: str | Path | None = None,
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Run the full dataflow analysis; returns
    ``(findings, suppressed, notes)``.

    ``baseline`` is a path to the checked-in baseline file
    (:data:`DEFAULT_BASELINE` when None; pass ``"none"`` to disable).
    Inline ``# sanitizer: allow[...]`` comments are honored first, the
    baseline second.
    """
    notes: list[str] = []
    raw: list[Finding] = []
    for entry in entries:
        graph = build_step_graph(entry, registry=registry)
        notes.extend(n for n in graph.notes if n not in notes)
        raw.extend(graph_findings(graph))
    raw.extend(fusion_findings(specs=registry))
    raw.extend(precision_findings(specs=registry))

    # the two entry graphs share the inlined single-rank step: dedupe
    deduped: list[Finding] = []
    seen: set[tuple[str, str | None, int | None, str]] = set()
    for f in raw:
        key = (f.code, f.file, f.line, f.message)
        if key in seen:
            continue
        seen.add(key)
        deduped.append(f)

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for f in deduped:
        if origin_suppressed(f.file, f.line, f.code):
            suppressed.append(f)
        else:
            findings.append(f)

    if baseline != "none":
        path = DEFAULT_BASELINE if baseline is None else Path(baseline)
        if Path(path).exists():
            entries_ = load_baseline(path)
            findings, base_supp, stale = apply_baseline(
                findings, entries_, baseline_path=path)
            suppressed.extend(base_supp)
            findings.extend(stale)
    return findings, suppressed, notes
