"""racecheck: a happens-before checker over virtual-device op timelines.

The model (after ``cuda-memcheck --tool racecheck``, lifted from the
intra-block shared-memory level to the stream/engine level the paper's
overlap methods live at):

* an op *happens before* another when it precedes it in the same stream's
  program order, when the later op (transitively) waited on it through a
  recorded event (``Stream.wait_event`` / ``schedule(after=...)`` with op
  provenance), or when a ``GPUDevice.synchronize()`` barrier separates
  their epochs;
* two ops *conflict* when their declared :class:`~repro.gpu.device.Access`
  regions overlap and at least one writes;
* a conflicting, unordered pair is a hazard (``RACE01``) — **even when
  the modeled timeline happens to serialize them**.  The single DMA/MPI
  engines of the Tesla S1070 mask many missing event edges (the transfers
  queue anyway); on hardware with more concurrency the same submission
  order races.  That masked class is precisely what this pass exists to
  catch, and why the check is edge-based rather than time-overlap-based.

Kernel-vs-kernel pairs are skipped by default: the GT200 of the paper
runs one kernel at a time, so compute-compute ordering is a hardware
guarantee rather than a programmer obligation.  Pass
``check_kernel_pairs=True`` to audit for devices with concurrent kernel
execution.

Identical hazards (same op-name pair, same buffer) recurring across
substeps collapse into one finding with an occurrence count — one root
cause, one report line, exactly as cuda-memcheck deduplicates.
"""
from __future__ import annotations

from typing import Iterable

from ..gpu.device import GPUDevice, Op
from .findings import Finding

__all__ = ["happens_before_clocks", "happens_before", "racecheck_device",
           "racecheck_ops"]

#: op kinds that move data and therefore participate in hazard pairs
_COPY_KINDS = frozenset({"h2d", "d2h", "mpi"})


def happens_before_clocks(ops: Iterable[Op]) -> dict[int, dict[int, int]]:
    """Vector clocks per op: ``clock[seq][sid]`` is the highest ``seq`` of
    an op on stream ``sid`` ordered before (or equal to) op ``seq``.

    Built in one submission-order sweep: each op joins its stream's
    running clock with the clocks of its explicit dependencies, then
    advances its own stream component.
    """
    stream_clock: dict[int, dict[int, int]] = {}
    op_clock: dict[int, dict[int, int]] = {}
    for op in sorted(ops, key=lambda o: o.seq):
        clock = dict(stream_clock.get(op.stream, {}))
        for dep in op.deps:
            for sid, s in op_clock.get(dep, {}).items():
                if s > clock.get(sid, -1):
                    clock[sid] = s
        clock[op.stream] = op.seq
        op_clock[op.seq] = clock
        stream_clock[op.stream] = clock
    return op_clock


def happens_before(a: Op, b: Op, clocks: dict[int, dict[int, int]]) -> bool:
    """True when ``a`` is ordered before ``b`` by epochs, program order,
    or the transitive event-edge closure."""
    if a.seq == b.seq:
        return False
    if a.epoch != b.epoch:
        return a.epoch < b.epoch
    return clocks.get(b.seq, {}).get(a.stream, -1) >= a.seq


def racecheck_ops(ops: list[Op], *, device_label: str = "gpu",
                  check_kernel_pairs: bool = False) -> list[Finding]:
    """Scan one op timeline for unordered conflicting access pairs."""
    annotated = [op for op in ops if op.accesses]
    clocks = happens_before_clocks(ops)

    # bucket (op, access) by buffer so only same-buffer pairs are compared
    by_buffer: dict[str, list[tuple[Op, object]]] = {}
    for op in annotated:
        for acc in op.accesses:
            by_buffer.setdefault(acc.buffer, []).append((op, acc))

    found: dict[tuple[str, str, str], Finding] = {}
    for buffer, entries in by_buffer.items():
        entries.sort(key=lambda e: e[0].seq)
        for j in range(len(entries)):
            op_b, acc_b = entries[j]
            # shadow-access semantics: each access races against the most
            # recent conflicting unordered access only — one root cause,
            # one finding, even when older accesses are also unordered
            # (fixing the reported edge orders those transitively)
            for i in range(j - 1, -1, -1):
                op_a, acc_a = entries[i]
                if op_a.seq == op_b.seq:
                    continue
                if op_a.epoch != op_b.epoch:
                    break                        # a device sync separates them
                if (not check_kernel_pairs
                        and op_a.kind not in _COPY_KINDS
                        and op_b.kind not in _COPY_KINDS):
                    continue                     # compute engine serializes
                if not acc_a.conflicts(acc_b):
                    continue
                if happens_before(op_a, op_b, clocks):
                    continue
                first, second = op_a, op_b
                key = (first.name, second.name, buffer)
                if key in found:
                    found[key].occurrences += 1
                    break
                found[key] = Finding(
                    code="RACE01",
                    message=(f"{first.kind} '{first.name}' and {second.kind} "
                             f"'{second.name}' access '{buffer}' with no "
                             f"ordering edge between streams "
                             f"{first.stream} and {second.stream}"),
                    device=device_label,
                    stream=first.stream,
                    op=first.name,
                    op_other=second.name,
                    buffer=buffer,
                    t0=first.start,
                    suggestion=("record an event after the first access and "
                                "wait_event it on the second op's stream"),
                )
                break
    return sorted(found.values(), key=lambda f: (f.t0 or 0.0, f.op or ""))


def racecheck_device(device: GPUDevice, *,
                     check_kernel_pairs: bool = False) -> list[Finding]:
    """Racecheck everything currently on a device's timeline."""
    return racecheck_ops(device.timeline,
                         device_label=getattr(device, "label", "gpu"),
                         check_kernel_pairs=check_kernel_pairs)
