"""Compute-sanitizer for the virtual GPU machine (docs/ANALYSIS.md).

Three passes over the reproduction's real entry points, one shared
finding format:

* **racecheck** (:mod:`repro.analysis.racecheck`) — happens-before
  checking of device op timelines, after ``cuda-memcheck --tool
  racecheck``: conflicting accesses on different streams with no event
  edge are hazards even when the modeled engines happen to serialize
  them;
* **memcheck** (:mod:`repro.analysis.memcheck`) — DeviceArray lifecycle
  tracking: use-after-free, double free, leaks at teardown,
  uninitialized reads, allocator accounting drift;
* **asuca-lint** (:mod:`repro.analysis.lint`) — enforcement of the
  paper's structural invariants: no PCIe transfers inside the step loop
  and occupancy-valid launch configurations (AST), plus probe-verified
  stencil halo declarations (LINT03 runs each kernel against its
  ``@stencil`` declaration instead of guessing from slices);
* **dataflow** (:mod:`repro.analysis.dataflow` over the step graphs of
  :mod:`repro.analysis.stepgraph`) — whole-program def/use analysis of
  the model step loop: stale-halo reads per topology axis (LINT04),
  read-before-first-write (LINT05), dead stores (LINT06),
  fused/numba-implementation drift from the ``@stencil`` declaration
  (LINT07), and float64 upcasts in dtype-preserving paths (LINT08),
  gated by inline allow-comments and the checked-in
  ``analysis/baseline.json``.

``repro analyze`` (the CLI) runs them all and can export the combined
report as SARIF 2.1.0 (:mod:`repro.analysis.sarif`);
:func:`repro.analysis.run_all` is the library entry point.
"""
from .findings import CODES, Finding, Report, codes_table
from .driver import (
    lint_pass,
    racecheck_overlap_methods,
    run_all,
    sanitized_gpu_smoke,
    sanitized_multigpu_smoke,
)
from .dataflow import dataflow_pass, graph_findings
from .lint import lint_paths, lint_stencils
from .memcheck import MemcheckTracker, memcheck_session
from .racecheck import (
    happens_before,
    happens_before_clocks,
    racecheck_device,
    racecheck_ops,
)
from .sarif import to_sarif, write_sarif
from .stepgraph import StepGraph, build_step_graph

__all__ = [
    "CODES", "Finding", "Report", "codes_table",
    "lint_pass", "lint_paths", "lint_stencils",
    "dataflow_pass", "graph_findings",
    "StepGraph", "build_step_graph",
    "racecheck_overlap_methods", "run_all",
    "sanitized_gpu_smoke", "sanitized_multigpu_smoke",
    "MemcheckTracker", "memcheck_session",
    "happens_before", "happens_before_clocks",
    "racecheck_device", "racecheck_ops",
    "to_sarif", "write_sarif",
]
