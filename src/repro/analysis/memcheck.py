"""memcheck: DeviceArray lifecycle tracking for the virtual GPU.

A :class:`MemcheckTracker` attaches to one or more
:class:`~repro.gpu.device.GPUDevice` instances (``tracker.attach(dev)``
sets ``dev.memcheck``); from then on every
:class:`~repro.gpu.memory.DeviceArray` alloc/free/transfer notifies it.
At :meth:`finish` it folds the observed lifecycle into findings:

* ``MEM01`` — a transfer or device-side write touched a freed array;
* ``MEM02`` — an array was freed twice (``free()`` itself stays
  idempotent: the accounting is safe, the redundant call is the smell);
* ``MEM03`` — arrays still allocated at teardown (leak);
* ``MEM04`` — a D2H copy read an array no H2D copy or device write ever
  initialized;
* ``MEM05`` — ``device.allocated_bytes`` drifted from the sum of live
  allocations (accounting corruption in the allocator path).

MEM01/02/04 are recorded at the offending call, so the finding carries
the array's buffer identity and the device/virtual-time coordinates of
the op stream it happened on.
"""
from __future__ import annotations

import contextlib
from dataclasses import dataclass

from .findings import Finding

__all__ = ["MemcheckTracker", "memcheck_session"]


@dataclass
class _Live:
    buffer: str
    nbytes: int
    device_label: str


class MemcheckTracker:
    """Collects DeviceArray lifecycle events from attached devices."""

    def __init__(self):
        self.devices: list = []
        self._live: dict[str, _Live] = {}      #: buffer -> allocation
        self.findings: list[Finding] = []
        self.allocs = 0
        self.frees = 0

    # ---------------------------------------------------------- attach
    def attach(self, device) -> "MemcheckTracker":
        if device not in self.devices:
            self.devices.append(device)
            device.memcheck = self
        return self

    def detach_all(self) -> None:
        for dev in self.devices:
            if dev.memcheck is self:
                dev.memcheck = None
        self.devices.clear()

    # ----------------------------------------------------------- hooks
    def on_alloc(self, arr) -> None:
        self.allocs += 1
        self._live[arr.buffer] = _Live(arr.buffer, arr.nbytes,
                                       arr.device.label)

    def on_free(self, arr, *, redundant: bool) -> None:
        self.frees += 1
        if redundant:
            self.findings.append(Finding(
                code="MEM02",
                message=f"'{arr.buffer}' freed twice",
                device=arr.device.label,
                buffer=arr.buffer,
                t0=arr.device.elapsed(),
                suggestion="drop the second free(); the first already "
                           "released the allocation",
            ))
            return
        self._live.pop(arr.buffer, None)

    def on_transfer(self, arr, kind: str) -> None:
        if arr._freed:
            self.findings.append(Finding(
                code="MEM01",
                message=f"{kind} transfer on freed array '{arr.buffer}'",
                device=arr.device.label,
                stream=arr.device.default_stream.sid,
                op=f"{kind}:{arr.buffer}",
                buffer=arr.buffer,
                t0=arr.device.elapsed(),
                suggestion="keep the array alive until its last transfer, "
                           "or re-upload before reading",
            ))
        elif kind == "d2h" and not arr._initialized:
            self.findings.append(Finding(
                code="MEM04",
                message=(f"d2h read of '{arr.buffer}' before any h2d copy "
                         f"or device-side write"),
                device=arr.device.label,
                stream=arr.device.default_stream.sid,
                op=f"d2h:{arr.buffer}",
                buffer=arr.buffer,
                t0=arr.device.elapsed(),
                suggestion="upload or compute into the array before "
                           "downloading it",
            ))

    def on_device_write(self, arr) -> None:
        if arr._freed:
            self.findings.append(Finding(
                code="MEM01",
                message=f"device-side write to freed array '{arr.buffer}'",
                device=arr.device.label,
                buffer=arr.buffer,
                t0=arr.device.elapsed(),
                suggestion="keep the array alive while kernels still "
                           "write it",
            ))

    # ---------------------------------------------------------- finish
    def live_bytes(self, device_label: str) -> int:
        return sum(a.nbytes for a in self._live.values()
                   if a.device_label == device_label)

    def finish(self, *, expect_teardown: bool = True) -> list[Finding]:
        """End-of-run checks (leaks, capacity drift) plus everything
        recorded along the way.  ``expect_teardown=False`` skips the leak
        check for callers inspecting a still-live run."""
        out = list(self.findings)
        if expect_teardown:
            for a in self._live.values():
                out.append(Finding(
                    code="MEM03",
                    message=(f"'{a.buffer}' ({a.nbytes} B) still allocated "
                             f"at teardown"),
                    device=a.device_label,
                    buffer=a.buffer,
                    suggestion="free() staged arrays (e.g. "
                               "GpuAsucaRunner.teardown()) when the run "
                               "ends",
                ))
        for dev in self.devices:
            tracked = self.live_bytes(dev.label)
            if dev.allocated_bytes != tracked:
                out.append(Finding(
                    code="MEM05",
                    message=(f"allocator reports {dev.allocated_bytes} B "
                             f"but live allocations sum to {tracked} B"),
                    device=dev.label,
                    suggestion="an alloc/free path bypassed the "
                               "DeviceArray accounting",
                ))
        return out


@contextlib.contextmanager
def memcheck_session(*devices):
    """Attach a fresh tracker to ``devices`` for the enclosed block and
    detach afterwards; yields the tracker (call ``finish()`` on it after
    teardown to collect findings)."""
    tracker = MemcheckTracker()
    for dev in devices:
        tracker.attach(dev)
    try:
        yield tracker
    finally:
        tracker.detach_all()
