"""asuca-lint: AST-based static checks of the repo's GPU invariants.

Three rules, each guarding a claim the paper's speedup rests on:

* ``LINT01`` — **the full-GPU invariant** (Sec. III: "the entire time
  loop runs on the GPU").  No ``copy_to_host``/``copy_from_host`` call
  may be reachable from inside a step loop: flagged when a transfer (or a
  same-module helper that directly transfers) is called anywhere inside a
  function named ``step``/``_step_once``, or inside a ``for``/``while``
  loop of a function named ``run``/``advance``.  Call resolution is one
  level deep and by name within the module — deliberately simple, static,
  and documented; checkpoint/halo paths are allowlisted by function-name
  pattern, and anything else justified carries an inline suppression.

* ``LINT02`` — **launch configurations** must respect the GT200
  occupancy rules the paper's (64, 4, 1) blocks were chosen under: every
  literal ``LaunchConfig(block=(x, y, z))`` must fit the per-SM thread
  limit and keep >= 50% occupancy (the era's latency-hiding threshold,
  :mod:`repro.gpu.occupancy`).

* ``LINT03`` — **stencil widths**: every ``@stencil`` declaration in
  ``core/``/``physics/`` must fit the grid's halo budget, and the
  declared width must be *true*: the probe harness
  (:mod:`repro.stencil.verify`) perturbs halo rings beyond the declared
  width and asserts the kernel's interior output is invariant.  A kernel
  that reads farther than it declares would read a neighbor rank's
  unexchanged cells in a distributed run.  (This replaces the old
  AST slice-offset guess — the declaration is now the source of truth,
  and the check runs the kernel instead of pattern-matching its source.)

Suppression: an inline ``# sanitizer: allow[CODE] <rationale>`` comment
on the flagged line (for LINT03: the ``@stencil`` declaration line)
moves the finding to the report's suppressed list.
"""
from __future__ import annotations

import ast
from pathlib import Path

from ..gpu.occupancy import GT200_LIMITS, SMLimits, occupancy
from .findings import Finding, is_suppressed, origin_suppressed

__all__ = ["lint_paths", "lint_stencils", "declared_halo"]

#: transfer methods the full-GPU invariant forbids inside step loops
TRANSFER_NAMES = frozenset({"copy_to_host", "copy_from_host"})
#: functions whose whole body counts as "inside the time loop"
STEP_BODY_FUNCS = frozenset({"step", "_step_once"})
#: functions whose for/while loops count as the time loop
STEP_LOOP_FUNCS = frozenset({"run", "advance"})
#: function-name substrings exempt from LINT01 (restart/halo machinery
#: legitimately transfers at its own accounted points)
ALLOW_NAME_PATTERNS = ("checkpoint", "halo", "restore", "recover")


def declared_halo() -> int:
    """The grid's declared halo width (the default of
    :func:`repro.core.grid.make_grid`) — the budget LINT03 checks
    stencil slices against."""
    import inspect

    from ..core.grid import make_grid

    return int(inspect.signature(make_grid).parameters["halo"].default)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_allowed_name(name: str) -> bool:
    low = name.lower()
    return any(p in low for p in ALLOW_NAME_PATTERNS)


class _ModuleLint:
    def __init__(self, path: Path, display: str, tree: ast.Module,
                 source_lines: list[str], *, limits: SMLimits):
        self.path = path
        self.display = display
        self.tree = tree
        self.lines = source_lines
        self.limits = limits
        self.findings: list[Finding] = []
        self.suppressed: list[Finding] = []
        #: function name -> does any same-name function here transfer?
        self.transfers_in: dict[str, bool] = {}

    # -------------------------------------------------------- helpers
    def _emit(self, finding: Finding) -> None:
        if is_suppressed(self.lines, finding.line or 0, finding.code):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)

    def _functions(self):
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _direct_transfer_calls(fn: ast.AST) -> list[ast.Call]:
        return [n for n in ast.walk(fn)
                if isinstance(n, ast.Call) and _call_name(n) in TRANSFER_NAMES]

    # ---------------------------------------------------------- LINT01
    def check_step_transfers(self) -> None:
        for fn in self._functions():
            self.transfers_in[fn.name] = (
                self.transfers_in.get(fn.name, False)
                or bool(self._direct_transfer_calls(fn)))

        for fn in self._functions():
            if fn.name in STEP_BODY_FUNCS:
                regions = [fn]
            elif fn.name in STEP_LOOP_FUNCS:
                regions = [n for n in ast.walk(fn)
                           if isinstance(n, (ast.For, ast.While))]
            else:
                continue
            if _is_allowed_name(fn.name):
                continue
            for region in regions:
                for call in ast.walk(region):
                    if not isinstance(call, ast.Call):
                        continue
                    name = _call_name(call)
                    if name is None:
                        continue
                    direct = name in TRANSFER_NAMES
                    via = (not direct and self.transfers_in.get(name, False)
                           and not _is_allowed_name(name))
                    if not (direct or via):
                        continue
                    what = (f"'{name}' transfers host<->device" if direct
                            else f"'{name}' (which transfers host<->device)")
                    self._emit(Finding(
                        code="LINT01",
                        message=(f"{what} inside the step loop of "
                                 f"'{fn.name}' — the full-GPU invariant "
                                 f"keeps PCIe traffic out of the time loop"),
                        file=self.display, line=call.lineno,
                        suggestion="hoist the transfer out of the loop, or "
                                   "suppress with '# sanitizer: "
                                   "allow[LINT01] <why>' if this is an "
                                   "accounted checkpoint/halo path",
                    ))

    # ---------------------------------------------------------- LINT02
    def check_launch_configs(self) -> None:
        for call in ast.walk(self.tree):
            if not (isinstance(call, ast.Call)
                    and _call_name(call) == "LaunchConfig"):
                continue
            block = None
            if call.args:
                block = call.args[0]
            for kw in call.keywords:
                if kw.arg == "block":
                    block = kw.value
            if not isinstance(block, ast.Tuple):
                continue
            dims = []
            for elt in block.elts:
                if not (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, int)):
                    break
                dims.append(elt.value)
            else:
                threads = 1
                for d in dims:
                    threads *= d
                if threads < 1 or threads > self.limits.max_threads:
                    occ = None
                else:
                    occ = occupancy(threads, limits=self.limits)
                if occ is not None and occ.latency_hiding_ok:
                    continue
                detail = (f"{threads} threads/block exceeds the "
                          f"{self.limits.name} limit of "
                          f"{self.limits.max_threads}" if occ is None else
                          f"block of {threads} threads reaches only "
                          f"{occ.occupancy:.0%} occupancy "
                          f"(limited by {occ.limiter}; >= 50% needed to "
                          f"hide memory latency)")
                self._emit(Finding(
                    code="LINT02",
                    message=f"LaunchConfig(block={tuple(dims)}): {detail}",
                    file=self.display, line=call.lineno,
                    suggestion="use a block geometry validated by "
                               "repro.gpu.occupancy (e.g. the paper's "
                               "(64, 4, 1))",
                ))


def lint_paths(
    root: str | Path,
    *,
    limits: SMLimits = GT200_LIMITS,
) -> tuple[list[Finding], list[Finding]]:
    """AST lint (LINT01/LINT02) over every ``*.py`` under ``root`` (or
    the single file ``root``); returns ``(findings, suppressed)``.  The
    stencil-width check is :func:`lint_stencils` — it runs kernels, not
    the AST."""
    root = Path(root)
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for path in files:
        display = str(path)
        text = path.read_text()
        tree = ast.parse(text, filename=display)
        mod = _ModuleLint(path, display, tree, text.splitlines(),
                          limits=limits)
        mod.check_step_transfers()
        mod.check_launch_configs()
        findings.extend(mod.findings)
        suppressed.extend(mod.suppressed)
    return findings, suppressed


# -------------------------------------------------------------------- LINT03
def lint_stencils(
    *, halo: int | None = None, seed: int = 0,
) -> tuple[list[Finding], list[Finding]]:
    """LINT03 over the stencil declarations; returns
    ``(findings, suppressed)``.

    Two checks per registered :class:`~repro.stencil.spec.StencilSpec`:

    * the declared halo must fit the grid's halo budget
      (:func:`declared_halo`), and
    * the declaration must be honest — the probe harness perturbs every
      halo ring beyond the declared width and the kernel's interior
      output must not change (:func:`repro.stencil.verify.probe_spec`).

    Findings anchor at the ``@stencil`` declaration (``spec.origin``),
    where an inline ``# sanitizer: allow[LINT03]`` comment suppresses.
    """
    from ..stencil import load_dycore_specs
    from ..stencil.verify import probe_all

    budget = declared_halo() if halo is None else halo
    findings: list[Finding] = []
    suppressed: list[Finding] = []

    def emit(finding: Finding, origin: tuple[str, int]) -> None:
        if origin_suppressed(origin[0], origin[1], "LINT03"):
            suppressed.append(finding)
        else:
            findings.append(finding)

    specs = load_dycore_specs()
    for name, spec in sorted(specs.items()):
        origin = spec.origin or ("<unknown>", 0)
        if spec.halo > budget:
            emit(Finding(
                code="LINT03",
                message=(f"stencil '{name}' declares halo {spec.halo}, "
                         f"wider than the grid's halo budget {budget} — "
                         f"the exchange cannot satisfy it"),
                file=origin[0], line=origin[1],
                suggestion="narrow the stencil or raise the grid halo",
            ), origin)
    for result in probe_all(seed=seed):
        if result.probed and not result.clean:
            spec = specs.get(result.name)
            origin = (spec.origin if spec and spec.origin
                      else ("<unknown>", 0))
            emit(Finding(
                code="LINT03",
                message=(f"stencil '{result.name}' declares halo "
                         f"{result.declared_halo} but reads farther: "
                         f"{result.detail}"),
                file=origin[0], line=origin[1],
                suggestion="raise the declared halo to the width the "
                           "kernel actually reads (and check the halo "
                           "exchange covers it)",
            ), origin)
    return findings, suppressed
