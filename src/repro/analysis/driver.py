"""Orchestration for ``repro analyze``: the three passes over the repo's
real entry points.

* :func:`lint_pass` — asuca-lint over a source tree;
* :func:`racecheck_overlap_methods` — schedule one long step under each
  of the paper's overlap methods (1: pipeline, 2: kernel division,
  3: fusion) plus the serial reference, and racecheck every timeline;
* :func:`sanitized_gpu_smoke` — a short single-GPU run
  (upload -> steps -> download -> teardown) under a memcheck tracker and
  a final racecheck sweep;
* :func:`sanitized_multigpu_smoke` — a decomposed run with per-rank
  virtual devices, each rank's timeline racechecked and the rank devices
  memchecked;
* the whole-program dataflow pass
  (:func:`repro.analysis.dataflow.dataflow_pass`) — the step graph built
  from the model loop checked for stale halos, liveness, fusion drift,
  and precision leaks (LINT04..LINT08);
* :func:`run_all` — everything above folded into one :class:`Report`.

The smoke helpers accept ``seed=...`` fault seeds so the test suite (and
``repro analyze --seed-hazard``) can demonstrate that a planted bug is
caught with the exact code/location — the sanitizer's own regression
fixtures.
"""
from __future__ import annotations

from pathlib import Path

from .findings import CODES, Finding, Report, stale_suppressions
from .lint import lint_paths, lint_stencils
from .memcheck import memcheck_session
from .racecheck import racecheck_device

__all__ = ["lint_pass", "racecheck_overlap_methods", "sanitized_gpu_smoke",
           "sanitized_multigpu_smoke", "run_all", "OVERLAP_VARIANTS"]

#: the schedule variants racecheck sweeps: name -> OverlapConfig kwargs
#: (+ overlap flag).  One entry per paper method, plus the serial
#: reference path.
OVERLAP_VARIANTS: dict[str, tuple[dict, bool]] = {
    "method1-pipeline": (dict(method1_pipeline=True, method2_divide=False,
                              method3_fuse=False), True),
    "method2-divide": (dict(method1_pipeline=True, method2_divide=True,
                            method3_fuse=False), True),
    "method3-fuse": (dict(method1_pipeline=True, method2_divide=True,
                          method3_fuse=True), True),
    "serial": (dict(method1_pipeline=False, method2_divide=False,
                    method3_fuse=False), False),
}


def lint_pass(root: str | Path) -> tuple[list[Finding], list[Finding]]:
    """asuca-lint over ``root``: the AST rules (LINT01/LINT02) plus the
    declaration-driven stencil halo probes (LINT03); returns
    (findings, suppressed)."""
    findings, suppressed = lint_paths(root)
    sf, ss = lint_stencils()
    return findings + sf, suppressed + ss


def racecheck_overlap_methods(
    *, ns: int | None = None, seed_hazard: str | None = None,
    variants: dict | None = None,
) -> list[Finding]:
    """Schedule one long step per overlap variant and racecheck the
    resulting device timelines.  ``seed_hazard`` forwards the test-only
    fault seed of :class:`~repro.dist.overlap.OverlapConfig`."""
    from ..dist.overlap import OverlapConfig, OverlapModel
    from ..perf.costmodel import DEFAULT_NS

    findings: list[Finding] = []
    for name, (cfg_kwargs, overlap) in (variants or OVERLAP_VARIANTS).items():
        config = OverlapConfig(seed_hazard=seed_hazard, **cfg_kwargs)
        model = OverlapModel(ns=ns or DEFAULT_NS, config=config)
        timeline = model.step_timeline(overlap)
        for f in racecheck_device(timeline.device):
            f.device = f"{f.device or 'gpu'}:{name}"
            findings.append(f)
    return findings


def sanitized_gpu_smoke(
    workload: str = "shear-layer", steps: int = 2, *,
    seed: str | None = None, session=None,
) -> list[Finding]:
    """Short single-GPU run under the full dynamic sanitizer.

    ``seed='uaf'`` plants the runner-teardown use-after-free the test
    suite asserts on: the staged arrays are freed behind the runner's
    back and the output download then reads a dead array.
    """
    from ..api import make_case
    from ..gpu.device import GPUDevice
    from ..gpu.runtime import GpuAsucaRunner
    from ..gpu.spec import TESLA_S1070

    case = make_case(workload)
    device = GPUDevice(TESLA_S1070)
    with memcheck_session(device) as tracker:
        runner = GpuAsucaRunner(case.model, device)
        runner.upload(case.state)
        state = case.state
        for _ in range(steps):
            state = runner.step(state)
        if seed == "uaf":
            # planted fault: free the staged arrays without telling the
            # runner, then download as usual — a use-after-free
            for d in runner._device_arrays.values():
                d.free()
            runner.download(state, names=["rhou"])
            runner._device_arrays.clear()
        else:
            runner.download(state)
            runner.teardown()
        findings = tracker.finish()
    findings.extend(racecheck_device(device))
    if session is not None:
        session.collect_device(device, rank=0)
    return findings


def sanitized_multigpu_smoke(
    workload: str = "shear-layer", px: int = 2, py: int = 2,
    steps: int = 2, *, session=None,
) -> list[Finding]:
    """Decomposed run with per-rank devices; each rank's timeline is
    racechecked and the devices are memchecked for accounting drift."""
    from ..api import make_case
    from ..dist.multigpu import MultiGpuAsuca

    # widen the decomposed axes past the halo minimum (the shear-layer
    # default is a 4-cell-deep y slab — fine on one rank, unsplittable)
    case = make_case(workload, nx=8 * px, ny=8 * py)
    machine = MultiGpuAsuca(case.grid, case.ref, px, py, case.model.config,
                            relaxation=getattr(case.model, "relaxation",
                                               None))
    devices = machine.attach_devices()
    with memcheck_session(*devices) as tracker:
        states = machine.scatter_state(case.state)
        machine.exchange_all(states, None)
        machine.run(states, steps)
        findings = tracker.finish()
    for rank, dev in enumerate(devices):
        findings.extend(racecheck_device(dev))
        if session is not None:
            session.collect_device(dev, rank=rank)
    if session is not None:
        session.collect_comm(machine.comm)
    return findings


def run_all(
    src_root: str | Path | None = None, *,
    workload: str = "shear-layer", steps: int = 2,
    px: int = 2, py: int = 2, session=None,
    lint: bool = True, racecheck: bool = True, smoke: bool = True,
    dataflow: bool = True, baseline: str | Path | None = None,
    seed_hazard: str | None = None,
) -> Report:
    """Every pass, one report — the engine behind ``repro analyze``.

    ``baseline`` forwards to the dataflow pass (None = the checked-in
    ``analysis/baseline.json``; ``"none"`` disables it).  The report
    grows a ``notes`` attribute carrying the step-graph walker's
    conservative-assumption notes.
    """
    from .dataflow import dataflow_pass

    report = Report()
    notes: list[str] = []
    if lint:
        root = Path(src_root) if src_root else Path(__file__).parents[1]
        found, suppressed = lint_pass(root)
        report.extend(found, passname="asuca-lint")
        report.suppressed.extend(suppressed)
    if dataflow:
        found, suppressed, notes = dataflow_pass(baseline=baseline)
        report.extend(found, passname="dataflow")
        report.suppressed.extend(suppressed)
    if racecheck:
        report.extend(racecheck_overlap_methods(seed_hazard=seed_hazard),
                      passname="racecheck")
    if smoke:
        seed = "uaf" if seed_hazard == "uaf" else None
        report.extend(sanitized_gpu_smoke(workload, steps, seed=seed,
                                          session=session),
                      passname="memcheck")
        report.extend(sanitized_multigpu_smoke(workload, px, py, steps,
                                               session=session),
                      passname="multigpu-smoke")
    if lint or dataflow:
        # stale allow-comments: only codes whose static pass actually ran
        # are provably stale
        ran = {code for code, info in CODES.items()
               if info.kind == "static"
               and ((info.passname == "asuca-lint" and lint)
                    or (info.passname == "dataflow" and dataflow))}
        root = Path(src_root) if src_root else Path(__file__).parents[1]
        report.extend(stale_suppressions([root], report, ran),
                      passname="suppressions")
    report.notes = notes
    if session is not None:
        report.to_session(session)
    return report
