"""Whole-program step graph of the model time loop.

The ``@stencil`` registry declares what each kernel reads, writes, and
how far it reaches (:mod:`repro.stencil.spec`); the step loop decides
*when* each kernel runs and where the halo exchanges sit.  This module
joins the two: it walks the AST of the real step sequence —
:meth:`repro.core.model.AsucaModel.step` (which drives
:meth:`repro.core.rk3.Rk3Integrator.step_phases`, the acoustic substeps
and the physics) and :meth:`repro.dist.multigpu.MultiGpuAsuca.step` —
resolving every kernel invocation against the registry and every
exchange point (``yield`` of ``step_phases``, ``exchange``/
``_exchange``/``exchange_all``/``fill_halos_state`` calls, with the
per-axis coverage of :meth:`repro.dist.halo.HaloExchanger.exchange`)
into a linear sequence of :class:`Node` records whose edges are
field-level def/use chains.  The dataflow passes
(:mod:`repro.analysis.dataflow`: LINT04/05/06) run over this graph.

Scope and honesty
-----------------
The walker is deliberately a *declaration-trusting* abstract
interpreter, not a Python interpreter:

* values are tracked symbolically — the model state (bound by the
  ``state``/``st``/``base``/``cur``/``new`` parameter-name convention),
  sets of underlying prognostic fields, literal field-name lists, or
  unknown;
* known step-path helpers (``step_phases``, ``substep``, ``finish``,
  ``slow_tendencies``, ``build_context`` and same-module functions) are
  inlined; branches are linearized (writes are *may*-writes, exchanges
  are taken optimistically); loops are unrolled once — the cyclic
  passes double the node sequence instead;
* anything it cannot resolve degrades *loudly*: a call that receives
  the state but is not declared becomes an ``opaque`` node (reads
  everything, writes nothing) and an entry in :attr:`StepGraph.notes`,
  and an exchange whose field list cannot be resolved statically is
  treated as a full exchange, also noted.

That makes the graph conservative for staleness (any visible interior
write taints halos) and optimistic for refresh — the combination that
keeps the clean repo at zero findings while still catching the bug
class the pipelined-halo roadmap item will make easy to introduce:
a declared-``halo>0`` kernel consuming a field written since the last
exchange on the relevant topology axis.
"""
from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field as dfield
from pathlib import Path
from typing import Any, Callable, Iterable

__all__ = [
    "Node", "StepGraph", "build_step_graph", "build_graph_for_function",
    "exchange_default_axes", "PROGNOSTIC_FIELDS", "MOISTURE_FIELDS",
    "STATE_PARAM_NAMES",
]

#: moisture species carried in ``State.q``
MOISTURE_FIELDS: tuple[str, ...] = ("qv", "qc", "qr", "qi", "qs")

#: every trackable state field (prognostics + the precip diagnostic)
PROGNOSTIC_FIELDS: frozenset[str] = frozenset(
    {"rho", "rhou", "rhov", "rhow", "rhotheta", *MOISTURE_FIELDS, "precip"})

#: parameter/attribute names that bind the model State by convention
STATE_PARAM_NAMES: frozenset[str] = frozenset(
    {"state", "st", "base", "cur", "new", "states", "new_states"})

#: call names that refresh halos (the exchange hook spellings across the
#: single-domain model, the distributed driver, and the periodic fill)
EXCHANGE_NAMES: frozenset[str] = frozenset(
    {"exchange", "_exchange", "exchange_all", "fill_halos_state"})

#: State methods whose field reads are known without walking them
KNOWN_STATE_METHODS: dict[str, tuple[str, ...]] = {
    "velocities": ("rho", "rhou", "rhov", "rhow"),
    "theta_m": ("rho", "rhotheta"),
    "total_mass": ("rho",),
    "validate": tuple(sorted(PROGNOSTIC_FIELDS - {"precip"})),
}

_INLINE_DEPTH_LIMIT = 10

#: builtins that pass data through without hiding state mutations —
#: they never become opaque nodes
_TRANSPARENT_CALLS = frozenset({
    "zip", "list", "tuple", "sorted", "enumerate", "reversed", "len",
    "range", "min", "max", "abs", "float", "int", "next", "print",
    "getattr", "iter", "dict", "set",
})


def exchange_default_axes() -> tuple[int, ...]:
    """The topology axes one :meth:`HaloExchanger.exchange` call covers
    by default, read from the real signature in :mod:`repro.dist.halo`
    (so the graph cannot drift from the exchanger)."""
    try:
        from ..dist.halo import HaloExchanger

        default = inspect.signature(
            HaloExchanger.exchange).parameters["axes"].default
        return tuple(int(a) for a in default)
    except Exception:
        return (0, 1)


# ---------------------------------------------------------------- values
@dataclass(frozen=True)
class Val:
    """Symbolic value: the state object, a set of underlying fields, a
    literal field-name list, or unknown (all attributes empty)."""

    fields: frozenset[str] = frozenset()
    token: str | None = None        #: scoped local-variable token
    is_state: bool = False
    names: tuple[str, ...] | None = None  #: literal list of field names
    #: True only for genuine views of state memory (``st.rho``,
    #: ``state.q[name]``) — a derived temporary carries the *fields* it
    #: was computed from, but writing into it does not write the state
    alias: bool = False


def _store_targets(base: Val) -> set[str]:
    """What a subscript store into ``base`` writes: the state fields
    only when ``base`` aliases state memory, else the local token."""
    if base.fields and (base.alias or not base.token):
        return set(base.fields)
    if base.token:
        return {base.token}
    return set()


_UNKNOWN = Val()
_STATE = Val(is_state=True, alias=True)


# ----------------------------------------------------------------- nodes
@dataclass
class Node:
    """One event of the step sequence."""

    idx: int
    kind: str           #: 'kernel' | 'exchange' | 'compute' | 'opaque'
    name: str           #: spec name, 'exchange', or a short description
    file: str
    line: int
    #: names read: state fields and/or scoped local tokens
    reads: frozenset[str] = frozenset()
    #: names written (interior writes for state fields)
    writes: frozenset[str] = frozenset()
    #: writes that fully overwrite their target (plain rebinding)
    kills: frozenset[str] = frozenset()
    #: underlying state fields of everything read (tokens resolved)
    fields: frozenset[str] = frozenset()
    halo: int = 0                       #: kernels: declared halo width
    #: exchanges: covered fields (None = every prognostic)
    exch_fields: tuple[str, ...] | None = None
    axes: tuple[int, ...] = (0, 1)      #: exchanges: axes refreshed
    branch: tuple[str, ...] = ()        #: enclosing if/else path

    def describe(self) -> str:
        loc = f"{Path(self.file).name}:{self.line}"
        if self.kind == "exchange":
            what = ("*" if self.exch_fields is None
                    else ",".join(self.exch_fields))
            return f"[{self.idx}] exchange({what}) axes={self.axes} @ {loc}"
        rw = (f"reads={sorted(self.reads)} writes={sorted(self.writes)}"
              if self.reads or self.writes else "")
        halo = f" halo={self.halo}" if self.halo else ""
        return f"[{self.idx}] {self.kind} {self.name}{halo} {rw} @ {loc}"


@dataclass
class StepGraph:
    """The linear step sequence plus its def/use structure."""

    entry: str
    nodes: list[Node] = dfield(default_factory=list)
    #: resolution gaps (opaque calls, unresolved exchange field lists)
    notes: list[str] = dfield(default_factory=list)
    #: local reads that precede any definition: (token, file, line)
    use_before_def: list[tuple[str, str, int]] = dfield(default_factory=list)

    def edges(self) -> list[tuple[int, int, str]]:
        """Field-level def/use chains ``(writer idx, reader idx, name)``."""
        last_writer: dict[str, int] = {}
        out: list[tuple[int, int, str]] = []
        for node in self.nodes:
            touched = (set(node.reads)
                       if node.kind != "exchange"
                       else set(node.exch_fields
                                if node.exch_fields is not None
                                else PROGNOSTIC_FIELDS - {"precip"}))
            for r in sorted(touched):
                if r in last_writer:
                    out.append((last_writer[r], node.idx, r))
            writes = (set(node.writes) if node.kind != "exchange"
                      else touched)
            for w in writes:
                last_writer[w] = node.idx
        return out

    def kernels(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "kernel"]

    def exchanges(self) -> list[Node]:
        return [n for n in self.nodes if n.kind == "exchange"]

    def summary(self) -> str:
        head = (f"step graph [{self.entry}]: {len(self.nodes)} nodes "
                f"({len(self.kernels())} kernel, "
                f"{len(self.exchanges())} exchange), "
                f"{len(self.edges())} def/use edges")
        lines = [head] + [n.describe() for n in self.nodes]
        if self.notes:
            lines.append("notes:")
            lines += [f"  - {n}" for n in self.notes]
        return "\n".join(lines)


# ---------------------------------------------------------------- builder
class _Module:
    """Parsed module: tree, per-function index, literal str-list globals."""

    def __init__(self, file: str, tree: ast.Module):
        self.file = file
        self.tree = tree
        self.functions: dict[str, ast.FunctionDef] = {}
        self.globals: dict[str, tuple[str, ...]] = {}
        for node in tree.body:
            self._index(node, prefix="")
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt = node.targets[0]
                names = _literal_names(node.value)
                if isinstance(tgt, ast.Name) and names is not None:
                    self.globals[tgt.id] = names

    def _index(self, node: ast.AST, prefix: str) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.functions[prefix + node.name] = node
            # bare name too, so same-module calls resolve
            self.functions.setdefault(node.name, node)
        elif isinstance(node, ast.ClassDef):
            for child in node.body:
                self._index(child, prefix=prefix + node.name + ".")


def _literal_names(node: ast.AST) -> tuple[str, ...] | None:
    if isinstance(node, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in node.elts):
        return tuple(e.value for e in node.elts)
    return None


def _parse_module(file: str | Path) -> _Module:
    file = str(file)
    text = Path(file).read_text()
    return _Module(file, ast.parse(text, filename=file))


def _module_of(obj: Any) -> _Module:
    file = inspect.getsourcefile(obj)
    if file is None:  # pragma: no cover - C extensions etc.
        raise ValueError(f"no source for {obj!r}")
    return _parse_module(file)


class _Builder:
    """Shared state of one graph construction."""

    def __init__(self, registry: dict[str, Any], entry: str):
        self.registry = registry
        self.entry = entry
        self.graph = StepGraph(entry=entry)
        self.default_axes = exchange_default_axes()
        self._scope_counter = 0
        #: (module_file, qualname) inline stack for cycle/depth guarding
        self.stack: list[tuple[str, str]] = []
        self.modules: dict[str, _Module] = {}
        #: attr/function name -> (module supplier, qualname) inline map
        self.inline_map: dict[str, tuple[Callable[[], _Module], str]] = {}

    def module(self, file: str | Path) -> _Module:
        file = str(file)
        if file not in self.modules:
            self.modules[file] = _parse_module(file)
        return self.modules[file]

    def new_scope(self, name: str) -> str:
        self._scope_counter += 1
        return f"{name}#{self._scope_counter}"

    def add_node(self, **kw) -> Node:
        node = Node(idx=len(self.graph.nodes), **kw)
        self.graph.nodes.append(node)
        return node

    def note(self, msg: str) -> None:
        if msg not in self.graph.notes:
            self.graph.notes.append(msg)

    # ------------------------------------------------------ spec lookup
    def spec_of(self, callee: str):
        entry = self.registry.get(callee)
        if entry is None:
            return None
        return getattr(entry, "spec", entry)  # StencilFunction or bare spec

    def reference_params(self, callee: str) -> list[str] | None:
        entry = self.registry.get(callee)
        ref = getattr(entry, "reference", None)
        if ref is None:
            return None
        try:
            return list(inspect.signature(ref).parameters)
        except (TypeError, ValueError):  # pragma: no cover
            return None


class _FunctionWalker:
    """Walks one function body, emitting nodes in execution order."""

    def __init__(self, builder: _Builder, module: _Module,
                 fn: ast.FunctionDef, env: dict[str, Val], scope: str):
        self.b = builder
        self.mod = module
        self.fn = fn
        self.env = env
        self.scope = scope
        self.branch: tuple[str, ...] = ()
        self.locals = {n.id for n in ast.walk(fn)
                       if isinstance(n, ast.Name)
                       and isinstance(n.ctx, ast.Store)}
        self.returns: list[Val] = []
        self._reported_ubd: set[str] = set()

    # --------------------------------------------------------- helpers
    def token(self, name: str) -> str:
        return f"{self.scope}:{name}"

    def bind(self, name: str, val: Val) -> None:
        self.env[name] = val

    def emit(self, *, kind: str, name: str, line: int,
             reads: set[str] = frozenset(), writes: set[str] = frozenset(),
             kills: set[str] = frozenset(), fields: set[str] = frozenset(),
             halo: int = 0, exch_fields=None, axes=None) -> Node:
        return self.b.add_node(
            kind=kind, name=name, file=self.mod.file, line=line,
            reads=frozenset(reads), writes=frozenset(writes),
            kills=frozenset(kills), fields=frozenset(fields), halo=halo,
            exch_fields=exch_fields,
            axes=tuple(axes) if axes is not None else self.b.default_axes,
            branch=self.branch)

    # ------------------------------------------------------------ walk
    def walk(self) -> Val:
        for stmt in self.fn.body:
            self._stmt(stmt)
        if not self.returns:
            return _UNKNOWN
        return _merge_vals(self.returns)

    def _body(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _consume(self, expr: ast.expr, label: str) -> None:
        """Evaluate an expression whose reads would otherwise vanish
        (loop tests, conditions) and record them as a use."""
        _, reads = self._eval(expr)
        if reads and not isinstance(expr, ast.Call):
            self.emit(kind="compute", name=label, line=expr.lineno,
                      reads=reads)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            self._assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._augassign(stmt)
        elif isinstance(stmt, ast.Expr):
            val = stmt.value
            if isinstance(val, (ast.Yield, ast.YieldFrom)):
                self._yield(val)
            else:
                self._eval(val)
        elif isinstance(stmt, ast.Return):
            self._return(stmt)
        elif isinstance(stmt, ast.If):
            self._consume(stmt.test, "cond")
            marker = f"if@{stmt.lineno}"
            outer = self.branch
            self.branch = outer + (marker + ":then",)
            self._body(stmt.body)
            self.branch = outer + (marker + ":else",)
            self._body(stmt.orelse)
            self.branch = outer
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            itval, it_reads = self._eval(stmt.iter)
            if it_reads and not isinstance(stmt.iter, ast.Call):
                self.emit(kind="compute", name="iter",
                          line=stmt.iter.lineno, reads=it_reads)
            self._bind_target(stmt.target,
                              Val(fields=itval.fields), emit=False)
            outer = self.branch
            self.branch = outer + (f"loop@{stmt.lineno}",)
            self._body(stmt.body)
            self.branch = outer
            self._body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._consume(stmt.test, "cond")
            outer = self.branch
            self.branch = outer + (f"loop@{stmt.lineno}",)
            self._body(stmt.body)
            self.branch = outer
            self._body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, _UNKNOWN,
                                      emit=False)
            self._body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._body(stmt.body)
            for handler in stmt.handlers:
                if handler.name:
                    self.bind(handler.name, _UNKNOWN)
                self._body(handler.body)
            self._body(stmt.orelse)
            self._body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Pass/Break/Continue/Import/def: no dataflow

    # ------------------------------------------------------ statements
    def _assign(self, stmt: ast.Assign | ast.AnnAssign) -> None:
        value = stmt.value
        if value is None:  # annotation only
            return
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        # direct kernel-producing assignment: attach the write to the
        # kernel node itself so defs anchor at the invocation
        if isinstance(value, ast.Call):
            tokens = self._target_tokens(targets)
            val = self._eval_call(value, target_tokens=tokens)
            for tgt in targets:
                self._bind_target(tgt, val, emit=False)
            return
        val, reads = self._eval(value)
        for tgt in targets:
            self._bind_target(tgt, val, reads=reads)

    def _target_tokens(self, targets: list[ast.expr]) -> set[str]:
        toks: set[str] = set()
        for tgt in targets:
            elts = tgt.elts if isinstance(tgt, (ast.Tuple, ast.List)) else [tgt]
            for e in elts:
                if isinstance(e, ast.Name):
                    toks.add(self.token(e.id))
        return toks

    def _bind_target(self, tgt: ast.expr, val: Val,
                     reads: set[str] | None = None, *,
                     emit: bool = True) -> None:
        """Bind an assignment target; emit a compute node for the def."""
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for e in tgt.elts:
                self._bind_target(e, Val(fields=val.fields), reads=reads,
                                  emit=emit)
                reads = None  # record the reads once
            return
        if isinstance(tgt, ast.Name):
            tok = self.token(tgt.id)
            if (tgt.id in STATE_PARAM_NAMES and not val.is_state
                    and not val.fields and val.names is None):
                # loop targets like ``for rank, st in zip(...)`` lose the
                # state through the opaque iterator; the naming
                # convention recovers it
                val = _STATE
            self.bind(tgt.id, Val(fields=val.fields, token=tok,
                                  is_state=val.is_state, names=val.names,
                                  alias=val.alias))
            if emit and (reads or not val.is_state):
                self.emit(kind="compute", name=f"def {tgt.id}",
                          line=tgt.lineno, reads=set(reads or ()),
                          writes={tok}, kills={tok}, fields=val.fields)
            return
        if isinstance(tgt, ast.Subscript):
            base = self._eval_val(tgt.value)
            _, idx_reads = self._eval(tgt.slice)
            wr = _store_targets(base)
            if wr:
                held = {base.token} if base.token else set()
                self.emit(kind="compute", name="store",
                          line=tgt.lineno,
                          reads=set(reads or ()) | idx_reads | held,
                          writes=wr, fields=base.fields)
            return
        if isinstance(tgt, ast.Attribute):
            base = self._eval_val(tgt.value)
            if base.is_state and tgt.attr in PROGNOSTIC_FIELDS:
                # full-field rebinding: a kill (overwrites halos too)
                self.emit(kind="compute", name=f"store {tgt.attr}",
                          line=tgt.lineno, reads=set(reads or ()),
                          writes={tgt.attr}, kills={tgt.attr})
            elif reads:
                # storing into an object attribute is a use
                self.emit(kind="compute", name=f"store .{tgt.attr}",
                          line=tgt.lineno, reads=set(reads))
            return
        self._eval(tgt)

    def _augassign(self, stmt: ast.AugAssign) -> None:
        val, reads = self._eval(stmt.value)
        tgt = stmt.target
        if isinstance(tgt, ast.Name):
            cur = self.env.get(tgt.id)
            tok = self.token(tgt.id)
            merged_fields = val.fields | (cur.fields if cur else frozenset())
            # += on a known literal list extends it (multigpu's physics
            # exchange list); on arrays it is a read-modify-write
            names = None
            if (cur is not None and cur.names is not None
                    and val.names is not None):
                names = cur.names + val.names
            self.bind(tgt.id, Val(fields=merged_fields, token=tok,
                                  names=names))
            self.emit(kind="compute", name=f"update {tgt.id}",
                      line=stmt.lineno, reads=reads | {tok},
                      writes={tok}, fields=merged_fields)
            return
        if isinstance(tgt, ast.Subscript):
            base = self._eval_val(tgt.value)
            wr = _store_targets(base)
            if wr:
                held = {base.token} if base.token else set()
                self.emit(kind="compute", name="update",
                          line=stmt.lineno, reads=reads | wr | held,
                          writes=wr, fields=base.fields)
            return
        self._eval(tgt)

    def _return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.returns.append(_UNKNOWN)
            return
        val, reads = self._eval(stmt.value)
        self.returns.append(val)
        if reads:
            self.emit(kind="compute", name="return", line=stmt.lineno,
                      reads=reads, fields=val.fields)

    def _yield(self, node: ast.Yield | ast.YieldFrom) -> None:
        """A ``yield state, fields`` of the lockstep generator is a halo
        exchange performed by the driver before resuming."""
        value = getattr(node, "value", None)
        if not isinstance(value, ast.Tuple) or len(value.elts) != 2:
            if value is not None:
                self._eval(value)
            return
        self._eval(value.elts[0])
        self._exchange_node(value.elts[1], line=node.lineno,
                            axes=None, what="yield")

    # ------------------------------------------------------ expressions
    def _eval_val(self, node: ast.expr) -> Val:
        return self._eval(node)[0]

    def _eval(self, node: ast.expr) -> tuple[Val, set[str]]:
        """Evaluate an expression: (symbolic value, names read)."""
        if isinstance(node, ast.Constant):
            return _UNKNOWN, set()
        if isinstance(node, ast.Name):
            return self._eval_name(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attr(node)
        if isinstance(node, ast.Subscript):
            val, reads = self._eval(node.value)
            _, idx_reads = self._eval(node.slice)
            # indexing a literal name list yields an element, not a list
            val = Val(fields=val.fields, token=val.token,
                      is_state=val.is_state, alias=val.alias)
            return val, reads | idx_reads
        if isinstance(node, ast.Call):
            val = self._eval_call(node)
            return val, set()
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            names = _literal_names(node)
            if names is not None:
                return Val(names=names), set()
            return self._eval_many(node.elts)
        if isinstance(node, ast.Dict):
            vals = [v for v in (*node.keys, *node.values) if v is not None]
            return self._eval_many(vals)
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare,
                             ast.UnaryOp)):
            children = [c for c in ast.iter_child_nodes(node)
                        if isinstance(c, ast.expr)]
            return self._eval_many(children)
        if isinstance(node, ast.IfExp):
            return self._eval_many([node.test, node.body, node.orelse])
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._eval_comp(node)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Slice):
            parts = [p for p in (node.lower, node.upper, node.step) if p]
            return self._eval_many(parts)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            self._yield(node)
            return _UNKNOWN, set()
        if isinstance(node, ast.JoinedStr):
            return _UNKNOWN, set()
        if isinstance(node, ast.Lambda):
            return _UNKNOWN, set()
        if isinstance(node, ast.NamedExpr):
            val, reads = self._eval(node.value)
            self._bind_target(node.target, val, reads=reads)
            return val, set()
        return _UNKNOWN, set()

    def _eval_many(self, nodes: Iterable[ast.expr]) -> tuple[Val, set[str]]:
        vals, reads = [], set()
        for n in nodes:
            v, r = self._eval(n)
            vals.append(v)
            reads |= r
        return _merge_vals(vals), reads

    def _eval_name(self, node: ast.Name) -> tuple[Val, set[str]]:
        name = node.id
        if name in self.env:
            v = self.env[name]
            reads = {v.token} if v.token else set(v.fields)
            return v, reads
        if name in self.mod.globals:
            return Val(names=self.mod.globals[name]), set()
        if name in self.locals:
            # a local read before any definition walked so far
            tok = self.token(name)
            if tok not in self._reported_ubd:
                self._reported_ubd.add(tok)
                self.b.graph.use_before_def.append(
                    (name, self.mod.file, node.lineno))
            return _UNKNOWN, set()
        if name in STATE_PARAM_NAMES:
            return _STATE, set()
        return _UNKNOWN, set()

    def _eval_attr(self, node: ast.Attribute) -> tuple[Val, set[str]]:
        base, reads = self._eval(node.value)
        attr = node.attr
        if attr in ("st", "base"):
            return _STATE, reads
        if base.is_state:
            if attr in PROGNOSTIC_FIELDS:
                return (Val(fields=frozenset({attr}), alias=True),
                        reads | {attr})
            if attr == "q":
                mf = frozenset(MOISTURE_FIELDS)
                return Val(fields=mf, alias=True), reads
            return _UNKNOWN, reads
        # dict-method plumbing on a field-carrying value (q.items(), ...)
        if base.fields and attr in ("items", "keys", "values", "get",
                                    "copy"):
            return (Val(fields=base.fields, token=base.token,
                        alias=base.alias), reads)
        return _UNKNOWN, reads

    def _eval_comp(self, node) -> tuple[Val, set[str]]:
        reads: set[str] = set()
        for gen in node.generators:
            itval, r = self._eval(gen.iter)
            reads |= r
            self._bind_target(gen.target, Val(fields=itval.fields),
                              emit=False)
            for cond in gen.ifs:
                _, r2 = self._eval(cond)
                reads |= r2
        if isinstance(node, ast.DictComp):
            kv, kr = self._eval(node.key)
            vv, vr = self._eval(node.value)
            return _merge_vals([kv, vv]), reads | kr | vr
        ev, er = self._eval(node.elt)
        return ev, reads | er

    # ------------------------------------------------------------ calls
    def _eval_call(self, node: ast.Call,
                   target_tokens: set[str] = frozenset()) -> Val:
        callee, recv_chain = _call_name(node)
        # an attribute call reads its receiver (helm.solve consumes the
        # helm binding); module receivers contribute nothing
        if isinstance(node.func, ast.Attribute):
            recv, recv_reads = self._eval(node.func.value)
        else:
            recv, recv_reads = _UNKNOWN, set()
        # 1. halo-exchange sites
        if callee in EXCHANGE_NAMES:
            axes = _literal_axes(node)
            fields_arg = _exchange_fields_arg(node)
            self._exchange_node(fields_arg, line=node.lineno, axes=axes,
                                what=callee)
            return _UNKNOWN
        # 2. registered stencil invocations
        if callee is not None and self.b.spec_of(callee) is not None:
            return self._kernel_node(callee, node, target_tokens,
                                     extra_reads=recv_reads)
        # 2b. the Helmholtz solve hides behind a solver object
        if (callee == "solve" and any("helm" in p for p in recv_chain)
                and self.b.spec_of("helmholtz_solve") is not None):
            return self._kernel_node("helmholtz_solve", node,
                                     target_tokens,
                                     extra_reads=recv_reads)
        # 3. known state methods
        if recv.is_state:
            if callee == "copy":
                return _STATE
            if callee in KNOWN_STATE_METHODS:
                flds = frozenset(KNOWN_STATE_METHODS[callee])
                self.emit(kind="compute", name=f"state.{callee}",
                          line=node.lineno, reads=set(flds) | recv_reads,
                          writes=set(target_tokens),
                          kills=set(target_tokens), fields=flds)
                for arg in node.args:
                    self._eval(arg)
                return Val(fields=flds)
        # 4. inlinable step-path helpers
        inlined = self._try_inline(callee, recv_chain, node, target_tokens,
                                   extra_reads=recv_reads)
        if inlined is not None:
            return inlined
        # 5. list()/tuple()/sorted() plumbing keeps literal name lists
        if callee in ("list", "tuple", "sorted") and len(node.args) == 1:
            v = self._eval_val(node.args[0])
            if v.names is not None:
                return Val(names=v.names)
            return Val(fields=v.fields)
        # 6. unknown call: union of arguments; receiving the state makes
        #    it opaque (assumed to read everything, write nothing)
        vals: list[Val] = []
        reads: set[str] = set()
        for a in [*node.args, *[kw.value for kw in node.keywords]]:
            v, r = self._eval(a)
            vals.append(v)
            reads |= r
        arg_vals = _merge_vals(vals)
        reads |= recv_reads
        takes_state = (any(v.is_state for v in vals)
                       and callee not in _TRANSPARENT_CALLS)
        if takes_state:
            label = callee or "<call>"
            every = PROGNOSTIC_FIELDS - {"precip"}
            self.emit(kind="opaque", name=label, line=node.lineno,
                      reads=set(every) | reads, fields=every)
            self.b.note(
                f"opaque state call '{label}' at "
                f"{Path(self.mod.file).name}:{node.lineno} — no @stencil "
                f"declaration; assumed to read all prognostics and "
                f"write none")
            return _UNKNOWN
        if reads or target_tokens:
            self.emit(kind="compute", name=callee or "<call>",
                      line=node.lineno, reads=reads,
                      writes=set(target_tokens), kills=set(target_tokens),
                      fields=arg_vals.fields)
        return Val(fields=arg_vals.fields)

    def _kernel_node(self, callee: str, node: ast.Call,
                     target_tokens: set[str], *,
                     extra_reads: set[str] = frozenset()) -> Val:
        spec = self.b.spec_of(callee)
        params = self.b.reference_params(callee) or []
        bound: dict[str, ast.expr] = {}
        for i, arg in enumerate(node.args):
            if i < len(params):
                bound[params[i]] = arg
        for kw in node.keywords:
            if kw.arg:
                bound[kw.arg] = kw.value
        # resolve declared read roles: a role naming a reference
        # parameter reads that argument; state-field roles (in-place
        # kernels like kessler) read the state directly; otherwise fall
        # back to every argument
        evaluated: dict[int, tuple[Val, set[str]]] = {}

        def ev(expr: ast.expr) -> tuple[Val, set[str]]:
            if id(expr) not in evaluated:
                evaluated[id(expr)] = self._eval(expr)
            return evaluated[id(expr)]

        reads: set[str] = set(extra_reads)
        fields: set[str] = set()
        resolved = False
        for role in spec.reads:
            if role in bound:
                v, r = ev(bound[role])
                reads |= r
                fields |= v.fields
                resolved = True
            elif role in PROGNOSTIC_FIELDS:
                reads.add(role)
                fields.add(role)
                resolved = True
        if not resolved:
            for arg in node.args:
                v, r = ev(arg)
                reads |= r
                fields |= v.fields
        # remaining arguments are consumed too, but only their *local*
        # bindings: the declared roles stay authoritative for fields
        for extra in [*node.args, *[kw.value for kw in node.keywords]]:
            _, r = ev(extra)
            reads |= {t for t in r if ":" in t}
        writes = set(target_tokens)
        state_writes = {w for w in spec.writes if w in PROGNOSTIC_FIELDS}
        writes |= state_writes
        self.emit(kind="kernel", name=spec.name, line=node.lineno,
                  reads=reads, writes=writes, kills=set(target_tokens),
                  fields=fields | state_writes, halo=spec.halo)
        return Val(fields=frozenset(fields))

    def _try_inline(self, callee: str | None, recv_chain: tuple[str, ...],
                    node: ast.Call, target_tokens: set[str], *,
                    extra_reads: set[str] = frozenset()) -> Val | None:
        if callee is None:
            return None
        target: tuple[_Module, ast.FunctionDef] | None = None
        # integrator.step(state) drives step_phases with inline exchange
        if callee == "step" and any("integrator" in p for p in recv_chain):
            callee = "step_phases"
        if callee in self.b.inline_map:
            get_mod, qualname = self.b.inline_map[callee]
            mod = get_mod()
            fn = mod.functions.get(qualname)
            if fn is not None:
                target = (mod, fn)
        elif callee in self.mod.functions and not isinstance(
                node.func, ast.Attribute):
            target = (self.mod, self.mod.functions[callee])
        if target is None:
            return None
        mod, fn = target
        key = (mod.file, fn.name)
        if key in self.b.stack or len(self.b.stack) >= _INLINE_DEPTH_LIMIT:
            return None
        # bind callee params to evaluated arguments (self is unknown —
        # instance attrs resolve through the st/base convention)
        args = [a for a in node.args]
        params = [p.arg for p in fn.args.args]
        env: dict[str, Val] = {}
        arg_reads: set[str] = set(extra_reads)
        offset = 1 if params and params[0] == "self" else 0
        for i, arg in enumerate(args):
            if offset + i < len(params):
                v, r = self._eval(arg)
                env[params[offset + i]] = v
                arg_reads |= r
        for kw in node.keywords:
            if kw.arg and kw.arg in params:
                v, r = self._eval(kw.value)
                env[kw.arg] = v
                arg_reads |= r
        for p in params:
            v = env.get(p)
            if p in STATE_PARAM_NAMES and (v is None or not v.is_state):
                env[p] = _STATE
        self.b.stack.append(key)
        try:
            walker = _FunctionWalker(self.b, mod, fn, env,
                                     self.b.new_scope(fn.name))
            result = walker.walk()
        finally:
            self.b.stack.pop()
        if target_tokens or arg_reads:
            self.emit(kind="compute", name=f"{fn.name}()",
                      line=node.lineno, reads=arg_reads,
                      writes=set(target_tokens),
                      kills=set(target_tokens), fields=result.fields)
        return result

    # -------------------------------------------------------- exchanges
    def _exchange_node(self, fields_arg: ast.expr | None, *, line: int,
                       axes: tuple[int, ...] | None, what: str) -> None:
        exch_fields: tuple[str, ...] | None
        arg_reads: set[str] = set()
        if fields_arg is None or (isinstance(fields_arg, ast.Constant)
                                  and fields_arg.value is None):
            exch_fields = None  # every prognostic
        else:
            names = _literal_names(fields_arg)
            if names is None:
                v, arg_reads = self._eval(fields_arg)
                names = v.names
            if names is not None:
                exch_fields = tuple(names)
            else:
                exch_fields = None
                self.b.note(
                    f"exchange at {Path(self.mod.file).name}:{line} has a "
                    f"field list the walker cannot resolve — treated as a "
                    f"full exchange")
        self.emit(kind="exchange", name=what, line=line,
                  reads=arg_reads, exch_fields=exch_fields, axes=axes)


def _merge_vals(vals: list[Val]) -> Val:
    fields: frozenset[str] = frozenset()
    names: tuple[str, ...] | None = None
    known_names = True
    is_state = False
    for v in vals:
        fields |= v.fields
        is_state = is_state or v.is_state
        if v.names is None:
            known_names = False
        elif names is None:
            names = v.names
        else:
            names = tuple(dict.fromkeys(names + v.names))
    return Val(fields=fields, is_state=is_state,
               names=names if known_names and names is not None else None)


def _call_name(node: ast.Call) -> tuple[str | None, tuple[str, ...]]:
    """(callee name, receiver attribute chain) of a call."""
    func = node.func
    chain: list[str] = []
    if isinstance(func, ast.Name):
        return func.id, ()
    if isinstance(func, ast.Attribute):
        name = func.attr
        cur = func.value
        while isinstance(cur, ast.Attribute):
            chain.append(cur.attr)
            cur = cur.value
        if isinstance(cur, ast.Name):
            chain.append(cur.id)
        return name, tuple(chain)
    return None, ()


def _exchange_fields_arg(node: ast.Call) -> ast.expr | None:
    """The field-list argument of an exchange call: 2nd positional, or
    the ``names``/``fields`` keyword; None means 'all prognostics'."""
    for kw in node.keywords:
        if kw.arg in ("names", "fields"):
            return kw.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


def _literal_axes(node: ast.Call) -> tuple[int, ...] | None:
    for kw in node.keywords:
        if kw.arg == "axes" and isinstance(kw.value, (ast.Tuple, ast.List)):
            if all(isinstance(e, ast.Constant) and isinstance(e.value, int)
                   for e in kw.value.elts):
                return tuple(e.value for e in kw.value.elts)
    return None


# ----------------------------------------------------------- public API
def _default_registry() -> dict[str, Any]:
    from ..stencil import load_dycore_specs  # noqa: F401 - loads modules
    from ..stencil.spec import REGISTRY

    load_dycore_specs()
    return dict(REGISTRY)


def _core_inline_map(b: _Builder) -> None:
    from ..core import acoustic, model, rk3
    from ..dist import multigpu

    def of(mod):
        return lambda: b.module(inspect.getsourcefile(mod))

    b.inline_map.update({
        "step_phases": (of(rk3), "Rk3Integrator.step_phases"),
        "slow_tendencies": (of(rk3), "slow_tendencies"),
        "substep": (of(acoustic), "AcousticStepper._substep_impl"),
        "_substep_impl": (of(acoustic), "AcousticStepper._substep_impl"),
        "finish": (of(acoustic), "AcousticStepper.finish"),
        "build_context": (of(acoustic), "build_context"),
    })
    b.modules_entry = {"single": model, "multigpu": multigpu}


def build_step_graph(entry: str = "single", *,
                     registry: dict[str, Any] | None = None) -> StepGraph:
    """Build the step graph of a real driver.

    ``entry='single'`` walks :meth:`AsucaModel.step` (which inlines
    ``step_phases``, the acoustic substeps, and the physics);
    ``entry='multigpu'`` walks :meth:`MultiGpuAsuca.step`, whose
    exchange points come from both the lockstep generator yields and the
    explicit ``exchange_all`` sites.
    """
    if entry not in ("single", "multigpu"):
        raise ValueError(f"unknown entry {entry!r}: single|multigpu")
    b = _Builder(registry if registry is not None else _default_registry(),
                 entry)
    _core_inline_map(b)
    py_mod = b.modules_entry[entry]
    mod = b.module(inspect.getsourcefile(py_mod))
    qualname = ("AsucaModel.step" if entry == "single"
                else "MultiGpuAsuca.step")
    fn = mod.functions[qualname]
    env: dict[str, Val] = {"self": _UNKNOWN}
    for p in (a.arg for a in fn.args.args):
        if p in STATE_PARAM_NAMES:
            env[p] = _STATE
    walker = _FunctionWalker(b, mod, fn, env, b.new_scope(qualname))
    walker.walk()
    return b.graph


def build_graph_for_function(
    file: str | Path, qualname: str, *,
    registry: dict[str, Any] | None = None,
) -> StepGraph:
    """Build a step graph from one function in an arbitrary source file
    — the harness the seeded-bug fixtures (and any future alternate
    driver) run the dataflow passes through.  ``registry`` maps kernel
    names to :class:`~repro.stencil.spec.StencilSpec` (or
    ``StencilFunction``); it defaults to the real dycore registry.
    """
    b = _Builder(registry if registry is not None else _default_registry(),
                 f"{Path(file).name}:{qualname}")
    mod = b.module(file)
    fn = mod.functions.get(qualname)
    if fn is None:
        raise KeyError(f"no function {qualname!r} in {file}")
    env: dict[str, Val] = {}
    for p in (a.arg for a in fn.args.args):
        if p in STATE_PARAM_NAMES:
            env[p] = _STATE
    walker = _FunctionWalker(b, mod, fn, env, b.new_scope(qualname))
    walker.walk()
    return b.graph
