"""SARIF 2.1.0 export of sanitizer reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs (GitHub, VS Code, ...) ingest,
so ``repro analyze --sarif out.sarif`` makes every pass's findings show up
inline on pull requests.  One ``run`` per report:

* ``tool.driver.rules`` mirrors the :data:`~repro.analysis.findings.CODES`
  registry — every code the sanitizer can emit, whether or not it fired,
  so rule metadata never drifts from the tool;
* each finding becomes a ``result`` with ``ruleId``/``level``/``message``;
  static findings carry a ``physicalLocation`` (repo-relative uri +
  startLine), dynamic findings a ``logicalLocation`` naming the
  device/stream/op;
* suppressed findings are exported too, marked with a SARIF
  ``suppressions`` entry (``inSource`` for allow-comments, ``external``
  for baseline entries), so scanners show them as reviewed rather than
  losing them.

The emitted document is deliberately minimal — only properties in the
2.1.0 schema — and tests/analysis/test_sarif.py smoke-checks the shape
without needing a jsonschema dependency.
"""
from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .findings import CODES, Finding, Report

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA", "to_sarif", "write_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: finding severity -> SARIF result level
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rules() -> list[dict[str, Any]]:
    return [
        {
            "id": code,
            "shortDescription": {"text": info.meaning},
            "properties": {"passname": info.passname, "kind": info.kind},
        }
        for code, info in CODES.items()
    ]


def _relative_uri(file: str, root: Path | None) -> str:
    p = Path(file)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def _location(f: Finding, root: Path | None) -> dict[str, Any]:
    if f.file is not None:
        region: dict[str, Any] = {}
        if f.line is not None:
            region["startLine"] = int(f.line)
        phys: dict[str, Any] = {
            "artifactLocation": {"uri": _relative_uri(f.file, root)},
        }
        if region:
            phys["region"] = region
        return {"physicalLocation": phys}
    # dynamic finding: no source anchor, name the timeline coordinates
    return {
        "logicalLocations": [
            {"fullyQualifiedName": f.location, "kind": "resource"},
        ]
    }


def _result(f: Finding, root: Path | None, *,
            suppression: dict[str, Any] | None = None) -> dict[str, Any]:
    res: dict[str, Any] = {
        "ruleId": f.code,
        "level": _LEVELS.get(f.severity, "warning"),
        "message": {"text": f.message},
        "locations": [_location(f, root)],
    }
    props: dict[str, Any] = {}
    if f.occurrences > 1:
        props["occurrences"] = f.occurrences
    if f.suggestion:
        props["suggestion"] = f.suggestion
    if props:
        res["properties"] = props
    if suppression is not None:
        res["suppressions"] = [suppression]
    return res


def _suppression_kind(f: Finding) -> dict[str, Any]:
    """Inline allow-comments are ``inSource``; baseline entries (tagged by
    :func:`~repro.analysis.dataflow.apply_baseline`) are ``external``."""
    via = getattr(f, "_suppressed_via", "comment")
    if via == "baseline":
        return {"kind": "external", "justification": "baseline.json entry"}
    return {"kind": "inSource", "justification": "sanitizer allow-comment"}


def to_sarif(report: Report, *, root: str | Path | None = None) -> dict[str, Any]:
    """Render ``report`` as a SARIF 2.1.0 document (a plain dict)."""
    rootp = Path(root) if root is not None else None
    results = [_result(f, rootp) for f in report.findings]
    results += [
        _result(f, rootp, suppression=_suppression_kind(f))
        for f in report.suppressed
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-sanitizer",
                        "informationUri":
                            "https://example.invalid/repro/docs/ANALYSIS.md",
                        "rules": _rules(),
                    }
                },
                "results": results,
                "properties": {"passes": report.passes},
            }
        ],
    }


def write_sarif(report: Report, path: str | Path, *,
                root: str | Path | None = None) -> Path:
    """Serialize ``report`` to ``path`` as SARIF; returns the path."""
    out = Path(path)
    out.write_text(json.dumps(to_sarif(report, root=root), indent=2) + "\n")
    return out
