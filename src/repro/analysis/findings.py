"""The sanitizer's shared finding/report format.

All passes — racecheck, memcheck, asuca-lint, dataflow, roofline — emit
:class:`Finding` records with a stable code (``RACE01``, ``MEM03``,
``LINT02``, ...), a human message, and a location that is either a
source position (the static passes) or a device/stream/op coordinate
(the dynamic passes).  :class:`Report` aggregates them with text/JSON
rendering, the CI exit-status rule (any unsuppressed *error* finding
fails), and the trace-session bridge (:meth:`Report.to_session`) that
files each finding as an instant on the offending device track.

This module is also the single home of the suppression convention: an
inline ``# sanitizer: allow[CODE] <rationale>`` comment on the flagged
line moves the finding to the report's suppressed list.  Every pass
resolves suppressions through :func:`is_suppressed` /
:func:`origin_suppressed`, and :func:`stale_suppressions` reports
allow-comments whose finding no longer fires (code ``SUPP01``, a
warning) so dead suppressions cannot linger and mask a future
regression at the same line.
"""
from __future__ import annotations

import difflib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "CODES", "CodeInfo", "Finding", "Report",
    "suppression_comment", "is_suppressed", "origin_suppressed",
    "scan_suppressions", "stale_suppressions", "codes_table",
]


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one finding code: its one-line meaning, the
    pass that emits it, and whether that pass is static (source-anchored)
    or dynamic (device-timeline-anchored)."""

    meaning: str
    passname: str
    kind: str  # 'static' | 'dynamic'


#: every code the sanitizer can emit — the table ``repro analyze
#: --list-codes`` prints, so the tool and the docs cannot drift
CODES: dict[str, CodeInfo] = {
    "RACE01": CodeInfo("conflicting accesses with no happens-before edge",
                       "racecheck", "dynamic"),
    "MEM01": CodeInfo("use-after-free of a device array",
                      "memcheck", "dynamic"),
    "MEM02": CodeInfo("double free of a device array",
                      "memcheck", "dynamic"),
    "MEM03": CodeInfo("device array leaked at teardown",
                      "memcheck", "dynamic"),
    "MEM04": CodeInfo("read of a never-written (uninitialized) device array",
                      "memcheck", "dynamic"),
    "MEM05": CodeInfo("allocator capacity drift (accounting mismatch)",
                      "memcheck", "dynamic"),
    "LINT01": CodeInfo("host<->device transfer reachable from inside a "
                       "step loop", "asuca-lint", "static"),
    "LINT02": CodeInfo("launch configuration violates occupancy limits",
                       "asuca-lint", "static"),
    "LINT03": CodeInfo("stencil reads wider than the declared halo",
                       "asuca-lint", "static"),
    "LINT04": CodeInfo("stale-halo read: halo>0 kernel consumes a field "
                       "written since the last exchange on that axis",
                       "dataflow", "static"),
    "LINT05": CodeInfo("read before first write in the step sequence",
                       "dataflow", "static"),
    "LINT06": CodeInfo("dead store: value overwritten before any read",
                       "dataflow", "static"),
    "LINT07": CodeInfo("fused/numba implementation drifts from its "
                       "stencil declaration", "dataflow", "static"),
    "LINT08": CodeInfo("float64 upcast in a dtype-preserving stencil path",
                       "dataflow", "static"),
    "ROOF01": CodeInfo("measured kernel FLOPs diverge from the cost-table "
                       "model", "roofline", "dynamic"),
    "ROOF02": CodeInfo("measured kernel memory traffic diverges from the "
                       "cost-table model", "roofline", "dynamic"),
    "ROOF03": CodeInfo("on-path kernel has no measured counts (not "
                       "instrumented)", "roofline", "dynamic"),
    "SUPP01": CodeInfo("stale suppression: allow-comment with no matching "
                       "finding", "suppressions", "static"),
}


def codes_table() -> str:
    """Render the :data:`CODES` registry as the aligned table
    ``repro analyze --list-codes`` prints."""
    rows = [("code", "pass", "kind", "meaning")]
    rows += [(code, info.passname, info.kind, info.meaning)
             for code, info in CODES.items()]
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    lines = []
    for i, (code, passname, kind, meaning) in enumerate(rows):
        lines.append(f"{code:<{widths[0]}}  {passname:<{widths[1]}}  "
                     f"{kind:<{widths[2]}}  {meaning}")
        if i == 0:
            lines.append("  ".join("-" * w for w in widths + [7]))
    return "\n".join(lines)


@dataclass
class Finding:
    """One sanitizer finding, in the format shared by all passes."""

    code: str
    message: str
    severity: str = "error"
    # ---- static (lint/dataflow) location
    file: str | None = None
    line: int | None = None
    # ---- dynamic (racecheck/memcheck) location
    device: str | None = None     #: device label, e.g. 'rank2'
    stream: int | None = None     #: stream id of the (first) offending op
    op: str | None = None         #: offending op name
    op_other: str | None = None   #: second op of a racing pair
    buffer: str | None = None     #: memory region involved
    t0: float | None = None       #: virtual time of the offending op
    #: identical hazards collapsed into this finding (e.g. the same racing
    #: op pair recurring every acoustic substep)
    occurrences: int = 1
    suggestion: str = ""

    def __post_init__(self):
        if self.code not in CODES:
            near = difflib.get_close_matches(self.code, CODES, n=1)
            hint = f" — did you mean {near[0]!r}?" if near else ""
            raise ValueError(f"unknown finding code {self.code!r}{hint}")

    @property
    def location(self) -> str:
        if self.file is not None:
            return f"{self.file}:{self.line}"
        parts = []
        if self.device is not None:
            parts.append(self.device)
        if self.stream is not None:
            parts.append(f"stream{self.stream}")
        if self.op is not None:
            parts.append(self.op)
        if self.op_other is not None:
            parts.append(f"vs {self.op_other}")
        return " ".join(parts) if parts else "(global)"

    def text(self) -> str:
        s = f"{self.code} [{self.severity}] {self.location}: {self.message}"
        if self.buffer:
            s += f" (buffer {self.buffer})"
        if self.occurrences > 1:
            s += f" [x{self.occurrences}]"
        if self.suggestion:
            s += f"\n    hint: {self.suggestion}"
        return s

    def as_dict(self) -> dict[str, Any]:
        d = {"code": self.code, "severity": self.severity,
             "message": self.message, "location": self.location,
             "occurrences": self.occurrences}
        for k in ("file", "line", "device", "stream", "op", "op_other",
                  "buffer", "t0", "suggestion"):
            v = getattr(self, k)
            if v not in (None, ""):
                d[k] = v
        return d


# ------------------------------------------------------------ suppression
#: accepted inline suppression: ``# sanitizer: allow[CODE] <rationale>``
_SUPPRESS_RE = re.compile(r"sanitizer:\s*allow\[([A-Z]+\d+)\]")


def suppression_comment(code: str) -> str:
    """The inline comment that suppresses ``code`` on its line."""
    return f"# sanitizer: allow[{code}]"


def is_suppressed(source_lines: list[str], lineno: int, code: str) -> bool:
    """True when line ``lineno`` (1-based) carries an allow-comment for
    ``code`` — the one suppression rule every pass shares."""
    if 1 <= lineno <= len(source_lines):
        return f"sanitizer: allow[{code}]" in source_lines[lineno - 1]
    return False


def origin_suppressed(file: str | Path | None, lineno: int | None,
                      code: str) -> bool:
    """:func:`is_suppressed` against a file on disk (OSError-safe), for
    passes whose findings anchor at an origin rather than parsed text."""
    if file is None or not lineno:
        return False
    try:
        lines = Path(file).read_text().splitlines()
    except OSError:
        return False
    return is_suppressed(lines, lineno, code)


def scan_suppressions(path: str | Path) -> list[tuple[int, str]]:
    """All ``(lineno, code)`` allow-comments in one source file.

    Tokenizes rather than greps, so a docstring that *mentions* the
    comment syntax (as this module's own docs do) is not mistaken for a
    suppression."""
    try:
        text = Path(path).read_text()
    except OSError:
        return []
    out: list[tuple[int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            for m in _SUPPRESS_RE.finditer(tok.string):
                out.append((tok.start[0], m.group(1)))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # unparsable file: fall back to the greedy line scan
        for i, line in enumerate(text.splitlines(), start=1):
            for m in _SUPPRESS_RE.finditer(line):
                out.append((i, m.group(1)))
    return out


def stale_suppressions(
    roots: Iterable[str | Path],
    report: "Report",
    ran_codes: set[str],
) -> list[Finding]:
    """``SUPP01`` warnings for allow-comments that suppress nothing.

    Scans every ``*.py`` under ``roots`` for allow-comments whose code is
    in ``ran_codes`` (codes whose pass actually executed — a comment for
    a pass that did not run is not provably stale) and that match no
    finding, suppressed or live, at the same file:line.
    """
    matched = {(f.file, f.line, f.code)
               for f in [*report.findings, *report.suppressed]
               if f.file is not None}
    out: list[Finding] = []
    for root in roots:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            for lineno, code in scan_suppressions(path):
                if code not in ran_codes:
                    continue
                if (str(path), lineno, code) in matched:
                    continue
                out.append(Finding(
                    code="SUPP01", severity="warning",
                    message=(f"suppression for {code} matches no finding "
                             f"— the allow-comment is stale"),
                    file=str(path), line=lineno,
                    suggestion="delete the comment (or re-run the pass "
                               "that emits it)",
                ))
    return out


@dataclass
class Report:
    """The combined result of one ``repro analyze`` invocation."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: pass names that ran, in order (e.g. ['asuca-lint', 'racecheck'])
    passes: list[str] = field(default_factory=list)
    #: conservative-assumption notes from the dataflow step-graph walker
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No *error* findings (warnings — e.g. ``SUPP01`` — do not gate)."""
        return not any(f.severity == "error" for f in self.findings)

    def extend(self, findings, *, passname: str | None = None) -> "Report":
        self.findings.extend(findings)
        if passname and passname not in self.passes:
            self.passes.append(passname)
        return self

    def exit_status(self) -> int:
        return 0 if self.ok else 1

    def text(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.text())
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed — passes: {', '.join(self.passes) or '(none)'}")
        return "\n".join(lines)

    def as_json(self, indent: int | None = 2) -> str:
        return json.dumps({
            "passes": self.passes,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "notes": self.notes,
            "ok": self.ok,
        }, indent=indent)

    # ------------------------------------------------------ obs bridge
    def to_session(self, session) -> int:
        """File each finding as an instant record on the active
        :class:`~repro.obs.trace.TraceSession` — dynamic findings land on
        the offending device/stream track at the op's virtual timestamp,
        static findings on the host track.  Returns the number filed."""
        for f in self.findings:
            session.record_instant(
                f"finding:{f.code}",
                ts=f.t0 if f.t0 is not None else 0.0,
                pid=f.device or "host",
                tid=(f"stream{f.stream}" if f.stream is not None else "main"),
                cat="finding",
                args=f.as_dict(),
            )
        return len(self.findings)
