"""The sanitizer's shared finding/report format.

All three passes — racecheck, memcheck, asuca-lint — emit
:class:`Finding` records with a stable code (``RACE01``, ``MEM03``,
``LINT02``, ...), a human message, and a location that is either a
source position (lint) or a device/stream/op coordinate (the dynamic
passes).  :class:`Report` aggregates them with text/JSON rendering, the
CI exit-status rule (any unsuppressed finding fails), and the trace-
session bridge (:meth:`Report.to_session`) that files each finding as an
instant on the offending device track.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CODES", "Finding", "Report"]

#: every code the sanitizer can emit, with its one-line meaning
CODES: dict[str, str] = {
    "RACE01": "conflicting accesses with no happens-before edge",
    "MEM01": "use-after-free of a device array",
    "MEM02": "double free of a device array",
    "MEM03": "device array leaked at teardown",
    "MEM04": "read of a never-written (uninitialized) device array",
    "MEM05": "allocator capacity drift (accounting mismatch)",
    "LINT01": "host<->device transfer reachable from inside a step loop",
    "LINT02": "launch configuration violates occupancy limits",
    "LINT03": "stencil slice wider than the declared halo",
    "ROOF01": "measured kernel FLOPs diverge from the cost-table model",
    "ROOF02": "measured kernel memory traffic diverges from the cost-table model",
    "ROOF03": "on-path kernel has no measured counts (not instrumented)",
}


@dataclass
class Finding:
    """One sanitizer finding, in the format shared by all three passes."""

    code: str
    message: str
    severity: str = "error"
    # ---- static (lint) location
    file: str | None = None
    line: int | None = None
    # ---- dynamic (racecheck/memcheck) location
    device: str | None = None     #: device label, e.g. 'rank2'
    stream: int | None = None     #: stream id of the (first) offending op
    op: str | None = None         #: offending op name
    op_other: str | None = None   #: second op of a racing pair
    buffer: str | None = None     #: memory region involved
    t0: float | None = None       #: virtual time of the offending op
    #: identical hazards collapsed into this finding (e.g. the same racing
    #: op pair recurring every acoustic substep)
    occurrences: int = 1
    suggestion: str = ""

    def __post_init__(self):
        if self.code not in CODES:
            raise ValueError(f"unknown finding code {self.code!r}")

    @property
    def location(self) -> str:
        if self.file is not None:
            return f"{self.file}:{self.line}"
        parts = []
        if self.device is not None:
            parts.append(self.device)
        if self.stream is not None:
            parts.append(f"stream{self.stream}")
        if self.op is not None:
            parts.append(self.op)
        if self.op_other is not None:
            parts.append(f"vs {self.op_other}")
        return " ".join(parts) if parts else "(global)"

    def text(self) -> str:
        s = f"{self.code} [{self.severity}] {self.location}: {self.message}"
        if self.buffer:
            s += f" (buffer {self.buffer})"
        if self.occurrences > 1:
            s += f" [x{self.occurrences}]"
        if self.suggestion:
            s += f"\n    hint: {self.suggestion}"
        return s

    def as_dict(self) -> dict[str, Any]:
        d = {"code": self.code, "severity": self.severity,
             "message": self.message, "location": self.location,
             "occurrences": self.occurrences}
        for k in ("file", "line", "device", "stream", "op", "op_other",
                  "buffer", "t0", "suggestion"):
            v = getattr(self, k)
            if v not in (None, ""):
                d[k] = v
        return d


@dataclass
class Report:
    """The combined result of one ``repro analyze`` invocation."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: pass names that ran, in order (e.g. ['asuca-lint', 'racecheck'])
    passes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def extend(self, findings, *, passname: str | None = None) -> "Report":
        self.findings.extend(findings)
        if passname and passname not in self.passes:
            self.passes.append(passname)
        return self

    def exit_status(self) -> int:
        return 0 if self.ok else 1

    def text(self) -> str:
        lines = []
        for f in self.findings:
            lines.append(f.text())
        lines.append(
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed — passes: {', '.join(self.passes) or '(none)'}")
        return "\n".join(lines)

    def as_json(self, indent: int | None = 2) -> str:
        return json.dumps({
            "passes": self.passes,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "ok": self.ok,
        }, indent=indent)

    # ------------------------------------------------------ obs bridge
    def to_session(self, session) -> int:
        """File each finding as an instant record on the active
        :class:`~repro.obs.trace.TraceSession` — dynamic findings land on
        the offending device/stream track at the op's virtual timestamp,
        lint findings on the host track.  Returns the number filed."""
        for f in self.findings:
            session.record_instant(
                f"finding:{f.code}",
                ts=f.t0 if f.t0 is not None else 0.0,
                pid=f.device or "host",
                tid=(f"stream{f.stream}" if f.stream is not None else "main"),
                cat="finding",
                args=f.as_dict(),
            )
        return len(self.findings)
