"""FLOP/byte counting via instrumented arrays — the PAPI substitute.

The paper measured the floating-point operation counts of ASUCA with PAPI
hardware counters on a CPU and used them to convert GPU times into GFlops
(Sec. IV-B).  We do the equivalent in pure Python: a ``CountingArray``
ndarray subclass intercepts every ufunc call via ``__array_ufunc__`` and
tallies flops (one per element per arithmetic ufunc, with transcendental
functions weighted higher) and element traffic.

Usage::

    counter = FlopCounter()
    a = counter.wrap(np.ones(1000))
    b = np.sqrt(a) + 2.0 * a
    counter.flops   # 3 * 1000 (sqrt counts its weight)

The per-kernel analytic cost models in :mod:`repro.perf.costmodel` are
validated against these measured counts on small grids.
"""
from __future__ import annotations

import warnings

import numpy as np

__all__ = ["CountingArray", "FlopCounter", "UFUNC_FLOP_WEIGHTS"]

#: flops charged per output element for each ufunc family.  Transcendental
#: weights follow common PAPI-era conventions (an exp/log is ~8-20 FP ops
#: of polynomial evaluation in hardware/libm).  ``matmul`` is special: its
#: per-output-element cost depends on the contracted extent k, so the
#: entry is the flops per multiply-add *pair* and :meth:`FlopCounter.charge`
#: multiplies by k.
UFUNC_FLOP_WEIGHTS: dict[str, float] = {
    "add": 1, "subtract": 1, "multiply": 1, "true_divide": 4, "divide": 4,
    "matmul": 2,
    "negative": 1, "positive": 0, "absolute": 1, "sign": 1,
    "maximum": 1, "minimum": 1, "fmax": 1, "fmin": 1, "clip": 2,
    "sqrt": 4, "cbrt": 6, "reciprocal": 4,
    "exp": 8, "expm1": 8, "log": 8, "log1p": 8, "log2": 8, "log10": 8,
    "power": 16, "float_power": 16,
    "sin": 8, "cos": 8, "tan": 10, "arctan": 10, "arctan2": 12,
    "arcsin": 10, "arccos": 10, "sinh": 10, "cosh": 10, "tanh": 10,
    "hypot": 6, "square": 1, "floor": 1, "ceil": 1, "rint": 1, "trunc": 1,
    "fmod": 4, "mod": 4, "remainder": 4, "floor_divide": 4,
    # comparisons/selection move data but do no FP arithmetic
    "greater": 0, "greater_equal": 0, "less": 0, "less_equal": 0,
    "equal": 0, "not_equal": 0, "logical_and": 0, "logical_or": 0,
    "logical_not": 0, "isfinite": 0, "isnan": 0, "isinf": 0, "signbit": 0,
    "copysign": 1, "nextafter": 1, "spacing": 1, "heaviside": 1,
    "deg2rad": 1, "rad2deg": 1, "conjugate": 0,
}

#: ufunc names already warned about this session (warn once, not per call
#: or per counter — a hot loop hitting an unweighted ufunc would otherwise
#: flood stderr)
_WARNED_UFUNCS: set[str] = set()


class FlopCounter:
    """Accumulates flops and element traffic of wrapped-array operations."""

    def __init__(self) -> None:
        self.flops = 0.0
        self.elements_read = 0.0
        self.elements_written = 0.0
        self.unknown_ufuncs: set[str] = set()

    def reset(self) -> None:
        self.flops = 0.0
        self.elements_read = 0.0
        self.elements_written = 0.0
        self.unknown_ufuncs.clear()

    def wrap(self, arr: np.ndarray) -> "CountingArray":
        out = np.asarray(arr).view(CountingArray)
        out._counter = self
        return out

    def charge(self, ufunc: np.ufunc, inputs, output_size: int) -> None:
        name = ufunc.__name__
        weight = UFUNC_FLOP_WEIGHTS.get(name)
        if weight is None:
            weight = 1.0
            self.unknown_ufuncs.add(name)
            if name not in _WARNED_UFUNCS:
                _WARNED_UFUNCS.add(name)
                warnings.warn(
                    f"FlopCounter: ufunc {name!r} has no entry in "
                    f"UFUNC_FLOP_WEIGHTS; counting it at 1 flop per "
                    f"element (add a weight to make the count exact)",
                    RuntimeWarning, stacklevel=4)
        if name == "matmul":
            # (..., n, k) @ (..., k, m): 2k flops (k multiply-add pairs)
            # per output element; k is the last axis of the first operand
            k = 1
            for x in inputs:
                if isinstance(x, np.ndarray) and x.ndim >= 1:
                    k = x.shape[-1]
                    break
            weight = weight * k
        self.flops += weight * output_size
        for x in inputs:
            if isinstance(x, np.ndarray):
                self.elements_read += min(x.size, output_size)
        self.elements_written += output_size


class CountingArray(np.ndarray):
    """ndarray that reports its ufunc activity to a :class:`FlopCounter`.

    The counter propagates through results, so whole kernel functions can
    be measured by wrapping only their inputs.
    """

    _counter: FlopCounter | None = None

    def __array_finalize__(self, obj):
        if obj is not None and self._counter is None:
            self._counter = getattr(obj, "_counter", None)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        counter = self._counter
        for x in inputs:
            if counter is None and isinstance(x, CountingArray):
                counter = x._counter

        raw_inputs = tuple(
            x.view(np.ndarray) if isinstance(x, CountingArray) else x for x in inputs
        )
        out = kwargs.get("out")
        if out is not None:
            kwargs["out"] = tuple(
                o.view(np.ndarray) if isinstance(o, CountingArray) else o for o in out
            )
        result = getattr(ufunc, method)(*raw_inputs, **kwargs)

        if counter is not None and method in ("__call__", "reduce",
                                              "accumulate", "outer"):
            if isinstance(result, tuple):
                size = max(np.size(r) for r in result)
            else:
                size = np.size(result)
            if method == "reduce":
                # a reduction does ~input-size operations
                size = max(np.size(x) for x in raw_inputs if isinstance(x, np.ndarray))
            counter.charge(ufunc, raw_inputs, size)

        def rewrap(r):
            if isinstance(r, np.ndarray):
                v = r.view(CountingArray)
                v._counter = counter
                return v
            return r

        if isinstance(result, tuple):
            return tuple(rewrap(r) for r in result)
        return rewrap(result)
