"""Weak-scaling model (paper Fig. 10 / Table I).

Every GPU holds a 320 x 256 x 48 block; the global meshes follow Table I.
The scaling benchmark is the periodic mountain-wave test (paper Sec. V-B),
so every rank exchanges on both sides of both directions regardless of the
process-grid size; the only scale-dependent cost is the synchronization
arrival skew, which grows slowly with rank count (per-node jitter
dominates over tree depth) and is calibrated at 528 GPUs.  Together these
produce the paper's >= 93% weak-scaling efficiency and the ~14% overlap
advantage.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..dist.decomposition import TABLE1_CONFIGS, table1_mesh
from ..dist.network import ClusterSpec, TSUBAME_1_2
from ..dist.overlap import OverlapConfig, OverlapModel
from ..gpu.spec import OPTERON_CORE, Precision
from .costmodel import DEFAULT_NS, asuca_step_cost

__all__ = [
    "ScalingPoint", "weak_scaling_sweep", "weak_scaling_efficiency",
    "StrongScalingPoint", "strong_scaling_sweep",
    "DecompositionVariant", "decomposition_ablation", "near_square_factors",
]

#: rank count at which the default OverlapConfig.sync_skew was calibrated
_SKEW_REFERENCE_RANKS = 528


@dataclass
class ScalingPoint:
    """One point of the Fig. 10 curves."""

    n_gpus: int
    px: int
    py: int
    mesh: tuple[int, int, int]
    step_time_overlap: float
    step_time_nonoverlap: float
    tflops_overlap: float
    tflops_nonoverlap: float
    tflops_cpu: float

    @property
    def overlap_gain(self) -> float:
        return 1.0 - self.step_time_overlap / self.step_time_nonoverlap


def _skew_for(n_ranks: int, base: float) -> float:
    if n_ranks <= 1:
        return 0.0
    return base * (math.log2(n_ranks) / math.log2(_SKEW_REFERENCE_RANKS)) ** 0.25


def weak_scaling_sweep(
    cluster: ClusterSpec = TSUBAME_1_2,
    configs: list[tuple[int, int]] = TABLE1_CONFIGS,
    *,
    precision: Precision = Precision.SINGLE,
    ns: int = DEFAULT_NS,
    overlap_config: OverlapConfig = OverlapConfig(),
    cpu_parallel_efficiency: float = 0.9,
) -> list[ScalingPoint]:
    """Model every (px, py) configuration; returns Fig. 10's three series."""
    per_gpu = asuca_step_cost(320, 256, 48, spec=cluster.gpu,
                              precision=precision, ns=ns)
    cpu_cost = asuca_step_cost(320, 256, 48, spec=OPTERON_CORE,
                               precision=Precision.DOUBLE, ns=ns)
    cpu_sustained = OPTERON_CORE.peak_flops_dp * OPTERON_CORE.compute_efficiency
    points = []
    for px, py in configs:
        n = px * py
        cfg = replace(overlap_config,
                      sync_skew=_skew_for(n, overlap_config.sync_skew))
        model = OverlapModel(
            cluster,
            precision=precision,
            ns=ns,
            links_x=2 if px > 1 else 0,   # periodic benchmark: both sides
            links_y=2 if py > 1 else 0,
            config=cfg,
        )
        t_ov = model.step_timeline(True).total
        t_no = model.step_timeline(False).total
        points.append(
            ScalingPoint(
                n_gpus=n, px=px, py=py, mesh=table1_mesh(px, py),
                step_time_overlap=t_ov,
                step_time_nonoverlap=t_no,
                tflops_overlap=n * per_gpu.total_flops / t_ov / 1e12,
                tflops_nonoverlap=n * per_gpu.total_flops / t_no / 1e12,
                tflops_cpu=n * cpu_sustained * cpu_parallel_efficiency / 1e12,
            )
        )
    return points


def weak_scaling_efficiency(points: list[ScalingPoint]) -> float:
    """Per-GPU performance of the largest run relative to the smallest —
    the paper reports >= 93% for 528 vs 6 GPUs."""
    first, last = points[0], points[-1]
    per_gpu_first = first.tflops_overlap / first.n_gpus
    per_gpu_last = last.tflops_overlap / last.n_gpus
    return per_gpu_last / per_gpu_first


# ---------------------------------------------------------------------------
# extensions beyond the paper's figures: strong scaling and the 1-D vs 2-D
# decomposition trade-off ("We decompose the given grid in both the x and y
# directions" — this quantifies why)
# ---------------------------------------------------------------------------

def near_square_factors(n: int) -> tuple[int, int]:
    """The factorization (px, py) of n with px <= py closest to square."""
    best = (1, n)
    for px in range(1, int(math.isqrt(n)) + 1):
        if n % px == 0:
            best = (px, n // px)
    return best


@dataclass
class StrongScalingPoint:
    """One point of a fixed-global-mesh scaling curve."""

    n_gpus: int
    px: int
    py: int
    local_mesh: tuple[int, int, int]
    step_time: float
    speedup: float
    efficiency: float


def strong_scaling_sweep(
    nx: int = 1900,
    ny: int = 2272,
    nz: int = 48,
    gpu_counts: list[int] | None = None,
    cluster: ClusterSpec = TSUBAME_1_2,
    *,
    precision: Precision = Precision.SINGLE,
    ns: int = DEFAULT_NS,
    overlap_config: OverlapConfig = OverlapConfig(),
) -> list[StrongScalingPoint]:
    """Fix the global mesh (default: the paper's 54-GPU real-data case)
    and add GPUs: per-rank compute shrinks linearly but halo strips only
    shrink with the local edge length, so efficiency decays — the cost
    structure that makes *weak* scaling the paper's headline metric."""
    gpu_counts = gpu_counts or [1, 2, 6, 12, 24, 54, 96, 216]
    points: list[StrongScalingPoint] = []
    t1 = None
    for n in gpu_counts:
        px, py = near_square_factors(n)
        loc_nx, loc_ny = max(nx // px, 8), max(ny // py, 8)
        cfg = replace(overlap_config,
                      sync_skew=_skew_for(n, overlap_config.sync_skew))
        model = OverlapModel(
            cluster, nx=loc_nx, ny=loc_ny, nz=nz,
            precision=precision, ns=ns,
            links_x=2 if px > 1 else 0,
            links_y=2 if py > 1 else 0,
            config=cfg,
        )
        t = model.step_timeline(True).total
        if t1 is None:
            t1 = t
        speedup = t1 / t
        points.append(StrongScalingPoint(
            n_gpus=n, px=px, py=py, local_mesh=(loc_nx, loc_ny, nz),
            step_time=t, speedup=speedup, efficiency=speedup / (n / gpu_counts[0]),
        ))
    return points


@dataclass
class DecompositionVariant:
    """1-D vs 2-D decomposition comparison row."""

    label: str
    px: int
    py: int
    local_mesh: tuple[int, int, int]
    halo_bytes_per_exchange: float
    step_time: float


def decomposition_ablation(
    n_gpus: int = 528,
    nx: int | None = None,
    ny: int | None = None,
    nz: int = 48,
    cluster: ClusterSpec = TSUBAME_1_2,
    *,
    precision: Precision = Precision.SINGLE,
    overlap_config: OverlapConfig = OverlapConfig(),
) -> list[DecompositionVariant]:
    """Compare x-slab (n x 1), y-slab (1 x n) and near-square 2-D
    decompositions of the same global mesh: slabs carry far larger halo
    strips per rank, which is why the paper decomposes in both x and y."""
    if nx is None or ny is None:
        nx, ny, _ = table1_mesh(*near_square_factors(n_gpus))
    variants = []
    sq = near_square_factors(n_gpus)
    for label, (px, py) in (
        (f"x-slabs ({n_gpus}x1)", (n_gpus, 1)),
        (f"y-slabs (1x{n_gpus})", (1, n_gpus)),
        (f"2-D ({sq[0]}x{sq[1]})", sq),
    ):
        loc_nx, loc_ny = max(nx // px, 8), max(ny // py, 8)
        cfg = replace(overlap_config,
                      sync_skew=_skew_for(n_gpus, overlap_config.sync_skew))
        model = OverlapModel(
            cluster, nx=loc_nx, ny=loc_ny, nz=nz,
            precision=precision,
            links_x=2 if px > 1 else 0,
            links_y=2 if py > 1 else 0,
            config=cfg,
        )
        w = cfg.exchange_width
        item = precision.itemsize
        bytes_per_field = (
            (2 if px > 1 else 0) * w * loc_ny * nz * item
            + (2 if py > 1 else 0) * w * loc_nx * nz * item
        )
        variants.append(DecompositionVariant(
            label=label, px=px, py=py, local_mesh=(loc_nx, loc_ny, nz),
            halo_bytes_per_exchange=bytes_per_field,
            step_time=model.step_timeline(True).total,
        ))
    return variants
