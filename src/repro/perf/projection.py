"""TSUBAME 2.0 performance projection (paper Sec. VII).

The paper projects ~150 TFlops for 4000 Fermi GPUs from three ingredients:

1. the measured 15 TFlops at 528 GPUs with 988 ms total / 763 ms compute,
2. the assumption that a Fermi GPU delivers about the same compute and
   memory throughput as the S1070 while intra-/inter-node bandwidth
   at least quadruples, hiding communication completely, and
3. perfect weak scaling to 4000 GPUs::

       15 TFlops * (988 / 763) * (4000 / 528) ~= 150 TFlops

``paper_formula_projection`` reproduces exactly that arithmetic from the
*model's own* Fig. 11 numbers; ``model_projection`` instead re-runs the
overlap model on the TSUBAME 2.0 cluster spec (optionally with real Fermi
throughput, which the paper itself calls a conservative lower bound).
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..dist.network import ClusterSpec, TSUBAME_1_2, TSUBAME_2_0
from ..dist.overlap import OverlapConfig, OverlapModel
from ..gpu.spec import Precision, TESLA_S1070
from .costmodel import asuca_step_cost

__all__ = ["Projection", "paper_formula_projection", "model_projection"]


@dataclass
class Projection:
    """A projected sustained performance."""

    tflops: float
    n_gpus: int
    step_time: float
    method: str


def paper_formula_projection(
    n_gpus: int = 4000,
    baseline_gpus: int = 528,
) -> Projection:
    """Sec. VII's own arithmetic, fed with the model's measured 528-GPU
    step: TFlops_528 * (total / compute) * (n / 528)."""
    model = OverlapModel(TSUBAME_1_2)
    tl = model.step_timeline(True)
    per_gpu = asuca_step_cost(320, 256, 48)
    tflops_528 = baseline_gpus * per_gpu.total_flops / tl.total / 1e12
    tflops = tflops_528 * (tl.total / tl.compute) * (n_gpus / baseline_gpus)
    return Projection(
        tflops=tflops,
        n_gpus=n_gpus,
        step_time=tl.compute,
        method="paper Sec. VII formula (communication fully hidden, "
               "Fermi == Tesla throughput, perfect weak scaling)",
    )


def model_projection(
    n_gpus: int = 4000,
    *,
    fermi_throughput: bool = False,
    cluster: ClusterSpec = TSUBAME_2_0,
    precision: Precision = Precision.SINGLE,
) -> Projection:
    """Re-run the overlap model on the TSUBAME 2.0 interconnect.

    ``fermi_throughput=False`` keeps the paper's conservative assumption
    (Fermi compute/memory ~= Tesla) by swapping the S1070 throughput into
    the 2.0 cluster; ``True`` uses the real M2050 numbers, which is why
    the paper expects "likely ... higher than 150 TFlops".
    """
    if not fermi_throughput:
        cluster = dataclasses.replace(cluster, gpu=dataclasses.replace(
            TESLA_S1070, pcie_bandwidth=cluster.gpu.pcie_bandwidth))
    model = OverlapModel(cluster, precision=precision)
    tl = model.step_timeline(True)
    per_gpu = asuca_step_cost(320, 256, 48, spec=cluster.gpu, precision=precision)
    return Projection(
        tflops=n_gpus * per_gpu.total_flops / tl.total / 1e12,
        n_gpus=n_gpus,
        step_time=tl.total,
        method=("overlap model on TSUBAME 2.0, "
                + ("real Fermi throughput" if fermi_throughput
                   else "Tesla-equivalent throughput (conservative)")),
    )
