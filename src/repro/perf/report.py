"""Row/series formatting shared by every benchmark.

Each benchmark regenerates one paper table or figure and prints it through
these helpers, so ``pytest benchmarks/ --benchmark-only`` emits a uniform
"paper vs. reproduced" report (captured into EXPERIMENTS.md).
"""
from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["format_table", "ComparisonReport"]


def format_table(headers: list[str], rows: list[list], *, title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(x) -> str:
        if isinstance(x, float):
            if x == 0:
                return "0"
            if abs(x) >= 1000 or abs(x) < 0.01:
                return f"{x:.3g}"
            return f"{x:.3f}".rstrip("0").rstrip(".")
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


@dataclass
class ComparisonReport:
    """Collects (quantity, paper value, reproduced value) triples and
    renders the pass/fail summary each benchmark prints."""

    experiment: str
    rows: list[tuple[str, float, float, float]] = field(default_factory=list)

    def add(self, name: str, paper: float, ours: float, rel_tol: float = 0.25) -> None:
        self.rows.append((name, paper, ours, rel_tol))

    def all_within_tolerance(self) -> bool:
        return all(
            paper == 0 or abs(ours - paper) <= tol * abs(paper)
            for _, paper, ours, tol in self.rows
        )

    def render(self) -> str:
        body = format_table(
            ["quantity", "paper", "reproduced", "ratio", "ok"],
            [
                [
                    name,
                    paper,
                    ours,
                    ours / paper if paper else float("nan"),
                    "yes" if paper == 0 or abs(ours - paper) <= tol * abs(paper) else "NO",
                ]
                for name, paper, ours, tol in self.rows
            ],
            title=f"== {self.experiment} ==",
        )
        return body
