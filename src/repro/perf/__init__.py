"""Performance measurement and modeling: FLOP counting (PAPI substitute),
the ASUCA kernel cost table, weak-scaling sweeps, the TSUBAME 2.0
projection, and timeline reporting.

``scaling`` and ``projection`` are loaded lazily (PEP 562): they depend on
:mod:`repro.dist.overlap`, which itself uses the cost table here, and the
lazy import breaks that cycle.
"""
from .counting import CountingArray, FlopCounter
from .costmodel import (
    ASUCA_KERNELS,
    DEFAULT_NS,
    ROOFLINE_KERNELS,
    StepCost,
    asuca_step_cost,
    cpu_step_time,
    launch_schedule,
)
from .report import ComparisonReport, format_table
from .timeline import (
    TimelineSummary,
    busy_by_name,
    gantt_text,
    summarize,
    summarize_ops,
)

__all__ = [
    "CountingArray", "FlopCounter",
    "ASUCA_KERNELS", "ROOFLINE_KERNELS", "StepCost", "asuca_step_cost",
    "cpu_step_time", "launch_schedule", "DEFAULT_NS",
    "ScalingPoint", "weak_scaling_sweep", "weak_scaling_efficiency",
    "StrongScalingPoint", "strong_scaling_sweep",
    "DecompositionVariant", "decomposition_ablation", "near_square_factors",
    "Projection", "paper_formula_projection", "model_projection",
    "SensitivityRow", "sensitivity_sweep",
    "TimelineSummary", "summarize", "summarize_ops", "gantt_text",
    "busy_by_name",
    "ComparisonReport", "format_table",
]

_LAZY = {
    "ScalingPoint": "scaling",
    "weak_scaling_sweep": "scaling",
    "weak_scaling_efficiency": "scaling",
    "StrongScalingPoint": "scaling",
    "strong_scaling_sweep": "scaling",
    "DecompositionVariant": "scaling",
    "decomposition_ablation": "scaling",
    "near_square_factors": "scaling",
    "Projection": "projection",
    "paper_formula_projection": "projection",
    "model_projection": "projection",
    "SensitivityRow": "sensitivity",
    "sensitivity_sweep": "sensitivity",
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        mod = importlib.import_module(f".{_LAZY[name]}", __name__)
        return getattr(mod, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
