"""Re-export of :mod:`repro.profiling` under the perf namespace."""
from ..profiling import PhaseTimer, profile_phase, use_timer

__all__ = ["PhaseTimer", "profile_phase", "use_timer"]
