"""Sensitivity analysis of the performance model's free parameters.

The reproduction's performance claims rest on a handful of calibrated
constants (DESIGN.md Sec. 6): the sustained-bandwidth and sustained-compute
efficiencies of the virtual GPU, the CPU sustained rate, the message
volume per exchange, the boundary-kernel inefficiency, and the barrier
skew.  This module perturbs each by a given fraction and reports the
effect on the two headline outputs — single-GPU GFlops and the 528-GPU
TFlops — a tornado analysis that shows which knobs actually carry the
claims (and that no single knob is doing hidden work).
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..dist.network import TSUBAME_1_2
from ..dist.overlap import OverlapConfig, OverlapModel
from ..gpu.spec import Precision, TESLA_S1070
from .costmodel import asuca_step_cost

__all__ = ["SensitivityRow", "sensitivity_sweep", "PARAMETERS"]


@dataclass
class SensitivityRow:
    """Effect of one parameter perturbation."""

    parameter: str
    delta: float                 #: applied relative perturbation
    gflops_single: float         #: single-GPU SP GFlops
    tflops_528: float            #: 528-GPU overlap TFlops
    gflops_sensitivity: float    #: d(ln output) / d(ln parameter)
    tflops_sensitivity: float


def _outputs(gpu_spec, overlap_cfg) -> tuple[float, float]:
    cost = asuca_step_cost(320, 256, 48, spec=gpu_spec)
    cluster = dataclasses.replace(TSUBAME_1_2, gpu=gpu_spec)
    tl = OverlapModel(cluster, config=overlap_cfg).step_timeline(True)
    return cost.gflops, 528 * cost.total_flops / tl.total / 1e12


#: (name, how to apply a relative delta) — the model's free parameters
PARAMETERS = [
    "bandwidth_efficiency",
    "compute_efficiency",
    "boundary_factor",
    "sync_skew",
    "extra_exchange_fields",
]


def _apply(param: str, delta: float):
    spec = TESLA_S1070
    cfg = OverlapConfig()
    if param in ("bandwidth_efficiency", "compute_efficiency"):
        spec = dataclasses.replace(
            spec, **{param: getattr(spec, param) * (1.0 + delta)}
        )
    else:
        cfg = dataclasses.replace(
            cfg, **{param: getattr(cfg, param) * (1.0 + delta)}
        )
    return spec, cfg


def sensitivity_sweep(delta: float = 0.2) -> list[SensitivityRow]:
    """Perturb each parameter by ``+delta`` and report elasticities."""
    base_g, base_t = _outputs(TESLA_S1070, OverlapConfig())
    rows = []
    for param in PARAMETERS:
        spec, cfg = _apply(param, delta)
        gf, tf = _outputs(spec, cfg)
        rows.append(SensitivityRow(
            parameter=param,
            delta=delta,
            gflops_single=gf,
            tflops_528=tf,
            gflops_sensitivity=(gf / base_g - 1.0) / delta,
            tflops_sensitivity=(tf / base_t - 1.0) / delta,
        ))
    return rows
