"""Analytic per-kernel cost table of the GPU ASUCA and the step-cost
aggregator that drives every performance figure.

The kernels and their launch counts per long time step mirror the paper's
Fig. 1 execution flow and Sec. IV/V descriptions:

* three Wicker-Skamarock RK stages, each computing slow tendencies
  (advection of momentum and theta, Coriolis) and running acoustic
  substeps (1, ns/2, ns of them);
* per acoustic substep: horizontal pressure-gradient kernels, the
  continuity/divergence kernel, the theta acoustic update, the 1-D
  Helmholtz tridiagonal solver, and the EOS/pressure update;
* once per long step: advection of the 13 water-substance-related tracers
  (the paper's Fig. 7 pipeline), coordinate-transformation kernels
  "applied to momentum components, density, potential temperature and
  water substances several times", the Kessler warm-rain kernel ("called
  once per time step, ~1.0% of GPU time"), and boundary operations.

The five starred kernels are the ones placed on the paper's Fig. 5
roofline.  ``compute_efficiency`` in the device spec and the per-kernel
numbers below are calibrated (tests/perf/test_calibration.py) so that the
320 x 256 x 48 single-precision mesh lands at ~44.3 GFlops with the
double-precision run at ~33% of it, after which every other figure is
model *output*, not input.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.coalescing import ArrayOrder
from ..gpu.kernel import Kernel, KernelCostModel, LaunchConfig
from ..gpu.spec import DeviceSpec, Precision, TESLA_S1070, OPTERON_CORE
from ..stencil import table_costs

__all__ = [
    "ASUCA_KERNELS",
    "ROOFLINE_KERNELS",
    "launch_schedule",
    "StepCost",
    "asuca_step_cost",
    "cpu_step_time",
    "modeled_run_seconds",
    "DEFAULT_NS",
]

#: acoustic substeps of the final RK stage (even); total substeps per long
#: step = 1 + ns/2 + ns.  Chosen with the per-substep kernel list so one
#: long step costs ~2.8e10 flop on a 320x256x48 mesh — the figure implied
#: by the paper's 15.0 TFlops over 528 GPUs at 988 ms/step (Figs. 10/11).
DEFAULT_NS = 12

_STENCIL = LaunchConfig(block=(64, 4, 1), march_axis="y")
_COLUMN = LaunchConfig(block=(64, 4, 1), march_axis="z")

#: per-point (flops, reads, writes) derived from the stencil declarations
#: in ``core/``/``physics/`` — the @stencil decorators are the source of
#: truth for every table entry a NumPy kernel exists for
_DECLARED = table_costs()


def _declared_cost(name: str) -> KernelCostModel:
    f, r, w = _DECLARED[name]
    return KernelCostModel(f, r, w)

#: the ASUCA kernel cost table (per-point flops / element reads / writes).
#: Names marked (1)-(5) are the paper's Fig. 5 kernels.
ASUCA_KERNELS: dict[str, Kernel] = {
    # (1) coordinate transformation rho = J rho^: 2 reads, 1 write, 1 flop
    "coord_transform": Kernel(
        "coord_transform", KernelCostModel(1.0, 2.0, 1.0), launch_config=_STENCIL,
        tag="transform",
    ),
    # (2) horizontal pressure gradient force (x): metric-corrected gradient
    "pgf_x": Kernel(
        "pgf_x", KernelCostModel(14.0, 5.0, 1.0), launch_config=_STENCIL, tag="short",
    ),
    "pgf_y": Kernel(
        "pgf_y", KernelCostModel(14.0, 5.0, 1.0), launch_config=_STENCIL, tag="short",
    ),
    # (3) advection (x-momentum representative): Koren-limited 4-point
    # stencils in 3 directions; shared-memory tiling keeps effective global
    # reads low (Sec. IV-A-2)
    "advection": Kernel(
        "advection", _declared_cost("advection"), launch_config=_STENCIL,
        tag="long",
    ),
    # (4) 1-D Helmholtz-like elliptic equation: tridiagonal assembly+solve
    "helmholtz": Kernel(
        "helmholtz", _declared_cost("helmholtz"), launch_config=_COLUMN,
        tag="short",
    ),
    # (5) warm rain: transcendental-heavy, few memory accesses ("contains
    # mathematical functions, such as log, exp, with few memory accesses";
    # "called once per time step and spends only 1.0% GPU time")
    "warm_rain": Kernel(
        "warm_rain", _declared_cost("warm_rain"), launch_config=_STENCIL,
        tag="physics",
    ),
    # remaining kernels of the execution flow
    "momentum_update": Kernel(
        "momentum_update", KernelCostModel(10.0, 4.0, 1.0), launch_config=_STENCIL,
        tag="short",
    ),
    "continuity": Kernel(
        "continuity", KernelCostModel(10.0, 5.0, 1.0), launch_config=_STENCIL,
        tag="short",
    ),
    "theta_update": Kernel(
        "theta_update", KernelCostModel(12.0, 6.0, 1.0), launch_config=_STENCIL,
        tag="short",
    ),
    "vertical_flux": Kernel(
        "vertical_flux", KernelCostModel(9.0, 4.0, 1.0), launch_config=_STENCIL,
        tag="short",
    ),
    "eos_pressure": Kernel(
        "eos_pressure", _declared_cost("eos_pressure"), launch_config=_STENCIL,
        tag="short",
    ),
    "coriolis": Kernel(
        "coriolis", KernelCostModel(8.0, 3.0, 2.0), launch_config=_STENCIL, tag="long",
    ),
    "array_copy": Kernel(
        "array_copy", KernelCostModel(0.0, 1.0, 1.0), launch_config=_STENCIL,
        tag="copy",
    ),
    "boundary_ops": Kernel(
        "boundary_ops", _declared_cost("boundary_ops"), launch_config=_STENCIL,
        tag="boundary",
    ),
    # the cold-rain (ice) extension — the paper's future work: "typical
    # physics processes are compute bound and can easily extract GPU's
    # performance" (Sec. V-B) and will "result in increased Flops"
    # (Sec. VII).  Costed from repro.physics.ice.COLD_RAIN_FLOPS_PER_POINT.
    "cold_rain": Kernel(
        "cold_rain", KernelCostModel(320.0, 6.0, 5.0), launch_config=_STENCIL,
        tag="physics",
    ),
}

#: the five kernels of the paper's Fig. 5, in its numbering
ROOFLINE_KERNELS = [
    ("(1) coordinate transformation", "coord_transform"),
    ("(2) pressure gradient (x)", "pgf_x"),
    ("(3) advection", "advection"),
    ("(4) Helmholtz-like eq.", "helmholtz"),
    ("(5) warm rain", "warm_rain"),
]

#: tracers whose advection is pipelined in the paper's Fig. 7 experiment
N_WATER_TRACERS = 13


def launch_schedule(ns: int = DEFAULT_NS, *, include_ice: bool = False) -> list[tuple[str, int]]:
    """(kernel name, launches per long step).

    RK stages: 3; acoustic substeps: 1 + ns/2 + ns.  ``include_ice`` adds
    the cold-rain extension kernel (the paper's future work).
    """
    nsub = 1 + max(ns // 2, 1) + ns
    stages = 3
    return [
        # slow tendencies: momentum x/y/z + theta advection per stage,
        # water-substance tracers per stage (RK3 recomputes them)
        ("advection", stages * 4 + stages * N_WATER_TRACERS),
        ("coriolis", stages),
        # generalized-coordinate transforms: momentum (3), density, theta,
        # water substances (13), roughly twice each per long step
        ("coord_transform", 2 * (3 + 1 + 1 + N_WATER_TRACERS)),
        # acoustic substeps: pressure gradients, explicit momentum updates
        # (x, y), continuity, theta acoustic update, Helmholtz solve,
        # vertical-flux updates of rho and theta, EOS/pressure update
        ("pgf_x", nsub),
        ("pgf_y", nsub),
        ("momentum_update", 2 * nsub),
        ("continuity", nsub),
        ("theta_update", nsub),
        ("helmholtz", nsub),
        ("vertical_flux", 2 * nsub),
        ("eos_pressure", nsub),
        # RK-stage base copies and halo packing copies
        ("array_copy", 5 * stages),
        # physics + boundary
        ("warm_rain", 1),
        *((("cold_rain", 1),) if include_ice else ()),
        ("boundary_ops", 4),
    ]


@dataclass
class StepCost:
    """Aggregated cost of one long time step on one device."""

    n_points: int
    precision: Precision
    total_flops: float
    total_bytes: float
    total_time: float
    kernel_times: dict[str, float] = field(default_factory=dict)
    kernel_flops: dict[str, float] = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        return self.total_flops / self.total_time / 1e9

    @property
    def flops_per_point(self) -> float:
        return self.total_flops / self.n_points

    def time_fraction(self, kernel: str) -> float:
        return self.kernel_times[kernel] / self.total_time


def asuca_step_cost(
    nx: int,
    ny: int,
    nz: int,
    *,
    spec: DeviceSpec = TESLA_S1070,
    precision: Precision = Precision.SINGLE,
    order: ArrayOrder = ArrayOrder.XZY,
    ns: int = DEFAULT_NS,
    include_ice: bool = False,
) -> StepCost:
    """Model the cost of one ASUCA long step on ``spec``."""
    n_points = nx * ny * nz
    total_flops = 0.0
    total_bytes = 0.0
    total_time = 0.0
    times: dict[str, float] = {}
    flops: dict[str, float] = {}
    for name, count in launch_schedule(ns, include_ice=include_ice):
        k = ASUCA_KERNELS[name]
        t = count * k.duration(n_points, spec, precision, order)
        f = count * k.cost.flops(n_points)
        total_time += t
        total_flops += f
        total_bytes += count * k.cost.bytes_moved(n_points, precision)
        times[name] = times.get(name, 0.0) + t
        flops[name] = flops.get(name, 0.0) + f
    return StepCost(
        n_points=n_points,
        precision=precision,
        total_flops=total_flops,
        total_bytes=total_bytes,
        total_time=total_time,
        kernel_times=times,
        kernel_flops=flops,
    )


def modeled_run_seconds(
    nx: int,
    ny: int,
    nz: int,
    steps: int,
    *,
    spec: DeviceSpec = TESLA_S1070,
    precision: Precision = Precision.SINGLE,
    ranks: "tuple[int, int] | None" = None,
    backend: str = "gpu",
    include_ice: bool = False,
    ns: int = DEFAULT_NS,
) -> float:
    """Modeled service time of a whole run: ``steps`` long steps of an
    ``nx x ny x nz`` mesh on ``spec`` hardware.

    With ``ranks=(px, py)`` the mesh is 2-D decomposed and the per-step
    time is that of one rank's subdomain (compute only — halo traffic is
    the overlap model's concern, not the scheduler's); ``backend='cpu'``
    prices the run as the original Fortran on one Opteron-class core.
    This is what :mod:`repro.serve` charges a job against the fleet.
    """
    if steps <= 0:
        return 0.0
    if backend == "cpu":
        return steps * cpu_step_time(nx, ny, nz, ns=ns)
    lx, ly = nx, ny
    if ranks is not None:
        px, py = ranks
        lx = -(-nx // px)       # ceil: the largest subdomain paces the gang
        ly = -(-ny // py)
    step = asuca_step_cost(lx, ly, nz, spec=spec, precision=precision,
                           ns=ns, include_ice=include_ice)
    return steps * step.total_time


def cpu_step_time(
    nx: int, ny: int, nz: int, *, spec: DeviceSpec = OPTERON_CORE, ns: int = DEFAULT_NS
) -> float:
    """Time of one long step of the original Fortran on one CPU core
    (double precision).  The production code is modeled as sustaining
    ``compute_efficiency * peak`` flops — the Fig. 4 magenta line."""
    cost = asuca_step_cost(nx, ny, nz, spec=spec, precision=Precision.DOUBLE,
                           order=ArrayOrder.KIJ, ns=ns)
    # CPU execution: flops at sustained rate + memory at bandwidth, with
    # the kij-ordering giving it full cache-friendly bandwidth
    flop_time = cost.total_flops / (spec.peak_flops_dp * spec.compute_efficiency)
    mem_time = cost.total_bytes / spec.mem_bandwidth
    return max(flop_time, mem_time)
