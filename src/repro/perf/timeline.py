"""Timeline inspection and reporting helpers.

Turns a :class:`~repro.gpu.device.GPUDevice` op log into the breakdowns
the paper's figures show: per-kind busy times (Fig. 11), per-name
aggregates (Fig. 9), stream occupancy, and a text Gantt chart for
eyeballing the overlap structure.
"""
from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from ..gpu.device import GPUDevice, Op

__all__ = ["TimelineSummary", "summarize", "summarize_ops", "gantt_text",
           "busy_by_name", "concurrency_profile"]


@dataclass
class TimelineSummary:
    """Aggregates of one device timeline."""

    makespan: float
    busy_by_kind: dict[str, float]
    busy_by_tag: dict[str, float]
    op_count: int
    #: fraction of the makespan during which >= 2 engines were active
    overlap_fraction: float


def summarize(device: GPUDevice) -> TimelineSummary:
    return summarize_ops(device.timeline, makespan=device.elapsed())


def summarize_ops(ops: Iterable[Op], makespan: float | None = None) -> TimelineSummary:
    """Aggregate any op-shaped sequence (objects with ``kind``, ``tag``,
    ``start``, ``end``, ``duration``) — shared by :func:`summarize` and
    the text exporter of :mod:`repro.obs.exporters`, which feeds it
    :class:`~repro.obs.trace.DeviceOpRecord` lists."""
    ops = list(ops)
    by_kind: dict[str, float] = defaultdict(float)
    by_tag: dict[str, float] = defaultdict(float)
    for op in ops:
        by_kind[op.kind] += op.duration
        if op.tag:
            by_tag[op.tag] += op.duration
    if makespan is None:
        makespan = max((op.end for op in ops), default=0.0)

    # sweep for multi-engine concurrency
    events: list[tuple[float, int]] = []
    for op in ops:
        if op.duration > 0:
            events.append((op.start, +1))
            events.append((op.end, -1))
    events.sort()
    active = 0
    prev_t = 0.0
    overlapped = 0.0
    for t, d in events:
        if active >= 2:
            overlapped += t - prev_t
        active += d
        prev_t = t
    return TimelineSummary(
        makespan=makespan,
        busy_by_kind=dict(by_kind),
        busy_by_tag=dict(by_tag),
        op_count=len(ops),
        overlap_fraction=overlapped / makespan if makespan > 0 else 0.0,
    )


def concurrency_profile(ops: Iterable[Op]) -> dict[int, float]:
    """Time spent with exactly ``k`` ops in flight, ``k=0`` being idle
    up to the makespan — the overlap-attribution view the doctor prints
    ("how much of the step had 2+ engines busy").  Accepts any op-shaped
    sequence like :func:`summarize_ops`."""
    events: list[tuple[float, int]] = []
    makespan = 0.0
    for op in ops:
        if op.duration > 0:
            events.append((op.start, +1))
            events.append((op.end, -1))
        if op.end > makespan:
            makespan = op.end
    profile: dict[int, float] = defaultdict(float)
    if not events:
        return {}
    events.sort()
    active = 0
    prev_t = 0.0
    for t, d in events:
        if t > prev_t:
            profile[active] += t - prev_t
        active += d
        prev_t = t
    if makespan > prev_t:
        profile[0] += makespan - prev_t
    return dict(sorted(profile.items()))


def busy_by_name(device: GPUDevice, prefix: str | None = None) -> dict[str, float]:
    """Total time per op name (optionally filtered by name prefix)."""
    out: dict[str, float] = defaultdict(float)
    for op in device.timeline:
        if prefix is None or op.name.startswith(prefix):
            out[op.name] += op.duration
    return dict(out)


def gantt_text(device: GPUDevice, *, width: int = 80, max_ops: int = 60) -> str:
    """ASCII Gantt chart of the first ``max_ops`` ops, one row per op,
    grouped by stream — a poor man's Fig. 8."""
    ops = device.timeline[:max_ops]
    if not ops:
        return "(empty timeline)"
    t1 = max(op.end for op in ops)
    scale = (width - 1) / t1 if t1 > 0 else 0.0
    lines = [f"timeline 0 .. {t1 * 1e3:.2f} ms ({len(ops)} ops shown)"]
    for op in ops:
        a = int(op.start * scale)
        b = max(a + 1, int(op.end * scale))
        bar = " " * a + "#" * (b - a)
        lines.append(f"s{op.stream} {op.kind:6s} |{bar:<{width}}| {op.name}")
    return "\n".join(lines)
