"""Physical and numerical constants shared across the ASUCA reproduction.

Values follow the conventions of the JMA non-hydrostatic models
(Saito et al. 2006; Ikawa & Saito 1991) and standard dry/moist
thermodynamics.  Everything is SI.
"""
from __future__ import annotations

import numpy as np

# --- dry air -----------------------------------------------------------------
RD = 287.04         #: gas constant for dry air [J kg^-1 K^-1]
CP = 1004.5         #: specific heat of dry air at constant pressure [J kg^-1 K^-1]
CV = CP - RD        #: specific heat of dry air at constant volume [J kg^-1 K^-1]
GAMMA = CP / CV     #: ratio of specific heats (~1.4)
KAPPA = RD / CP     #: Poisson constant (~0.2859)

# --- water vapor -------------------------------------------------------------
RV = 461.5          #: gas constant for water vapor [J kg^-1 K^-1]
EPS_RV = RV / RD    #: the "epsilon" of the paper's theta_m definition (~1.608)
LV = 2.501e6        #: latent heat of vaporization at 0 deg C [J kg^-1]
LF = 3.34e5         #: latent heat of fusion [J kg^-1]
LS = LV + LF        #: latent heat of sublimation [J kg^-1]

# --- reference values --------------------------------------------------------
P0 = 1.0e5          #: Exner-function reference pressure [Pa]
G = 9.80665         #: gravitational acceleration [m s^-2]
T0 = 273.15         #: melting point [K]

# --- planetary ---------------------------------------------------------------
OMEGA_EARTH = 7.2921e-5   #: Earth's angular velocity [rad s^-1]

#: hydrometeor species carried by ASUCA (paper Sec. II, Eq. 4).
#: Kessler warm rain only activates v, c, r; the rest advect passively,
#: mirroring the 2010 status of the production code.
WATER_SPECIES = ("qv", "qc", "qr", "qi", "qs", "qg", "qh")

#: species handled by the warm-rain microphysics
WARM_RAIN_SPECIES = ("qv", "qc", "qr")

#: default floating point dtypes, mirroring the paper's single/double runs
DTYPE_SINGLE = np.float32
DTYPE_DOUBLE = np.float64


def sound_speed_squared(p: np.ndarray | float, rho: np.ndarray | float):
    """Adiabatic sound speed squared ``c_s^2 = gamma * p / rho``."""
    return GAMMA * p / rho
