"""repro.stencil — the declarative stencil layer (ROADMAP item 1).

Kernels in ``core/`` and ``physics/`` declare their shapes with
:func:`~repro.stencil.spec.stencil` and dispatch through the active
:class:`~repro.stencil.executor.StencilExecutor`; the declarations are
the source of truth for the GPU cost table, the live-roofline drift
bands, and the LINT03 halo check.  See docs/STENCILS.md.
"""
from __future__ import annotations

from typing import Dict, Tuple

from .executor import (
    BACKENDS,
    StencilExecutor,
    active_executor,
    default_backend,
    numba_available,
    use_executor,
)
from .pool import BufferPool
from .spec import (
    FUSED_IMPLS,
    NUMBA_IMPLS,
    REGISTRY,
    StencilFunction,
    StencilSpec,
    all_specs,
    get_stencil,
    register_fused,
    register_numba,
    stencil,
)

__all__ = [
    "BACKENDS",
    "BufferPool",
    "FUSED_IMPLS",
    "NUMBA_IMPLS",
    "REGISTRY",
    "StencilExecutor",
    "StencilFunction",
    "StencilSpec",
    "active_executor",
    "all_specs",
    "default_backend",
    "get_stencil",
    "load_dycore_specs",
    "numba_available",
    "register_fused",
    "register_numba",
    "stencil",
    "table_costs",
    "declared_flops_band",
    "declared_bytes_band",
    "use_executor",
]

#: modules whose import registers the production stencil specs
_DYCORE_MODULES = (
    "repro.core.advection",
    "repro.core.diffusion",
    "repro.core.pressure",
    "repro.core.helmholtz",
    "repro.core.boundary",
    "repro.physics.kessler",
    "repro.physics.ice",
    "repro.physics.surface",
)


def load_dycore_specs() -> Dict[str, StencilSpec]:
    """Import every kernel module so its specs are registered; returns
    name -> spec.  Idempotent and cycle-free: the kernel modules depend
    only on ``repro.core``/``repro.constants``, never on perf/gpu."""
    import importlib

    for mod in _DYCORE_MODULES:
        importlib.import_module(mod)
    # the fused implementations ride along so callers see full coverage
    from . import dycore  # noqa: F401

    return all_specs()


def table_costs() -> Dict[str, Tuple[float, float, float]]:
    """Cost-table entries derived from the stencil declarations:
    table kernel name -> (flops, reads, writes) per point.

    Several specs may price the same table entry (the four advection
    kernels all price ``advection``); they must agree exactly — a
    conflict raises so drift between declarations is impossible.
    """
    load_dycore_specs()
    out: Dict[str, Tuple[float, float, float]] = {}
    owner: Dict[str, str] = {}
    for name, spec in all_specs().items():
        if spec.table is None:
            continue
        cost = spec.cost_tuple()
        if spec.table in out and out[spec.table] != cost:
            raise ValueError(
                f"stencil {name!r} declares cost {cost} for table kernel "
                f"{spec.table!r} but {owner[spec.table]!r} declared "
                f"{out[spec.table]} — the declarations must agree")
        out[spec.table] = cost
        owner[spec.table] = name
    return out


def _band_for(table_name: str, attr: str) -> Tuple[float, float] | None:
    for spec in all_specs().values():
        if spec.table == table_name:
            band = getattr(spec, attr)
            if band is not None:
                return band
    return None


def declared_flops_band(table_name: str) -> Tuple[float, float] | None:
    """The tightened measured/table flops drift band a spec declares for
    ``table_name`` (None when no spec covers it or none declares one)."""
    load_dycore_specs()
    return _band_for(table_name, "flops_band")


def declared_bytes_band(table_name: str) -> Tuple[float, float] | None:
    """The tightened measured/table bytes drift band for ``table_name``."""
    load_dycore_specs()
    return _band_for(table_name, "bytes_band")
