"""Fused implementations of the declared dycore stencils.

Every function here is the pooled-buffer twin of a reference kernel in
``repro.core`` — same arithmetic operations, same operation order, same
operand order, so the results are **bit-identical** (IEEE-754 float ops
are deterministic; only the memory management differs).  The speedup
comes from three mechanical changes:

* temporaries come from the executor's :class:`~repro.stencil.pool.
  BufferPool` instead of the allocator (the reference advection kernel
  alone allocates ~20 full-field temporaries per call, 21 calls per RK3
  step);
* elementwise work lands in those buffers via ``out=`` ufunc calls;
* slice plans are applied directly to the target windows instead of
  materializing full-extent intermediates and slicing afterwards
  (slicing commutes with elementwise ops, so the selected bits are the
  same ones the reference computes).

An implementation returns ``NotImplemented`` for argument combinations
it does not cover (non-Koren limiters, mixed dtypes, sub-4-level
columns) and the executor falls back to the reference — correctness
never depends on coverage.  tests/stencil/test_fused_identity.py holds
the whole layer to ``np.array_equal`` on the tier-1 workloads.
"""
from __future__ import annotations

import numpy as np

from .. import constants as c
from ..core.limiter import koren
from .spec import register_fused

__all__: list[str] = []


# ------------------------------------------------------------------ koren
def _koren_upwind(mem, base, g1, g2, shape, dt_):
    """``base + 0.5 * koren(g1, g2)`` with pooled buffers.

    Mirrors :func:`repro.core.limiter.koren` op for op; ``g1``/``g2``
    are consumed (they are caller-leased scratch).
    """
    s = np.sign(g1, out=mem.take(shape, dt_))
    g1s = np.abs(g1, out=g1)
    g2s = np.multiply(g2, s, out=g2)
    t2 = np.multiply(2.0, g2s, out=mem.take(shape, dt_))
    t3 = np.add(g1s, t2, out=mem.take(shape, dt_))
    np.divide(t3, 3.0, out=t3)
    t = np.minimum(t2, t3, out=t2)
    g1d = np.multiply(2.0, g1s, out=g1s)
    np.minimum(t, g1d, out=t)
    np.maximum(0.0, t, out=t)
    lim = np.multiply(s, t, out=t)
    np.multiply(0.5, lim, out=lim)
    return np.add(base, lim, out=lim)


def _face_values(mem, p, f, shape, dt_):
    """Limited (Koren) face values in the moved-axis frame: the
    ``np.where(f >= 0, up_pos, up_neg)`` select of the reference."""
    a, b, cc, d = p[:-3], p[1:-2], p[2:-1], p[3:]
    g1 = np.subtract(b, a, out=mem.take(shape, dt_))
    g2 = np.subtract(cc, b, out=mem.take(shape, dt_))
    up_pos = _koren_upwind(mem, b, g1, g2, shape, dt_)
    g1n = np.subtract(cc, d, out=g1)
    g2n = np.subtract(b, cc, out=g2)
    up_neg = _koren_upwind(mem, cc, g1n, g2n, shape, dt_)
    cond = np.greater_equal(f, 0.0, out=mem.take(shape, np.bool_))
    face = up_neg
    np.copyto(face, up_pos, where=cond)
    return face


def _lff(mem, phi, flux, axis):
    """Pooled :func:`repro.core.advection.limited_face_flux` whose result
    lives in a lease-scoped buffer (moved back to ``axis``)."""
    p = np.moveaxis(phi, axis, 0)
    f = np.moveaxis(flux, axis, 0)[1:-1]
    shape, dt_ = f.shape, p.dtype
    face = _face_values(mem, p, f, shape, dt_)
    res = np.multiply(f, face, out=mem.take(shape, dt_))
    return np.moveaxis(res, 0, axis)


@register_fused("limited_face_flux")
def _fused_limited_face_flux(pool, phi, flux, axis, limiter=koren):
    if limiter is not koren or phi.dtype != flux.dtype:
        return NotImplemented
    p = np.moveaxis(phi, axis, 0)
    f = np.moveaxis(flux, axis, 0)[1:-1]
    shape, dt_ = f.shape, p.dtype
    with pool.lease() as mem:
        face = _face_values(mem, p, f, shape, dt_)
        # the result escapes the kernel: allocate it, never lease it
        res = np.multiply(f, face, out=np.empty(shape, dt_))
    return np.moveaxis(res, 0, axis)


# -------------------------------------------------------- vertical pieces
def _sub_divz(mem, ov, phi, fz, dz_c, dt_):
    """``ov -= flux_divergence_z(phi, fz, dz_c)`` (the ``nz >= 4`` branch
    of the reference, with the concatenate/diff collapsed into direct
    subtractions on the three face ranges)."""
    nz = phi.shape[-1]
    ff = mem.take(phi.shape[:-1] + (nz - 1,), dt_)
    ff[..., 1:-1] = _lff(mem, phi, fz[..., 1:-1], -1)
    f_lo = fz[..., 1]
    ff[..., 0] = f_lo * np.where(f_lo >= 0.0, phi[..., 0], phi[..., 1])
    f_hi = fz[..., nz - 1]
    ff[..., -1] = f_hi * np.where(f_hi >= 0.0, phi[..., nz - 2],
                                  phi[..., nz - 1])
    div = mem.take(phi.shape, dt_)
    np.subtract(ff[..., 0], fz[..., 0], out=div[..., 0])
    np.subtract(ff[..., 1:], ff[..., :-1], out=div[..., 1:-1])
    np.subtract(fz[..., -1], ff[..., -1], out=div[..., -1])
    np.divide(div, dz_c[None, None, :], out=div)
    np.subtract(ov, div, out=ov)


def _advect_guard(limiter, grid, *fields) -> bool:
    if limiter is not koren or grid.nz < 4:
        return False
    dt_ = fields[0].dtype
    return all(f.dtype == dt_ for f in fields)


# ------------------------------------------------------------- advection
@register_fused("advect_scalar")
def _fused_advect_scalar(pool, phi, fx, fy, fz, grid, limiter=koren):
    if not _advect_guard(limiter, grid, phi, fx, fy, fz):
        return NotImplemented
    dt_ = phi.dtype
    out = np.zeros(grid.shape_c, dtype=dt_)
    h, nx, ny, nz = grid.halo, grid.nx, grid.ny, grid.nz
    sx, sy = grid.isl
    ov = out[sx, sy]
    with pool.lease() as mem:
        ff = _lff(mem, phi, fx[1:-1], 0)
        d = np.subtract(ff[h - 1 : h - 1 + nx, sy], ff[h - 2 : h - 2 + nx, sy],
                        out=mem.take((nx, ny, nz), dt_))
        np.divide(d, grid.dx, out=d)
        np.negative(d, out=ov)

        ffy = _lff(mem, phi, fy[:, 1:-1], 1)
        d2 = np.subtract(ffy[sx, h - 1 : h - 1 + ny],
                         ffy[sx, h - 2 : h - 2 + ny], out=d)
        np.divide(d2, grid.dy, out=d2)
        np.subtract(ov, d2, out=ov)

        _sub_divz(mem, ov, phi[sx, sy], fz[sx, sy], grid.dz_c, dt_)
    return out


@register_fused("advect_u")
def _fused_advect_u(pool, u, fx, fy, fz, grid, limiter=koren):
    if not _advect_guard(limiter, grid, u, fx, fy, fz):
        return NotImplemented
    dt_ = u.dtype
    out = np.zeros(grid.shape_u, dtype=dt_)
    h, nx, ny, nz = grid.halo, grid.nx, grid.ny, grid.nz
    slu_x, slu_y = grid.isl_u
    ov = out[slu_x, slu_y]
    with pool.lease() as mem:
        fxc = np.add(fx[1:], fx[:-1], out=mem.take(fx[1:].shape, dt_))
        np.multiply(0.5, fxc, out=fxc)
        ff = _lff(mem, u, fxc, 0)
        d = np.subtract(ff[h - 1 : h + nx, slu_y],
                        ff[h - 2 : h + nx - 1, slu_y],
                        out=mem.take(ov.shape, dt_))
        np.divide(d, grid.dx, out=d)
        np.negative(d, out=ov)

        fyc = np.add(fy[1:], fy[:-1], out=mem.take(fy[1:].shape, dt_))
        np.multiply(0.5, fyc, out=fyc)
        ffy = _lff(mem, u[1:-1], fyc[:, 1:-1], 1)
        d2 = np.subtract(ffy[h - 1 : h + nx, h - 1 : h + ny - 1],
                         ffy[h - 1 : h + nx, h - 2 : h + ny - 2], out=d)
        np.divide(d2, grid.dy, out=d2)
        np.subtract(ov, d2, out=ov)

        fzu = mem.take((grid.nxh + 1, grid.nyh, nz + 1), dt_)
        np.add(fz[1:], fz[:-1], out=fzu[1:-1])
        np.multiply(0.5, fzu[1:-1], out=fzu[1:-1])
        fzu[0] = fz[0]
        fzu[-1] = fz[-1]
        _sub_divz(mem, ov, u[slu_x, slu_y], fzu[slu_x, slu_y], grid.dz_c, dt_)
    return out


@register_fused("advect_v")
def _fused_advect_v(pool, v, fx, fy, fz, grid, limiter=koren):
    if not _advect_guard(limiter, grid, v, fx, fy, fz):
        return NotImplemented
    dt_ = v.dtype
    out = np.zeros(grid.shape_v, dtype=dt_)
    h, nx, ny, nz = grid.halo, grid.nx, grid.ny, grid.nz
    slv_x, slv_y = grid.isl_v
    ov = out[slv_x, slv_y]
    with pool.lease() as mem:
        fyc = np.add(fy[:, 1:], fy[:, :-1], out=mem.take(fy[:, 1:].shape, dt_))
        np.multiply(0.5, fyc, out=fyc)
        ff = _lff(mem, v, fyc, 1)
        d = np.subtract(ff[slv_x, h - 1 : h + ny],
                        ff[slv_x, h - 2 : h + ny - 1],
                        out=mem.take(ov.shape, dt_))
        np.divide(d, grid.dy, out=d)
        np.negative(d, out=ov)

        fxc = np.add(fx[:, 1:], fx[:, :-1], out=mem.take(fx[:, 1:].shape, dt_))
        np.multiply(0.5, fxc, out=fxc)
        ffx = _lff(mem, v[:, 1:-1], fxc[1:-1], 0)
        d2 = np.subtract(ffx[h - 1 : h + nx - 1, h - 1 : h + ny],
                         ffx[h - 2 : h + nx - 2, h - 1 : h + ny], out=d)
        np.divide(d2, grid.dx, out=d2)
        np.subtract(ov, d2, out=ov)

        fzv = mem.take((grid.nxh, grid.nyh + 1, nz + 1), dt_)
        np.add(fz[:, 1:], fz[:, :-1], out=fzv[:, 1:-1])
        np.multiply(0.5, fzv[:, 1:-1], out=fzv[:, 1:-1])
        fzv[:, 0] = fz[:, 0]
        fzv[:, -1] = fz[:, -1]
        _sub_divz(mem, ov, v[slv_x, slv_y], fzv[slv_x, slv_y], grid.dz_c, dt_)
    return out


@register_fused("advect_w")
def _fused_advect_w(pool, w, fx, fy, fz, grid, limiter=koren):
    if not _advect_guard(limiter, grid, w, fx, fy, fz):
        return NotImplemented
    dt_ = w.dtype
    out = np.zeros(grid.shape_w, dtype=dt_)
    h, nx, ny, nz = grid.halo, grid.nx, grid.ny, grid.nz
    sx, sy = grid.isl
    with pool.lease() as mem:
        fxw = mem.take((grid.nxh + 1, grid.nyh, nz + 1), dt_)
        np.add(fx[:, :, 1:], fx[:, :, :-1], out=fxw[:, :, 1:-1])
        np.multiply(0.5, fxw[:, :, 1:-1], out=fxw[:, :, 1:-1])
        fxw[:, :, 0] = fx[:, :, 0]
        fxw[:, :, -1] = fx[:, :, -1]
        ffx = _lff(mem, w, fxw[1:-1], 0)
        ov = out[sx, sy]
        d = np.subtract(ffx[h - 1 : h - 1 + nx, sy],
                        ffx[h - 2 : h - 2 + nx, sy],
                        out=mem.take((nx, ny, nz + 1), dt_))
        np.divide(d, grid.dx, out=d)
        np.negative(d, out=ov)

        fyw = mem.take((grid.nxh, grid.nyh + 1, nz + 1), dt_)
        np.add(fy[:, :, 1:], fy[:, :, :-1], out=fyw[:, :, 1:-1])
        np.multiply(0.5, fyw[:, :, 1:-1], out=fyw[:, :, 1:-1])
        fyw[:, :, 0] = fy[:, :, 0]
        fyw[:, :, -1] = fy[:, :, -1]
        ffy = _lff(mem, w, fyw[:, 1:-1], 1)
        d2 = np.subtract(ffy[sx, h - 1 : h - 1 + ny],
                         ffy[sx, h - 2 : h - 2 + ny], out=d)
        np.divide(d2, grid.dy, out=d2)
        np.subtract(ov, d2, out=ov)

        fzc = np.add(fz[..., 1:], fz[..., :-1],
                     out=mem.take(fz[..., 1:].shape, dt_))
        np.multiply(0.5, fzc, out=fzc)
        wi = w[sx, sy]
        fzi = fzc[sx, sy]
        # nz >= 4 guarantees the wide-stencil branch (nz + 1 >= 4)
        ffz = mem.take(fzi.shape, dt_)
        ffz[..., 1:-1] = _lff(mem, wi, fzi, -1)
        ffz[..., 0] = fzi[..., 0] * np.where(fzi[..., 0] >= 0.0,
                                             wi[..., 0], wi[..., 1])
        ffz[..., -1] = fzi[..., -1] * np.where(fzi[..., -1] >= 0.0,
                                               wi[..., -2], wi[..., -1])
        d3 = np.subtract(ffz[..., 1:], ffz[..., :-1],
                         out=mem.take((nx, ny, nz - 1), dt_))
        np.divide(d3, grid.dz_f[None, None, 1:-1], out=d3)
        np.subtract(ov[..., 1:-1], d3, out=ov[..., 1:-1])
        ov[..., 0] = 0.0
        ov[..., nz] = 0.0
    return out


# ------------------------------------------------------------- diffusion
def _lap_into(mem, dest, phi, sx, sy, dx, dy):
    """``dest = _lap_on(phi, sx, sy, dx, dy)`` with pooled temporaries
    (same ``(A - 2C + B)/dx^2 + (E - 2C + F)/dy^2`` evaluation order)."""
    x0, x1 = sx.start, sx.stop
    y0, y1 = sy.start, sy.stop
    shape, dt_ = phi[sx, sy].shape, phi.dtype
    c2 = np.multiply(2.0, phi[sx, sy], out=mem.take(shape, dt_))
    tx = np.subtract(phi[x0 + 1 : x1 + 1, sy], c2, out=mem.take(shape, dt_))
    np.add(tx, phi[x0 - 1 : x1 - 1, sy], out=tx)
    np.divide(tx, dx ** 2, out=tx)
    ty = np.subtract(phi[sx, y0 + 1 : y1 + 1], c2, out=c2)
    np.add(ty, phi[sx, y0 - 1 : y1 - 1], out=ty)
    np.divide(ty, dy ** 2, out=ty)
    np.add(tx, ty, out=dest)


def _fused_hlap(pool, phi, grid, sx, sy):
    out = np.zeros_like(phi)
    with pool.lease() as mem:
        _lap_into(mem, out[sx, sy], phi, sx, sy, grid.dx, grid.dy)
    return out


@register_fused("horizontal_laplacian_c")
def _fused_hlap_c(pool, phi, grid):
    sx, sy = grid.isl
    return _fused_hlap(pool, phi, grid, sx, sy)


@register_fused("horizontal_laplacian_u")
def _fused_hlap_u(pool, u, grid):
    sx, sy = grid.isl_u
    return _fused_hlap(pool, u, grid, sx, sy)


@register_fused("horizontal_laplacian_v")
def _fused_hlap_v(pool, v, grid):
    sx, sy = grid.isl_v
    return _fused_hlap(pool, v, grid, sx, sy)


@register_fused("horizontal_laplacian_w")
def _fused_hlap_w(pool, w, grid):
    sx, sy = grid.isl
    return _fused_hlap(pool, w, grid, sx, sy)


@register_fused("hyperdiffusion_c")
def _fused_hyperdiffusion_c(pool, phi, grid):
    h = grid.halo
    sx, sy = grid.isl
    sx1 = slice(h - 1, h + grid.nx + 1)
    sy1 = slice(h - 1, h + grid.ny + 1)
    out = np.zeros_like(phi)
    with pool.lease() as mem:
        # the reference's first full-interior Laplacian is dead code (the
        # ring recomputes the interior); only the ring's values are read
        # by the outer Laplacian, so the lease buffer needs no zeroing
        ring = mem.take(phi.shape, phi.dtype)
        _lap_into(mem, ring[sx1, sy1], phi, sx1, sy1, grid.dx, grid.dy)
        _lap_into(mem, out[sx, sy], ring, sx, sy, grid.dx, grid.dy)
        np.negative(out[sx, sy], out=out[sx, sy])
    return out


@register_fused("vertical_diffusion_c")
def _fused_vertical_diffusion_c(pool, phi, grid, kv):
    if phi.dtype != np.float64:
        return NotImplemented
    kv_f = np.broadcast_to(np.asarray(kv, dtype=np.float64), (grid.nz + 1,))
    jac = grid.jac[:, :, None]
    with pool.lease() as mem:
        dzf = np.multiply(grid.dz_f[None, None, :], jac,
                          out=mem.take(grid.shape_w, np.float64))
        flux = mem.take(grid.shape_w, np.float64)
        flux[:, :, 0] = 0.0
        flux[:, :, -1] = 0.0
        t = np.subtract(phi[:, :, 1:], phi[:, :, :-1],
                        out=mem.take(phi[:, :, 1:].shape, np.float64))
        np.multiply(kv_f[None, None, 1:-1], t, out=t)
        np.divide(t, dzf[:, :, 1:-1], out=flux[:, :, 1:-1])
        dzc = np.multiply(grid.dz_c[None, None, :], jac,
                          out=mem.take(grid.shape_c, np.float64))
        res = np.subtract(flux[:, :, 1:], flux[:, :, :-1],
                          out=np.empty(grid.shape_c, np.float64))
        np.divide(res, dzc, out=res)
    return res


# ------------------------------------------------------ pressure / solver
@register_fused("eos_pressure")
def _fused_eos_pressure(pool, rhotheta_hat, grid):
    if rhotheta_hat.dtype != np.float64:
        return NotImplemented
    with pool.lease() as mem:
        t = np.divide(rhotheta_hat, grid.jac[:, :, None],
                      out=mem.take(rhotheta_hat.shape, np.float64))
        np.multiply(c.RD, t, out=t)
        np.divide(t, c.P0, out=t)
        np.power(t, c.CP / c.CV, out=t)
        res = np.multiply(c.P0, t, out=np.empty(rhotheta_hat.shape,
                                                np.float64))
    return res


@register_fused("helmholtz_solve")
def _fused_helmholtz_solve(pool, op, rhs_interior):
    sub, diag, sup = op.sub, op.diag, op.sup
    rhs = rhs_interior
    if not (rhs.dtype == sub.dtype == diag.dtype == sup.dtype):
        return NotImplemented
    n = rhs.shape[-1]
    w = np.zeros((rhs.shape[0], rhs.shape[1], op.grid.nz + 1),
                 dtype=rhs.dtype)
    x = w[:, :, 1:-1]
    with pool.lease() as mem:
        cp = mem.take(rhs.shape, rhs.dtype)
        dp = mem.take(rhs.shape, rhs.dtype)
        denom = mem.take(rhs.shape[:-1], rhs.dtype)
        t = mem.take(rhs.shape[:-1], rhs.dtype)
        np.divide(sup[..., 0], diag[..., 0], out=cp[..., 0])
        np.divide(rhs[..., 0], diag[..., 0], out=dp[..., 0])
        for k in range(1, n):
            np.multiply(sub[..., k], cp[..., k - 1], out=denom)
            np.subtract(diag[..., k], denom, out=denom)
            np.divide(sup[..., k], denom, out=cp[..., k])
            np.multiply(sub[..., k], dp[..., k - 1], out=t)
            np.subtract(rhs[..., k], t, out=t)
            np.divide(t, denom, out=dp[..., k])
        x[..., -1] = dp[..., -1]
        for k in range(n - 2, -1, -1):
            np.multiply(cp[..., k], x[..., k + 1], out=t)
            np.subtract(dp[..., k], t, out=x[..., k])
    return w
