"""Stencil execution backends and the active-executor context.

Three backends, selected by :class:`~repro.api.RunSpec`\\ 's
``stencil_backend`` (or ``repro run --stencil-backend``, or the
``REPRO_STENCIL_BACKEND`` environment variable for whole-suite runs):

* ``reference`` — call the decorated NumPy kernel directly.  The
  default; byte-for-byte the pre-stencil-layer behavior.
* ``fused`` — route through the registered fused implementation:
  pooled temporaries, ``out=`` ufuncs, precompiled slice plans.  The
  arithmetic and its order are untouched, so results are bit-identical
  to the reference (asserted on the tier-1 workloads), but the
  allocator traffic collapses — the wall-clock win lands in
  ``BENCH_stencil_fusion.json``.
* ``numba`` — like ``fused`` but preferring registered Numba kernels.
  Requires the optional ``numba`` package; constructing the executor
  without it raises immediately (the container image does not bundle
  numba, so this backend is opt-in by environment).

Backend choice never changes what a run computes; accordingly
``RunSpec.spec_hash()`` ignores it and the serve-layer result cache
returns hits across backends.
"""
from __future__ import annotations

import contextlib
import contextvars
import os
from collections import Counter
from typing import Any, Dict

from .pool import BufferPool
from .spec import FUSED_IMPLS, NUMBA_IMPLS, StencilFunction

__all__ = [
    "BACKENDS",
    "StencilExecutor",
    "active_executor",
    "use_executor",
    "default_backend",
    "numba_available",
]

BACKENDS = ("reference", "fused", "numba")

#: environment override of the default backend (used by the CI stencil
#: job to run the whole tier-1 suite fused)
BACKEND_ENV = "REPRO_STENCIL_BACKEND"


def numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def default_backend() -> str:
    """The process-default backend: :data:`BACKEND_ENV` or 'reference'."""
    backend = os.environ.get(BACKEND_ENV, "reference").strip() or "reference"
    if backend not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={backend!r}: unknown stencil backend; choose "
            f"one of {BACKENDS}")
    return backend


class StencilExecutor:
    """Dispatches :class:`~repro.stencil.spec.StencilFunction` calls to
    one backend, owning the buffer pool and per-kernel call statistics."""

    def __init__(self, backend: str = "reference"):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown stencil backend {backend!r}; choose one of "
                f"{BACKENDS}")
        if backend == "numba" and not numba_available():
            raise RuntimeError(
                "stencil backend 'numba' needs the optional numba package "
                "(not installed in this environment); use 'fused' — it is "
                "bit-identical and needs only NumPy")
        if backend != "reference":
            # make sure the fused implementations are registered; without
            # this every dispatch would silently fall back to the reference
            from . import dycore  # noqa: F401
        self.backend = backend
        self.pool = BufferPool()
        #: spec name -> dispatch count
        self.calls: Counter = Counter()
        #: dispatches served by a fused/numba implementation
        self.accelerated = 0
        #: dispatches that fell back to the reference implementation
        self.fallbacks = 0

    # ---------------------------------------------------------- dispatch
    def call(self, sf: StencilFunction, args: tuple, kwargs: dict) -> Any:
        self.calls[sf.spec.name] += 1
        if self.backend != "reference":
            impl = None
            if self.backend == "numba":
                impl = NUMBA_IMPLS.get(sf.spec.name)
                if impl is not None:
                    out = impl(*args, **kwargs)
                    if out is not NotImplemented:
                        self.accelerated += 1
                        return out
                    impl = None
            if impl is None:
                impl = FUSED_IMPLS.get(sf.spec.name)
            if impl is not None:
                out = impl(self.pool, *args, **kwargs)
                if out is not NotImplemented:
                    self.accelerated += 1
                    return out
            self.fallbacks += 1
        return sf.reference(*args, **kwargs)

    # --------------------------------------------------------- reporting
    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "dispatches": int(sum(self.calls.values())),
            "accelerated": self.accelerated,
            "fallbacks": self.fallbacks,
            **self.pool.stats(),
        }

    def report(self) -> str:
        s = self.stats()
        return (f"stencil[{self.backend}]: {s['dispatches']} dispatches "
                f"({s['accelerated']} fused, {s['fallbacks']} reference), "
                f"pool reuse {self.pool.reuses}/"
                f"{self.pool.reuses + self.pool.allocations} "
                f"({self.pool.reuse_fraction:.0%})")


_ACTIVE: contextvars.ContextVar["StencilExecutor | None"] = \
    contextvars.ContextVar("repro_stencil_executor", default=None)

_DEFAULT: "StencilExecutor | None" = None


def _default_executor() -> StencilExecutor:
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.backend != default_backend():
        _DEFAULT = StencilExecutor(default_backend())
    return _DEFAULT


def active_executor() -> StencilExecutor:
    """The executor stencil dispatch goes through right now: the
    innermost :func:`use_executor` context, else the process default
    (``reference`` unless :data:`BACKEND_ENV` says otherwise)."""
    ex = _ACTIVE.get()
    return ex if ex is not None else _default_executor()


@contextlib.contextmanager
def use_executor(executor: StencilExecutor):
    """Route stencil dispatch through ``executor`` inside the block
    (the :class:`~repro.api.Experiment` enters this around stepping)."""
    token = _ACTIVE.set(executor)
    try:
        yield executor
    finally:
        _ACTIVE.reset(token)
