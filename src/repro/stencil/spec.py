"""Declarative stencil specifications: the single source of truth for
what each dycore/physics kernel reads, writes, and reaches.

The paper's CUDA rewrite (Sec. IV) and the Hybrid Fortran line of work on
ASUCA both hinge on the same move: express every kernel as *declared
shapes* — fields in, fields out, halo width, launch geometry — and let
the machinery (code generation there, dispatch/accounting/lint here)
derive everything else from the declaration.  This module is that
declaration layer, in the style of fv3core's gt4py stencils
(SNIPPETS.md Snippet 1):

* :class:`StencilSpec` — name, ``reads``/``writes`` field roles, halo
  width, launch block, per-point FLOP/element costs, and (optionally)
  the :data:`~repro.perf.costmodel.ASUCA_KERNELS` table entry the spec
  prices plus tightened measured-drift bands for the live roofline.
* :func:`stencil` — the decorator; wraps a reference NumPy kernel into a
  :class:`StencilFunction` that dispatches through the active
  :class:`~repro.stencil.executor.StencilExecutor` (backend
  ``reference`` reproduces today's behavior exactly).
* :data:`REGISTRY` — every declared stencil, keyed by name.  Downstream
  consumers (``perf/costmodel``, ``gpu/counters``, ``analysis`` LINT03)
  read shapes from here instead of re-deriving them from the AST.

Fused implementations register separately (:func:`register_fused`) so
the reference module never imports backend code.
"""
from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

__all__ = [
    "StencilSpec",
    "StencilFunction",
    "stencil",
    "register_fused",
    "register_numba",
    "get_stencil",
    "all_specs",
    "REGISTRY",
    "FUSED_IMPLS",
    "NUMBA_IMPLS",
]

#: every declared stencil, keyed by spec name
REGISTRY: Dict[str, "StencilFunction"] = {}

#: fused (pooled-buffer) implementations, keyed by spec name.  An impl
#: takes ``(pool, *args, **kwargs)`` and may return ``NotImplemented``
#: to fall back to the reference path for argument combinations it does
#: not cover (non-default limiters, mixed dtypes, tiny grids).
FUSED_IMPLS: Dict[str, Callable[..., Any]] = {}

#: optional Numba implementations (same contract as :data:`FUSED_IMPLS`
#: minus the pool).  Only consulted when the ``numba`` backend is active,
#: which requires the numba package; absent an entry the numba backend
#: falls back to the fused implementation, then to the reference.
NUMBA_IMPLS: Dict[str, Callable[..., Any]] = {}


@dataclass(frozen=True)
class StencilSpec:
    """Declared shape of one kernel.

    ``halo`` is the maximum distance (in cells, horizontally) the kernel
    reads beyond the interior it writes — the contract the halo exchange
    must satisfy before launch and the width LINT03 verifies by probing.
    ``flops/reads/writes_per_point`` are the hand-counted per-point costs
    the GPU cost model prices launches with; when ``table`` names an
    :data:`~repro.perf.costmodel.ASUCA_KERNELS` entry, those numbers
    *are* that entry (the table is derived from the specs).
    """

    name: str
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    halo: int
    #: launch block geometry for the modeled GPU (the paper's (64, 4, 1))
    launch: Tuple[int, int, int] = (64, 4, 1)
    #: thread-march axis of the launch ('y' for stencils, 'z' for columns)
    march_axis: str = "y"
    flops_per_point: float = 1.0
    reads_per_point: float = 1.0
    writes_per_point: float = 1.0
    #: 'dycore', 'physics', 'solver', or 'boundary'
    stage: str = "dycore"
    #: ASUCA_KERNELS entry this spec prices (None: not in the step table)
    table: str | None = None
    #: measured/table flops-per-point drift band for the live roofline
    #: (None: the counters' default band applies)
    flops_band: Tuple[float, float] | None = None
    #: measured/table bytes-per-point drift band (None: default band)
    bytes_band: Tuple[float, float] | None = None
    #: whether the probe-based halo verification covers this spec
    #: (False for in-place halo *writers* and solver-internal kernels)
    probe: bool = True
    #: ``'preserve'``: outputs keep the input dtype (the paper's
    #: single-precision design point) and LINT08 flags float64 upcasts in
    #: the kernel body; ``'widen'``: the kernel legitimately computes in
    #: float64 (e.g. a solver factorization) and is exempt
    dtype_policy: str = "preserve"
    #: where the spec was declared (filename, lineno) — lint findings
    #: point here
    origin: Tuple[str, int] | None = None

    def __post_init__(self) -> None:
        if self.halo < 0:
            raise ValueError(f"stencil {self.name!r}: halo must be >= 0")
        if not self.writes:
            raise ValueError(f"stencil {self.name!r}: declare >= 1 write")
        if self.march_axis not in ("x", "y", "z"):
            raise ValueError(
                f"stencil {self.name!r}: march_axis must be x/y/z")
        if self.dtype_policy not in ("preserve", "widen"):
            raise ValueError(
                f"stencil {self.name!r}: dtype_policy must be "
                f"'preserve' or 'widen'")

    def launch_config(self):
        """The :class:`~repro.gpu.kernel.LaunchConfig` this spec declares
        (imported lazily; the spec layer itself has no GPU dependency)."""
        from ..gpu.kernel import LaunchConfig

        return LaunchConfig(block=self.launch, march_axis=self.march_axis)

    def cost_tuple(self) -> Tuple[float, float, float]:
        return (self.flops_per_point, self.reads_per_point,
                self.writes_per_point)


class StencilFunction:
    """A declared kernel: the reference implementation plus dispatch.

    Calling a :class:`StencilFunction` routes through the active
    executor; under the default ``reference`` backend that is exactly a
    call of the wrapped function, so decorating a kernel changes nothing
    for existing callers.
    """

    def __init__(self, spec: StencilSpec, reference: Callable[..., Any]):
        self.spec = spec
        self.reference = reference
        self.__name__ = getattr(reference, "__name__", spec.name)
        self.__qualname__ = getattr(reference, "__qualname__", spec.name)
        self.__doc__ = reference.__doc__
        self.__module__ = getattr(reference, "__module__", __name__)
        self.__wrapped__ = reference

    def __call__(self, *args: Any, **kwargs: Any):
        from .executor import active_executor

        return active_executor().call(self, args, kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.spec
        return (f"<stencil {s.name} reads={s.reads} writes={s.writes} "
                f"halo={s.halo}>")


def stencil(
    *,
    name: str | None = None,
    reads: Tuple[str, ...] = (),
    writes: Tuple[str, ...] = (),
    halo: int = 0,
    launch: Tuple[int, int, int] = (64, 4, 1),
    march_axis: str = "y",
    flops: float = 1.0,
    loads: float = 1.0,
    stores: float = 1.0,
    stage: str = "dycore",
    table: str | None = None,
    flops_band: Tuple[float, float] | None = None,
    bytes_band: Tuple[float, float] | None = None,
    probe: bool = True,
    dtype_policy: str = "preserve",
) -> Callable[[Callable[..., Any]], StencilFunction]:
    """Declare a kernel's shape and register it.

    Usage::

        @stencil(reads=("phi", "fx", "fy", "fz"), writes=("tend",),
                 halo=2, flops=80, loads=9, stores=1, table="advection")
        def advect_scalar(phi, fx, fy, fz, grid, limiter=koren):
            ...
    """

    def deco(fn: Callable[..., Any]) -> StencilFunction:
        frame = inspect.stack()[1]
        spec = StencilSpec(
            name=name or fn.__name__,
            reads=tuple(reads),
            writes=tuple(writes),
            halo=halo,
            launch=tuple(launch),
            march_axis=march_axis,
            flops_per_point=float(flops),
            reads_per_point=float(loads),
            writes_per_point=float(stores),
            stage=stage,
            table=table,
            flops_band=flops_band,
            bytes_band=bytes_band,
            probe=probe,
            dtype_policy=dtype_policy,
            origin=(frame.filename, frame.lineno),
        )
        if spec.name in REGISTRY:
            raise ValueError(f"stencil {spec.name!r} already registered "
                             f"(first at {REGISTRY[spec.name].spec.origin})")
        sf = StencilFunction(spec, fn)
        REGISTRY[spec.name] = sf
        return sf

    return deco


def register_fused(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Attach a fused implementation to the named spec.

    The impl receives ``(pool, *args, **kwargs)`` and must be
    *bit-identical* to the reference for every argument combination it
    accepts (return ``NotImplemented`` for the rest) — the identity
    tests in tests/stencil enforce this on the tier-1 workloads.
    """

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        FUSED_IMPLS[name] = fn
        return fn

    return deco


def register_numba(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Attach a Numba implementation to the named spec (same contract as
    :func:`register_fused` minus the pool argument)."""

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        NUMBA_IMPLS[name] = fn
        return fn

    return deco


def get_stencil(name: str) -> StencilFunction:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no stencil named {name!r}; registered: {sorted(REGISTRY)}"
        ) from None


def all_specs() -> Dict[str, StencilSpec]:
    """Name -> spec for every registered stencil (load the dycore first
    with :func:`repro.stencil.load_dycore_specs` if you need them all)."""
    return {name: sf.spec for name, sf in REGISTRY.items()}
