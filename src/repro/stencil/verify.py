"""Probe-based verification of declared stencil halos (drives LINT03).

The old LINT03 guessed slice reaches from the AST; this module instead
verifies the *declaration* empirically: build a grid whose halo is wider
than the spec declares, run the reference kernel, perturb every halo
ring **beyond** the declared width, run again, and compare interiors.
If the interior changed, the kernel reads farther than the spec admits —
an understated halo that would corrupt a distributed run whose exchange
width trusts the declaration.

Each probeable spec has a harness here that builds representative inputs
and extracts the interior of the output; specs with ``probe=False``
(in-place halo writers, state-mutating physics) and specs without a
harness are reported as skipped, never silently dropped.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from .spec import REGISTRY, StencilSpec

__all__ = ["ProbeResult", "probe_spec", "probe_all", "register_harness"]

#: spec name -> harness(grid, rng) -> (inputs_to_perturb, run_interior)
HARNESSES: Dict[str, Callable] = {}


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of probing one spec's declared halo."""

    name: str
    declared_halo: int
    #: True: interior invariant under out-of-declared-halo perturbation
    clean: bool
    #: False when the spec opted out (probe=False) or has no harness
    probed: bool
    detail: str = ""


def register_harness(name: str):
    """Attach a probe harness to the named spec.  The harness receives
    ``(grid, rng)`` and returns ``(inputs, run)`` where ``inputs`` are the
    arrays whose halos the probe perturbs and ``run()`` recomputes and
    returns the interior of the kernel output (via ``.reference`` — the
    probe checks the semantics, not a backend)."""

    def deco(fn):
        HARNESSES[name] = fn
        return fn

    return deco


def _probe_grid(spec: StencilSpec):
    from ..core.grid import make_grid

    halo = max(spec.halo + 1, 2)
    return make_grid(nx=8, ny=7, nz=6, dx=100.0, dy=100.0, ztop=600.0,
                     halo=halo)


def _perturb_beyond(arr: np.ndarray, grid_halo: int, declared: int) -> None:
    """Bump every x/y halo ring farther than ``declared`` cells out."""
    w = grid_halo - declared
    if w <= 0 or arr.ndim < 2:
        return
    arr[:w] += 1.0
    arr[-w:] += 1.0
    arr[:, :w] += 1.0
    arr[:, -w:] += 1.0


def probe_spec(spec: StencilSpec, seed: int = 0) -> ProbeResult:
    """Probe one spec; see module docstring for the contract."""
    if not spec.probe:
        return ProbeResult(spec.name, spec.halo, clean=True, probed=False,
                           detail="spec opted out (probe=False)")
    harness = HARNESSES.get(spec.name)
    if harness is None:
        return ProbeResult(spec.name, spec.halo, clean=True, probed=False,
                           detail="no probe harness registered")
    grid = _probe_grid(spec)
    rng = np.random.default_rng(seed)
    inputs, run = harness(grid, rng)
    base = run()
    for arr in inputs:
        _perturb_beyond(arr, grid.halo, spec.halo)
    probed = run()
    clean = bool(np.array_equal(base, probed))
    detail = "" if clean else (
        f"interior changed when halo rings beyond width {spec.halo} were "
        f"perturbed — the kernel reads farther than it declares")
    return ProbeResult(spec.name, spec.halo, clean=clean, probed=True,
                       detail=detail)


def probe_all(seed: int = 0) -> List[ProbeResult]:
    """Probe every registered spec (loading the dycore first)."""
    from . import load_dycore_specs

    load_dycore_specs()
    return [probe_spec(sf.spec, seed=seed)
            for _, sf in sorted(REGISTRY.items())]


# --------------------------------------------------------------- harnesses
def _fields(grid, rng) -> Tuple[np.ndarray, ...]:
    return (rng.normal(size=grid.shape_c), rng.normal(size=grid.shape_u),
            rng.normal(size=grid.shape_v), rng.normal(size=grid.shape_w))


def _advect_harness(kernel_name: str, field_shape_attr: str, interior_attr: str):
    def harness(grid, rng):
        from ..core import advection as adv

        q = rng.normal(size=getattr(grid, field_shape_attr))
        phi, fx, fy, fz = _fields(grid, rng)
        kernel = REGISTRY[kernel_name].reference
        isl = getattr(grid, interior_attr)

        def run():
            out = kernel(q, fx, fy, fz, grid)
            return np.array(out[isl[0], isl[1]])

        return [q, fx, fy, fz], run

    return harness


HARNESSES["advect_scalar"] = _advect_harness("advect_scalar", "shape_c", "isl")
HARNESSES["advect_u"] = _advect_harness("advect_u", "shape_u", "isl_u")
HARNESSES["advect_v"] = _advect_harness("advect_v", "shape_v", "isl_v")
HARNESSES["advect_w"] = _advect_harness("advect_w", "shape_w", "isl")


def _lap_harness(kernel_name: str, field_shape_attr: str, interior_attr: str):
    def harness(grid, rng):
        q = rng.normal(size=getattr(grid, field_shape_attr))
        kernel = REGISTRY[kernel_name].reference
        isl = getattr(grid, interior_attr)

        def run():
            out = kernel(q, grid)
            return np.array(out[isl[0], isl[1]])

        return [q], run

    return harness


HARNESSES["horizontal_laplacian_c"] = _lap_harness(
    "horizontal_laplacian_c", "shape_c", "isl")
HARNESSES["horizontal_laplacian_u"] = _lap_harness(
    "horizontal_laplacian_u", "shape_u", "isl_u")
HARNESSES["horizontal_laplacian_v"] = _lap_harness(
    "horizontal_laplacian_v", "shape_v", "isl_v")
HARNESSES["horizontal_laplacian_w"] = _lap_harness(
    "horizontal_laplacian_w", "shape_w", "isl")
HARNESSES["hyperdiffusion_c"] = _lap_harness(
    "hyperdiffusion_c", "shape_c", "isl")


@register_harness("vertical_diffusion_c")
def _vdiff_harness(grid, rng):
    from ..core.diffusion import vertical_diffusion_c

    phi = rng.normal(size=grid.shape_c)
    sx, sy = grid.isl

    def run():
        out = vertical_diffusion_c.reference(phi, grid, 5.0)
        return np.array(out[sx, sy])

    return [phi], run


@register_harness("eos_pressure")
def _eos_harness(grid, rng):
    from ..core.pressure import eos_pressure

    rt = np.abs(rng.normal(size=grid.shape_c)) * 30.0 + 250.0
    sx, sy = grid.isl

    def run():
        out = eos_pressure.reference(rt, grid)
        return np.array(out[sx, sy])

    return [rt], run


@register_harness("helmholtz_solve")
def _helmholtz_harness(grid, rng):
    from ..core.helmholtz import HelmholtzOperator
    from ..core.pressure import eos_pressure, linearization_coefficient

    rt = np.abs(rng.normal(size=grid.shape_c)) * 30.0 + 250.0
    thf = np.abs(rng.normal(size=(grid.nxh, grid.nyh, grid.nz + 1))) + 280.0
    rhs = rng.normal(size=(grid.nxh, grid.nyh, grid.nz - 1))
    sx, sy = grid.isl

    def run():
        p = eos_pressure.reference(rt, grid)
        op = HelmholtzOperator(grid, thf, linearization_coefficient(p, rt),
                               dtau=0.05, beta=0.6)
        w = op.solve(rhs)
        return np.array(w[sx, sy])

    return [rt, thf, rhs], run
