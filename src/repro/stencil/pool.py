"""Temporary-buffer pool for the fused stencil backend.

The reference NumPy kernels allocate every intermediate array fresh; on
the 21 advection calls of one RK3 step that is hundreds of allocator
round trips of identical shapes.  The paper's CUDA kernels keep those
temporaries in registers/shared memory (Sec. IV-A); the closest NumPy
analogue is to keep them in a shape-keyed free list and write into them
with ``out=`` ufuncs.  Results stay bit-identical because only the
*memory management* changes, never the arithmetic or its order.

Leases scope reuse: a fused kernel takes buffers through a
:meth:`BufferPool.lease`, and everything taken returns to the free list
when the lease closes — arrays that escape a kernel (its return value)
must be allocated normally, never leased.
"""
from __future__ import annotations

import contextlib
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["BufferPool"]

_Key = Tuple[Tuple[int, ...], str]


class _Lease:
    """Hands out pooled buffers; returns them on close."""

    def __init__(self, pool: "BufferPool"):
        self._pool = pool
        self._held: List[Tuple[_Key, np.ndarray]] = []

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        key, buf = self._pool._take(shape, dtype)
        self._held.append((key, buf))
        return buf

    def _release(self) -> None:
        free = self._pool._free
        for key, buf in self._held:
            free.setdefault(key, []).append(buf)
        self._held.clear()


class BufferPool:
    """Shape-keyed free lists of scratch arrays, with reuse statistics.

    The statistics are deterministic for a fixed workload/step count —
    the fusion benchmark gates on them, since wall-clock is too noisy
    for CI.
    """

    def __init__(self) -> None:
        self._free: Dict[_Key, List[np.ndarray]] = {}
        #: fresh ``np.empty`` calls (pool misses)
        self.allocations = 0
        #: buffers served from a free list (pool hits)
        self.reuses = 0
        #: bytes of backing store ever allocated
        self.bytes_allocated = 0

    # ------------------------------------------------------------- core
    def _take(self, shape, dtype) -> Tuple[_Key, np.ndarray]:
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        free = self._free.get(key)
        if free:
            self.reuses += 1
            return key, free.pop()
        self.allocations += 1
        buf = np.empty(key[0], dtype=dtype)
        self.bytes_allocated += buf.nbytes
        return key, buf

    @contextlib.contextmanager
    def lease(self):
        """Scope for scratch buffers: everything taken inside is back on
        the free list when the ``with`` block exits."""
        lease = _Lease(self)
        try:
            yield lease
        finally:
            lease._release()

    # -------------------------------------------------------- reporting
    @property
    def reuse_fraction(self) -> float:
        total = self.allocations + self.reuses
        return self.reuses / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "allocations": float(self.allocations),
            "reuses": float(self.reuses),
            "reuse_fraction": self.reuse_fraction,
            "bytes_allocated": float(self.bytes_allocated),
        }

    def clear(self) -> None:
        """Drop the free lists (keeps the counters)."""
        self._free.clear()
