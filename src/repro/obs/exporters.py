"""Exporters: turn a :class:`~repro.obs.trace.TraceSession` into
shareable artifacts.

* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome Trace
  Format JSON (the ``traceEvents`` array form), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  Host spans and
  virtual-device ops become 'X' complete events on named tracks;
  messages become 's'/'f' flow arrows anchored on tiny post/recv
  slices; every track gets a metadata name.
* :func:`jsonl_events` / :func:`write_jsonl` — a line-per-event JSON
  stream (spans, device ops, flows, then a final metrics record) for
  ad-hoc processing with ``jq``/pandas.
* :func:`summary_text` — a text roll-up reusing the op-timeline
  aggregation of :mod:`repro.perf.timeline` for each collected device,
  plus a PhaseTimer-style host-span table and the metrics report.

Timestamps are exported in microseconds, the CTF unit.  Host spans use
wall time since the session epoch; device ops use the virtual device
clock — they live on separate track groups, so the two bases never
share an axis (documented in docs/OBSERVABILITY.md).
"""
from __future__ import annotations

import json
from typing import Any, Iterator

from .trace import TraceSession

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "summary_text",
]

#: duration [us] of the synthetic slices that anchor message flow arrows
_FLOW_ANCHOR_US = 1.0


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def _track_maps(session: TraceSession) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Stable string-label -> integer id maps for CTF pid/tid fields
    (host first, then rank/device groups in sorted order)."""
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}

    def pid_of(label: str) -> int:
        if label not in pids:
            pids[label] = len(pids)
        return pids[label]

    def tid_of(pid_label: str, tid_label: str) -> int:
        key = (pid_label, tid_label)
        if key not in tids:
            tids[key] = sum(1 for p, _ in tids if p == pid_label)
        return tids[key]

    labels = {rec.pid for rec in session.spans}
    labels |= {rec.pid for rec in session.instants}
    labels |= {rec.pid for rec in session.device_ops}
    labels |= {rec.pid for rec in session.counters}
    labels |= {f.src_pid for f in session.flows} | {f.dst_pid for f in session.flows}
    for label in ["host"] + sorted(labels - {"host"}):
        if label in labels or label == "host":
            pid_of(label)
    for rec in session.spans:
        tid_of(rec.pid, rec.tid)
    for rec in session.instants:
        tid_of(rec.pid, rec.tid)
    for rec in session.device_ops:
        tid_of(rec.pid, rec.tid)
    for f in session.flows:
        tid_of(f.src_pid, f.src_tid)
        tid_of(f.dst_pid, f.dst_tid)
    return pids, tids


def chrome_trace(session: TraceSession) -> dict[str, Any]:
    """Build the Chrome Trace Format dict (``{"traceEvents": [...]}``)."""
    pids, tids = _track_maps(session)
    events: list[dict[str, Any]] = []

    for label, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                       "args": {"name": label}})
        events.append({"ph": "M", "name": "process_sort_index", "pid": pid,
                       "tid": 0, "args": {"sort_index": pid}})
    for (plabel, tlabel), tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "thread_name", "pid": pids[plabel],
                       "tid": tid, "args": {"name": tlabel}})

    for rec in session.spans:
        events.append({
            "ph": "X", "name": rec.name, "cat": rec.cat,
            "ts": _us(rec.ts), "dur": _us(rec.dur),
            "pid": pids[rec.pid], "tid": tids[(rec.pid, rec.tid)],
            "args": rec.args,
        })
    for rec in session.instants:
        events.append({
            "ph": "i", "name": rec.name, "cat": rec.cat, "s": "t",
            "ts": _us(rec.ts),
            "pid": pids[rec.pid], "tid": tids[(rec.pid, rec.tid)],
            "args": rec.args,
        })
    for rec in session.device_ops:
        op_args = {"flops": rec.flops, "bytes": rec.bytes_moved,
                   "tag": rec.tag}
        if rec.measured is not None:
            op_args["measured"] = rec.measured
        events.append({
            "ph": "X", "name": rec.name, "cat": rec.kind,
            "ts": _us(rec.ts), "dur": _us(rec.dur),
            "pid": pids[rec.pid], "tid": tids[(rec.pid, rec.tid)],
            "args": op_args,
        })
    for rec in session.counters:
        # counter events are per-process; tid is ignored by CTF viewers
        events.append({
            "ph": "C", "name": rec.name, "ts": _us(rec.ts),
            "pid": pids[rec.pid], "tid": 0,
            "args": {rec.series: rec.value},
        })
    for f in session.flows:
        src_pid, src_tid = pids[f.src_pid], tids[(f.src_pid, f.src_tid)]
        dst_pid, dst_tid = pids[f.dst_pid], tids[(f.dst_pid, f.dst_tid)]
        # flow arrows bind to enclosing slices; emit tiny anchor slices
        events.append({"ph": "X", "name": f"post {f.name}", "cat": "msg",
                       "ts": _us(f.ts_src), "dur": _FLOW_ANCHOR_US,
                       "pid": src_pid, "tid": src_tid, "args": f.args})
        events.append({"ph": "X", "name": f"recv {f.name}", "cat": "msg",
                       "ts": _us(f.ts_dst), "dur": _FLOW_ANCHOR_US,
                       "pid": dst_pid, "tid": dst_tid, "args": f.args})
        events.append({"ph": "s", "name": f.name, "cat": "msg",
                       "id": f.flow_id, "ts": _us(f.ts_src),
                       "pid": src_pid, "tid": src_tid})
        events.append({"ph": "f", "name": f.name, "cat": "msg", "bp": "e",
                       "id": f.flow_id, "ts": _us(f.ts_dst),
                       "pid": dst_pid, "tid": dst_tid})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"session": session.name,
                      "metrics": session.metrics.as_dict()},
    }


def write_chrome_trace(session: TraceSession, path: str) -> str:
    with open(path, "w") as fh:
        json.dump(chrome_trace(session), fh)
    return path


# ------------------------------------------------------------------ JSONL
def jsonl_events(session: TraceSession) -> Iterator[dict[str, Any]]:
    """Yield one JSON-ready dict per record, ending with the metrics."""
    yield {"type": "session", "name": session.name}
    for rec in session.spans:
        yield {"type": "span", "name": rec.name, "ts": rec.ts,
               "dur": rec.dur, "pid": rec.pid, "tid": rec.tid,
               "cat": rec.cat, "args": rec.args}
    for rec in session.instants:
        yield {"type": "instant", "name": rec.name, "ts": rec.ts,
               "pid": rec.pid, "tid": rec.tid, "cat": rec.cat,
               "args": rec.args}
    for rec in session.device_ops:
        ev = {"type": "device_op", "name": rec.name, "kind": rec.kind,
              "ts": rec.ts, "dur": rec.dur, "pid": rec.pid,
              "tid": rec.tid, "flops": rec.flops,
              "bytes": rec.bytes_moved, "tag": rec.tag}
        if rec.measured is not None:
            ev["measured"] = rec.measured
        yield ev
    for rec in session.counters:
        yield {"type": "counter", "name": rec.name, "ts": rec.ts,
               "value": rec.value, "pid": rec.pid, "series": rec.series}
    for f in session.flows:
        yield {"type": "flow", "name": f.name, "id": f.flow_id,
               "src": {"pid": f.src_pid, "tid": f.src_tid, "ts": f.ts_src},
               "dst": {"pid": f.dst_pid, "tid": f.dst_tid, "ts": f.ts_dst},
               "args": f.args}
    yield {"type": "metrics", **session.metrics.as_dict()}


def write_jsonl(session: TraceSession, path: str) -> str:
    with open(path, "w") as fh:
        for event in jsonl_events(session):
            fh.write(json.dumps(event) + "\n")
    return path


# ---------------------------------------------------------------- summary
def summary_text(session: TraceSession) -> str:
    """Text roll-up: host-span totals, per-device timeline summaries
    (via :func:`repro.perf.timeline.summarize_ops`), traffic, metrics."""
    from ..perf.timeline import summarize_ops  # lazy: avoids import cycles

    lines = [f"trace session: {session.name}"]

    if session.spans:
        agg: dict[str, tuple[int, float]] = {}
        for rec in session.spans:
            count, total = agg.get(rec.name, (0, 0.0))
            agg[rec.name] = (count + 1, total + rec.dur)
        lines.append("")
        lines.append(f"{'host span':<28} {'calls':>6} {'seconds':>10}")
        for name, (count, total) in sorted(agg.items(), key=lambda kv: -kv[1][1]):
            lines.append(f"{name:<28} {count:>6} {total:>10.4f}")

    by_pid: dict[str, list] = {}
    for rec in session.device_ops:
        by_pid.setdefault(rec.pid, []).append(rec)
    for pid in sorted(by_pid):
        s = summarize_ops(by_pid[pid])
        busy = " ".join(f"{k}={v * 1e3:.3f}ms"
                        for k, v in sorted(s.busy_by_kind.items()))
        lines.append("")
        lines.append(f"device {pid}: {s.op_count} ops, "
                     f"makespan {s.makespan * 1e3:.3f} ms, "
                     f"overlap {100 * s.overlap_fraction:.1f}%")
        lines.append(f"  busy: {busy}")

    if "traffic_by_pair" in session.notes:
        lines.append("")
        lines.append("halo traffic by rank pair:")
        lines.append(session.notes["traffic_by_pair"])

    lines.append("")
    lines.append(session.metrics.report())
    return "\n".join(lines)
