"""Time-series pipeline: fold metrics + counter records into
fixed-interval modeled-time snapshots, exportable as Prometheus text
exposition and CSV.

The serving layer produces two shapes of telemetry: *counter records*
(point samples of queue depth, GPUs in use, per-job waits — a
:class:`~repro.obs.trace.CounterRecord` stream on the modeled clock) and
the end-of-run :class:`~repro.obs.metrics.MetricsRegistry`.  Continuous
operation needs them as a third shape: a regular grid of snapshots —
"the fleet, every 50 modeled milliseconds" — that dashboards, `repro
top`, and scrape-based collectors can consume.

:class:`SnapshotSeries` is that fold.  Samples are bucketed by a fixed
``interval`` on the modeled clock (last-write-wins within a bucket,
carry-forward across empty buckets — gauge semantics), keyed by metric
name plus a label set (per-tenant, per-workload, per-rank — any
``str -> str`` mapping).  Everything is deterministic: same samples,
same snapshots, byte-identical exports; there is no wall clock anywhere
in this module.

Exports:

* :meth:`SnapshotSeries.prometheus` — the Prometheus text exposition
  format (one ``# TYPE`` line per metric, samples with label sets and
  modeled-millisecond timestamps), from the final snapshot;
* :meth:`SnapshotSeries.csv` — the full snapshot grid as
  ``t,name,labels,value`` rows.
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = ["SeriesKey", "Snapshot", "SnapshotSeries"]


@dataclass(frozen=True, order=True)
class SeriesKey:
    """One labelled series: a metric name plus a sorted label set."""

    name: str
    labels: tuple[tuple[str, str], ...] = ()

    @classmethod
    def of(cls, name: str,
           labels: "Mapping[str, str] | None" = None) -> "SeriesKey":
        items = tuple(sorted((str(k), str(v))
                             for k, v in (labels or {}).items()))
        return cls(name=name, labels=items)

    def render(self) -> str:
        """``name{k="v",...}`` (Prometheus sample syntax, no metric
        name sanitization)."""
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


@dataclass
class Snapshot:
    """The fleet at one grid instant: every known series' last value."""

    t: float                              #: bucket end, modeled seconds
    values: dict[SeriesKey, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"t": round(self.t, 9),
                "series": {k.render(): v
                           for k, v in sorted(self.values.items())}}


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus metric name."""
    out = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


class SnapshotSeries:
    """Fixed-interval modeled-time snapshot grid over labelled samples."""

    def __init__(self, interval: float = 0.05, *, name: str = "telemetry"):
        if interval <= 0:
            raise ValueError("snapshot interval must be > 0")
        self.interval = float(interval)
        self.name = name
        #: raw ingested samples per series, in ingestion order
        self.samples: dict[SeriesKey, list[tuple[float, float]]] = {}

    # ------------------------------------------------------------ ingest
    def ingest(self, name: str, t: float, value: float,
               labels: "Mapping[str, str] | None" = None) -> None:
        key = SeriesKey.of(name, labels)
        self.samples.setdefault(key, []).append((float(t), float(value)))

    def ingest_counters(self, records: Iterable[Any], *,
                        extra_labels: "Mapping[str, str] | None" = None,
                        ) -> int:
        """Ingest :class:`~repro.obs.trace.CounterRecord`-shaped objects
        (``name``/``ts``/``value``/``pid``/``series`` attributes); the
        track group becomes a ``pid`` label, a non-default series a
        ``series`` label.  Returns the number of samples ingested."""
        n = 0
        for rec in records:
            labels = dict(extra_labels or {})
            labels["pid"] = rec.pid
            if getattr(rec, "series", "value") != "value":
                labels["series"] = rec.series
            self.ingest(rec.name, rec.ts, rec.value, labels)
            n += 1
        return n

    def ingest_series(self, name: str,
                      series: Iterable[tuple[float, float]],
                      labels: "Mapping[str, str] | None" = None) -> None:
        for t, value in series:
            self.ingest(name, t, value, labels)

    def ingest_registry(self, metrics: Any, t: float,
                        labels: "Mapping[str, str] | None" = None) -> None:
        """Ingest a :class:`~repro.obs.metrics.MetricsRegistry` (or its
        ``as_dict()`` payload) as one sample per counter/gauge at ``t``
        — the end-of-run state folded onto the grid."""
        doc = metrics.as_dict() if hasattr(metrics, "as_dict") else metrics
        for name, value in doc.get("counters", {}).items():
            self.ingest(name, t, value, labels)
        for name, value in doc.get("gauges", {}).items():
            self.ingest(name, t, value, labels)

    # --------------------------------------------------------- snapshots
    @property
    def t_max(self) -> float:
        return max((t for series in self.samples.values()
                    for t, _ in series), default=0.0)

    def snapshots(self) -> list[Snapshot]:
        """The full snapshot grid, bucket 0 through the last sampled
        bucket.  Within a bucket the last sample wins; empty buckets
        carry the previous snapshot forward (a gauge holds its value
        until resampled)."""
        if not self.samples:
            return []
        n_buckets = int(math.floor(self.t_max / self.interval)) + 1
        # per-series bucket -> last value in that bucket
        per_bucket: dict[SeriesKey, dict[int, float]] = {}
        for key, series in self.samples.items():
            buckets = per_bucket.setdefault(key, {})
            for t, value in series:
                buckets[int(math.floor(max(0.0, t) / self.interval))] = value
        out: list[Snapshot] = []
        current: dict[SeriesKey, float] = {}
        for b in range(n_buckets):
            for key in sorted(per_bucket):
                if b in per_bucket[key]:
                    current[key] = per_bucket[key][b]
            out.append(Snapshot(t=(b + 1) * self.interval,
                                values=dict(current)))
        return out

    def final(self) -> Snapshot:
        snaps = self.snapshots()
        return snaps[-1] if snaps else Snapshot(t=0.0)

    def series(self, name: str) -> list[tuple[float, float]]:
        """All samples of ``name`` across label sets, time-sorted."""
        out = [tv for key, series in self.samples.items()
               if key.name == name for tv in series]
        out.sort(key=lambda tv: tv[0])
        return out

    # ----------------------------------------------------------- exports
    def prometheus(self, *, namespace: str = "repro") -> str:
        """Prometheus text exposition of the final snapshot.  Timestamps
        are the snapshot's modeled time in milliseconds — deterministic
        by construction (a real scraper would remap them; docs/
        OBSERVABILITY.md)."""
        snap = self.final()
        by_name: dict[str, list[tuple[SeriesKey, float]]] = {}
        for key, value in snap.values.items():
            by_name.setdefault(key.name, []).append((key, value))
        ts_ms = int(round(snap.t * 1000.0))
        lines: list[str] = []
        for name in sorted(by_name):
            metric = (f"{namespace}_{_prom_name(name)}" if namespace
                      else _prom_name(name))
            lines.append(f"# HELP {metric} modeled-time telemetry "
                         f"series {name}")
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(by_name[name]):
                label_txt = ""
                if key.labels:
                    inner = ",".join(f'{k}="{v}"' for k, v in key.labels)
                    label_txt = f"{{{inner}}}"
                lines.append(f"{metric}{label_txt} {value:g} {ts_ms}")
        return "\n".join(lines) + "\n"

    def csv(self) -> str:
        """The whole grid as ``t,name,labels,value`` rows (labels as
        ``k=v`` pairs joined by ``;``)."""
        lines = ["t,name,labels,value"]
        for snap in self.snapshots():
            for key, value in sorted(snap.values.items()):
                labels = ";".join(f"{k}={v}" for k, v in key.labels)
                lines.append(f"{snap.t:.9g},{key.name},{labels},{value:g}")
        return "\n".join(lines) + "\n"

    def write_prometheus(self, path: str, *,
                         namespace: str = "repro") -> str:
        with open(path, "w") as fh:
            fh.write(self.prometheus(namespace=namespace))
        return path

    def write_csv(self, path: str) -> str:
        with open(path, "w") as fh:
            fh.write(self.csv())
        return path

    def __repr__(self) -> str:
        return (f"SnapshotSeries(interval={self.interval}, "
                f"{len(self.samples)} series, t_max={self.t_max:.3f})")
