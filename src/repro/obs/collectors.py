"""Collectors: adapters that ingest existing signal sources into a
:class:`~repro.obs.trace.TraceSession`.

* :func:`collect_device` — a :class:`~repro.gpu.device.GPUDevice` op
  timeline becomes per-stream tracks of complete events (kernels and
  PCIe copies), stamped with the device's rank/label identity, and its
  aggregates feed the metrics registry (launches, flops, copied bytes).
* :func:`collect_comm` — a :class:`~repro.dist.mpi_sim.SimComm` message
  log becomes flow (arrow) records between rank tracks plus instant
  post/collect markers, and the traffic totals feed the registry
  (message count, halo bytes, per-pair report).

Both are duck-typed on purpose: this module imports nothing from the
rest of the package, so the obs subsystem stays import-cycle-free (the
profiler shim under ``repro.core`` pulls in ``repro.obs``).
"""
from __future__ import annotations

from .trace import DeviceOpRecord, FlowRecord, TraceSession

__all__ = ["collect_device", "collect_comm"]


def collect_device(
    session: TraceSession,
    device,
    *,
    rank: int | None = None,
    label: str | None = None,
) -> str:
    """Ingest every op of ``device.timeline``; returns the track-group
    label (``rankN`` when ``rank`` is given, else the device's own
    label) under which the ops were filed."""
    pid = label or (f"rank{rank}" if rank is not None
                    else getattr(device, "label", "gpu"))
    m = session.metrics
    kernel_hist = m.histogram("kernel.duration_us")
    for op in device.timeline:
        measured = getattr(op, "measured", None)
        session.device_ops.append(DeviceOpRecord(
            name=op.name, kind=op.kind, ts=op.start, dur=op.duration,
            pid=pid, tid=f"stream{op.stream}",
            flops=op.flops, bytes_moved=op.bytes_moved, tag=op.tag,
            measured=measured,
        ))
        if op.kind == "kernel":
            m.counter("kernel.launches").inc()
            m.counter("kernel.flops").inc(op.flops)
            kernel_hist.observe(op.duration * 1e6)
            if measured is not None:
                # counted-run accounting: measured totals plus an
                # achieved-GFlops counter series on this rank's track
                m.counter("measured.flops").inc(measured.get("flops", 0.0))
                m.counter("measured.bytes").inc(
                    measured.get("bytes_read", 0.0)
                    + measured.get("bytes_written", 0.0))
                if op.duration > 0:
                    session.record_counter(
                        "gflops.achieved",
                        measured.get("flops", 0.0) / op.duration / 1e9,
                        ts=op.end, pid=pid)
        elif op.kind == "h2d":
            m.counter("h2d.bytes").inc(op.bytes_moved)
        elif op.kind == "d2h":
            m.counter("d2h.bytes").inc(op.bytes_moved)
    session.devices[pid] = device
    return pid


def collect_comm(session: TraceSession, comm,
                 *, track: str = "comm") -> int:
    """Ingest ``comm.message_log`` (populated while a session is active)
    as flow records between rank tracks, and fold the communicator's
    authoritative :class:`~repro.dist.mpi_sim.TrafficStats` totals into
    the metrics registry."""
    n = 0
    for rec in comm.message_log:
        ts_src = session.rebase(rec.t_post)
        ts_dst = (session.rebase(rec.t_collect)
                  if rec.t_collect is not None else ts_src)
        session.flows.append(FlowRecord(
            name=f"msg:{rec.tag}",
            flow_id=rec.seq,
            src_pid=f"rank{rec.src}", src_tid=track, ts_src=ts_src,
            dst_pid=f"rank{rec.dst}", dst_tid=track, ts_dst=ts_dst,
            args={"bytes": rec.nbytes, "src": rec.src, "dst": rec.dst},
        ))
        n += 1
    m = session.metrics
    m.counter("halo.messages").inc(comm.stats.messages)
    m.counter("halo.bytes").inc(comm.stats.bytes_total)
    session.notes["traffic_by_pair"] = comm.stats.per_pair_report()
    return n
