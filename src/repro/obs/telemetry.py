"""Continuous fleet telemetry: scheduler self-profiling and the
terminal fleet view behind ``repro top``.

The one-shot obs stack (traces, roofline, doctor) answers "where did
this run spend its time?".  A *fleet* needs the complementary question
answered continuously: "how is the serving layer itself doing right
now?" — how fast the event loop turns, how long a schedule pass takes,
how deep the queue scans are (the O(jobs x gpus) hotspot ROADMAP item 2
names), and what the fleet looks like at any modeled instant.

Two halves:

* :class:`SchedulerProfile` — wall-clock phase timers the service wires
  around its event handlers and schedule passes.  Wall numbers live
  under keys containing ``wall`` so the regression gate's default
  wall-ignore skips them; the *deterministic* half (event counts,
  pass/scan statistics, modeled event rate) is gated strictly in
  ``benchmarks/reports/BENCH_scheduler.json``.  The profile lives on the
  service object, never in the :class:`~repro.serve.service.ServiceReport`
  — the report must stay bit-identical across replays.

* :class:`FleetView` — a single summary of a service run assembled from
  telemetry alone (a live :class:`~repro.obs.trace.TraceSession` or a
  trace loaded back by :func:`~repro.obs.doctor.load.load_trace`):
  utilization, queue depth, throughput, wait/turnaround p50/p95/p99,
  cache hit rate, fired alerts, plus a :class:`~repro.obs.timeseries.
  SnapshotSeries` grid for frame-by-frame replay.  Wait/turnaround
  quantiles are *exact*: the service records one ``job.wait_s`` /
  ``job.turnaround_s`` counter sample per completed job, and the view
  recomputes :func:`~repro.obs.metrics.percentile_summary` over them —
  bitwise equal to the report's numbers (tests/obs/test_telemetry_top.py).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .metrics import Histogram, percentile_summary
from .timeseries import SnapshotSeries

__all__ = ["SchedulerProfile", "FleetView", "build_fleet_view",
           "render_fleet_view", "sparkline"]


# ---------------------------------------------------------------- profile
class SchedulerProfile:
    """Self-profile of the service event loop and gang scheduler.

    Fed by :meth:`~repro.serve.service.ForecastService.run`; always on
    (the timers are two ``perf_counter`` calls per event — noise next to
    any handler body) and provably non-perturbing: nothing here feeds
    back into scheduling decisions."""

    def __init__(self):
        self.events_by_kind: dict[str, int] = {}
        self.handler_wall: dict[str, Histogram] = {}
        self.pass_wall = Histogram("pass.wall_s")
        self.queue_scan = Histogram("pass.queue_scan")
        self.passes = 0
        self.started = 0
        self.backfills = 0
        self.select_calls = 0
        self.jobs_scanned = 0       #: queue length summed over selects
        self.select_wall_s = 0.0
        self.run_wall_s = 0.0
        self.makespan_s = 0.0

    # ------------------------------------------------------------- feeds
    def on_event(self, kind: str, wall_s: float) -> None:
        """One event-loop pop: its kind and handler wall duration."""
        self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1
        hist = self.handler_wall.get(kind)
        if hist is None:
            hist = self.handler_wall[kind] = Histogram(f"{kind}.wall_s")
        hist.observe(wall_s)

    def on_pass(self, scanned: int, started: int, wall_s: float) -> None:
        """One schedule pass: queue length scanned, jobs started, wall."""
        self.passes += 1
        self.started += started
        self.queue_scan.observe(float(scanned))
        self.pass_wall.observe(wall_s)

    def finalize(self, *, makespan_s: float, run_wall_s: float,
                 scheduler: Any = None) -> None:
        self.makespan_s = float(makespan_s)
        self.run_wall_s = float(run_wall_s)
        if scheduler is not None:
            self.backfills = scheduler.backfills
            self.select_calls = getattr(scheduler, "select_calls", 0)
            self.jobs_scanned = getattr(scheduler, "jobs_scanned", 0)
            self.select_wall_s = getattr(scheduler, "select_wall_s", 0.0)

    # ----------------------------------------------------------- queries
    @property
    def events_total(self) -> int:
        return sum(self.events_by_kind.values())

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready profile.  Everything under ``wall`` (and only
        that) is machine-dependent; the rest is deterministic for a
        deterministic workload and safe to gate in a BENCH artifact."""
        total = self.events_total
        return {
            "events": {"total": total,
                       "by_kind": dict(sorted(self.events_by_kind.items()))},
            "passes": {"count": self.passes,
                       "started": self.started,
                       "backfills": self.backfills,
                       "select_calls": self.select_calls,
                       "jobs_scanned": self.jobs_scanned,
                       "queue_scan": self.queue_scan.summary()},
            "modeled": {"makespan_s": round(self.makespan_s, 9),
                        "events_per_modeled_s":
                            (total / self.makespan_s
                             if self.makespan_s > 0 else 0.0)},
            "wall": {"run_wall_s": self.run_wall_s,
                     "events_per_wall_s":
                         (total / self.run_wall_s
                          if self.run_wall_s > 0 else 0.0),
                     "select_wall_s": self.select_wall_s,
                     "pass_wall_s": self.pass_wall.summary(),
                     "handlers": {k: h.summary()
                                  for k, h in
                                  sorted(self.handler_wall.items())}},
        }

    def text(self) -> str:
        d = self.as_dict()
        scan = d["passes"]["queue_scan"]
        pw = d["wall"]["pass_wall_s"]
        kinds = " ".join(f"{k}={v}" for k, v in
                         d["events"]["by_kind"].items())
        lines = [
            f"scheduler profile — {d['events']['total']} events, "
            f"{d['passes']['count']} passes over "
            f"{d['modeled']['makespan_s']:.3f} modeled s",
            f"  rates: {d['modeled']['events_per_modeled_s']:,.1f} "
            f"events/modeled-s, {d['wall']['events_per_wall_s']:,.0f} "
            f"events/wall-s ({d['wall']['run_wall_s'] * 1e3:.1f} ms wall)",
            f"  by kind: {kinds}",
            f"  passes: started {d['passes']['started']}, backfills "
            f"{d['passes']['backfills']}; queue scan p50 "
            f"{scan['p50']:.0f} p95 {scan['p95']:.0f} max {scan['max']:.0f}",
            f"  select: {d['passes']['select_calls']} calls, "
            f"{d['passes']['jobs_scanned']:,} jobs scanned, "
            f"{d['wall']['select_wall_s'] * 1e3:.2f} ms wall",
            f"  pass wall p50 {pw['p50'] * 1e6:.1f}us "
            f"p95 {pw['p95'] * 1e6:.1f}us p99 {pw['p99'] * 1e6:.1f}us "
            f"max {pw['max'] * 1e6:.1f}us",
        ]
        return "\n".join(lines)


# -------------------------------------------------------------- sparkline
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: "Iterable[float]", width: int = 40) -> str:
    """A unicode sparkline of ``values`` downsampled (bucket max) to at
    most ``width`` characters.  Deterministic; empty input -> ''."""
    xs = [float(v) for v in values]
    if not xs:
        return ""
    if len(xs) > width:
        per = len(xs) / width
        xs = [max(xs[int(i * per):max(int(i * per) + 1,
                                      int((i + 1) * per))])
              for i in range(width)]
    lo, hi = min(xs), max(xs)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[0] * len(xs)
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1,
                    int((v - lo) / span * len(_BLOCKS)))] for v in xs)


def _series_stats(series: "list[tuple[float, float]]") -> dict[str, float]:
    values = [v for _, v in series]
    if not values:
        return {"last": 0.0, "max": 0.0, "mean": 0.0, "n": 0}
    return {"last": values[-1], "max": max(values),
            "mean": sum(values) / len(values), "n": len(values)}


# -------------------------------------------------------------- fleet view
@dataclass
class FleetView:
    """A service run summarized from its telemetry alone — modeled
    quantities only, so a view built from an exported trace equals one
    built from the live session."""

    source: str
    n_gpus: int = 0
    makespan_s: float = 0.0
    utilization: float = 0.0
    throughput_jobs_per_s: float = 0.0
    cache_hit_rate: float = 0.0
    jobs: dict[str, int] = field(default_factory=dict)
    wait_s: dict[str, float] = field(default_factory=dict)
    turnaround_s: dict[str, float] = field(default_factory=dict)
    queue_depth: dict[str, float] = field(default_factory=dict)
    gpus_in_use: dict[str, float] = field(default_factory=dict)
    alerts: list[dict[str, Any]] = field(default_factory=list)
    #: frame-by-frame snapshot grid (not part of :meth:`as_dict`)
    snapshots: "SnapshotSeries | None" = None
    #: raw series kept for sparklines
    queue_series: list[tuple[float, float]] = field(default_factory=list)
    gpus_series: list[tuple[float, float]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "n_gpus": self.n_gpus,
            "makespan_s": self.makespan_s,
            "utilization": self.utilization,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "cache_hit_rate": self.cache_hit_rate,
            "jobs": dict(sorted(self.jobs.items())),
            "wait_s": self.wait_s,
            "turnaround_s": self.turnaround_s,
            "queue_depth": self.queue_depth,
            "gpus_in_use": self.gpus_in_use,
            "alerts": [dict(a) for a in self.alerts],
            "n_snapshots": (len(self.snapshots.snapshots())
                            if self.snapshots is not None else 0),
        }


def build_fleet_view(
    source: str,
    counter_series: "Callable[[str], list[tuple[float, float]]]",
    metrics: dict[str, Any],
    instants: "Iterable[Any]" = (),
    *,
    interval: float = 0.05,
) -> FleetView:
    """Assemble a :class:`FleetView` from the three telemetry shapes.

    ``counter_series(name)`` returns time-sorted ``(t, value)`` samples;
    ``metrics`` is a :meth:`MetricsRegistry.as_dict` payload; ``instants``
    yields instant records (``cat == 'alert'`` ones become the fired-
    alert list, in time order)."""
    gauges = metrics.get("gauges", {})
    counters = metrics.get("counters", {})
    queue = counter_series("queue.depth")
    gpus = counter_series("fleet.gpus_in_use")
    waits = [v for _, v in counter_series("job.wait_s")]
    turnarounds = [v for _, v in counter_series("job.turnaround_s")]

    snaps = SnapshotSeries(interval, name=source)
    for name, series in (("queue.depth", queue),
                         ("fleet.gpus_in_use", gpus),
                         ("jobs.running", counter_series("jobs.running"))):
        snaps.ingest_series(name, series, {"pid": "service"})

    alerts = []
    for rec in instants:
        if getattr(rec, "cat", None) != "alert":
            continue
        alert = {"t": round(rec.ts, 9)}
        alert.update(rec.args or {})
        alerts.append(alert)
    alerts.sort(key=lambda a: a["t"])

    jobs = {name.rsplit(".", 1)[-1]: int(value)
            for name, value in counters.items()
            if name.startswith("serve.jobs.")}
    for key in ("crashes", "retries"):
        if f"serve.{key}" in counters:
            jobs[key] = int(counters[f"serve.{key}"])

    return FleetView(
        source=source,
        n_gpus=int(gauges.get("serve.fleet.gpus", 0)),
        makespan_s=float(gauges.get("serve.makespan_s", 0.0)),
        utilization=float(gauges.get("serve.utilization", 0.0)),
        throughput_jobs_per_s=float(
            gauges.get("serve.throughput_jobs_per_s", 0.0)),
        cache_hit_rate=float(gauges.get("serve.cache.hit_rate", 0.0)),
        jobs=jobs,
        wait_s=percentile_summary(waits),
        turnaround_s=percentile_summary(turnarounds),
        queue_depth=_series_stats(queue),
        gpus_in_use=_series_stats(gpus),
        alerts=alerts,
        snapshots=snaps,
        queue_series=queue,
        gpus_series=gpus,
    )


def fleet_view_from_trace(trace: Any, *, interval: float = 0.05) -> FleetView:
    """Build the view from a :class:`~repro.obs.doctor.load.LoadedTrace`
    (an exported Chrome/JSONL artifact read back)."""
    return build_fleet_view(trace.name, trace.counter_series,
                            trace.metrics, trace.instants,
                            interval=interval)


def fleet_view_from_session(session: Any, *,
                            interval: float = 0.05) -> FleetView:
    """Build the view straight from a live
    :class:`~repro.obs.trace.TraceSession` (no export round-trip)."""
    def series(name: str) -> list[tuple[float, float]]:
        out = [(rec.ts, rec.value) for rec in session.counters
               if rec.name == name]
        out.sort(key=lambda tv: tv[0])
        return out

    return build_fleet_view(session.name, series,
                            session.metrics.as_dict(), session.instants,
                            interval=interval)


def render_fleet_view(view: FleetView, *, spark_width: int = 40) -> str:
    """The terminal fleet panel ``repro top`` and ``doctor --fleet``
    print."""
    j = view.jobs
    lines = [
        f"fleet view — {view.source}",
        f"  makespan {view.makespan_s:.3f} modeled s · "
        f"{view.n_gpus} GPUs · utilization {100 * view.utilization:.1f}% · "
        f"throughput {view.throughput_jobs_per_s:.3f} jobs/s",
        f"  jobs: {j.get('submitted', 0)} submitted · "
        f"{j.get('done', 0)} done · {j.get('cached', 0)} cached · "
        f"{j.get('shed', 0)} shed · {j.get('evicted', 0)} evicted · "
        f"{j.get('failed', 0)} failed",
    ]
    if j.get("crashes") or j.get("retries"):
        lines.append(f"  resilience: {j.get('crashes', 0)} crashes, "
                     f"{j.get('retries', 0)} retries")
    q, g = view.queue_depth, view.gpus_in_use
    lines.append(f"  queue depth  "
                 f"{sparkline((v for _, v in view.queue_series), spark_width):<{spark_width}} "
                 f"last {q['last']:.0f}  max {q['max']:.0f}  "
                 f"mean {q['mean']:.2f}")
    lines.append(f"  gpus in use  "
                 f"{sparkline((v for _, v in view.gpus_series), spark_width):<{spark_width}} "
                 f"last {g['last']:.0f}  max {g['max']:.0f}  "
                 f"mean {g['mean']:.2f}")
    for label, s in (("wait", view.wait_s), ("turnaround",
                                             view.turnaround_s)):
        lines.append(f"  {label:<10} p50 {s['p50']:.3f}s  "
                     f"p95 {s['p95']:.3f}s  p99 {s['p99']:.3f}s  "
                     f"mean {s['mean']:.3f}s  max {s['max']:.3f}s")
    lines.append(f"  cache hit rate {100 * view.cache_hit_rate:.1f}%")
    if view.alerts:
        lines.append(f"  alerts: {len(view.alerts)} fired")
        for a in view.alerts:
            lines.append(
                f"    ALERT [{a.get('kind', '?')}] t={a['t']:.3f}s "
                f"{a.get('metric', '?')}: {a.get('message', '')}")
    else:
        lines.append("  alerts: none")
    return "\n".join(lines)


def render_frames(view: FleetView, *, frames: int = 12) -> str:
    """A frame-by-frame table of the snapshot grid (at most ``frames``
    evenly spaced rows) — the replay half of ``repro top``."""
    if view.snapshots is None:
        return "(no snapshot series)"
    snaps = view.snapshots.snapshots()
    if not snaps:
        return "(no snapshots)"
    if len(snaps) > frames:
        step = len(snaps) / frames
        snaps = [snaps[min(len(snaps) - 1, int(i * step))]
                 for i in range(frames)]
    lines = [f"  {'t [s]':>9} {'queue':>7} {'running':>8} {'gpus':>9}"]
    for snap in snaps:
        vals = {k.name: v for k, v in snap.values.items()}
        gpus = vals.get("fleet.gpus_in_use", 0.0)
        lines.append(f"  {snap.t:>9.3f} "
                     f"{vals.get('queue.depth', 0.0):>7.0f} "
                     f"{vals.get('jobs.running', 0.0):>8.0f} "
                     f"{gpus:>5.0f}/{view.n_gpus:<3}")
    return "\n".join(lines)


__all__.extend(["fleet_view_from_trace", "fleet_view_from_session",
                "render_frames"])
