"""Unified tracing & metrics: one run context for host, device and comm.

The reproduction's three signal sources — host phase timings
(:mod:`repro.profiling`), virtual-GPU op timelines
(:class:`repro.gpu.device.GPUDevice`), and simulated-MPI traffic
(:class:`repro.dist.mpi_sim.SimComm`) — flow into a single
:class:`TraceSession`:

* **spans** (:func:`span`, plus the ``profile_phase`` shim) record host
  intervals while a session is active;
* **collectors** ingest device timelines and message logs after a run,
  stamped with rank/device identity;
* **exporters** emit Chrome Trace Format JSON (``chrome://tracing`` /
  Perfetto), a JSONL event stream, and a text summary;
* the **metrics registry** answers "how many kernel launches per step,
  how many halo bytes, what sustained GFlops" at run end.

See docs/OBSERVABILITY.md for a worked multi-rank example, and
``repro trace --help`` for the CLI entry point.
"""
from .collectors import collect_comm, collect_device
from .exporters import (
    chrome_trace,
    jsonl_events,
    summary_text,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricTypeConflict,
    percentile,
    percentile_summary,
)
from .recorder import FlightRecorder, RecordedEvent, load_flight_dump
from .telemetry import (
    FleetView,
    SchedulerProfile,
    build_fleet_view,
    fleet_view_from_session,
    fleet_view_from_trace,
    render_fleet_view,
    render_frames,
    sparkline,
)
from .timeseries import SeriesKey, Snapshot, SnapshotSeries
from .trace import (
    CounterRecord,
    DeviceOpRecord,
    FlowRecord,
    InstantRecord,
    SpanRecord,
    TraceSession,
    active_session,
    span,
    use_session,
)

__all__ = [
    "TraceSession", "use_session", "active_session", "span",
    "SpanRecord", "InstantRecord", "DeviceOpRecord", "CounterRecord",
    "FlowRecord",
    "collect_device", "collect_comm",
    "chrome_trace", "write_chrome_trace",
    "jsonl_events", "write_jsonl", "summary_text",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MetricTypeConflict",
    "percentile", "percentile_summary",
    "FlightRecorder", "RecordedEvent", "load_flight_dump",
    "SchedulerProfile", "FleetView", "build_fleet_view",
    "fleet_view_from_trace", "fleet_view_from_session",
    "render_fleet_view", "render_frames", "sparkline",
    "SeriesKey", "Snapshot", "SnapshotSeries",
    "doctor",
]


def __getattr__(name: str):
    # the doctor pulls in gpu/dist/perf modules; loading it lazily keeps
    # `repro.obs` important-for-profiling-shims light and cycle-free
    if name == "doctor":
        from . import doctor

        return doctor
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
