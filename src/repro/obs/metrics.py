"""Metrics registry: counters, gauges, and histograms for run telemetry.

Collectors populate the registry of a :class:`~repro.obs.trace.TraceSession`
(kernel launches, halo bytes, PCIe traffic, modeled flops) and
``TraceSession.finalize`` derives run-level gauges (per-step rates,
sustained GFlops).  Everything is queryable at run end via
:meth:`MetricsRegistry.as_dict` or printable via
:meth:`MetricsRegistry.report`.

Stdlib-only (see :mod:`repro.obs.trace` for why).
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "MetricTypeConflict", "percentile", "percentile_summary"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``numpy.percentile``'s default
    method), pure Python so the stdlib-only obs layer can use it.

    This is the ONE percentile implementation in the repo: the serve
    report, the doctor's health windows, and the benchmark artifacts all
    go through here, so their numbers are comparable by construction.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    xs = sorted(float(v) for v in values)
    rank = (q / 100.0) * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    frac = rank - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


def percentile_summary(values: Iterable[float]) -> dict[str, float]:
    """The repo's standard distribution summary — the shape used by the
    serve report's wait/turnaround blocks and the doctor's windows."""
    # sorted before summing: the mean must be bitwise-identical no matter
    # what order the samples arrived in (report vs. replayed trace)
    xs = sorted(float(v) for v in values)
    if not xs:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "max": 0.0}
    return {"mean": sum(xs) / len(xs),
            "p50": percentile(xs, 50),
            "p95": percentile(xs, 95),
            "p99": percentile(xs, 99),
            "max": max(xs)}


@dataclass
class Counter:
    """Monotonically increasing accumulator."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins scalar."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


#: log-bucket resolution of :class:`Histogram` quantiles — 8 buckets per
#: octave (bucket width factor 2^(1/8)), so a quantile's geometric-
#: midpoint representative is within ~4.4% of the true sample
_BUCKETS_PER_OCTAVE = 8


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (count / sum /
    min / max / mean — enough for launch-duration style telemetry
    without retaining every sample), plus deterministic log-bucketed
    counts so :meth:`quantile` can answer p50/p95/p99 without numpy
    and without keeping the samples."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))
    #: log2-bucket index (floor(log2(v) * _BUCKETS_PER_OCTAVE)) -> count
    buckets: dict[int, int] = field(default_factory=dict)
    #: observations <= 0, kept out of the log buckets
    nonpositive: int = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0:
            idx = math.floor(math.log2(value) * _BUCKETS_PER_OCTAVE)
            self.buckets[idx] = self.buckets.get(idx, 0) + 1
        else:
            self.nonpositive += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Log-bucketed quantile estimate: the geometric midpoint of the
        bucket holding rank ``q``, clamped to the observed min/max.
        Deterministic for a deterministic observation multiset (order-
        independent), which is what lets quantile summaries live in
        gated BENCH artifacts."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("quantile q must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil((q / 100.0) * self.count))
        seen = self.nonpositive
        if rank <= seen:
            return self.min          # all non-positives collapse to min
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank <= seen:
                mid = 2.0 ** ((idx + 0.5) / _BUCKETS_PER_OCTAVE)
                return min(max(mid, self.min), self.max)
        return self.max

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "p50": self.quantile(50), "p95": self.quantile(95),
                "p99": self.quantile(99)}


class MetricTypeConflict(TypeError):
    """One metric name requested as two different types — a silent
    aliasing bug (a counter named like an existing gauge would split
    the series across two stores) surfaced as a typed error."""


class MetricsRegistry:
    """Name-keyed get-or-create store of metrics.  A name belongs to
    exactly one metric type; cross-type reuse raises
    :class:`MetricTypeConflict`."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ access
    def _reject_cross_type(self, name: str, requested: str) -> None:
        for kind, store in (("counter", self.counters),
                            ("gauge", self.gauges),
                            ("histogram", self.histograms)):
            if kind != requested and name in store:
                raise MetricTypeConflict(
                    f"metric {name!r} is already registered as a {kind}; "
                    f"cannot reuse the name as a {requested}")

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            self._reject_cross_type(name, "counter")
            c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            self._reject_cross_type(name, "gauge")
            g = self.gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            self._reject_cross_type(name, "histogram")
            h = self.histograms[name] = Histogram(name)
            return h

    # --------------------------------------------------------- reporting
    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
        }

    def report(self) -> str:
        """Text table of all metrics, grouped by type."""
        lines = [f"{'metric':<32} {'type':>9} {'value':>16}"]
        for n, c in sorted(self.counters.items()):
            lines.append(f"{n:<32} {'counter':>9} {c.value:>16,.0f}")
        for n, g in sorted(self.gauges.items()):
            lines.append(f"{n:<32} {'gauge':>9} {g.value:>16,.3f}")
        for n, h in sorted(self.histograms.items()):
            s = h.summary()
            lines.append(
                f"{n:<32} {'hist':>9} "
                f"n={s['count']} mean={s['mean']:.3g} "
                f"p95={s['p95']:.3g} "
                f"min={s['min']:.3g} max={s['max']:.3g}")
        return "\n".join(lines)
