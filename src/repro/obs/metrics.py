"""Metrics registry: counters, gauges, and histograms for run telemetry.

Collectors populate the registry of a :class:`~repro.obs.trace.TraceSession`
(kernel launches, halo bytes, PCIe traffic, modeled flops) and
``TraceSession.finalize`` derives run-level gauges (per-step rates,
sustained GFlops).  Everything is queryable at run end via
:meth:`MetricsRegistry.as_dict` or printable via
:meth:`MetricsRegistry.report`.

Stdlib-only (see :mod:`repro.obs.trace` for why).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "percentile", "percentile_summary"]


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``numpy.percentile``'s default
    method), pure Python so the stdlib-only obs layer can use it.

    This is the ONE percentile implementation in the repo: the serve
    report, the doctor's health windows, and the benchmark artifacts all
    go through here, so their numbers are comparable by construction.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    xs = sorted(float(v) for v in values)
    rank = (q / 100.0) * (len(xs) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(xs) - 1)
    frac = rank - lo
    return xs[lo] + (xs[hi] - xs[lo]) * frac


def percentile_summary(values: Iterable[float]) -> dict[str, float]:
    """The repo's standard distribution summary — the shape used by the
    serve report's wait/turnaround blocks and the doctor's windows."""
    xs = [float(v) for v in values]
    if not xs:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {"mean": sum(xs) / len(xs),
            "p50": percentile(xs, 50),
            "p95": percentile(xs, 95),
            "max": max(xs)}


@dataclass
class Counter:
    """Monotonically increasing accumulator."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins scalar."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of an observed distribution (count / sum /
    min / max / mean — enough for launch-duration style telemetry
    without retaining every sample)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean}


class MetricsRegistry:
    """Name-keyed get-or-create store of metrics."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ access
    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter(name)
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge(name)
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram(name)
            return h

    # --------------------------------------------------------- reporting
    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self.histograms.items())},
        }

    def report(self) -> str:
        """Text table of all metrics, grouped by type."""
        lines = [f"{'metric':<32} {'type':>9} {'value':>16}"]
        for n, c in sorted(self.counters.items()):
            lines.append(f"{n:<32} {'counter':>9} {c.value:>16,.0f}")
        for n, g in sorted(self.gauges.items()):
            lines.append(f"{n:<32} {'gauge':>9} {g.value:>16,.3f}")
        for n, h in sorted(self.histograms.items()):
            s = h.summary()
            lines.append(
                f"{n:<32} {'hist':>9} "
                f"n={s['count']} mean={s['mean']:.3g} "
                f"min={s['min']:.3g} max={s['max']:.3g}")
        return "\n".join(lines)
