"""Tracing core: sessions, spans, and the unified record model.

A :class:`TraceSession` is the single run context into which all three
signal sources of the reproduction flow:

* **host spans** — wall-clock intervals recorded by the :func:`span`
  context manager (and by the :func:`repro.profiling.profile_phase` shim,
  so every already-instrumented phase of the integrator shows up);
* **device ops** — the virtual-clock op timelines of
  :class:`repro.gpu.device.GPUDevice`, ingested after a run by
  :mod:`repro.obs.collectors`;
* **messages** — :class:`repro.dist.mpi_sim.SimComm` post/collect pairs,
  ingested as flow (arrow) records between rank tracks.

Records are kept in a neutral in-memory form; :mod:`repro.obs.exporters`
turns them into Chrome Trace Format JSON, a JSONL stream, or a text
summary.

This module is **stdlib-only by design**: ``repro.profiling`` (imported
by the dynamical core) shims onto it, so it must not import anything
from the package that could cycle back into ``repro.core``.  Tracing is
zero-cost when no session is active — :func:`span` does one empty-list
check and yields.
"""
from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry

__all__ = [
    "SpanRecord",
    "InstantRecord",
    "DeviceOpRecord",
    "CounterRecord",
    "FlowRecord",
    "TraceSession",
    "use_session",
    "active_session",
    "span",
]


@dataclass
class SpanRecord:
    """One completed host span (a Chrome-trace 'X' complete event)."""

    name: str
    ts: float                 #: seconds since the session epoch
    dur: float                #: seconds
    pid: str = "host"         #: track group (process) label
    tid: str = "main"         #: track (thread) label
    cat: str = "host"
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class InstantRecord:
    """A point event on a track."""

    name: str
    ts: float
    pid: str = "host"
    tid: str = "main"
    cat: str = "host"
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class DeviceOpRecord:
    """One virtual-device op, normalized from :class:`~repro.gpu.device.Op`.

    ``ts``/``dur`` are in *virtual* device seconds (the simulated clock),
    not wall time; each device lives on its own track group so the two
    time bases never share an axis.  The ``start``/``end``/``duration``
    properties make the record drop-in compatible with the op-timeline
    aggregation in :mod:`repro.perf.timeline`.
    """

    name: str
    kind: str                 #: 'kernel' | 'h2d' | 'd2h' | 'mpi'
    ts: float
    dur: float
    pid: str
    tid: str
    flops: float = 0.0
    bytes_moved: float = 0.0
    tag: str = ""
    #: measured FLOP/byte counts from a counted run (see
    #: :attr:`repro.gpu.device.Op.measured`); None on uncounted launches
    measured: dict | None = None

    @property
    def start(self) -> float:
        return self.ts

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def duration(self) -> float:
        return self.dur


@dataclass
class CounterRecord:
    """One sample of a numeric time series (a Chrome-trace 'C' counter
    event) — queue depth, fleet utilization, and the like.  ``ts`` is in
    whatever time base the producing track group uses (wall seconds for
    host tracks, modeled seconds for service/device tracks)."""

    name: str
    ts: float
    value: float
    pid: str = "host"
    #: series label inside the counter (CTF draws one stacked area per
    #: args key; the default single series is called 'value')
    series: str = "value"


@dataclass
class FlowRecord:
    """One message arrow from a source track to a destination track."""

    name: str
    flow_id: int
    src_pid: str
    src_tid: str
    ts_src: float
    dst_pid: str
    dst_tid: str
    ts_dst: float
    args: dict[str, Any] = field(default_factory=dict)


class TraceSession:
    """One run's worth of unified telemetry.

    Activate with :func:`use_session`; while active, host spans (and the
    ``profile_phase`` shim), ``SimComm`` message logging, and any direct
    :meth:`record_span` calls feed it.  After the run, pull in the
    device/comm signals with :meth:`collect_device` /
    :meth:`collect_comm`, then :meth:`finalize` to derive per-step
    metrics, and hand the session to an exporter.
    """

    def __init__(self, name: str = "trace"):
        self.name = name
        self.epoch = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.instants: list[InstantRecord] = []
        self.device_ops: list[DeviceOpRecord] = []
        self.flows: list[FlowRecord] = []
        self.counters: list[CounterRecord] = []
        #: track-group label -> collected GPUDevice (for summary reuse)
        self.devices: dict[str, Any] = {}
        #: free-form text attachments (e.g. the per-pair traffic report)
        self.notes: dict[str, str] = {}
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------- clock
    def now(self) -> float:
        """Wall seconds since the session epoch."""
        return time.perf_counter() - self.epoch

    def rebase(self, t_abs: float) -> float:
        """Convert an absolute ``perf_counter`` stamp to session time
        (clamped at 0 for stamps that predate the session)."""
        return max(0.0, t_abs - self.epoch)

    # --------------------------------------------------------- recording
    def record_span(
        self,
        name: str,
        ts: float,
        dur: float,
        *,
        pid: str = "host",
        tid: str = "main",
        cat: str = "host",
        args: dict[str, Any] | None = None,
    ) -> SpanRecord:
        rec = SpanRecord(name=name, ts=ts, dur=dur, pid=pid, tid=tid,
                         cat=cat, args=args or {})
        self.spans.append(rec)
        return rec

    def record_instant(
        self,
        name: str,
        ts: float | None = None,
        *,
        pid: str = "host",
        tid: str = "main",
        cat: str = "host",
        args: dict[str, Any] | None = None,
    ) -> InstantRecord:
        rec = InstantRecord(name=name, ts=self.now() if ts is None else ts,
                            pid=pid, tid=tid, cat=cat, args=args or {})
        self.instants.append(rec)
        return rec

    def record_counter(
        self,
        name: str,
        value: float,
        ts: float | None = None,
        *,
        pid: str = "host",
        series: str = "value",
    ) -> CounterRecord:
        """Sample a counter time series (exported as a CTF 'C' event)."""
        rec = CounterRecord(name=name, ts=self.now() if ts is None else ts,
                            value=float(value), pid=pid, series=series)
        self.counters.append(rec)
        return rec

    # -------------------------------------------------------- collectors
    def collect_device(self, device, *, rank: int | None = None,
                       label: str | None = None) -> str:
        """Ingest a :class:`~repro.gpu.device.GPUDevice` op timeline;
        returns the track-group label used."""
        from .collectors import collect_device

        return collect_device(self, device, rank=rank, label=label)

    def collect_comm(self, comm) -> int:
        """Ingest a :class:`~repro.dist.mpi_sim.SimComm` message log;
        returns the number of flow records added."""
        from .collectors import collect_comm

        return collect_comm(self, comm)

    # ---------------------------------------------------------- finalize
    def finalize(self, *, steps: int | None = None) -> MetricsRegistry:
        """Derive run-level metrics (per-step rates, sustained GFlops)
        from the collected counters.  Idempotent; call after collection."""
        m = self.metrics
        if steps:
            m.gauge("steps").set(steps)
            m.gauge("kernel.launches_per_step").set(
                m.counter("kernel.launches").value / steps)
            m.gauge("halo.bytes_per_step").set(
                m.counter("halo.bytes").value / steps)
        m.gauge("pcie.bytes").set(
            m.counter("h2d.bytes").value + m.counter("d2h.bytes").value)
        if self.devices:
            total_flops = sum(d.total_flops() for d in self.devices.values())
            makespan = max(d.elapsed() for d in self.devices.values())
            m.gauge("gflops.sustained").set(
                total_flops / makespan / 1e9 if makespan > 0 else 0.0)
        # measured (counted-run) achieved GFlops: measured FLOPs of the
        # annotated kernel ops over their summed execution time
        meas_flops = meas_time = 0.0
        for rec in self.device_ops:
            if rec.kind == "kernel" and rec.measured is not None:
                meas_flops += rec.measured.get("flops", 0.0)
                meas_time += rec.dur
        if meas_time > 0:
            m.gauge("gflops.measured").set(meas_flops / meas_time / 1e9)
        return m


#: innermost-last stack of active sessions (mirrors ``profiling._ACTIVE``)
_SESSIONS: list[TraceSession] = []


@contextlib.contextmanager
def use_session(session: TraceSession):
    """Activate a session for the enclosed block (re-entrant, LIFO)."""
    _SESSIONS.append(session)
    try:
        yield session
    finally:
        _SESSIONS.pop()


def active_session() -> TraceSession | None:
    """The innermost active session, or None."""
    return _SESSIONS[-1] if _SESSIONS else None


@contextlib.contextmanager
def span(name: str, *, cat: str = "host", pid: str = "host",
         tid: str = "main", **attrs):
    """Record the enclosed block as a span on the innermost active
    session (a no-op — one list check — when none is active)."""
    if not _SESSIONS:
        yield
        return
    session = _SESSIONS[-1]
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t1 = time.perf_counter()
        session.record_span(name, t0 - session.epoch, t1 - t0,
                            pid=pid, tid=tid, cat=cat,
                            args=attrs if attrs else None)
