"""Perf doctor: explain a trace, watch a fleet, gate a benchmark.

The raw observability layer (:mod:`repro.obs`) records what happened;
this package says *why it was slow and what to do about it*:

* :mod:`~repro.obs.doctor.critical_path` — reconstruct the binding
  dependency chain of a device timeline, attribute per-kernel self
  time (Fig. 9 shape), and measure how much communication was hidden
  behind compute (the paper's ~53% claim, Fig. 11);
* :mod:`~repro.obs.doctor.health` — rolling-window SLO rules and EWMA
  anomaly detection over service metrics, emitting typed alerts;
* :mod:`~repro.obs.doctor.regress` — the bench regression gate over
  ``BENCH_*.json`` artifacts;
* :mod:`~repro.obs.doctor.roofline` — the live roofline: place every
  on-path kernel of a counted run on the Eq.-6 curve from *measured*
  FLOP/byte counts and flag drift against the cost table;
* :mod:`~repro.obs.doctor.load` — read exported traces back in;
* :mod:`~repro.obs.doctor.doctor` — the report/verdict layer behind
  ``repro doctor`` (docs/DOCTOR.md).
"""
from .critical_path import (
    AttributionRow,
    CriticalPath,
    OverlapStats,
    PathSegment,
    attribution,
    critical_path,
    overlap_stats,
)
from .doctor import (
    DeviceDiagnosis,
    DoctorReport,
    Verdict,
    diagnose_model,
    diagnose_ops,
    diagnose_trace,
)
from .health import Alert, HealthMonitor, RollingSeries, SloRule
from .load import LoadedTrace, load_trace
from .regress import (
    BENCH_SCHEMA_VERSION,
    Drift,
    RegressionReport,
    SchemaMismatch,
    compare_bench,
    regression_gate,
)
from .roofline import KernelRoofline, RooflineReport, roofline_from_records

__all__ = [
    "PathSegment", "CriticalPath", "AttributionRow", "OverlapStats",
    "critical_path", "attribution", "overlap_stats",
    "SloRule", "Alert", "RollingSeries", "HealthMonitor",
    "BENCH_SCHEMA_VERSION", "SchemaMismatch", "Drift", "RegressionReport",
    "compare_bench", "regression_gate",
    "LoadedTrace", "load_trace",
    "DeviceDiagnosis", "Verdict", "DoctorReport",
    "diagnose_ops", "diagnose_trace", "diagnose_model",
    "KernelRoofline", "RooflineReport", "roofline_from_records",
]
