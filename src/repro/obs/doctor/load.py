"""Read exported trace artifacts back into analyzable records.

The exporters (:mod:`repro.obs.exporters`) are one-way by design — they
serialize a live :class:`~repro.obs.trace.TraceSession` for external
viewers.  The doctor closes the loop: :func:`load_trace` parses either
artifact format back into :class:`~repro.obs.trace.DeviceOpRecord`
lists and counter series so a trace written yesterday (or on another
machine, or by CI) can be diagnosed post hoc.

* **Chrome Trace Format** (``.json``): integer pid/tid fields are mapped
  back to their string labels via the ``process_name``/``thread_name``
  metadata events the exporter always writes; 'X' events whose category
  is a device-op kind become DeviceOpRecords, 'C' events become counter
  samples.  Timestamps come back from microseconds.
* **JSONL** (``.jsonl``): the stream is self-describing; ``device_op``
  and ``counter`` lines round-trip exactly.

Host spans, instants, and the end-of-run metrics payload are
reconstructed too (the fleet view behind ``repro top`` reads alert
instants and the serve gauges from here); flow arrows are counted but
not reconstructed — no analysis consumes them yet.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..trace import DeviceOpRecord, InstantRecord, SpanRecord

__all__ = ["LoadedTrace", "load_trace"]

#: 'X'-event categories that are device ops (matches DeviceOpRecord.kind)
_OP_KINDS = frozenset(("kernel", "h2d", "d2h", "mpi"))


@dataclass
class LoadedTrace:
    """What the doctor can recover from an exported trace."""

    name: str
    #: track-group label -> ops sorted by (ts, insertion)
    device_ops: dict[str, list[DeviceOpRecord]] = field(default_factory=dict)
    #: (pid label, counter name) -> [(ts, value), ...] in stream order
    counters: dict[tuple[str, str], list[tuple[float, float]]] = \
        field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    instants: list[InstantRecord] = field(default_factory=list)
    #: the session's end-of-run MetricsRegistry payload (JSONL metrics
    #: line / Chrome ``otherData.metrics``), {} when absent
    metrics: dict[str, Any] = field(default_factory=dict)
    n_spans: int = 0
    n_flows: int = 0

    def counter_series(self, name: str,
                       pid: str | None = None) -> list[tuple[float, float]]:
        """One counter's samples (any track group when pid is None)."""
        out: list[tuple[float, float]] = []
        for (p, n), series in self.counters.items():
            if n == name and (pid is None or p == pid):
                out.extend(series)
        out.sort(key=lambda tv: tv[0])
        return out


def _load_chrome(doc: dict[str, Any], name: str) -> LoadedTrace:
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("not a Chrome Trace Format file "
                         "(no traceEvents array)")
    other = doc.get("otherData") or {}
    trace = LoadedTrace(name=str(other.get("session", name)))
    metrics = other.get("metrics")
    if isinstance(metrics, dict):
        trace.metrics = metrics

    pid_label: dict[int, str] = {}
    tid_label: dict[tuple[int, int], str] = {}
    for ev in events:
        if ev.get("ph") != "M":
            continue
        if ev.get("name") == "process_name":
            pid_label[ev["pid"]] = ev["args"]["name"]
        elif ev.get("name") == "thread_name":
            tid_label[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    def plabel(pid: int) -> str:
        return pid_label.get(pid, f"pid{pid}")

    def tlabel(ev: dict[str, Any]) -> str:
        return tid_label.get((ev["pid"], ev.get("tid", 0)),
                             f"tid{ev.get('tid', 0)}")

    for ev in events:
        ph = ev.get("ph")
        if ph == "X":
            cat = ev.get("cat", "")
            if cat not in _OP_KINDS:
                trace.n_spans += 1
                trace.spans.append(SpanRecord(
                    name=ev.get("name", "?"), ts=ev["ts"] / 1e6,
                    dur=ev.get("dur", 0.0) / 1e6, pid=plabel(ev["pid"]),
                    tid=tlabel(ev), cat=cat,
                    args=ev.get("args") or {}))
                continue
            pid = plabel(ev["pid"])
            tid = tid_label.get((ev["pid"], ev["tid"]), f"tid{ev['tid']}")
            args = ev.get("args") or {}
            measured = args.get("measured")
            trace.device_ops.setdefault(pid, []).append(DeviceOpRecord(
                name=ev.get("name", "?"), kind=cat,
                ts=ev["ts"] / 1e6, dur=ev.get("dur", 0.0) / 1e6,
                pid=pid, tid=tid,
                flops=float(args.get("flops", 0.0)),
                bytes_moved=float(args.get("bytes", 0.0)),
                tag=str(args.get("tag", "")),
                measured=measured if isinstance(measured, dict) else None,
            ))
        elif ph == "C":
            pid = plabel(ev["pid"])
            for _series, value in (ev.get("args") or {}).items():
                trace.counters.setdefault(
                    (pid, ev.get("name", "?")), []).append(
                        (ev["ts"] / 1e6, float(value)))
        elif ph == "i":
            trace.instants.append(InstantRecord(
                name=ev.get("name", "?"), ts=ev["ts"] / 1e6,
                pid=plabel(ev["pid"]), tid=tlabel(ev),
                cat=ev.get("cat", "host"), args=ev.get("args") or {}))
        elif ph in ("s", "f"):
            trace.n_flows += 1
    return trace


def _load_jsonl(lines: list[str], name: str) -> LoadedTrace:
    trace = LoadedTrace(name=name)
    for lineno, raw in enumerate(lines, 1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            ev = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON: {exc}") from None
        etype = ev.get("type")
        if etype == "session":
            trace.name = ev.get("name", name)
        elif etype == "device_op":
            measured = ev.get("measured")
            trace.device_ops.setdefault(ev["pid"], []).append(DeviceOpRecord(
                name=ev["name"], kind=ev["kind"], ts=ev["ts"], dur=ev["dur"],
                pid=ev["pid"], tid=ev.get("tid", "stream0"),
                flops=float(ev.get("flops", 0.0)),
                bytes_moved=float(ev.get("bytes", 0.0)),
                tag=str(ev.get("tag", "")),
                measured=measured if isinstance(measured, dict) else None,
            ))
        elif etype == "counter":
            trace.counters.setdefault(
                (ev.get("pid", "host"), ev["name"]), []).append(
                    (float(ev["ts"]), float(ev["value"])))
        elif etype == "span":
            trace.n_spans += 1
            trace.spans.append(SpanRecord(
                name=ev["name"], ts=ev["ts"], dur=ev["dur"],
                pid=ev.get("pid", "host"), tid=ev.get("tid", "main"),
                cat=ev.get("cat", "host"), args=ev.get("args") or {}))
        elif etype == "instant":
            trace.instants.append(InstantRecord(
                name=ev["name"], ts=ev["ts"],
                pid=ev.get("pid", "host"), tid=ev.get("tid", "main"),
                cat=ev.get("cat", "host"), args=ev.get("args") or {}))
        elif etype == "metrics":
            trace.metrics = {k: v for k, v in ev.items() if k != "type"}
        elif etype == "flow":
            trace.n_flows += 1
    return trace


def load_trace(path: str) -> LoadedTrace:
    """Parse a trace artifact (Chrome JSON or JSONL, sniffed from the
    content) into a :class:`LoadedTrace`."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
        return _load_chrome(doc, name=path)
    return _load_jsonl(text.splitlines(), name=path)
