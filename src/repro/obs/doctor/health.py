"""Fleet health: rolling-window SLOs, EWMA anomaly detection, alerts.

A :class:`HealthMonitor` ingests metric samples — queue depth, job wait,
fleet utilization, cache hit rate — as they are produced (the
:class:`~repro.serve.service.ForecastService` event loop feeds it on the
modeled clock) or post hoc (the doctor replays counter series read back
from a trace).  Two detectors run per sample:

* **declarative SLO rules** (:class:`SloRule`) parsed from expressions
  like ``p95_wait_s<0.5`` or burn-rate forms like ``wait_s<0.5@0.2``
  ("at most 20% of the window may violate the raw threshold");
* **EWMA anomaly detection**: an exponentially weighted mean/variance
  per metric flags samples more than ``anomaly_sigma`` deviations from
  the running estimate once past warmup.

Both emit typed :class:`Alert` records, edge-triggered (one alert per
excursion, re-armed on recovery) so a saturated service does not drown
its own report.  Everything is deterministic: no wall clock, no state
beyond the samples themselves — replaying a workload replays its
alerts.
"""
from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..metrics import percentile_summary

__all__ = ["SloRule", "Alert", "RollingSeries", "HealthMonitor"]

#: comparison operators an SLO expression may use (the rule states what
#: SHOULD hold; an alert fires when it does not)
_OPS = {
    "<=": lambda v, t: v <= t,
    ">=": lambda v, t: v >= t,
    "<": lambda v, t: v < t,
    ">": lambda v, t: v > t,
}

_AGGS = ("mean", "p50", "p95", "max", "min", "last", "ewma")


class RollingSeries:
    """Bounded sample window with percentile and EWMA aggregates."""

    def __init__(self, window: int = 256, *, ewma_alpha: float = 0.2):
        self.values: deque[float] = deque(maxlen=window)
        self.alpha = ewma_alpha
        self.n = 0               #: lifetime sample count (window-free)
        self.ewma_mean = 0.0
        self.ewma_var = 0.0

    def add(self, value: float) -> None:
        value = float(value)
        self.values.append(value)
        if self.n == 0:
            self.ewma_mean = value
        else:
            diff = value - self.ewma_mean
            self.ewma_mean += self.alpha * diff
            self.ewma_var = (1.0 - self.alpha) * (
                self.ewma_var + self.alpha * diff * diff)
        self.n += 1

    @property
    def ewma_std(self) -> float:
        return math.sqrt(max(0.0, self.ewma_var))

    def deviation(self, value: float) -> float:
        """|value - EWMA mean| in EWMA standard deviations (inf when the
        variance estimate is still zero and the value moved)."""
        diff = abs(float(value) - self.ewma_mean)
        if diff == 0.0:
            return 0.0
        std = self.ewma_std
        return diff / std if std > 0 else float("inf")

    def aggregate(self, agg: str) -> float:
        if not self.values:
            return 0.0
        if agg == "last":
            return self.values[-1]
        if agg == "ewma":
            return self.ewma_mean
        if agg == "max":
            return max(self.values)
        if agg == "min":
            return min(self.values)
        s = percentile_summary(list(self.values))
        return s[agg]

    def breach_fraction(self, op: str, threshold: float) -> float:
        """Fraction of windowed samples violating ``value OP threshold``."""
        if not self.values:
            return 0.0
        ok = _OPS[op]
        bad = sum(1 for v in self.values if not ok(v, threshold))
        return bad / len(self.values)

    def summary(self) -> dict[str, float]:
        out = percentile_summary(list(self.values))
        out["n"] = float(self.n)
        out["ewma"] = self.ewma_mean
        return out


@dataclass(frozen=True)
class SloRule:
    """One declarative objective, e.g. ``p95_wait_s<0.5``.

    Grammar: ``[AGG_]METRIC OP THRESHOLD[@BUDGET]`` where ``AGG`` is one
    of mean/p50/p95/max/min/last/ewma (default ``last``), ``OP`` is
    ``<``, ``<=``, ``>`` or ``>=``, and the optional ``@BUDGET`` turns
    the rule into a burn-rate objective: alert when more than ``BUDGET``
    (a fraction) of the rolling window violates the raw threshold.
    """

    expr: str
    metric: str
    agg: str
    op: str
    threshold: float
    budget: float | None = None

    @classmethod
    def parse(cls, expr: str) -> "SloRule":
        text = expr.strip().replace(" ", "")
        if not text:
            raise ValueError("empty SLO expression")
        for op in ("<=", ">=", "<", ">"):       # two-char ops first
            if op in text:
                lhs, rhs = text.split(op, 1)
                break
        else:
            raise ValueError(
                f"SLO {expr!r}: no comparison operator (use < <= > >=)")
        budget: float | None = None
        if "@" in rhs:
            rhs, btxt = rhs.split("@", 1)
            try:
                budget = float(btxt)
            except ValueError:
                raise ValueError(f"SLO {expr!r}: bad budget {btxt!r}") from None
            if not 0.0 <= budget <= 1.0:
                raise ValueError(f"SLO {expr!r}: budget must be in [0, 1]")
        try:
            threshold = float(rhs)
        except ValueError:
            raise ValueError(f"SLO {expr!r}: bad threshold {rhs!r}") from None
        agg, metric = "last", lhs
        head, _, tail = lhs.partition("_")
        if tail and head in _AGGS:
            agg, metric = head, tail
        if not metric:
            raise ValueError(f"SLO {expr!r}: missing metric name")
        if budget is not None:
            agg = "last"      # burn rate judges raw samples, not aggregates
        return cls(expr=expr.strip(), metric=metric, agg=agg, op=op,
                   threshold=threshold, budget=budget)

    def evaluate(self, series: RollingSeries) -> tuple[bool, float]:
        """(violated, observed value) against the current window."""
        if self.budget is not None:
            frac = series.breach_fraction(self.op, self.threshold)
            return frac > self.budget, frac
        observed = series.aggregate(self.agg)
        return not _OPS[self.op](observed, self.threshold), observed


@dataclass
class Alert:
    """One fired objective violation or anomaly."""

    kind: str            #: 'slo' | 'anomaly'
    metric: str
    t: float             #: modeled/series time the alert fired
    observed: float
    threshold: float
    rule: str = ""       #: the SLO expression ('' for anomalies)
    message: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "metric": self.metric,
                "t": round(self.t, 9), "observed": self.observed,
                "threshold": self.threshold, "rule": self.rule,
                "message": self.message}


class HealthMonitor:
    """Evaluate SLO rules and anomaly detection over metric streams."""

    def __init__(
        self,
        rules: "Iterable[SloRule | str] | str | None" = (),
        *,
        window: int = 256,
        ewma_alpha: float = 0.2,
        anomaly_sigma: float = 0.0,    #: 0 disables anomaly detection
        warmup: int = 16,
    ):
        if isinstance(rules, str):
            rules = [r for r in rules.replace(";", ",").split(",") if r.strip()]
        self.rules: list[SloRule] = [
            r if isinstance(r, SloRule) else SloRule.parse(r)
            for r in (rules or ())]
        self.window = window
        self.ewma_alpha = ewma_alpha
        self.anomaly_sigma = anomaly_sigma
        self.warmup = warmup
        self.series: dict[str, RollingSeries] = {}
        self.alerts: list[Alert] = []
        self._active: set[str] = set()    #: currently-breached rule/anomaly keys

    # ------------------------------------------------------------ ingest
    def _series(self, metric: str) -> RollingSeries:
        s = self.series.get(metric)
        if s is None:
            s = self.series[metric] = RollingSeries(
                self.window, ewma_alpha=self.ewma_alpha)
        return s

    def observe(self, metric: str, value: float, t: float = 0.0) -> list[Alert]:
        """Ingest one sample; returns any alerts that fired on it."""
        value = float(value)
        series = self._series(metric)
        fired: list[Alert] = []

        # anomaly check against the estimate *before* this sample joins it
        if self.anomaly_sigma > 0 and series.n >= self.warmup:
            dev = series.deviation(value)
            key = f"anomaly:{metric}"
            if dev > self.anomaly_sigma:
                if key not in self._active:
                    self._active.add(key)
                    fired.append(Alert(
                        kind="anomaly", metric=metric, t=t, observed=value,
                        threshold=self.anomaly_sigma,
                        message=f"{metric}={value:g} is "
                                f"{dev if dev != float('inf') else 999:.1f} "
                                f"EWMA deviations from "
                                f"{series.ewma_mean:g}"))
            else:
                self._active.discard(key)

        series.add(value)

        for rule in self.rules:
            if rule.metric != metric:
                continue
            violated, observed = rule.evaluate(series)
            if violated:
                if rule.expr not in self._active:
                    self._active.add(rule.expr)
                    what = (f"burn rate {observed:.2f} > budget "
                            f"{rule.budget}" if rule.budget is not None
                            else f"{rule.agg}({metric})={observed:g} "
                                 f"violates {rule.op}{rule.threshold:g}")
                    fired.append(Alert(
                        kind="slo", metric=metric, t=t, observed=observed,
                        threshold=(rule.budget if rule.budget is not None
                                   else rule.threshold),
                        rule=rule.expr, message=what))
            else:
                self._active.discard(rule.expr)
        self.alerts.extend(fired)
        return fired

    def observe_series(self, metric: str,
                       samples: Iterable[tuple[float, float]]) -> list[Alert]:
        """Post-hoc ingestion of a [(t, value), ...] series (the doctor
        feeds counter tracks read back from a trace through this)."""
        fired: list[Alert] = []
        for t, value in samples:
            fired.extend(self.observe(metric, value, t))
        return fired

    # ----------------------------------------------------------- queries
    @property
    def breached(self) -> bool:
        return bool(self.alerts)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-metric rolling-window summaries (shared percentile math)."""
        return {m: s.summary() for m, s in sorted(self.series.items())}

    def as_dict(self) -> dict[str, Any]:
        return {
            "rules": [r.expr for r in self.rules],
            "alerts": [a.as_dict() for a in self.alerts],
            "metrics": self.summary(),
        }
