"""Live roofline: place every on-path kernel of a counted run on Eq. 6.

``repro doctor --roofline`` lands here.  The input is a device-op
timeline whose kernel launches carry *measured* FLOP/byte counts
(:attr:`~repro.obs.trace.DeviceOpRecord.measured`, produced by
:class:`repro.gpu.counters.CountingHook` on a ``--counters`` run or read
back from an exported trace); the output is the paper's Fig. 5 picture
computed from measurement instead of the hand-entered cost table:

* per-kernel **achieved GFlops** — measured FLOPs over the modeled
  execution time of the annotated launches — against the Eq.-6
  attainable ceiling at the kernel's arithmetic intensity, grouped by
  the Fig. 9 variable (:func:`~.critical_path.base_name`);
* two intensities per kernel: the **effective** intensity (measured
  FLOPs over the cost table's global-memory bytes — the paper's
  methodology, PAPI flop counts + analytic traffic) used for roofline
  placement, and the **streamed** intensity (measured FLOPs over
  measured element traffic, which counts every NumPy temporary) as a
  diagnostic;
* **drift findings** in the shared sanitizer format when measurement
  and the cost table disagree beyond the bands in
  :mod:`repro.gpu.counters`: ``ROOF01`` (flops drift, error),
  ``ROOF02`` (traffic drift, error), ``ROOF03`` (an on-path kernel of a
  counted run carries no measurement — warning, does not gate).

Errors gate: :meth:`RooflineReport.exit_status` is nonzero exactly when
a ROOF01/ROOF02 finding fired, which is what CI runs against an injected
cost-table perturbation to prove the check has teeth.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ...analysis.findings import Finding
from ...gpu.counters import bytes_drift, drift_band, flops_drift
from ...gpu.roofline import RooflinePlacement, place_kernel, ridge_intensity
from ...gpu.spec import DeviceSpec, Precision, TESLA_S1070
from .critical_path import base_name

__all__ = ["KernelRoofline", "RooflineReport", "roofline_from_records"]


@dataclass
class KernelRoofline:
    """One kernel's measured totals and roofline placement."""

    name: str
    launches: int                 #: annotated launches aggregated here
    flops: float                  #: measured FLOPs (sum over launches)
    bytes_streamed: float         #: measured element traffic in bytes
    time_s: float                 #: modeled execution time of the launches
    points: float                 #: total points over the launches
    placement: RooflinePlacement  #: at the *effective* intensity
    streamed_intensity: float     #: measured flops / measured bytes
    table_flops_per_point: float | None = None
    table_bytes_per_point: float | None = None
    time_share: float = 0.0       #: of total measured kernel time (Fig. 9)

    @property
    def measured_flops_per_point(self) -> float:
        return self.flops / self.points if self.points else 0.0

    @property
    def measured_bytes_per_point(self) -> float:
        return self.bytes_streamed / self.points if self.points else 0.0

    def as_dict(self) -> dict[str, Any]:
        p = self.placement
        return {
            "name": self.name,
            "launches": self.launches,
            "flops": self.flops,
            "bytes_streamed": self.bytes_streamed,
            "time_s": self.time_s,
            "points": self.points,
            "measured_flops_per_point": self.measured_flops_per_point,
            "measured_bytes_per_point": self.measured_bytes_per_point,
            "table_flops_per_point": self.table_flops_per_point,
            "table_bytes_per_point": self.table_bytes_per_point,
            "intensity": p.intensity,
            "streamed_intensity": self.streamed_intensity,
            "achieved_gflops": p.gflops,
            "ceiling_gflops": p.ceiling_gflops,
            "ceiling_fraction": p.ceiling_fraction,
            "peak_fraction": p.peak_fraction,
            "time_share": self.time_share,
        }


@dataclass
class RooflineReport:
    """The doctor's ``--roofline`` verdict over one counted timeline."""

    kernels: list[KernelRoofline] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    ridge: float = 0.0            #: flop/B where the device turns compute bound
    spec_name: str = ""
    precision: str = ""
    measured_ops: int = 0         #: kernel launches carrying measurement
    total_ops: int = 0            #: all kernel launches seen

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def exit_status(self) -> int:
        """Nonzero iff a drift *error* fired (warnings don't gate)."""
        return 1 if self.errors else 0

    def by_achieved(self) -> list[KernelRoofline]:
        """Kernels sorted by achieved GFlops, ascending — the measured
        Fig. 5 ranking (coordinate transformation should come first,
        warm rain last)."""
        return sorted(self.kernels, key=lambda k: k.placement.gflops)

    def kernel(self, name: str) -> KernelRoofline | None:
        for k in self.kernels:
            if k.name == name:
                return k
        return None

    def text(self) -> str:
        lines = [
            f"live roofline — {self.spec_name} {self.precision}, "
            f"ridge {self.ridge:.2f} flop/B; "
            f"{self.measured_ops}/{self.total_ops} kernel launches measured",
            "",
            f"{'kernel':<18} {'AI':>7} {'AIstrm':>7} {'GFlops':>8} "
            f"{'ceiling':>8} {'%ceil':>6} {'%peak':>6} {'t%':>5}",
        ]
        for k in self.by_achieved():
            p = k.placement
            lines.append(
                f"{k.name:<18} {p.intensity:>7.3f} "
                f"{k.streamed_intensity:>7.3f} {p.gflops:>8.2f} "
                f"{p.ceiling_gflops:>8.2f} {100 * p.ceiling_fraction:>5.1f}% "
                f"{100 * p.peak_fraction:>5.1f}% "
                f"{100 * k.time_share:>4.1f}%")
        if self.findings:
            lines.append("")
            for f in self.findings:
                lines.append(f.text())
        lines.append("")
        lines.append(f"{len(self.errors)} drift error(s), "
                     f"{len(self.findings) - len(self.errors)} warning(s)")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec_name,
            "precision": self.precision,
            "ridge": self.ridge,
            "measured_ops": self.measured_ops,
            "total_ops": self.total_ops,
            "kernels": [k.as_dict() for k in self.by_achieved()],
            "findings": [f.as_dict() for f in self.findings],
            "ok": not self.errors,
        }


def roofline_from_records(
    ops: Iterable,
    *,
    spec: DeviceSpec = TESLA_S1070,
    precision: Precision = Precision.SINGLE,
    table: dict | None = None,
) -> RooflineReport:
    """Aggregate measured kernel launches into a :class:`RooflineReport`.

    ``ops`` is any iterable of op-like records (virtual-device
    :class:`~repro.gpu.device.Op` or trace
    :class:`~repro.obs.trace.DeviceOpRecord`) — only ``kind == 'kernel'``
    entries matter; launches are grouped by their Fig. 9 base name.
    ``table`` overrides the cost table to validate against (name ->
    :class:`~repro.gpu.kernel.Kernel` or
    :class:`~repro.gpu.kernel.KernelCostModel`); the CLI's hidden
    ``--seed-drift`` uses this to prove the gate fires.
    """
    if table is None:
        from ...perf.costmodel import ASUCA_KERNELS

        table = ASUCA_KERNELS

    @dataclass
    class _Acc:
        launches: int = 0
        flops: float = 0.0
        bytes_streamed: float = 0.0
        time_s: float = 0.0
        points: float = 0.0
        unmeasured: int = 0

    groups: dict[str, _Acc] = {}
    measured_ops = total_ops = 0
    for op in ops:
        if getattr(op, "kind", None) != "kernel":
            continue
        total_ops += 1
        acc = groups.setdefault(base_name(op.name), _Acc())
        m = getattr(op, "measured", None)
        if m is None:
            acc.unmeasured += 1
            continue
        measured_ops += 1
        acc.launches += 1
        acc.flops += m.get("flops", 0.0)
        acc.bytes_streamed += (m.get("bytes_read", 0.0)
                               + m.get("bytes_written", 0.0))
        acc.time_s += op.duration
        acc.points += m.get("points", 0.0)

    def _cost(name: str):
        k = table.get(name)
        return getattr(k, "cost", k)   # Kernel or bare KernelCostModel

    report = RooflineReport(
        ridge=ridge_intensity(spec, precision),
        spec_name=spec.name, precision=precision.name,
        measured_ops=measured_ops, total_ops=total_ops,
    )
    itemsize = precision.itemsize
    total_time = sum(a.time_s for a in groups.values())
    for name in sorted(groups):
        acc = groups[name]
        if acc.launches == 0:
            # an on-path kernel with zero measurement only matters on a
            # counted run (some launches elsewhere were measured)
            if measured_ops > 0:
                report.findings.append(Finding(
                    code="ROOF03", severity="warning",
                    message=f"kernel '{name}' ran {acc.unmeasured} launch(es)"
                            " without measured counts",
                    op=name,
                    suggestion="bind it in bind_accounting_kernels() / "
                               "accounting_args() so counted runs cover it",
                ))
            continue
        cost = _cost(name)
        fpp = acc.flops / acc.points if acc.points else 0.0
        bpp = acc.bytes_streamed / acc.points if acc.points else 0.0
        table_fpp = table_bpp = None
        if cost is not None:
            table_fpp = cost.flops_per_point
            table_bpp = (cost.reads_per_point
                         + cost.writes_per_point) * itemsize
            ratio = flops_drift(name, fpp, table_fpp)
            if ratio is not None:
                lo, hi = drift_band(name)
                report.findings.append(Finding(
                    code="ROOF01", severity="error",
                    message=f"kernel '{name}' measured "
                            f"{fpp:.2f} flops/pt vs table "
                            f"{table_fpp:.2f} (ratio {ratio:.2f}, "
                            f"band [{lo}, {hi}])",
                    op=name,
                    suggestion="re-derive the costmodel entry from the "
                               "kernel or fix the accounting binding",
                ))
            bratio = bytes_drift(name, bpp, table_bpp)
            if bratio is not None:
                report.findings.append(Finding(
                    code="ROOF02", severity="error",
                    message=f"kernel '{name}' streamed "
                            f"{bpp:.1f} B/pt vs table {table_bpp:.1f} "
                            f"global-memory B/pt (ratio {bratio:.2f})",
                    op=name,
                    suggestion="the kernel reads/writes fields the cost "
                               "table does not account for",
                ))
        # roofline placement at the *effective* intensity: measured flops
        # over the table's global-memory traffic (the paper pairs PAPI
        # flop counts with analytic byte counts; streamed NumPy traffic
        # includes every temporary and would understate the intensity)
        eff_bytes = (table_bpp * acc.points if table_bpp
                     else acc.bytes_streamed)
        placement = place_kernel(name, acc.flops, eff_bytes, acc.time_s,
                                 spec, precision)
        report.kernels.append(KernelRoofline(
            name=name, launches=acc.launches, flops=acc.flops,
            bytes_streamed=acc.bytes_streamed, time_s=acc.time_s,
            points=acc.points, placement=placement,
            streamed_intensity=(acc.flops / acc.bytes_streamed
                                if acc.bytes_streamed else 0.0),
            table_flops_per_point=table_fpp,
            table_bytes_per_point=table_bpp,
            time_share=acc.time_s / total_time if total_time else 0.0,
        ))
    return report
