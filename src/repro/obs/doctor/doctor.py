"""The perf doctor: diagnose a timeline, a trace, or a modeled step.

Three entry points, one report shape:

* :func:`diagnose_ops` — one device timeline (live
  :class:`~repro.gpu.device.GPUDevice` ops or records read back from a
  trace) → critical path, per-variable attribution, overlap stats;
* :func:`diagnose_trace` — a whole exported trace artifact: every
  device track diagnosed, every counter series summarized and screened
  for EWMA anomalies;
* :func:`diagnose_model` — rerun the paper's overlap performance model
  (:mod:`repro.dist.overlap`) across the named method configurations,
  cross-validate the doctor's timeline accounting against the model's
  own :class:`~repro.dist.overlap.StepTimeline` aggregates, and
  recommend the fastest method.

A :class:`DoctorReport` renders as a Fig. 11-style text breakdown or
JSON, names the dominant bottleneck, and carries gate findings (e.g.
a ``--min-hidden`` violation) that drive the CLI exit status: 0 clean,
1 findings, 2 usage errors.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..metrics import percentile_summary
from .critical_path import (
    AttributionRow,
    CriticalPath,
    OverlapStats,
    attribution,
    critical_path,
    overlap_stats,
)
from .health import HealthMonitor
from .load import LoadedTrace, load_trace

__all__ = ["DeviceDiagnosis", "Verdict", "DoctorReport",
           "diagnose_ops", "diagnose_trace", "diagnose_model"]

#: attribution rows shown in the text report
_TOP_ROWS = 10


@dataclass
class DeviceDiagnosis:
    """Everything the doctor derives from one device timeline."""

    label: str
    stats: OverlapStats
    path: CriticalPath
    rows: list[AttributionRow]
    #: concurrency level -> seconds (from perf.timeline)
    concurrency: dict[int, float] = field(default_factory=dict)

    @property
    def bottleneck(self) -> str:
        """What the step spent its critical path on: 'compute',
        'exposed communication', 'barrier skew', or 'idle'."""
        kinds = self.path.time_by_kind
        compute = kinds.get("kernel", 0.0)
        skew = self.path.time_by_tag.get("skew", 0.0)
        comm = sum(kinds.get(k, 0.0) for k in ("mpi", "h2d", "d2h")) - skew
        idle = max(0.0, self.path.makespan - self.path.path_time)
        top = max((("compute", compute), ("exposed communication", comm),
                   ("barrier skew", skew), ("idle", idle)),
                  key=lambda kv: kv[1])
        return top[0]

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "bottleneck": self.bottleneck,
            "overlap": self.stats.as_dict(),
            "critical_path": self.path.as_dict(),
            "attribution": [r.as_dict() for r in self.rows],
            "concurrency_s": {str(k): v for k, v in self.concurrency.items()},
        }

    def text(self) -> str:
        st = self.stats
        ms = 1e3
        lines = [
            f"device {self.label}:",
            f"  one step: {st.makespan * ms:8.1f} ms total | "
            f"compute {st.compute * ms:.1f} | MPI {st.mpi * ms:.1f} | "
            f"GPU-CPU {st.gpu_cpu * ms:.1f}"
            + (f" | skew {st.skew * ms:.1f}" if st.skew else ""),
            f"  communication {st.communication * ms:.1f} ms, exposed "
            f"{st.exposed * ms:.1f} ms -> hidden "
            f"{100 * st.hidden_fraction:.1f}%"
            + (f" ({100 * st.hidden_fraction_comm_only:.1f}% excluding "
               f"barrier skew)" if st.skew else ""),
            f"  critical path: {100 * self.path.coverage:.1f}% of the "
            f"makespan reconstructed over {len(self.path.segments)} ops; "
            f"dominant: {self.bottleneck}",
        ]
        overlapped = sum(t for k, t in self.concurrency.items() if k >= 2)
        if self.concurrency and st.makespan > 0:
            lines.append(f"  engine overlap: 2+ engines busy for "
                         f"{overlapped * ms:.1f} ms "
                         f"({100 * overlapped / st.makespan:.1f}% of the step)")
        if self.rows:
            lines.append(f"  {'variable / kernel group':<28} {'calls':>6} "
                         f"{'total ms':>9} {'on-path ms':>11}")
            for r in self.rows[:_TOP_ROWS]:
                lines.append(f"  {r.name:<28} {r.calls:>6} "
                             f"{r.total * ms:>9.2f} {r.on_path * ms:>11.2f}")
            if len(self.rows) > _TOP_ROWS:
                rest = sum(r.total for r in self.rows[_TOP_ROWS:])
                lines.append(f"  {'(other)':<28} {'':>6} {rest * ms:>9.2f}")
        return "\n".join(lines)


@dataclass
class Verdict:
    """The doctor's recommendation."""

    bottleneck: str
    recommendation: str
    #: method name -> modeled step total [s] (model mode only)
    method_totals: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {"bottleneck": self.bottleneck,
                "recommendation": self.recommendation,
                "method_totals_s": dict(self.method_totals)}

    def text(self) -> str:
        lines = [f"verdict: dominant bottleneck is {self.bottleneck}",
                 f"  {self.recommendation}"]
        if self.method_totals:
            best = min(self.method_totals, key=self.method_totals.get)
            for name, total in self.method_totals.items():
                marker = "  <- best" if name == best else ""
                lines.append(f"    {name:<12} {total * 1e3:8.1f} ms{marker}")
        return "\n".join(lines)


@dataclass
class DoctorReport:
    """One ``repro doctor`` invocation's result."""

    mode: str                      #: 'model' | 'trace' | 'ops'
    devices: list[DeviceDiagnosis] = field(default_factory=list)
    verdict: Verdict | None = None
    #: counter name -> rolling summary (trace mode)
    counters: dict[str, dict[str, float]] = field(default_factory=dict)
    #: counter anomalies flagged by the EWMA screen (trace mode)
    anomalies: list[dict[str, Any]] = field(default_factory=list)
    #: doctor-vs-model cross-check: metric -> relative delta (model mode)
    consistency: dict[str, float] = field(default_factory=dict)
    #: gate violations; any entry makes exit_status() nonzero
    findings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def exit_status(self) -> int:
        return 0 if self.ok else 1

    @property
    def hidden_fraction(self) -> float:
        """Worst (lowest) hidden-communication fraction over devices
        that communicate at all."""
        fracs = [d.stats.hidden_fraction for d in self.devices
                 if d.stats.communication > 0]
        return min(fracs) if fracs else 0.0

    def require_min_hidden(self, minimum: float) -> "DoctorReport":
        """Gate: fail when hidden communication falls below ``minimum``."""
        h = self.hidden_fraction
        if h < minimum:
            self.findings.append(
                f"hidden-communication fraction {h:.3f} is below the "
                f"required minimum {minimum:.3f}")
        return self

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "ok": self.ok,
            "findings": list(self.findings),
            "hidden_fraction": self.hidden_fraction,
            "verdict": self.verdict.as_dict() if self.verdict else None,
            "consistency": dict(self.consistency),
            "counters": dict(self.counters),
            "anomalies": list(self.anomalies),
            "devices": [d.as_dict() for d in self.devices],
        }

    def as_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def text(self) -> str:
        lines = [f"perf doctor — {self.mode} analysis"]
        for d in self.devices:
            lines.append("")
            lines.append(d.text())
        if self.counters:
            lines.append("")
            lines.append(f"  {'counter':<28} {'n':>6} {'mean':>10} "
                         f"{'p95':>10} {'max':>10}")
            for name, s in sorted(self.counters.items()):
                lines.append(f"  {name:<28} {int(s.get('n', 0)):>6} "
                             f"{s['mean']:>10.3f} {s['p95']:>10.3f} "
                             f"{s['max']:>10.3f}")
        for a in self.anomalies:
            lines.append(f"  anomaly: {a['metric']} at t={a['t']:.3f}: "
                         f"{a['message']}")
        if self.consistency:
            worst = max(self.consistency.values())
            lines.append("")
            lines.append(f"  cross-check vs modeled timeline: max relative "
                         f"delta {100 * worst:.3f}% "
                         f"({'OK' if worst < 0.01 else 'DIVERGED'})")
        if self.verdict:
            lines.append("")
            lines.append(self.verdict.text())
        if self.findings:
            lines.append("")
            lines.extend(f"FINDING: {f}" for f in self.findings)
        return "\n".join(lines)


# ------------------------------------------------------------- entry points
def diagnose_ops(ops: Iterable[Any], *, label: str = "device",
                 copy_engines: int = 1) -> DeviceDiagnosis:
    """Diagnose one device timeline (Ops or DeviceOpRecords)."""
    from ...perf.timeline import concurrency_profile   # lazy: no obs cycle

    ops = list(ops)
    path = critical_path(ops, copy_engines=copy_engines)
    return DeviceDiagnosis(
        label=label,
        stats=overlap_stats(ops, makespan=path.makespan),
        path=path,
        rows=attribution(ops, path),
        concurrency=concurrency_profile(ops),
    )


def _recommendation(diag: DeviceDiagnosis) -> str:
    st = diag.stats
    b = diag.bottleneck
    if b == "compute":
        return ("the step is compute-bound; overlap is doing its job — "
                "faster kernels (or more GPUs) are the next lever")
    if b == "exposed communication":
        if st.hidden_fraction < 0.1:
            return ("communication is almost entirely exposed; enable the "
                    "overlap methods (kernel division + pipelining, "
                    "method1+2+3)")
        return ("communication is partially hidden; widen the overlap "
                "window (method2 kernel division, method3 fusion) or "
                "shrink messages")
    if b == "barrier skew":
        return ("inter-node arrival skew dominates; reduce per-substep "
                "barriers or overlap across substeps")
    return "the device is idle much of the step; check host-side stalls"


def diagnose_trace(path: str, *, anomaly_sigma: float = 8.0,
                   window: int = 256) -> DoctorReport:
    """Diagnose an exported trace artifact (Chrome JSON or JSONL)."""
    trace: LoadedTrace = load_trace(path)
    report = DoctorReport(mode="trace")
    for pid in sorted(trace.device_ops):
        report.devices.append(diagnose_ops(trace.device_ops[pid], label=pid))

    monitor = HealthMonitor(window=window, anomaly_sigma=anomaly_sigma)
    for (pid, name), series in sorted(trace.counters.items()):
        metric = f"{pid}/{name}"
        monitor.observe_series(metric, series)
        report.counters[metric] = monitor.series[metric].summary()
    report.anomalies = [a.as_dict() for a in monitor.alerts]

    if report.devices:
        main = max(report.devices, key=lambda d: d.stats.makespan)
        report.verdict = Verdict(bottleneck=main.bottleneck,
                                 recommendation=_recommendation(main))
    return report


def diagnose_model(
    *,
    method: str = "method1+2+3",
    links_x: int = 2,
    links_y: int = 2,
    nx: int = 320,
    ny: int = 256,
    nz: int = 48,
) -> DoctorReport:
    """Rerun the overlap performance model, diagnose the selected
    method's schedule, cross-check the doctor's accounting against the
    model's own aggregates, and recommend the fastest method."""
    from ...dist.overlap import METHOD_CONFIGS, method_timelines  # lazy

    if method not in METHOD_CONFIGS:
        raise ValueError(f"unknown overlap method {method!r} "
                         f"(choose from {', '.join(METHOD_CONFIGS)})")
    timelines = method_timelines(links_x=links_x, links_y=links_y,
                                 nx=nx, ny=ny, nz=nz)
    report = DoctorReport(mode="model")
    tl = timelines[method]
    diag = diagnose_ops(tl.device.timeline, label=f"model:{method}")
    report.devices.append(diag)

    # the doctor's timeline accounting must agree with StepTimeline
    def _rel(a: float, b: float) -> float:
        return abs(a - b) / max(abs(b), 1e-30) if (a or b) else 0.0

    st = diag.stats
    report.consistency = {
        "total": _rel(st.makespan, tl.total),
        "compute": _rel(st.compute, tl.compute),
        "mpi": _rel(st.mpi, tl.mpi),
        "gpu_cpu": _rel(st.gpu_cpu, tl.gpu_cpu),
        "hidden_fraction": _rel(st.hidden_fraction, tl.hidden_fraction),
    }
    if max(report.consistency.values()) > 0.01:
        report.findings.append(
            "doctor accounting diverged >1% from the modeled timeline: "
            + ", ".join(f"{k}={100 * v:.2f}%"
                        for k, v in report.consistency.items() if v > 0.01))

    totals = {name: t.total for name, t in timelines.items()}
    best = min(totals, key=totals.get)
    rec = _recommendation(diag)
    if best != method:
        gain = 100 * (1 - totals[best] / totals[method])
        rec += (f"; switching to {best} would cut the step by "
                f"{gain:.1f}%")
    else:
        rec += f"; {method} is already the fastest configuration"
    report.verdict = Verdict(bottleneck=diag.bottleneck,
                             recommendation=rec, method_totals=totals)
    return report
