"""Bench regression gate: diff two ``BENCH_*.json`` artifacts.

The machine-readable benchmark artifacts (``benchmarks/bench_json.py``)
are deterministic for a deterministic model, which makes them usable as
golden baselines: a commit that changes a modeled TFlops number, a wait
percentile, or a weak-scaling efficiency shows up as a numeric drift
between the checked-in artifact and a freshly regenerated one.

:func:`compare_bench` walks the two payloads in parallel and flags

* numeric leaves whose relative change exceeds the tolerance (a global
  ``rel_tol`` plus per-metric overrides keyed by dotted-path glob, e.g.
  ``{"*.wait_s.*": 0.15}``);
* non-numeric leaves that changed at all;
* keys/elements present on only one side.

Artifacts carry a ``schema_version`` (stamped by ``write_bench_json``);
comparing mismatched or unversioned artifacts raises
:class:`SchemaMismatch` — the gate refuses rather than producing a
nonsense diff.  CLI surface: ``repro doctor --regress NEW --baseline
OLD`` (exit 0 clean, 1 on drift, 2 on schema/usage errors).
"""
from __future__ import annotations

import fnmatch
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any

__all__ = ["BENCH_SCHEMA_VERSION", "SchemaMismatch", "Drift",
           "RegressionReport", "compare_bench", "regression_gate"]

#: version stamped into every BENCH_*.json payload; bump on layout changes
BENCH_SCHEMA_VERSION = 1


class SchemaMismatch(ValueError):
    """The two artifacts do not speak the same schema version."""


@dataclass
class Drift:
    """One difference between baseline and current artifacts."""

    path: str             #: dotted path of the leaf, e.g. 'fifo.wait_s.p95'
    kind: str             #: 'drift' | 'changed' | 'missing' | 'added' | 'shape'
    baseline: Any = None
    current: Any = None
    rel_change: float | None = None
    tolerance: float | None = None

    def text(self) -> str:
        if self.kind == "drift":
            return (f"DRIFT {self.path}: {self.baseline:g} -> "
                    f"{self.current:g} ({100 * self.rel_change:+.1f}%, "
                    f"tolerance {100 * self.tolerance:.1f}%)")
        if self.kind == "changed":
            return (f"CHANGED {self.path}: {self.baseline!r} -> "
                    f"{self.current!r}")
        if self.kind == "missing":
            return f"MISSING {self.path}: present in baseline only"
        if self.kind == "added":
            return f"ADDED {self.path}: present in current only"
        return (f"SHAPE {self.path}: baseline {self.baseline!r} vs "
                f"current {self.current!r}")

    def as_dict(self) -> dict[str, Any]:
        d = {"path": self.path, "kind": self.kind,
             "baseline": self.baseline, "current": self.current}
        if self.rel_change is not None:
            d["rel_change"] = self.rel_change
            d["tolerance"] = self.tolerance
        return d


@dataclass
class RegressionReport:
    """The gate's verdict over one artifact pair."""

    baseline: str
    current: str
    schema_version: int
    rel_tol: float
    drifts: list[Drift] = field(default_factory=list)
    compared: int = 0          #: numeric leaves actually compared

    @property
    def ok(self) -> bool:
        return not self.drifts

    def exit_status(self) -> int:
        return 0 if self.ok else 1

    def text(self) -> str:
        lines = [f"bench regression gate — baseline {self.baseline} vs "
                 f"current {self.current}",
                 f"  schema v{self.schema_version}, {self.compared} numeric "
                 f"metrics compared, default tolerance "
                 f"{100 * self.rel_tol:.1f}%"]
        if self.ok:
            lines.append("  OK — no drift beyond tolerance")
        else:
            lines.append(f"  {len(self.drifts)} finding(s):")
            lines.extend(f"    {d.text()}" for d in self.drifts)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {"baseline": self.baseline, "current": self.current,
                "schema_version": self.schema_version,
                "rel_tol": self.rel_tol, "compared": self.compared,
                "ok": self.ok,
                "drifts": [d.as_dict() for d in self.drifts]}


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _tol_for(path: str, rel_tol: float,
             tolerances: dict[str, float] | None) -> float | None:
    """Most specific matching tolerance; None means 'ignore this leaf'."""
    if tolerances:
        best: tuple[int, float | None] | None = None
        for pattern, tol in tolerances.items():
            if fnmatch.fnmatch(path, pattern):
                score = len(pattern.replace("*", ""))
                if best is None or score > best[0]:
                    best = (score, tol)
        if best is not None:
            return best[1]
    return rel_tol


def compare_bench(
    baseline: Any,
    current: Any,
    *,
    rel_tol: float = 0.05,
    abs_tol: float = 1e-12,
    tolerances: dict[str, float] | None = None,
    _path: str = "",
    _out: list[Drift] | None = None,
    _counter: list[int] | None = None,
) -> list[Drift]:
    """Recursively diff two JSON payloads; returns the drift list."""
    out = _out if _out is not None else []
    counter = _counter if _counter is not None else [0]

    if isinstance(baseline, dict) and isinstance(current, dict):
        for key in sorted(set(baseline) | set(current)):
            path = f"{_path}.{key}" if _path else str(key)
            if key not in current:
                out.append(Drift(path=path, kind="missing",
                                 baseline=baseline[key]))
            elif key not in baseline:
                out.append(Drift(path=path, kind="added",
                                 current=current[key]))
            else:
                compare_bench(baseline[key], current[key], rel_tol=rel_tol,
                              abs_tol=abs_tol, tolerances=tolerances,
                              _path=path, _out=out, _counter=counter)
        return out
    if isinstance(baseline, list) and isinstance(current, list):
        if len(baseline) != len(current):
            out.append(Drift(path=_path or "(root)", kind="shape",
                             baseline=f"{len(baseline)} elements",
                             current=f"{len(current)} elements"))
        for i, (b, c) in enumerate(zip(baseline, current)):
            compare_bench(b, c, rel_tol=rel_tol, abs_tol=abs_tol,
                          tolerances=tolerances, _path=f"{_path}[{i}]",
                          _out=out, _counter=counter)
        return out

    path = _path or "(root)"
    if _is_number(baseline) and _is_number(current):
        tol = _tol_for(path, rel_tol, tolerances)
        if tol is None:
            return out           # explicitly ignored
        counter[0] += 1
        diff = abs(float(current) - float(baseline))
        if diff <= abs_tol:
            return out
        denom = max(abs(float(baseline)), abs_tol)
        rel = diff / denom
        if not math.isfinite(rel) or rel > tol:
            signed = (float(current) - float(baseline)) / denom
            out.append(Drift(path=path, kind="drift", baseline=baseline,
                             current=current, rel_change=signed,
                             tolerance=tol))
        return out
    if type(baseline) is not type(current) or baseline != current:
        out.append(Drift(path=path,
                         kind="changed" if type(baseline) is type(current)
                         else "shape",
                         baseline=baseline, current=current))
    return out


def _load(path: "str | pathlib.Path") -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench artifact must be a JSON object")
    return doc


def regression_gate(
    baseline_path: "str | pathlib.Path",
    current_path: "str | pathlib.Path",
    *,
    rel_tol: float = 0.05,
    abs_tol: float = 1e-12,
    tolerances: dict[str, float] | None = None,
    ignore_wall: bool = True,
) -> RegressionReport:
    """Load two BENCH artifacts, enforce schema compatibility, and diff.

    Wall-clock leaves (dotted path matching ``*wall*``) are ignored by
    default — every artifact that records machine-dependent timings
    names them with ``wall``, and gating them made each CI caller repeat
    ``--tolerance '*wall*=ignore'``.  Pass ``ignore_wall=False``
    (CLI ``--strict-wall``) to gate them, or override the ``*wall*``
    pattern in ``tolerances`` explicitly.

    Raises :class:`SchemaMismatch` when either side is unversioned or
    the versions differ; callers surface that as a usage error (exit 2),
    distinct from drift (exit 1).
    """
    baseline = _load(baseline_path)
    current = _load(current_path)
    vb = baseline.get("schema_version")
    vc = current.get("schema_version")
    if vb is None or vc is None:
        missing = baseline_path if vb is None else current_path
        raise SchemaMismatch(
            f"{missing}: artifact has no schema_version field — "
            f"regenerate it with the current benchmarks "
            f"(expected schema v{BENCH_SCHEMA_VERSION})")
    if vb != vc:
        raise SchemaMismatch(
            f"schema_version mismatch: baseline {baseline_path} is "
            f"v{vb}, current {current_path} is v{vc} — refusing to "
            f"diff artifacts with different layouts")
    b = {k: v for k, v in baseline.items() if k != "schema_version"}
    c = {k: v for k, v in current.items() if k != "schema_version"}
    if ignore_wall and "*wall*" not in (tolerances or {}):
        tolerances = dict(tolerances or {})
        tolerances["*wall*"] = None
    counter = [0]
    drifts = compare_bench(b, c, rel_tol=rel_tol, abs_tol=abs_tol,
                           tolerances=tolerances, _counter=counter)
    return RegressionReport(
        baseline=str(baseline_path), current=str(current_path),
        schema_version=int(vb), rel_tol=rel_tol, drifts=drifts,
        compared=counter[0])
