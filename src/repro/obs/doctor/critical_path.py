"""Critical-path reconstruction and attribution over device timelines.

The virtual device (:class:`repro.gpu.device.GPUDevice`) schedules every
op at ``max(stream available, engine available, explicit dependencies)``
— so for each op exactly one of those constraints is *binding*: the one
whose release time equals the op's start.  Walking binding predecessors
back from the last-finishing op reconstructs the **critical path** of
the step: the chain of work that determined the makespan.  Everything
else, by construction, was hidden behind it.

The same walk works on :class:`~repro.obs.trace.DeviceOpRecord` lists
read back from an exported trace: explicit dependency edges are gone,
but stream (track) order, engine serialization, and barrier fronts are
all recoverable from the timestamps, which is what the scheduler's
``max()`` exposes.

Three views come out of a timeline:

* :func:`critical_path` — the binding chain itself, with per-kind /
  per-tag time on the path (what the paper's Fig. 11 calls the exposed
  portion of each track);
* :func:`attribution` — per-kernel self time grouped by variable
  (Fig. 9's bar groups), annotated with how much of each landed on the
  critical path;
* :func:`overlap_stats` — the Fig. 11 aggregates (compute / MPI /
  GPU-CPU / skew) and the paper-accounting hidden-communication
  fraction, numerically identical to
  :attr:`repro.dist.overlap.StepTimeline.hidden_fraction` when fed the
  same device.
"""
from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = [
    "PathSegment",
    "CriticalPath",
    "AttributionRow",
    "OverlapStats",
    "critical_path",
    "attribution",
    "overlap_stats",
    "base_name",
]

#: op kinds that count as communication in the paper's accounting
COMM_KINDS = ("mpi", "h2d", "d2h")

#: tag marking barrier arrival-skew stalls (see dist/overlap.py) —
#: charged to the mpi engine but not to communication proper
SKEW_TAG = "skew"


def _engine_of(kind: str, copy_engines: int) -> str:
    if kind == "kernel":
        return "compute"
    if kind == "mpi":
        return "mpi"
    if copy_engines >= 2:
        return "copy0" if kind == "h2d" else "copy1"
    return "copy0"


_TRACER_RE = re.compile(r"^q\d+$")


def base_name(op_name: str) -> str:
    """Group an op name into its Fig. 9 variable: the part before the
    ``:`` role suffix, with the 13 water tracers collapsed into one row."""
    base = op_name.split(":", 1)[0]
    if _TRACER_RE.match(base):
        return "Water tracers"
    return base


@dataclass
class PathSegment:
    """One op on the critical path and why it was waiting."""

    name: str
    kind: str
    tag: str
    start: float
    end: float
    #: which constraint bound this op's start: 'stream' (program order),
    #: 'engine' (resource serialization), 'dep' (explicit event edge),
    #: 'barrier' (device-wide synchronize front), or 'root'
    via: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The binding chain from t=0 (or the first root) to the makespan."""

    segments: list[PathSegment]
    makespan: float
    time_by_kind: dict[str, float] = field(default_factory=dict)
    time_by_tag: dict[str, float] = field(default_factory=dict)

    @property
    def path_time(self) -> float:
        return sum(s.duration for s in self.segments)

    @property
    def coverage(self) -> float:
        """Fraction of the makespan the reconstructed chain explains
        (gaps below 1.0 are genuine idle — nothing was runnable)."""
        return self.path_time / self.makespan if self.makespan > 0 else 0.0

    @property
    def dominant_kind(self) -> str:
        """The op kind with the most time on the path ('idle' when the
        chain explains less than half the makespan)."""
        if self.makespan > 0 and self.coverage < 0.5:
            return "idle"
        if not self.time_by_kind:
            return "idle"
        return max(self.time_by_kind.items(), key=lambda kv: kv[1])[0]

    def as_dict(self) -> dict[str, Any]:
        return {
            "makespan_s": self.makespan,
            "path_time_s": self.path_time,
            "coverage": self.coverage,
            "dominant_kind": self.dominant_kind,
            "time_by_kind_s": dict(sorted(self.time_by_kind.items())),
            "time_by_tag_s": dict(sorted(self.time_by_tag.items())),
            "n_segments": len(self.segments),
        }


@dataclass
class AttributionRow:
    """Self-time of one variable/kernel group (one Fig. 9 bar group)."""

    name: str
    calls: int
    total: float                       #: summed op durations [s]
    by_kind: dict[str, float] = field(default_factory=dict)
    on_path: float = 0.0               #: portion on the critical path [s]

    def as_dict(self) -> dict[str, Any]:
        return {"name": self.name, "calls": self.calls,
                "total_s": self.total, "on_path_s": self.on_path,
                "by_kind_s": dict(sorted(self.by_kind.items()))}


@dataclass
class OverlapStats:
    """Fig. 11 aggregates of one device timeline, paper accounting."""

    makespan: float
    compute: float      #: kernel busy time
    mpi: float          #: MPI busy time, skew excluded
    gpu_cpu: float      #: H2D + D2H busy time
    skew: float = 0.0   #: barrier arrival-skew stalls

    @property
    def communication(self) -> float:
        return self.mpi + self.gpu_cpu

    @property
    def exposed(self) -> float:
        """Not-computation time: the paper's exposed communication."""
        return max(0.0, self.makespan - self.compute)

    @property
    def hidden_fraction(self) -> float:
        """Fraction of communication hidden under computation with the
        paper's accounting ("the difference of the overall and
        computation times is the communication time that was not
        overlapped") — skew counts as exposed."""
        if not self.communication:
            return 0.0
        return max(0.0, 1.0 - self.exposed / self.communication)

    @property
    def hidden_fraction_comm_only(self) -> float:
        """Same, excluding barrier arrival-skew stalls (the Sec. VII
        "communication completely hidden" measure)."""
        if not self.communication:
            return 0.0
        exposed = max(0.0, self.makespan - self.compute - self.skew)
        return max(0.0, 1.0 - exposed / self.communication)

    def as_dict(self) -> dict[str, Any]:
        return {
            "makespan_s": self.makespan,
            "compute_s": self.compute,
            "mpi_s": self.mpi,
            "gpu_cpu_s": self.gpu_cpu,
            "skew_s": self.skew,
            "communication_s": self.communication,
            "exposed_s": self.exposed,
            "hidden_fraction": self.hidden_fraction,
            "hidden_fraction_comm_only": self.hidden_fraction_comm_only,
        }


# --------------------------------------------------------------- internals
@dataclass
class _Node:
    idx: int
    name: str
    kind: str
    tag: str
    start: float
    end: float
    stream: Any
    engine: str
    deps: tuple[int, ...]      #: indices of explicit-dependency nodes


def _normalize(ops: Iterable[Any], copy_engines: int) -> list[_Node]:
    """Turn Op / DeviceOpRecord / duck-typed sequences into nodes in
    submission order (``seq`` when present, else input order)."""
    raw = list(ops)
    seqs = [getattr(op, "seq", -1) for op in raw]
    order = (sorted(range(len(raw)), key=lambda i: seqs[i])
             if all(s >= 0 for s in seqs) else list(range(len(raw))))
    by_seq: dict[int, int] = {}
    nodes: list[_Node] = []
    for idx, i in enumerate(order):
        op = raw[i]
        stream = getattr(op, "stream", None)
        if stream is None:
            stream = getattr(op, "tid", "stream?")
        start = getattr(op, "start", None)
        if start is None:
            start = op.ts
        end = getattr(op, "end", None)
        if end is None:
            end = op.ts + op.dur
        if seqs[i] >= 0:
            by_seq[seqs[i]] = idx
        nodes.append(_Node(
            idx=idx, name=op.name, kind=op.kind,
            tag=getattr(op, "tag", "") or "",
            start=float(start), end=float(end),
            stream=stream, engine=_engine_of(op.kind, copy_engines),
            deps=tuple(getattr(op, "deps", ()) or ()),
        ))
    # remap dep seq numbers to node indices (records have none)
    for n in nodes:
        n.deps = tuple(by_seq[d] for d in n.deps if d in by_seq)
    return nodes


def _binding_predecessors(nodes: list[_Node], eps: float) -> list[tuple[int | None, str]]:
    """For each node, the index of the op whose completion released it,
    and which constraint that was."""
    last_on_stream: dict[Any, int] = {}
    last_on_engine: dict[str, int] = {}
    frontier: list[tuple[float, int]] = []   # (end, idx) prefix maxima
    best_end = float("-inf")
    out: list[tuple[int | None, str]] = []
    for n in nodes:
        candidates: list[tuple[float, str, int]] = []
        s = last_on_stream.get(n.stream)
        if s is not None:
            candidates.append((nodes[s].end, "stream", s))
        e = last_on_engine.get(n.engine)
        if e is not None:
            candidates.append((nodes[e].end, "engine", e))
        for d in n.deps:
            candidates.append((nodes[d].end, "dep", d))
        binding: tuple[int | None, str] = (None, "root")
        if candidates:
            end, via, idx = max(candidates, key=lambda c: (c[0], c[1] == "dep"))
            if abs(end - n.start) <= eps:
                binding = (idx, via)
        if binding[0] is None and n.start > eps:
            # a barrier (device synchronize) aligned every stream/engine
            # to the frontier: bind to the op that defined it
            lo, hi = 0, len(frontier)
            while lo < hi:
                mid = (lo + hi) // 2
                if frontier[mid][0] <= n.start + eps:
                    lo = mid + 1
                else:
                    hi = mid
            if lo > 0 and abs(frontier[lo - 1][0] - n.start) <= eps:
                binding = (frontier[lo - 1][1], "barrier")
        out.append(binding)
        last_on_stream[n.stream] = n.idx
        last_on_engine[n.engine] = n.idx
        if n.end > best_end:
            best_end = n.end
            frontier.append((n.end, n.idx))
    return out


def critical_path(ops: Iterable[Any], *, copy_engines: int = 1,
                  eps: float | None = None) -> CriticalPath:
    """Reconstruct the binding chain of a device timeline (accepts
    :class:`~repro.gpu.device.Op` or
    :class:`~repro.obs.trace.DeviceOpRecord` sequences)."""
    nodes = _normalize(ops, copy_engines)
    if not nodes:
        return CriticalPath(segments=[], makespan=0.0)
    makespan = max(n.end for n in nodes)
    if eps is None:
        # exported traces round to 1e-9 s; scale with the timeline
        eps = max(1e-9, 1e-7 * makespan)
    preds = _binding_predecessors(nodes, eps)

    tip = max(nodes, key=lambda n: (n.end, n.idx))
    segments: list[PathSegment] = []
    seen: set[int] = set()
    idx: int | None = tip.idx
    while idx is not None and idx not in seen:
        seen.add(idx)
        n = nodes[idx]
        pred_idx, via = preds[idx]    # why *this* op had to wait
        segments.append(PathSegment(name=n.name, kind=n.kind, tag=n.tag,
                                    start=n.start, end=n.end, via=via))
        idx = pred_idx
    segments.reverse()
    by_kind: dict[str, float] = defaultdict(float)
    by_tag: dict[str, float] = defaultdict(float)
    for s in segments:
        by_kind[s.kind] += s.duration
        if s.tag:
            by_tag[s.tag] += s.duration
    return CriticalPath(segments=segments, makespan=makespan,
                        time_by_kind=dict(by_kind), time_by_tag=dict(by_tag))


def attribution(ops: Iterable[Any], path: CriticalPath | None = None,
                *, key=base_name) -> list[AttributionRow]:
    """Per-variable self-time rows (Fig. 9 shape), sorted by total
    descending; when ``path`` is given, each row also reports how much
    of its time sat on the critical path."""
    rows: dict[str, AttributionRow] = {}
    for op in ops:
        name = key(op.name)
        row = rows.get(name)
        if row is None:
            row = rows[name] = AttributionRow(name=name, calls=0, total=0.0)
        row.calls += 1
        row.total += op.duration
        row.by_kind[op.kind] = row.by_kind.get(op.kind, 0.0) + op.duration
    if path is not None:
        for seg in path.segments:
            name = key(seg.name)
            if name in rows:
                rows[name].on_path += seg.duration
    return sorted(rows.values(), key=lambda r: -r.total)


def overlap_stats(ops: Iterable[Any], makespan: float | None = None) -> OverlapStats:
    """Fig. 11 aggregates of any op-shaped sequence; identical numbers
    to :class:`~repro.dist.overlap.StepTimeline` for the same device."""
    ops = list(ops)
    if makespan is None:
        makespan = max((op.end if hasattr(op, "end") else op.ts + op.dur
                        for op in ops), default=0.0)
    compute = mpi = gpu_cpu = skew = 0.0
    for op in ops:
        tag = getattr(op, "tag", "") or ""
        if op.kind == "kernel":
            compute += op.duration
        elif op.kind == "mpi":
            if tag == SKEW_TAG:
                skew += op.duration
            else:
                mpi += op.duration
        elif op.kind in ("h2d", "d2h"):
            gpu_cpu += op.duration
    return OverlapStats(makespan=makespan, compute=compute, mpi=mpi,
                        gpu_cpu=gpu_cpu, skew=skew)
