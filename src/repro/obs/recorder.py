"""Flight recorder: an always-on, bounded black box for the serving layer.

A long-running service cannot afford to trace everything all the time,
but when it crashes or breaches an SLO the first question is always
"what were the last thousand things it did?".  The
:class:`FlightRecorder` answers that the way an aircraft black box does:
a fixed-capacity ring buffer of structured events — event-loop pops,
schedule passes, queue/cache/fleet transitions, alert firings — each
stamped with both the *modeled* service clock (deterministic, replay-
comparable) and a wall clock (for correlating with the outside world).
Recording is O(1) per event and never touches service logic, so a run
with the recorder attached is bit-identical to one without
(tests/obs/test_recorder.py proves it on a 2x2 multigpu smoke run).

Dumping is JSONL, one event per line after a header line.  Two triggers:

* **tripped** automatically on incident kinds (crash / alert by
  default): the buffer is frozen to disk at the moment of the incident,
  so the *last* lines of the file cover it;
* **on demand** via :meth:`dump` (the CLI flushes an untripped recorder
  at the end of the run, giving clean runs a full-history artifact).

The modeled fields of a dump are deterministic: replaying the same
workload yields byte-identical dumps once wall stamps are stripped
(``wall=False``).
"""
from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = ["RecordedEvent", "FlightRecorder"]

#: event kinds that trip an auto-dump by default (the black-box moments)
DEFAULT_TRIP_KINDS = frozenset({"crash", "alert"})


@dataclass(frozen=True)
class RecordedEvent:
    """One ring-buffer entry."""

    seq: int              #: monotonically increasing sequence number
    kind: str             #: 'pop' | 'pass' | 'start' | 'crash' | 'alert' | ...
    t: float              #: modeled service seconds
    wall: float           #: wall perf_counter stamp (never compared)
    fields: dict[str, Any]

    def as_dict(self, *, wall: bool = True) -> dict[str, Any]:
        d: dict[str, Any] = {"seq": self.seq, "kind": self.kind,
                             "t": round(self.t, 9)}
        if wall:
            d["wall"] = self.wall
        d.update(self.fields)
        return d


class FlightRecorder:
    """Bounded ring buffer of service events with incident auto-dump."""

    def __init__(
        self,
        capacity: int = 4096,
        *,
        path: str | None = None,
        trip_kinds: "frozenset[str] | set[str]" = DEFAULT_TRIP_KINDS,
        name: str = "flight",
    ):
        if capacity < 1:
            raise ValueError("recorder capacity must be >= 1")
        self.capacity = capacity
        #: auto-dump target; None records without ever writing
        self.path = path
        self.trip_kinds = frozenset(trip_kinds)
        self.name = name
        self._ring: deque[RecordedEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.recorded = 0        #: lifetime events (ring may have dropped)
        self.trips = 0           #: auto-dumps fired
        self.last_trip: str | None = None

    def __len__(self) -> int:
        return len(self._ring)

    # --------------------------------------------------------- recording
    def record(self, kind: str, t: float, **fields: Any) -> RecordedEvent:
        """Append one event (O(1)); trips an auto-dump on incident
        kinds when a ``path`` is configured."""
        ev = RecordedEvent(seq=self._seq, kind=kind, t=float(t),
                           wall=time.perf_counter(), fields=fields)
        self._seq += 1
        self.recorded += 1
        self._ring.append(ev)
        if kind in self.trip_kinds:
            self.trip(reason=kind)
        return ev

    def events(self) -> "list[RecordedEvent]":
        """The buffered events, oldest first."""
        return list(self._ring)

    # ----------------------------------------------------------- dumping
    def _lines(self, *, wall: bool, reason: str | None) -> Iterator[str]:
        header: dict[str, Any] = {
            "type": "flight_recorder", "name": self.name,
            "capacity": self.capacity, "recorded": self.recorded,
            "buffered": len(self._ring), "dropped":
                self.recorded - len(self._ring),
        }
        if reason is not None:
            header["tripped_by"] = reason
        yield json.dumps(header, sort_keys=True)
        for ev in self._ring:
            yield json.dumps(ev.as_dict(wall=wall), sort_keys=True)

    def dump(self, path: str | None = None, *, wall: bool = True,
             reason: str | None = None) -> str:
        """Write the buffer as JSONL (header line + one line per event,
        oldest first) and return the path written."""
        target = path or self.path
        if target is None:
            raise ValueError("no dump path: pass one or configure "
                             "FlightRecorder(path=...)")
        with open(target, "w") as fh:
            for line in self._lines(wall=wall, reason=reason):
                fh.write(line + "\n")
        return target

    def trip(self, reason: str) -> str | None:
        """Incident: freeze the buffer to the configured path (no-op
        without one).  The dump is overwritten per trip, so the file on
        disk always covers the *latest* incident."""
        self.trips += 1
        self.last_trip = reason
        if self.path is None:
            return None
        return self.dump(self.path, reason=reason)

    def flush_if_untripped(self) -> str | None:
        """End-of-run flush: write the full history only when no
        incident froze the buffer already (keeping a tripped dump's
        last-events-cover-the-incident property intact)."""
        if self.path is None or self.trips:
            return None
        return self.dump(self.path, reason=None)

    def __repr__(self) -> str:
        return (f"FlightRecorder({len(self._ring)}/{self.capacity} "
                f"buffered, {self.recorded} recorded, {self.trips} trips)")


def load_flight_dump(path: str) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Read a recorder dump back: (header, events oldest-first)."""
    with open(path) as fh:
        lines = [json.loads(raw) for raw in fh if raw.strip()]
    if not lines or lines[0].get("type") != "flight_recorder":
        raise ValueError(f"{path}: not a flight-recorder dump")
    return lines[0], lines[1:]


__all__.append("load_flight_dump")
