"""EnsembleSpec: one declarative description of N perturbed members.

``EnsembleSpec(base, members=8, seed=42).expand()`` is pure: it returns
the member :class:`~repro.api.RunSpec` list without running anything,
and calling it twice — or on another machine — yields identical specs
(and therefore identical spec hashes).  Member 0 is the unperturbed
*control* by default; members 1..N-1 get the perturbation catalogue
applied in order, each drawing from its own hashed sub-seed
(:func:`~repro.ensemble.perturb.member_seed`).

Because every perturbation writes concrete values into the expanded
spec, any single member can be reproduced standalone by running its
spec through the ordinary :class:`~repro.api.Experiment` facade — no
ensemble machinery required (the fault-tolerance story depends on this:
a retried member recomputes exactly what it computed the first time).
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..api import WORKLOADS, RunSpec
from .perturb import Perturbation, default_perturbations

__all__ = ["EnsembleSpec"]


@dataclass
class EnsembleSpec:
    """Declarative recipe: base spec x members x perturbations."""

    base: RunSpec = field(default_factory=lambda: RunSpec(workload="vortex"))
    members: int = 8
    #: the ensemble seed every member sub-seed derives from
    seed: int = 0
    #: perturbations applied to each non-control member, in order; None
    #: selects the workload's default catalogue
    perturbations: "tuple[Perturbation, ...] | None" = None
    #: keep member 0 unperturbed (the deterministic control run)
    control: bool = True

    def __post_init__(self) -> None:
        if self.members < 1:
            raise ValueError("an ensemble needs members >= 1")
        if self.base.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.base.workload!r}")

    def catalogue(self) -> tuple[Perturbation, ...]:
        if self.perturbations is not None:
            return tuple(self.perturbations)
        return default_perturbations(self.base.workload)

    def expand(self) -> list[RunSpec]:
        """The member specs, index-ordered.  Pure and reproducible."""
        catalogue = self.catalogue()
        specs: list[RunSpec] = []
        for m in range(self.members):
            spec = replace(self.base,
                           workload_kwargs=dict(self.base.workload_kwargs))
            if not (self.control and m == 0):
                for pert in catalogue:
                    spec = pert.apply(spec, seed=self.seed, member=m)
            specs.append(spec)
        return specs

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.base.workload,
            "steps": self.base.steps,
            "members": self.members,
            "seed": self.seed,
            "control": self.control,
            "perturbations": [p.describe() for p in self.catalogue()],
        }
