"""The perturbation catalogue: how one control spec becomes N members.

Ensemble spread has to come from somewhere auditable.  Each
:class:`Perturbation` is a *named* transformation of a
:class:`~repro.api.RunSpec`, and each (ensemble seed, member index,
perturbation name) triple derives its own sub-seed by hashing — so the
randomness a perturbation consumes is independent of every other
perturbation and of the member count.  Adding a perturbation to the
catalogue, or growing the ensemble, never changes what an existing
member computes.

Crucially, :meth:`Perturbation.apply` writes *concrete values* into the
expanded spec (an integer ``seed``, jittered numbers in
``workload_kwargs``): the member spec is self-contained, and re-running
it standalone — on another machine, from its JSONL line — reproduces the
member bit for bit (tests/ensemble/test_spec.py).
"""
from __future__ import annotations

import dataclasses
import hashlib
import inspect
from dataclasses import dataclass

import numpy as np

from ..api import RunSpec, _workload_factories

__all__ = ["Perturbation", "ICNoise", "ParamJitter", "member_seed",
           "default_perturbations", "parse_perturbation"]


def member_seed(seed: int, member: int, name: str) -> int:
    """The sub-seed of one (ensemble, member, perturbation) triple:
    the first 4 bytes of sha256 over the triple, so every perturbation
    of every member draws from an independent, reproducible stream."""
    digest = hashlib.sha256(f"{seed}:{member}:{name}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class Perturbation:
    """One named way to perturb a member spec (abstract base)."""

    name: str

    def apply(self, spec: RunSpec, *, seed: int, member: int) -> RunSpec:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class ICNoise(Perturbation):
    """Seeded initial-condition noise: stamps the member's ``spec.seed``
    (the run facade threads it to the workload factory, which applies
    :func:`repro.workloads.apply_ic_noise`) and, when given, the noise
    amplitudes.  ``theta_noise``/``wind_noise`` of None leave the
    factory defaults (the shear-layer factory has its own noise knobs
    and takes only the seed)."""

    theta_noise: float | None = None
    wind_noise: float | None = None

    def apply(self, spec: RunSpec, *, seed: int, member: int) -> RunSpec:
        kwargs = dict(spec.workload_kwargs)
        if self.theta_noise is not None:
            kwargs["theta_noise"] = self.theta_noise
        if self.wind_noise is not None:
            kwargs["wind_noise"] = self.wind_noise
        return dataclasses.replace(
            spec, seed=member_seed(seed, member, self.name),
            workload_kwargs=kwargs)

    def describe(self) -> str:
        amps = []
        if self.theta_noise is not None:
            amps.append(f"theta {self.theta_noise} K")
        if self.wind_noise is not None:
            amps.append(f"wind {self.wind_noise} m/s")
        return f"{self.name}: seeded IC noise" + (
            f" ({', '.join(amps)})" if amps else "")


@dataclass(frozen=True)
class ParamJitter(Perturbation):
    """Multiplicative lognormal jitter of one workload-factory parameter:
    ``value = base * exp(sigma * N(0, 1))`` from the perturbation's own
    sub-seeded stream (positive parameters stay positive).  The base is
    the spec's explicit kwarg when present, else the factory default."""

    key: str = ""
    sigma: float = 0.1

    def apply(self, spec: RunSpec, *, seed: int, member: int) -> RunSpec:
        base = spec.workload_kwargs.get(self.key)
        if base is None:
            base = _factory_default(spec.workload, self.key)
        rng = np.random.default_rng(member_seed(seed, member, self.name))
        jittered = float(base) * float(np.exp(self.sigma
                                              * rng.standard_normal()))
        kwargs = dict(spec.workload_kwargs)
        kwargs[self.key] = jittered
        return dataclasses.replace(spec, workload_kwargs=kwargs)

    def describe(self) -> str:
        return f"{self.name}: lognormal jitter of '{self.key}' (sigma {self.sigma})"


def _factory_default(workload: str, key: str) -> float:
    """The default value of a factory keyword (jitter needs a base)."""
    factory = _workload_factories()[workload]
    params = inspect.signature(factory).parameters
    if key not in params or params[key].default is inspect.Parameter.empty:
        raise ValueError(
            f"workload {workload!r} has no jitterable parameter {key!r}")
    return float(params[key].default)


#: the default catalogue per workload: IC noise always, plus the one or
#: two physics parameters whose uncertainty dominates that case
_DEFAULT_CATALOGUE: dict[str, tuple[Perturbation, ...]] = {
    "vortex": (
        ICNoise("ic-noise", theta_noise=0.3, wind_noise=0.2),
        ParamJitter("jitter-vmax", key="vmax", sigma=0.10),
        ParamJitter("jitter-rmax", key="rmax", sigma=0.10),
    ),
    "warm-bubble": (
        ICNoise("ic-noise", theta_noise=0.3),
        ParamJitter("jitter-dtheta", key="bubble_dtheta", sigma=0.10),
    ),
    "mountain-wave": (
        ICNoise("ic-noise", theta_noise=0.3),
        ParamJitter("jitter-u0", key="u0", sigma=0.05),
    ),
    "real-case": (
        ICNoise("ic-noise", theta_noise=0.3),
        ParamJitter("jitter-vortex-amp", key="vortex_amp", sigma=0.10),
    ),
    # the shear layer's own seeded noise IS the workload; only reseed it
    "shear-layer": (ICNoise("ic-noise"),),
}


def default_perturbations(workload: str) -> tuple[Perturbation, ...]:
    """The default perturbation set of a workload (docs/ENSEMBLE.md
    lists the full catalogue)."""
    try:
        return _DEFAULT_CATALOGUE[workload]
    except KeyError:
        raise ValueError(f"no default perturbations for workload "
                         f"{workload!r}") from None


def parse_perturbation(text: str) -> Perturbation:
    """Parse one ``--perturb`` CLI grammar item:

    * ``ic`` or ``ic:0.5`` or ``ic:0.5,0.2`` — IC noise with optional
      theta [K] and wind [m/s] amplitudes;
    * ``KEY~SIGMA`` (e.g. ``vmax~0.15``) — lognormal parameter jitter.
    """
    text = text.strip()
    if text == "ic" or text.startswith("ic:"):
        theta = wind = None
        if ":" in text:
            parts = text.split(":", 1)[1].split(",")
            theta = float(parts[0])
            if len(parts) > 1:
                wind = float(parts[1])
        return ICNoise("ic-noise", theta_noise=theta, wind_noise=wind)
    if "~" in text:
        key, _, sigma = text.partition("~")
        if not key or not sigma:
            raise ValueError(f"bad jitter spec {text!r}: want KEY~SIGMA")
        return ParamJitter(f"jitter-{key}", key=key, sigma=float(sigma))
    raise ValueError(
        f"bad perturbation {text!r}: want 'ic[:THETA[,WIND]]' or 'KEY~SIGMA'")
