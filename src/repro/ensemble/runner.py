"""EnsembleRunner: member gangs through the forecast service.

Members are ordinary jobs: the :class:`~repro.ensemble.spec.EnsembleSpec`
expands into N self-contained member specs, each submitted (tagged with
its member index) to a :class:`~repro.serve.service.ForecastService` at
the same modeled instant — a gang arrival on the shared fleet, scheduled
by the existing :class:`~repro.serve.scheduler.GangScheduler` under
whatever policy and load the service is configured with.

Fault tolerance is the service's, applied per member: an injected crash
retries under the :class:`~repro.resilience.retry.RetryPolicy`; a member
that crashes past its retry budget is *evicted*, the ensemble shrinks,
and the product carries ``coverage = reduced / requested`` rather than
pretending nothing happened.  The reducer folds each member the moment
its terminal event fires (``on_job_done``) and then releases the
service's hold on the member state (``release_result``) — N member
states never coexist in memory.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..api import RunResult
from ..obs.trace import TraceSession
from ..serve.cache import ResultCache
from ..serve.fleet import GpuFleet
from ..serve.jobs import Job, JobState
from ..serve.service import ForecastService, ServiceReport
from ..serve.workload import Submission
from .reduce import EnsembleProduct, OnlineReducer, member_contribution
from .spec import EnsembleSpec

__all__ = ["EnsembleRunner", "EnsembleResult"]


@dataclass
class EnsembleResult:
    """The product plus the service-side story of producing it."""

    ensemble: dict[str, Any]
    product: EnsembleProduct
    report: ServiceReport
    #: member -> terminal job state value ("done", "evicted", ...)
    member_states: dict[int, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return self.product.coverage >= 1.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "ensemble": dict(self.ensemble),
            "product": self.product.as_dict(),
            "members": {str(m): s for m, s in
                        sorted(self.member_states.items())},
            "service": self.report.as_dict(),
        }

    def render(self) -> str:
        spec = self.ensemble
        lines = [
            f"ensemble — {spec['workload']} x {spec['members']} members "
            f"(seed {spec['seed']}, {spec['steps']} steps)",
            "  perturbations: " + "; ".join(spec["perturbations"]),
            "",
            self.product.render(),
            "",
            self.report.render(),
        ]
        return "\n".join(lines)


class EnsembleRunner:
    """Expand, submit as a gang, reduce online, report."""

    def __init__(
        self,
        ensemble: EnsembleSpec,
        *,
        fleet: "GpuFleet | int" = 4,
        policy: str = "fifo",
        faults: "str | None" = None,
        retry=None,
        cache: "ResultCache | None" = None,
        cache_capacity: int = 8,
        session: "TraceSession | None" = None,
        slo: "str | list | None" = None,
        execute: bool = True,
    ):
        self.ensemble = ensemble
        if not isinstance(fleet, GpuFleet):
            fleet = GpuFleet(int(fleet))
        self.session = session
        self.reducer = OnlineReducer(ensemble.members)
        self.service = ForecastService(
            fleet, policy=policy, faults=faults, retry=retry,
            cache=cache, cache_capacity=cache_capacity,
            session=session, slo=slo, execute=execute,
            on_job_done=self._on_job_done)
        self._member_states: dict[int, str] = {}

    # ------------------------------------------------------- incremental
    def _on_job_done(self, job: Job) -> None:
        """A member reached a terminal state on the service clock: fold
        it (or file the hole) and release the held state."""
        member = job.member
        if member is None:
            return
        self._member_states[member] = job.state.value
        if (job.state in (JobState.DONE, JobState.CACHED)
                and isinstance(job.result, RunResult)):
            self.reducer.fold(member,
                              member_contribution(job.result, member))
            self.service.release_result(job)
            self._instant(f"fold member{member}",
                          reduced=self.reducer.n_reduced)
        else:
            reason = job.state.value if job.error is None else job.error
            self.reducer.skip(member, reason)
            self._instant(f"skip member{member}", reason=reason)

    def _instant(self, name: str, **args) -> None:
        if self.session is not None:
            self.session.record_instant(
                name, self.service._clock, pid="ensemble", tid="members",
                cat="ensemble", args=args or None)

    # --------------------------------------------------------------- run
    def submissions(self, *, t: float = 0.0) -> list[Submission]:
        """The member gang: every expanded spec arrives at ``t``."""
        return [Submission(t=t, spec=spec, member=m)
                for m, spec in enumerate(self.ensemble.expand())]

    def run(self) -> EnsembleResult:
        report = self.service.run(self.submissions())
        product = self.reducer.finalize()
        if self.session is not None:
            m = self.session.metrics
            m.counter("ensemble.members.requested").inc(
                product.members_requested)
            m.counter("ensemble.members.reduced").inc(
                product.members_reduced)
            m.counter("ensemble.members.skipped").inc(len(product.skipped))
            m.gauge("ensemble.coverage").set(product.coverage)
            for name, st in product.scalar_stats.items():
                m.gauge(f"ensemble.spread.{name}").set(
                    st["p90"] - st["p10"])
        return EnsembleResult(
            ensemble=self.ensemble.as_dict(),
            product=product,
            report=report,
            member_states=dict(sorted(self._member_states.items())),
        )
