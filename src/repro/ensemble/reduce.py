"""Online probabilistic products: fold members as they complete.

An ensemble's value is its distribution — mean, spread, percentiles of
fields and point products — but holding N member states to compute it
batch-style is exactly what a production service cannot afford.  The
:class:`OnlineReducer` folds each completed member into Welford
mean/variance accumulators (two arrays per reduced field, regardless of
N) and releases the member state immediately afterwards.

**Bitwise order invariance.**  Floating-point accumulation is order-
dependent, yet members complete in whatever order the fleet schedules
them — and the product must not depend on that.  The reducer therefore
folds strictly in *member-index order*: an out-of-order completion
parks in a reorder buffer until its predecessors have folded (a skipped
member — evicted, failed, shed — files a hole so the buffer can drain
past it).  Any completion order then performs the identical sequence of
floating-point operations, and :meth:`OnlineReducer.batch` — the
offline reference that sees all members at once — is the same fold, so
online == offline bitwise (tests/ensemble/test_reducer.py).

Scalar percentiles go through :func:`repro.obs.metrics.percentile`, the
repo's single percentile implementation, so ensemble p10/p50/p90 are
comparable with every other distribution the repo reports.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..api import RunResult
from ..obs.metrics import percentile

__all__ = ["Contribution", "member_contribution", "OnlineReducer",
           "EnsembleProduct"]

#: fields reduced into ensemble mean/spread (interior views; the core
#: prognostic set every workload carries)
REDUCED_FIELDS = ("rho", "rhotheta", "rhou", "rhov", "rhow")


@dataclass
class Contribution:
    """What one completed member contributes to the product — small by
    construction: interior field copies (folded then dropped), final
    scalars, and the point-product track series when the workload
    records one."""

    member: int
    fields: dict[str, np.ndarray]
    scalars: dict[str, float]
    series: "dict[str, list] | None" = None


def member_contribution(result: RunResult, member: int) -> Contribution:
    """Extract the reducible payload of one member's RunResult."""
    state = result.state
    g = state.grid
    slices = {"rhou": g.isl_u, "rhov": g.isl_v}
    fields = {
        name: np.asarray(state.get(name)[slices.get(name, g.isl)],
                         dtype=np.float64).copy()
        for name in REDUCED_FIELDS
    }
    d = result.diagnostics
    scalars = {
        "max_wind": float(d.max_wind),
        "max_w": float(d.max_w),
        "total_mass": float(d.total_mass),
        "min_theta": float(d.min_theta),
        "max_theta": float(d.max_theta),
    }
    series = result.series
    if series:
        # the track's own point products (vortex: center + intensity)
        for key in ("max_wind", "min_p_pert", "cx", "cy"):
            if series.get(key):
                scalars[f"track.{key}"] = float(series[key][-1])
        for key, values in series.items():
            if key != "t":
                fields[f"track.{key}"] = np.asarray(values,
                                                    dtype=np.float64)
    return Contribution(member=member, fields=fields, scalars=scalars,
                        series=series)


class OnlineReducer:
    """Welford mean/variance over members, folded in index order.

    Feed completions with :meth:`fold` (any order — the reorder buffer
    serializes them) and terminal failures with :meth:`skip`; then
    :meth:`finalize`.  ``coverage = reduced / requested`` is the
    product's explicit quality stamp.
    """

    def __init__(self, n_requested: int):
        if n_requested < 1:
            raise ValueError("n_requested must be >= 1")
        self.n_requested = n_requested
        self.n_reduced = 0
        self.skipped: dict[int, str] = {}
        self._mean: dict[str, np.ndarray] = {}
        self._m2: dict[str, np.ndarray] = {}
        self._scalars: dict[str, list[float]] = {}
        self._tracks: dict[int, dict[str, list]] = {}
        #: reorder buffer: member -> Contribution (or a skip reason str)
        self._pending: dict[int, "Contribution | str"] = {}
        self._next = 0
        self._seen: set[int] = set()

    # -------------------------------------------------------------- feed
    def fold(self, member: int, contribution: Contribution) -> None:
        """Account one completed member (idempotent per member; folds
        happen in index order regardless of call order)."""
        self._admit(member, contribution)

    def skip(self, member: int, reason: str = "evicted") -> None:
        """Account one member that will never complete — the ensemble
        shrinks and coverage drops, but the product still converges."""
        self._admit(member, reason)

    def _admit(self, member: int, payload: "Contribution | str") -> None:
        if not 0 <= member < self.n_requested:
            raise ValueError(f"member {member} outside ensemble of "
                             f"{self.n_requested}")
        if member in self._seen:
            return
        self._seen.add(member)
        self._pending[member] = payload
        while self._next in self._pending:
            item = self._pending.pop(self._next)
            if isinstance(item, str):
                self.skipped[self._next] = item
            else:
                self._fold_now(item)
            self._next += 1

    def _fold_now(self, c: Contribution) -> None:
        self.n_reduced += 1
        n = self.n_reduced
        for name, x in c.fields.items():
            x = np.asarray(x, dtype=np.float64)
            if name not in self._mean:
                self._mean[name] = np.zeros_like(x)
                self._m2[name] = np.zeros_like(x)
            mean, m2 = self._mean[name], self._m2[name]
            if mean.shape != x.shape:
                # a jittered track can differ in length only if the spec
                # changed steps; truncate to the common prefix
                k = min(mean.shape[0], x.shape[0])
                mean, m2, x = mean[:k], m2[:k], x[:k]
                self._mean[name], self._m2[name] = mean, m2
            delta = x - mean
            mean += delta / n
            m2 += delta * (x - mean)
        for name, v in c.scalars.items():
            self._scalars.setdefault(name, []).append(float(v))
        if c.series:
            self._tracks[c.member] = c.series

    # ----------------------------------------------------------- product
    def finalize(self) -> "EnsembleProduct":
        """The probabilistic product of everything folded so far."""
        field_stats: dict[str, dict[str, np.ndarray]] = {}
        for name, mean in self._mean.items():
            if self.n_reduced > 1:
                spread = np.sqrt(self._m2[name] / (self.n_reduced - 1))
            else:
                spread = np.zeros_like(mean)
            field_stats[name] = {"mean": mean.copy(), "spread": spread}
        scalar_stats: dict[str, dict[str, Any]] = {}
        for name, values in self._scalars.items():
            scalar_stats[name] = {
                "mean": sum(values) / len(values),
                "min": min(values),
                "max": max(values),
                "p10": percentile(values, 10),
                "p50": percentile(values, 50),
                "p90": percentile(values, 90),
                "values": list(values),
            }
        return EnsembleProduct(
            members_requested=self.n_requested,
            members_reduced=self.n_reduced,
            skipped=dict(self.skipped),
            field_stats=field_stats,
            scalar_stats=scalar_stats,
            tracks={m: dict(s) for m, s in sorted(self._tracks.items())},
        )

    # ---------------------------------------------------------- offline
    @classmethod
    def batch(cls, contributions: list[Contribution], n_requested: int,
              skipped: "dict[int, str] | None" = None) -> "EnsembleProduct":
        """The offline reference reduction: fold every contribution in
        member-index order.  Bitwise identical to the online path by
        construction (same fold sequence)."""
        red = cls(n_requested)
        for c in sorted(contributions, key=lambda c: c.member):
            red.fold(c.member, c)
        for m, reason in sorted((skipped or {}).items()):
            red.skip(m, reason)
        return red.finalize()


@dataclass
class EnsembleProduct:
    """Mean / spread / percentiles plus the coverage stamp."""

    members_requested: int
    members_reduced: int
    skipped: dict[int, str] = field(default_factory=dict)
    #: field -> {"mean": ndarray, "spread": ndarray} (sample std)
    field_stats: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    #: scalar -> {"mean","min","max","p10","p50","p90","values"}
    scalar_stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: per-member track series of the reduced members (point products)
    tracks: dict[int, dict[str, list]] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Reduced / requested — an ensemble that lost members says so
        on the product instead of silently narrowing its spread."""
        return self.members_reduced / self.members_requested

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary: field arrays reduce to deterministic
        scalar summaries, scalars and coverage ride whole."""
        fields = {}
        for name, st in self.field_stats.items():
            fields[name] = {
                "mean_rms": float(np.sqrt(np.mean(st["mean"] ** 2))),
                "spread_rms": float(np.sqrt(np.mean(st["spread"] ** 2))),
                "spread_max": float(st["spread"].max()),
            }
        return {
            "members_requested": self.members_requested,
            "members_reduced": self.members_reduced,
            "coverage": self.coverage,
            "skipped": {str(m): r for m, r in sorted(self.skipped.items())},
            "fields": fields,
            "scalars": {k: {kk: vv for kk, vv in v.items()}
                        for k, v in self.scalar_stats.items()},
        }

    def render(self) -> str:
        lines = [
            f"ensemble product — {self.members_reduced}/"
            f"{self.members_requested} members reduced "
            f"(coverage {self.coverage:.3f})",
        ]
        for m, reason in sorted(self.skipped.items()):
            lines.append(f"  member {m}: {reason}")
        if self.field_stats:
            lines.append(f"  {'field':<16} {'mean rms':>12} "
                         f"{'spread rms':>12} {'spread max':>12}")
            for name, st in self.field_stats.items():
                lines.append(
                    f"  {name:<16} "
                    f"{float(np.sqrt(np.mean(st['mean'] ** 2))):>12.5g} "
                    f"{float(np.sqrt(np.mean(st['spread'] ** 2))):>12.5g} "
                    f"{float(st['spread'].max()):>12.5g}")
        if self.scalar_stats:
            lines.append(f"  {'scalar':<16} {'mean':>10} {'p10':>10} "
                         f"{'p50':>10} {'p90':>10}")
            for name, st in self.scalar_stats.items():
                lines.append(f"  {name:<16} {st['mean']:>10.4g} "
                             f"{st['p10']:>10.4g} {st['p50']:>10.4g} "
                             f"{st['p90']:>10.4g}")
        return "\n".join(lines)
