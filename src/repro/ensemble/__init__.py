"""repro.ensemble — perturbed-member forecasting with online products.

Operational NWP runs ensembles: N perturbed copies of one forecast whose
spread *is* the uncertainty estimate.  This subsystem builds that on the
repo's existing layers rather than beside them:

* :class:`EnsembleSpec` — a declarative recipe (base
  :class:`~repro.api.RunSpec` x members x named perturbations) that
  :meth:`~repro.ensemble.spec.EnsembleSpec.expand`\\ s into N
  self-contained member specs; every perturbation draws from a hashed
  sub-seed of (ensemble seed, member, perturbation name), so any member
  reproduces standalone, bitwise (:mod:`repro.ensemble.spec`,
  :mod:`repro.ensemble.perturb`);
* :class:`EnsembleRunner` — submits the members as a same-instant gang
  through the :class:`~repro.serve.service.ForecastService` (gang
  scheduling, result cache, retry-or-evict fault tolerance all apply per
  member) and folds each one the moment it completes
  (:mod:`repro.ensemble.runner`);
* :class:`OnlineReducer` — Welford mean/variance plus percentile point
  products, folded strictly in member-index order behind a reorder
  buffer, so the product is bitwise independent of completion order and
  identical to the offline batch reduction; a lost member shrinks the
  ensemble and stamps ``coverage < 1`` on the
  :class:`EnsembleProduct` instead of failing the forecast
  (:mod:`repro.ensemble.reduce`).

``repro ensemble`` is the CLI face; see docs/ENSEMBLE.md.
"""
from .perturb import (
    ICNoise,
    ParamJitter,
    Perturbation,
    default_perturbations,
    member_seed,
    parse_perturbation,
)
from .reduce import (
    Contribution,
    EnsembleProduct,
    OnlineReducer,
    member_contribution,
)
from .runner import EnsembleResult, EnsembleRunner
from .spec import EnsembleSpec

__all__ = [
    "EnsembleSpec",
    "Perturbation", "ICNoise", "ParamJitter",
    "member_seed", "default_perturbations", "parse_perturbation",
    "OnlineReducer", "Contribution", "EnsembleProduct",
    "member_contribution",
    "EnsembleRunner", "EnsembleResult",
]
