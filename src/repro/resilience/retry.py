"""Retry policy and typed transport errors for halo exchanges.

A real MPI stack retransmits lost frames below the application; our
in-process transport surfaces failures as typed exceptions instead, and
:class:`~repro.dist.halo.HaloExchanger` recovers from them under a
:class:`RetryPolicy` — bounded retries with exponential backoff, plus a
delay timeout deciding when a late message counts as lost.

All backoff/wait durations are *modeled* seconds: they are accumulated in
:class:`RetryStats` and charged to the virtual device timelines by
:meth:`repro.dist.multigpu.MultiGpuAsuca._charge_devices`, so overlap and
weak-scaling numbers reflect the recovery cost rather than the (tiny)
wall-clock cost of an in-process retry loop.

Stdlib-only: :mod:`repro.dist.mpi_sim` imports the error types from here,
so this module must not import anything from ``repro.dist``.
"""
from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "RetryPolicy",
    "RetryStats",
    "HaloMessageError",
    "MessageLostError",
    "MessageCorruptError",
    "MessageDelayedError",
    "RetryExhaustedError",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    Attributes
    ----------
    max_retries
        attempts *after* the first before :class:`RetryExhaustedError`.
    backoff_base, backoff_factor, backoff_max
        retry ``k`` (0-based) backs off ``min(base * factor**k, max)``
        modeled seconds before the retransmission.
    timeout
        a message delayed by more than this counts as a timeout (one
        retry is charged); shorter delays are simply waited out.
    """

    max_retries: int = 4
    backoff_base: float = 5e-4
    backoff_factor: float = 2.0
    backoff_max: float = 0.05
    timeout: float = 0.02

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0 or self.timeout < 0:
            raise ValueError("backoff/timeout durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    @property
    def max_attempts(self) -> int:
        """Total execution attempts allowed (the first try + retries).
        :class:`repro.serve.service.ForecastService` evicts a job once
        its crash count reaches this."""
        return self.max_retries + 1

    def allows(self, failures: int) -> bool:
        """May the work be retried after ``failures`` failed attempts?"""
        return failures <= self.max_retries

    def backoff(self, attempt: int) -> float:
        """Modeled backoff before retry ``attempt`` (0-based)."""
        return min(self.backoff_base * self.backoff_factor ** attempt,
                   self.backoff_max)

    def schedule(self) -> list[float]:
        """The full backoff schedule, one entry per allowed retry."""
        return [self.backoff(k) for k in range(self.max_retries)]


@dataclass
class RetryStats:
    """What recovery cost a run: accumulated by the halo exchanger."""

    retries: int = 0          #: failed attempts that were retried
    retransmits: int = 0      #: messages re-posted by the sender
    timeouts: int = 0         #: delayed messages that exceeded the timeout
    waits: int = 0            #: delayed messages waited out (no retry)
    backoff_s: float = 0.0    #: modeled backoff + timeout seconds charged
    wait_s: float = 0.0       #: modeled in-timeout wait seconds charged
    by_kind: dict[str, int] = field(default_factory=dict)

    def count(self, kind: str) -> None:
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1

    @property
    def recovery_s(self) -> float:
        """Total modeled recovery time charged to the timeline."""
        return self.backoff_s + self.wait_s

    def report(self) -> str:
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.by_kind.items()))
        return (f"{self.retries} retries ({self.retransmits} retransmits, "
                f"{self.timeouts} timeouts, {self.waits} waits), "
                f"{self.recovery_s * 1e3:.2f} ms modeled recovery"
                + (f" [{kinds}]" if kinds else ""))


class HaloMessageError(RuntimeError):
    """Base of all recoverable transport failures of one halo message."""

    def __init__(self, msg: str, *, src: int, dst: int, tag: object):
        super().__init__(msg)
        self.src = src
        self.dst = dst
        self.tag = tag


class MessageLostError(HaloMessageError):
    """The message was dropped in flight; the sender must retransmit."""


class MessageCorruptError(HaloMessageError):
    """Payload checksum mismatch; the frame was discarded on receipt and
    the sender must retransmit."""


class MessageDelayedError(HaloMessageError):
    """The message is late by ``delay`` modeled seconds; it is still in
    the mailbox and a subsequent collect will return it."""

    def __init__(self, msg: str, *, src: int, dst: int, tag: object,
                 delay: float):
        super().__init__(msg, src=src, dst=dst, tag=tag)
        self.delay = delay


class RetryExhaustedError(RuntimeError):
    """A halo message could not be delivered within ``max_retries``."""

    def __init__(self, msg: str, *, attempts: int,
                 last_error: HaloMessageError | None = None):
        super().__init__(msg)
        self.attempts = attempts
        self.last_error = last_error
