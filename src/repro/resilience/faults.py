"""Fault plans and the runtime injector.

A :class:`FaultPlan` is a *schedule*: a list of :class:`FaultEvent`
entries saying what breaks, at which long step, where, and how many
times.  Plans are data — buildable by hand, parseable from a compact CLI
spec (``drop@1,corrupt@2:0>1,crash@3:r2``), or drawn from a seeded RNG
(:meth:`FaultPlan.random`), which makes every chaos run reproducible
(asserted by tests/resilience/test_faults.py).

A :class:`FaultInjector` consumes a plan at runtime.  It is plugged into

* :class:`~repro.dist.mpi_sim.SimComm` — message faults (drop / corrupt
  / delay) fire on :meth:`~repro.dist.mpi_sim.SimComm.post`;
* :class:`~repro.gpu.device.GPUDevice` — transient PCIe copy failures
  fire on H2D/D2H :meth:`~repro.gpu.device.GPUDevice.schedule`;
* :class:`~repro.dist.multigpu.MultiGpuAsuca` / the
  :class:`~repro.api.Experiment` step loop — rank crashes raise
  :class:`RankCrash`, recovered by checkpoint-restart.

Each event carries a ``count``; every firing consumes one, so a retried
message eventually gets through (unless the plan outlasts the
:class:`~repro.resilience.retry.RetryPolicy`, which is exactly how the
retry-exhaustion path is tested).
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultInjector",
           "RankCrash"]


class FaultKind(str, enum.Enum):
    """What breaks."""

    DROP = "drop"          #: halo message lost in flight
    CORRUPT = "corrupt"    #: halo message delivered with flipped bytes
    DELAY = "delay"        #: halo message arrives ``magnitude`` s late
    PCIE = "pcie"          #: transient PCIe copy failure (H2D/D2H redone)
    CRASH = "crash"        #: rank dies at the top of the step


#: message-transport kinds (fire in SimComm.post)
_MESSAGE_KINDS = (FaultKind.DROP, FaultKind.CORRUPT, FaultKind.DELAY)

#: default lateness of a DELAY event when magnitude is not given [s]
_DEFAULT_DELAY = 5e-3


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``step`` is the 0-based long-step index at which the event arms.
    ``src``/``dst`` filter message faults by rank pair (None = any);
    ``rank`` selects the victim of PCIE and CRASH events (None = rank 0
    for CRASH, any device for PCIE).  ``count`` is how many firings the
    event is good for; ``magnitude`` is the DELAY lateness in seconds.
    """

    kind: FaultKind
    step: int
    src: int | None = None
    dst: int | None = None
    rank: int | None = None
    count: int = 1
    magnitude: float = 0.0

    def __post_init__(self):
        if self.step < 0:
            raise ValueError("fault step must be >= 0")
        if self.count < 1:
            raise ValueError("fault count must be >= 1")


@dataclass
class FaultPlan:
    """A deterministic schedule of faults."""

    events: list[FaultEvent] = field(default_factory=list)
    name: str = "custom"
    seed: int | None = None

    # ------------------------------------------------------- constructors
    @classmethod
    def none(cls) -> "FaultPlan":
        return cls(events=[], name="none")

    @classmethod
    def demo(cls) -> "FaultPlan":
        """Small fixed schedule exercising every fault kind except CRASH
        within the first five steps (the CI smoke test); the crash rides
        at step 3 so checkpoint/restart (or restart-from-initial) runs."""
        return cls(
            events=[
                FaultEvent(FaultKind.DROP, step=1),
                FaultEvent(FaultKind.CORRUPT, step=2),
                FaultEvent(FaultKind.DELAY, step=2, magnitude=_DEFAULT_DELAY),
                FaultEvent(FaultKind.PCIE, step=2),
                FaultEvent(FaultKind.CRASH, step=3, rank=0),
            ],
            name="demo",
        )

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        n_steps: int,
        n_ranks: int = 1,
        p_drop: float = 0.05,
        p_corrupt: float = 0.02,
        p_delay: float = 0.05,
        p_pcie: float = 0.02,
        crash_steps: tuple[int, ...] = (),
    ) -> "FaultPlan":
        """Seeded random schedule: per step, each message-fault kind
        fires with its probability against a random rank pair.  The same
        seed always yields the same plan (tested)."""
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        kinds = ((FaultKind.DROP, p_drop), (FaultKind.CORRUPT, p_corrupt),
                 (FaultKind.DELAY, p_delay), (FaultKind.PCIE, p_pcie))
        for step in range(n_steps):
            for kind, p in kinds:
                if rng.random() >= p:
                    continue
                if kind is FaultKind.PCIE:
                    events.append(FaultEvent(
                        kind, step, rank=int(rng.integers(n_ranks))))
                else:
                    src = int(rng.integers(n_ranks))
                    events.append(FaultEvent(
                        kind, step, src=src,
                        magnitude=(_DEFAULT_DELAY * float(rng.random())
                                   if kind is FaultKind.DELAY else 0.0)))
        for step in crash_steps:
            events.append(FaultEvent(FaultKind.CRASH, step,
                                     rank=int(rng.integers(n_ranks))))
        return cls(events=events, name=f"random:{seed}", seed=seed)

    @classmethod
    def parse(cls, spec: "str | FaultPlan | None") -> "FaultPlan":
        """Parse a CLI fault spec.

        ``None``/"none" -> empty plan; "demo" -> :meth:`demo`;
        "random:SEED" -> :meth:`random` (50 steps, 4 ranks); otherwise a
        comma list of ``kind@step`` items with optional qualifiers:
        ``drop@1`` ``corrupt@2:0>1`` (src 0 -> dst 1) ``crash@3:r2``
        (rank 2) ``delay@4:m0.01`` (10 ms late) ``drop@5:x3`` (count 3).
        """
        if spec is None:
            return cls.none()
        if isinstance(spec, FaultPlan):
            return spec
        spec = spec.strip()
        if spec in ("", "none"):
            return cls.none()
        if spec == "demo":
            return cls.demo()
        if spec.startswith("random:"):
            return cls.random(seed=int(spec.split(":", 1)[1]),
                              n_steps=50, n_ranks=4)
        events = []
        for item in spec.split(","):
            head, *quals = item.strip().split(":")
            kind_s, _, step_s = head.partition("@")
            ev = FaultEvent(FaultKind(kind_s), int(step_s))
            for q in quals:
                if q.startswith("r"):
                    ev = replace(ev, rank=int(q[1:]))
                elif q.startswith("m"):
                    ev = replace(ev, magnitude=float(q[1:]))
                elif q.startswith("x"):
                    ev = replace(ev, count=int(q[1:]))
                elif ">" in q:
                    s, d = q.split(">")
                    ev = replace(ev, src=int(s) if s else None,
                                 dst=int(d) if d else None)
                else:
                    raise ValueError(f"bad fault qualifier {q!r} in {item!r}")
            events.append(ev)
        return cls(events=events, name=spec)

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.events)

    def max_step(self) -> int:
        return max((ev.step for ev in self.events), default=-1)


class RankCrash(RuntimeError):
    """Raised when the fault plan kills a rank; recovered (if at all) by
    checkpoint-restart in :class:`repro.api.Experiment`."""

    def __init__(self, *, rank: int, step: int):
        super().__init__(f"rank {rank} crashed at step {step}")
        self.rank = rank
        self.step = step


class FaultInjector:
    """Runtime consumer of a :class:`FaultPlan`.

    The owner of the step loop calls :meth:`begin_step` once per long
    step; the instrumented layers then ask :meth:`on_message`,
    :meth:`on_pcie` and :meth:`crash_rank` whether a scheduled event
    matches.  Every match consumes one ``count`` of its event, and is
    appended to :attr:`fired` (a ``(step, kind, detail)`` log)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        #: live [event, remaining-count] pairs, in plan order
        self._live: list[list] = [[ev, ev.count] for ev in plan.events]
        self.step = -1                  #: current long step (-1 = setup)
        self.fired: list[tuple[int, FaultKind, str]] = []
        self.counts: dict[str, int] = {}

    # ---------------------------------------------------------- stepping
    def begin_step(self, step: int) -> None:
        self.step = step

    # ---------------------------------------------------------- matching
    def _take(self, match) -> FaultEvent | None:
        for entry in self._live:
            ev, remaining = entry
            if remaining <= 0 or not match(ev):
                continue
            entry[1] -= 1
            return ev
        return None

    def _record(self, ev: FaultEvent, detail: str) -> None:
        self.fired.append((self.step, ev.kind, detail))
        self.counts[ev.kind.value] = self.counts.get(ev.kind.value, 0) + 1

    def on_message(self, src: int, dst: int) -> FaultEvent | None:
        """Message fault matching the current step and rank pair, if any
        (consumed); called by ``SimComm.post``."""
        ev = self._take(lambda e: e.kind in _MESSAGE_KINDS
                        and e.step == self.step
                        and (e.src is None or e.src == src)
                        and (e.dst is None or e.dst == dst))
        if ev is not None:
            self._record(ev, f"{src}->{dst}")
        return ev

    def on_pcie(self, label: str) -> bool:
        """Transient PCIe copy failure for the device called ``label``
        (e.g. ``rank3`` / ``gpu0``) at the current step?"""
        rank = _label_rank(label)
        ev = self._take(lambda e: e.kind is FaultKind.PCIE
                        and e.step == self.step
                        and (e.rank is None or e.rank == rank))
        if ev is not None:
            self._record(ev, label)
        return ev is not None

    def crash_rank(self, step: int) -> int | None:
        """Rank scheduled to die at ``step``, or None (consumed: the
        resumed run passes the same step cleanly)."""
        ev = self._take(lambda e: e.kind is FaultKind.CRASH
                        and e.step == step)
        if ev is None:
            return None
        rank = ev.rank if ev.rank is not None else 0
        self._record(ev, f"rank{rank}")
        return rank

    # --------------------------------------------------------- reporting
    def pending(self) -> int:
        """Scheduled firings not yet consumed."""
        return sum(max(0, remaining) for _, remaining in self._live)

    def report(self) -> str:
        if not self.fired:
            return "no faults fired"
        parts = ", ".join(f"{k}={n}" for k, n in sorted(self.counts.items()))
        return f"{len(self.fired)} faults fired ({parts})"


def _label_rank(label: str) -> int:
    """Best-effort rank of a device label ('rank3' -> 3, 'gpu0' -> 0)."""
    digits = "".join(ch for ch in label if ch.isdigit())
    return int(digits) if digits else 0
