"""Resilience layer: fault injection, retry/backoff, checkpoint-restart.

At the paper's production scale (528 GPUs advancing in lockstep for
thousands of steps, Sec. V / Table I) a single dropped halo message or a
dead rank stalls the whole weak-scaling run.  This subpackage gives the
simulated cluster the machinery a production run needs:

* :mod:`repro.resilience.faults` — :class:`FaultPlan`, seedable schedules
  of dropped/corrupted/delayed halo messages, transient PCIe copy
  failures, and rank crashes at chosen steps, consumed at runtime by a
  :class:`FaultInjector` plugged into :class:`~repro.dist.mpi_sim.SimComm`
  and :class:`~repro.gpu.device.GPUDevice`;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded retries
  with exponential backoff and a delay timeout), the typed transport
  errors, and the :class:`RetryStats` the halo exchanger accumulates;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointManager`,
  atomic on-disk snapshots of full single- or multi-rank model state that
  restore *bit-identical* continuations.

The unified run facade :class:`repro.api.Experiment` drives all three:
``RunSpec(faults=..., checkpoint_every=...)`` yields a run that survives
injected failures with a reported recovery overhead instead of silently
diverging or crashing.
"""
from .checkpoint import Checkpoint, CheckpointManager
from .faults import FaultEvent, FaultInjector, FaultKind, FaultPlan, RankCrash
from .retry import (
    HaloMessageError,
    MessageCorruptError,
    MessageDelayedError,
    MessageLostError,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
)

__all__ = [
    "Checkpoint", "CheckpointManager",
    "FaultEvent", "FaultInjector", "FaultKind", "FaultPlan", "RankCrash",
    "HaloMessageError", "MessageCorruptError", "MessageDelayedError",
    "MessageLostError", "RetryExhaustedError", "RetryPolicy", "RetryStats",
]
