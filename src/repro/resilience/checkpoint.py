"""Checkpoint/restart: atomic on-disk snapshots of full run state.

A checkpoint stores, per rank, every prognostic array *including halos*
(so no halo reconstruction is needed on restore — the continuation is
bit-identical by construction), plus the step counter, model time,
species list, accumulated precipitation, and an optional NumPy RNG
state.  Multi-rank runs store all ranks in one archive; a single-domain
run is the one-rank special case.

Writes are atomic: the archive is written to a ``*.tmp`` sibling, fsynced
and ``os.replace``d into place, and only then is the ``latest`` marker
(itself replaced atomically) updated — a kill at any instant leaves
either the previous consistent checkpoint set or the new one, never a
torn file (tests/resilience/test_checkpoint.py).

Checkpoints are taken at long-step boundaries only, where the RK3/HE-VI
integrator holds no transient phase state; the manifest records this as
``phase = "long_step_boundary"``.
"""
from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field

import numpy as np

from ..core.grid import Grid
from ..core.state import State
from ..obs.trace import active_session, span

__all__ = ["Checkpoint", "CheckpointManager"]

_FORMAT_VERSION = 1


@dataclass
class Checkpoint:
    """One restored checkpoint: per-rank states plus its bookkeeping."""

    step: int
    time: float
    states: list[State]
    path: pathlib.Path
    meta: dict = field(default_factory=dict)
    rng_state: dict | None = None


class CheckpointManager:
    """Writes and restores run checkpoints under one directory.

    Parameters
    ----------
    directory
        where ``ckpt-STEP.npz`` archives and the ``latest`` marker live.
    every
        checkpoint cadence in long steps (0 disables :meth:`due`).
    keep
        how many archives to retain; older ones are pruned after each
        successful write (the marker is updated first, so pruning can
        never remove the newest consistent checkpoint).
    """

    def __init__(self, directory: str | os.PathLike, *, every: int = 0,
                 keep: int = 2):
        if every < 0:
            raise ValueError("checkpoint cadence must be >= 0")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = pathlib.Path(directory)
        self.every = every
        self.keep = keep
        self.writes = 0
        self.restores = 0

    # -------------------------------------------------------------- paths
    def path_for(self, step: int) -> pathlib.Path:
        return self.directory / f"ckpt-{step:08d}.npz"

    @property
    def _marker(self) -> pathlib.Path:
        return self.directory / "latest"

    def due(self, step: int) -> bool:
        """Is a checkpoint owed after completing long step ``step``?"""
        return self.every > 0 and step > 0 and step % self.every == 0

    # -------------------------------------------------------------- write
    def save(self, step: int, states: "State | list[State]", *,
             rng: np.random.Generator | None = None,
             meta: dict | None = None) -> pathlib.Path:
        """Atomically write one checkpoint; returns its path."""
        if isinstance(states, State):
            states = [states]
        if not states:
            raise ValueError("nothing to checkpoint")
        with span("checkpoint_write", cat="resilience", step=step):
            path = self._write(step, states, rng=rng, meta=meta or {})
        self.writes += 1
        sess = active_session()
        if sess is not None:
            sess.metrics.counter("checkpoint.writes").inc()
            sess.metrics.counter("checkpoint.bytes").inc(
                path.stat().st_size)
        self._prune()
        return path

    def _write(self, step: int, states: list[State], *, rng, meta) -> pathlib.Path:
        manifest = {
            "format_version": _FORMAT_VERSION,
            "step": step,
            "time": states[0].time,
            "n_ranks": len(states),
            "phase": "long_step_boundary",
            **meta,
        }
        if rng is not None:
            manifest["rng_state"] = rng.bit_generator.state
        payload: dict[str, np.ndarray] = {
            "manifest": np.frombuffer(
                json.dumps(manifest).encode(), dtype=np.uint8),
            "species": np.array(sorted(states[0].q), dtype="U8"),
        }
        for r, st in enumerate(states):
            for name in st.prognostic_names():
                payload[f"r{r}/{name}"] = st.get(name)
            if st.precip_accum is not None:
                payload[f"r{r}/precip_accum"] = st.precip_accum

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(step)
        tmp = path.with_suffix(".npz.tmp")
        with open(tmp, "wb") as f:
            np.savez_compressed(f, **payload)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

        mtmp = self._marker.with_suffix(".tmp")
        mtmp.write_text(f"{step}\n")
        os.replace(mtmp, self._marker)
        return path

    def _prune(self) -> None:
        archives = sorted(self.directory.glob("ckpt-*.npz"))
        for old in archives[: max(0, len(archives) - self.keep)]:
            old.unlink(missing_ok=True)

    # --------------------------------------------------------------- read
    def latest_step(self) -> int | None:
        """Newest consistent checkpoint step, or None if there is none."""
        try:
            step = int(self._marker.read_text().strip())
            if self.path_for(step).exists():
                return step
        except (OSError, ValueError):
            pass
        # marker missing/stale: fall back to scanning the archives
        archives = sorted(self.directory.glob("ckpt-*.npz"))
        if not archives:
            return None
        return int(archives[-1].stem.split("-")[1])

    def load(self, grids: "Grid | list[Grid]",
             step: int | None = None) -> Checkpoint:
        """Restore the checkpoint at ``step`` (default: latest) onto the
        given per-rank grids (a single grid restores a one-rank run)."""
        if isinstance(grids, Grid):
            grids = [grids]
        if step is None:
            step = self.latest_step()
            if step is None:
                raise FileNotFoundError(
                    f"no checkpoint found under {self.directory}")
        path = self.path_for(step)
        with span("checkpoint_restore", cat="resilience", step=step):
            ckpt = self._read(path, grids)
        self.restores += 1
        sess = active_session()
        if sess is not None:
            sess.metrics.counter("checkpoint.restores").inc()
        return ckpt

    def _read(self, path: pathlib.Path, grids: list[Grid]) -> Checkpoint:
        with np.load(path) as z:
            manifest = json.loads(bytes(z["manifest"]).decode())
            if manifest["format_version"] != _FORMAT_VERSION:
                raise ValueError(
                    f"unsupported checkpoint format "
                    f"{manifest['format_version']}")
            n_ranks = int(manifest["n_ranks"])
            if n_ranks != len(grids):
                raise ValueError(
                    f"checkpoint holds {n_ranks} ranks, caller supplied "
                    f"{len(grids)} grids")
            species = [str(s) for s in z["species"]]
            t = float(manifest["time"])
            states = []
            for r, grid in enumerate(grids):
                fields = {}
                for name, shape in (("rho", grid.shape_c),
                                    ("rhou", grid.shape_u),
                                    ("rhov", grid.shape_v),
                                    ("rhow", grid.shape_w),
                                    ("rhotheta", grid.shape_c)):
                    arr = z[f"r{r}/{name}"]
                    if arr.shape != shape:
                        raise ValueError(
                            f"rank {r} field {name} has shape {arr.shape}, "
                            f"grid expects {shape}")
                    fields[name] = arr.copy()
                q = {name: z[f"r{r}/{name}"].copy() for name in species}
                key = f"r{r}/precip_accum"
                precip = z[key].copy() if key in z.files else None
                states.append(State(grid=grid, q=q, time=t,
                                    precip_accum=precip, **fields))
        return Checkpoint(step=int(manifest["step"]), time=t, states=states,
                          path=path, meta=manifest,
                          rng_state=manifest.get("rng_state"))
