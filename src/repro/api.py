"""The unified run facade: ``RunSpec`` -> ``Experiment`` -> ``RunResult``.

Before this module existed, every entry point — the CLI, the benchmarks,
the examples — grew its own ad-hoc path from "which workload, what size,
how many ranks" to a driven run, and the Hybrid Fortran line of work on
ASUCA (Müller & Aoki) argues a production port lives or dies on a uniform
execution interface over its CPU/GPU/multi-rank backends.  This is that
interface:

* :class:`RunSpec` — one declarative description of a run: workload,
  grid, steps, backend (``cpu`` / ``gpu`` / ``multigpu``), decomposition,
  trace/metrics options, and resilience options (fault plan, retry
  policy, checkpoint cadence, resume).
* :class:`Experiment` — ``prepare()`` builds the case and the chosen
  backend (:class:`~repro.core.model.AsucaModel` directly, a
  :class:`~repro.gpu.runtime.GpuAsucaRunner`, or a
  :class:`~repro.dist.multigpu.MultiGpuAsuca`); ``run()`` drives the
  step loop with checkpointing and crash recovery; ``advance()`` /
  ``gather()`` support segmented use (benchmarks that inspect
  intermediate states).
* :class:`RunResult` — the final state plus diagnostics, telemetry, and
  the resilience ledger (faults fired, retries, recoveries, recovery
  time).

A run with an injected rank crash, checkpointed every K steps, resumes
from the newest checkpoint and produces fields bit-identical to an
uninterrupted run (tests/resilience/test_api.py) — the checkpoint format
itself guarantees this (see :mod:`repro.resilience.checkpoint`).
"""
from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from .core.boundary import fill_halos_state
from .core.model import StepDiagnostics
from .core.state import State
from .obs.trace import TraceSession, span, use_session
from .resilience.checkpoint import CheckpointManager
from .resilience.faults import FaultInjector, FaultPlan, RankCrash
from .resilience.retry import RetryPolicy

__all__ = ["RunSpec", "Experiment", "RunResult", "make_case", "parse_ranks"]

_BACKENDS = ("auto", "cpu", "gpu", "multigpu")


def _workload_factories() -> dict[str, Callable]:
    from .workloads import (
        make_mountain_wave_case,
        make_real_case,
        make_shear_layer_case,
        make_vortex_case,
        make_warm_bubble_case,
    )

    return {
        "mountain-wave": make_mountain_wave_case,
        "warm-bubble": make_warm_bubble_case,
        "real-case": make_real_case,
        "shear-layer": make_shear_layer_case,
        "vortex": make_vortex_case,
    }


#: the workload names a RunSpec accepts
WORKLOADS = ("mountain-wave", "warm-bubble", "real-case", "shear-layer",
             "vortex")


def make_case(workload: str, **kwargs):
    """Build a workload case (grid + reference + model + state bundle) by
    name — the single implementation behind every entry point."""
    factories = _workload_factories()
    try:
        factory = factories[workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {workload!r}; choose one of "
            f"{', '.join(sorted(factories))}") from None
    return factory(**{k: v for k, v in kwargs.items() if v is not None})


def parse_ranks(spec: "str | tuple[int, int] | None") -> tuple[int, int] | None:
    """Parse a process-grid spec ('2x3' or a (px, py) tuple).

    Raises :class:`ValueError` for malformed shapes ('2x3x4', 'abc') and
    for non-positive rank counts ('0x2', (2, -1)) — a decomposition needs
    at least one rank along each axis.
    """
    if spec is None:
        return None
    if isinstance(spec, str):
        parts = spec.lower().split("x")
        if len(parts) != 2:
            raise ValueError(
                f"ranks spec {spec!r} must be 'PXxPY', e.g. '2x3'")
        try:
            px, py = (int(p) for p in parts)
        except ValueError:
            raise ValueError(
                f"ranks spec {spec!r} must be 'PXxPY' with integer "
                f"rank counts") from None
    else:
        try:
            px, py = spec
        except (TypeError, ValueError):
            raise ValueError(
                f"ranks spec {spec!r} must be a (px, py) pair") from None
        px, py = int(px), int(py)
    if px < 1 or py < 1:
        raise ValueError(
            f"rank counts must be >= 1 along both axes, got {px}x{py}")
    return px, py


@dataclass
class RunSpec:
    """Everything needed to construct and drive one run."""

    workload: str = "warm-bubble"
    steps: int = 50
    #: grid overrides (None = the workload's defaults)
    nx: int | None = None
    ny: int | None = None
    nz: int | None = None
    dt: float | None = None
    #: extra keyword arguments for the workload factory
    workload_kwargs: dict[str, Any] = field(default_factory=dict)
    #: perturbation seed threaded to the workload factory: every factory
    #: applies its seeded initial-condition noise when this is set, so an
    #: ensemble member is reproducible standalone from its expanded spec
    #: (repro.ensemble).  Semantic: it enters spec_hash, so perturbed
    #: members cache as distinct entries; the default None is *omitted*
    #: from the canonical dict, keeping every pre-seed hash stable.
    seed: int | None = None
    #: 'cpu' (plain AsucaModel), 'gpu' (virtual-GPU runner), 'multigpu'
    #: (decomposed), or 'auto' (multigpu if ranks given, gpu if traced)
    backend: str = "auto"
    ranks: "tuple[int, int] | str | None" = None
    precision: Any = None           #: gpu/multigpu modeled precision
    ice: bool = False
    #: stencil executor backend ('reference' / 'fused' / 'numba', or
    #: 'auto' = the process default, i.e. $REPRO_STENCIL_BACKEND or
    #: 'reference') — the fused path is bit-identical to the reference,
    #: so this never enters the spec hash (see _NON_SEMANTIC_FIELDS)
    stencil_backend: str = "auto"
    # ---------------------------------------------------- observability
    trace_path: str | None = None
    trace_jsonl: str | None = None
    metrics: bool = False
    profile: bool = False
    summary: bool = False
    #: measure FLOP/byte counts per kernel launch (the live roofline;
    #: requires a device-backed backend — auto resolves to 'gpu')
    counters: bool = False
    #: measure every Nth step only (bounds counting overhead)
    counter_every: int = 1
    history_path: str | None = None
    history_every: float = 60.0
    # ------------------------------------------------------- resilience
    faults: "FaultPlan | str | None" = None
    retry: RetryPolicy | None = None
    checkpoint_every: int = 0
    checkpoint_dir: str | None = None
    checkpoint_keep: int = 2
    resume: bool = False

    # ------------------------------------------------------------------
    def wants_session(self) -> bool:
        return bool(self.trace_path or self.trace_jsonl or self.metrics
                    or self.summary)

    def normalized(self) -> "RunSpec":
        """Validated copy with backend/ranks/fault-plan coherence."""
        ranks = parse_ranks(self.ranks)
        backend = self.backend
        if backend == "auto":
            backend = ("multigpu" if ranks is not None
                       else "gpu" if self.wants_session() or self.counters
                       else "cpu")
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if backend == "multigpu" and ranks is None:
            raise ValueError("backend 'multigpu' needs ranks=(px, py)")
        if backend != "multigpu":
            ranks = None
        if self.steps < 0:
            raise ValueError("steps must be >= 0")
        if self.counter_every < 1:
            raise ValueError("counter_every must be >= 1")
        from .stencil import BACKENDS, default_backend, numba_available

        stencil_backend = self.stencil_backend
        if stencil_backend == "auto":
            stencil_backend = default_backend()
        if stencil_backend not in BACKENDS:
            raise ValueError(
                f"unknown stencil backend {self.stencil_backend!r}; "
                f"choose one of auto, {', '.join(BACKENDS)}")
        if stencil_backend == "numba" and not numba_available():
            raise ValueError(
                "stencil backend 'numba' needs numba installed; "
                "use 'fused' or 'reference'")
        if self.counters and backend == "cpu":
            raise ValueError(
                "counters need a device-backed backend ('gpu'/'multigpu')")
        if (self.resume or self.checkpoint_every > 0) and not self.checkpoint_dir:
            raise ValueError(
                "checkpointing/resume needs checkpoint_dir")
        return replace(self, backend=backend, ranks=ranks,
                       stencil_backend=stencil_backend,
                       faults=FaultPlan.parse(self.faults))

    # ---------------------------------------------------------- identity
    #: fields that do not change what a run computes — trace/metrics
    #: outputs and filesystem paths — and are therefore excluded from
    #: :meth:`spec_hash` (two runs differing only here produce
    #: bit-identical result fields)
    _NON_SEMANTIC_FIELDS = frozenset({
        "trace_path", "trace_jsonl", "metrics", "profile", "summary",
        "history_path", "history_every", "checkpoint_dir",
        # counting only annotates device ops with measurements; the
        # computed fields are bit-identical with or without it
        "counters", "counter_every",
        # the fused executor is bit-identical to the reference (enforced
        # by tests/stencil/test_fused_identity.py), so the backend choice
        # does not change what a run computes — a cached result from one
        # backend is valid for all of them
        "stencil_backend",
    })

    def canonical_dict(self) -> dict[str, Any]:
        """JSON-ready dict of the *semantic* fields of the normalized
        spec — the identity a result cache may key on."""
        spec = self.normalized()
        out: dict[str, Any] = {}
        for f in dataclasses.fields(spec):
            if f.name in self._NON_SEMANTIC_FIELDS:
                continue
            value = getattr(spec, f.name)
            if f.name == "seed" and value is None:
                # an unseeded run computes exactly what it did before the
                # seed field existed; omitting the default keeps every
                # historical spec hash (and cached result) valid
                continue
            out[f.name] = _canonical_value(value)
        return out

    def spec_hash(self) -> str:
        """Stable content hash of the run: sha256 over the canonical
        JSON of :meth:`canonical_dict`.

        Two specs that normalize to the same computation (e.g. ranks
        given as ``"2x2"`` vs ``(2, 2)``, backend ``auto`` vs its
        resolution) hash identically; observability-only fields (trace
        paths, metrics flags, history output) never affect the hash.
        """
        payload = json.dumps(self.canonical_dict(), sort_keys=True,
                             separators=(",", ":"), default=str)
        return hashlib.sha256(payload.encode()).hexdigest()


def _canonical_value(value: Any) -> Any:
    """Reduce a RunSpec field value to a canonical JSON-ready form."""
    if isinstance(value, enum.Enum):
        return value.name
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, FaultPlan):
        return [_canonical_value(ev) for ev in value.events]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _canonical_value(v)
                for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return repr(value)


@dataclass
class RunResult:
    """What a completed :meth:`Experiment.run` hands back."""

    spec: RunSpec
    state: State
    diagnostics: StepDiagnostics
    steps_done: int
    wall_time: float
    session: TraceSession | None = None
    #: JSON-ready metrics snapshot (None when no session was active)
    metrics: dict | None = None
    #: (step, kind, detail) log of faults that actually fired
    fault_log: list = field(default_factory=list)
    retry_stats: Any = None
    recoveries: int = 0
    recovery_wall_s: float = 0.0
    checkpoints_written: int = 0
    resumed_from: int | None = None
    halo_messages: int = 0
    halo_bytes: int = 0
    #: stencil executor dispatch/pool stats (StencilExecutor.stats())
    stencil_stats: dict | None = None
    #: per-step point-product series recorded by the workload case (the
    #: vortex case's track: time, center, max wind), when it records one
    series: "dict[str, list] | None" = None

    @property
    def spec_hash(self) -> str:
        """Content hash identifying the computation that produced this
        result (:meth:`RunSpec.spec_hash`) — the key a result cache
        stores it under."""
        return self.spec.spec_hash()

    def resilience_report(self) -> str:
        parts = [f"{len(self.fault_log)} faults fired"]
        if self.retry_stats is not None:
            parts.append(self.retry_stats.report())
        parts.append(f"{self.recoveries} crash recoveries "
                     f"({self.recovery_wall_s * 1e3:.1f} ms wall)")
        parts.append(f"{self.checkpoints_written} checkpoints written")
        if self.resumed_from is not None:
            parts.append(f"resumed from step {self.resumed_from}")
        return "; ".join(parts)


class Experiment:
    """The single way to construct and drive a run.

    Usage::

        result = Experiment(RunSpec(workload="warm-bubble", steps=20,
                                    backend="multigpu", ranks=(2, 2),
                                    faults="demo",
                                    checkpoint_every=5,
                                    checkpoint_dir="ckpts")).prepare().run()
        print(result.diagnostics, result.resilience_report())

    Segmented use (benchmarks): ``prepare()`` once, then any number of
    ``advance(n)`` calls with ``gather()``/``case`` inspection between.
    """

    def __init__(self, spec: RunSpec):
        self.spec = spec.normalized()
        self.case = None
        self.model = None
        self.grid = None
        self.state: State | None = None
        self.machine = None                 #: MultiGpuAsuca (multigpu)
        self.rank_states: list[State] | None = None
        self.runner = None                  #: GpuAsucaRunner (gpu)
        self.session: TraceSession | None = None
        self.executor = None                #: StencilExecutor
        self.timer = None
        self.injector: FaultInjector | None = None
        self.checkpoints: CheckpointManager | None = None
        self.history = None
        self.step_index = 0
        self.recoveries = 0
        self.recovery_wall_s = 0.0
        self.resumed_from: int | None = None
        self._initial: "State | list[State] | None" = None
        self._prepared = False

    # ------------------------------------------------------------ build
    def prepare(self) -> "Experiment":
        """Build the case, the backend, and the resilience machinery."""
        if self._prepared:
            return self
        spec = self.spec
        wl_kwargs = dict(spec.workload_kwargs)
        if spec.seed is not None:
            # the spec-level seed wins over a workload_kwargs seed: the
            # ensemble layer stamps members here
            wl_kwargs["seed"] = spec.seed
        self.case = make_case(spec.workload, nx=spec.nx, ny=spec.ny,
                              nz=spec.nz, dt=spec.dt, **wl_kwargs)
        self.model = self.case.model
        self.grid = self.case.grid
        self.state = self.case.state
        if spec.ice:
            self.model.config.ice_enabled = True
            self.model.config.physics_enabled = True

        from .stencil import StencilExecutor

        self.executor = StencilExecutor(spec.stencil_backend)

        if spec.faults and len(spec.faults):
            self.injector = FaultInjector(spec.faults)
        if spec.wants_session():
            self.session = TraceSession(name=spec.workload)
        if spec.profile:
            from .profiling import PhaseTimer

            self.timer = PhaseTimer()
        if spec.checkpoint_dir:
            self.checkpoints = CheckpointManager(
                spec.checkpoint_dir, every=spec.checkpoint_every,
                keep=spec.checkpoint_keep)

        if spec.backend == "multigpu":
            from .dist.multigpu import MultiGpuAsuca

            px, py = spec.ranks
            self.machine = MultiGpuAsuca(
                self.grid, self.case.ref, px, py, self.model.config,
                relaxation=getattr(self.model, "relaxation", None),
                fault_injector=self.injector, retry=spec.retry)
            if self.session is not None or spec.counters:
                self.machine.attach_devices(
                    precision=spec.precision,
                    counters=spec.counters,
                    counter_every=spec.counter_every)
            self.rank_states = self.machine.scatter_state(self.state)
            with self._contexts():
                self.machine.exchange_all(self.rank_states, None)
            self._initial = [st.copy() for st in self.rank_states]
        elif spec.backend == "gpu":
            from .gpu.device import GPUDevice
            from .gpu.runtime import GpuAsucaRunner
            from .gpu.spec import TESLA_S1070

            device = GPUDevice(TESLA_S1070, fault_injector=self.injector)
            kw = {} if spec.precision is None else {"precision": spec.precision}
            if spec.counters:
                kw["counters"] = True
                kw["counter_every"] = spec.counter_every
            self.runner = GpuAsucaRunner(self.model, device, **kw)
            self.runner.upload(self.state)
            self._initial = self.state.copy()
        else:
            self._initial = self.state.copy()

        if spec.resume:
            if self.checkpoints.latest_step() is None:
                raise FileNotFoundError(
                    f"--resume: no checkpoint under {spec.checkpoint_dir}")
            self._restore(self.checkpoints.load(self._grids()))
            self.resumed_from = self.step_index

        if spec.history_path:
            from .history import HistoryWriter

            self.history = HistoryWriter(self.grid, spec.history_path,
                                         every_seconds=spec.history_every)
            self.history.save(self.gather())
        self._prepared = True
        return self

    def _grids(self):
        if self.machine is not None:
            return [r.grid for r in self.machine.ranks]
        return [self.grid]

    @contextlib.contextmanager
    def _contexts(self):
        """Activate the stencil executor/session/profiler around any
        stepping."""
        from .stencil import use_executor

        with contextlib.ExitStack() as stack:
            if self.executor is not None:
                stack.enter_context(use_executor(self.executor))
            if self.session is not None:
                stack.enter_context(use_session(self.session))
            if self.timer is not None:
                from .profiling import use_timer

                stack.enter_context(use_timer(self.timer))
            yield

    # ------------------------------------------------------------ drive
    def run(self) -> RunResult:
        """Drive the run to ``spec.steps``, checkpointing and recovering
        from rank crashes along the way; returns the :class:`RunResult`."""
        if not self._prepared:
            self.prepare()
        t0 = time.perf_counter()
        with self._contexts():
            while self.step_index < self.spec.steps:
                try:
                    self._step_once()
                except RankCrash as crash:
                    self._recover(crash)
        wall = time.perf_counter() - t0
        return self._finish(wall)

    def advance(self, n_steps: int) -> None:
        """Advance ``n_steps`` without finishing the run (segmented use);
        crash faults recover exactly as in :meth:`run`."""
        if not self._prepared:
            self.prepare()
        target = self.step_index + n_steps
        with self._contexts():
            while self.step_index < target:
                try:
                    self._step_once()
                except RankCrash as crash:
                    self._recover(crash)

    def _step_once(self) -> None:
        i = self.step_index
        if self.machine is not None:
            # the machine owns fault stepping (incl. the crash raise)
            self.rank_states = self.machine.step(self.rank_states)
        else:
            if self.injector is not None:
                self.injector.begin_step(i)
                crashed = self.injector.crash_rank(i)
                if crashed is not None:
                    raise RankCrash(rank=crashed, step=i)
            if self.runner is not None:
                self.state = self.runner.step(self.state)
            else:
                self.state = self.model.step(self.state)
        self.step_index = i + 1
        if self.history is not None:
            self.history.maybe_save(self.gather())
        if self.checkpoints is not None and self.checkpoints.due(self.step_index):
            self.checkpoints.save(self.step_index, self._live_states())

    def _live_states(self) -> list[State]:
        return (self.rank_states if self.rank_states is not None
                else [self.state])

    # --------------------------------------------------------- recovery
    def _recover(self, crash: RankCrash) -> None:
        """Checkpoint-restart after a rank crash: reload the newest
        consistent snapshot (or the initial state when none exists) and
        rewind the step counter; the re-run is bit-identical to an
        uninterrupted one because the snapshot holds full halos."""
        t0 = time.perf_counter()
        with span("recovery", cat="resilience", rank=crash.rank,
                  step=crash.step):
            if (self.checkpoints is not None
                    and self.checkpoints.latest_step() is not None):
                self._restore(self.checkpoints.load(self._grids()))
            else:
                # no checkpoint yet: cold restart from the initial state
                self._restore_states(
                    [st.copy() for st in self._initial]
                    if isinstance(self._initial, list)
                    else self._initial.copy(), step=0)
        dt_wall = time.perf_counter() - t0
        self.recoveries += 1
        self.recovery_wall_s += dt_wall
        if self.session is not None:
            m = self.session.metrics
            m.counter("resilience.recoveries").inc()
            m.counter("resilience.recovery_wall_s").inc(dt_wall)

    def _restore(self, ckpt) -> None:
        states = ckpt.states if self.machine is not None else ckpt.states[0]
        self._restore_states(states, step=ckpt.step)

    def _restore_states(self, states, step: int) -> None:
        if self.machine is not None:
            self.rank_states = list(states)
            self.machine.step_index = step
        else:
            self.state = states
            if self.runner is not None:
                self.runner.sync_device(self.state)
        self.step_index = step

    # ----------------------------------------------------------- output
    def gather(self) -> State:
        """The current global state (multigpu: gathered, halos refilled).
        Also synced onto ``case.state`` so workload helper methods
        (``snapshot``, ``perturbation_ke``, ...) see the latest fields."""
        if self.machine is not None:
            st = self.machine.gather_state(self.rank_states)
            fill_halos_state(st)
        else:
            st = self.state
        if self.case is not None:
            self.case.state = st
        return st

    def _finish(self, wall: float) -> RunResult:
        state = self.gather()
        if self.case is not None:
            self.case.state = state
        if self.runner is not None:
            self.runner.download(state)
        exchanger = self.machine.exchanger if self.machine is not None else None
        if self.session is not None:
            sess = self.session
            if self.machine is not None:
                for r, device in enumerate(self.machine.devices or []):
                    sess.collect_device(device, rank=r)
                sess.collect_comm(self.machine.comm)
            elif self.runner is not None:
                sess.collect_device(self.runner.device, rank=0)
            m = sess.metrics
            if self.injector is not None:
                for kind, n in self.injector.counts.items():
                    m.counter(f"resilience.faults.{kind}").inc(n)
            if exchanger is not None:
                m.gauge("resilience.recovery_modeled_s").set(
                    exchanger.stats.recovery_s)
            m.gauge("resilience.recovery_wall_s_total").set(
                self.recovery_wall_s)
            sess.finalize(steps=max(1, self.steps_done))
        if self.history is not None:
            self.history.close()
        comm = self.machine.comm if self.machine is not None else None
        return RunResult(
            spec=self.spec,
            state=state,
            diagnostics=self.model.diagnostics(state),
            steps_done=self.steps_done,
            wall_time=wall,
            session=self.session,
            metrics=(self.session.metrics.as_dict()
                     if self.session is not None else None),
            fault_log=list(self.injector.fired) if self.injector else [],
            retry_stats=exchanger.stats if exchanger is not None else None,
            recoveries=self.recoveries,
            recovery_wall_s=self.recovery_wall_s,
            checkpoints_written=(self.checkpoints.writes
                                 if self.checkpoints else 0),
            resumed_from=self.resumed_from,
            halo_messages=comm.stats.messages if comm is not None else 0,
            halo_bytes=comm.stats.bytes_total if comm is not None else 0,
            stencil_stats=(self.executor.stats()
                           if self.executor is not None else None),
            series=(self.case.series()
                    if hasattr(self.case, "series") else None),
        )

    @property
    def steps_done(self) -> int:
        return self.step_index
