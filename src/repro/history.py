"""Forecast history I/O: save model snapshots to ``.npz`` archives and
read them back — the "Output" box of the paper's Fig. 1, minus NetCDF
(which the offline environment lacks).

A history file stores, per snapshot: time, the interior prognostic fields
(halo stripped — halos are reconstructable), accumulated precipitation,
and grid metadata sufficient to rebuild coordinates for plotting.
"""
from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np

from .core.grid import Grid
from .core.state import State

__all__ = ["HistoryWriter", "HistorySnapshot", "read_history",
           "save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


@dataclass
class HistorySnapshot:
    """One stored time level."""

    time: float
    fields: dict[str, np.ndarray]     #: interior arrays, (nx[, +1], ny[, +1], nz)
    precip_accum: np.ndarray | None


class HistoryWriter:
    """Accumulates snapshots and writes one compressed ``.npz``.

    Usage::

        hist = HistoryWriter(grid, path)
        model.run(state, 100, callback=lambda i, st: hist.maybe_save(st))
        hist.close()
    """

    def __init__(
        self,
        grid: Grid,
        path: str | pathlib.Path,
        *,
        every_seconds: float = 0.0,
        fields: list[str] | None = None,
    ):
        self.grid = grid
        self.path = pathlib.Path(path)
        self.every_seconds = every_seconds
        self.fields = fields
        self._snaps: list[HistorySnapshot] = []
        self._last_saved = -np.inf
        self._closed = False

    # ------------------------------------------------------------------
    def save(self, state: State) -> None:
        """Unconditionally record one snapshot."""
        if self._closed:
            raise RuntimeError("history already closed")
        g = self.grid
        h = g.halo
        names = self.fields or state.prognostic_names()
        out: dict[str, np.ndarray] = {}
        for name in names:
            arr = state.get(name)
            ex = 1 if arr.shape[0] == g.nxh + 1 else 0
            ey = 1 if arr.shape[1] == g.nyh + 1 else 0
            out[name] = arr[h : h + g.nx + ex, h : h + g.ny + ey].copy()
        self._snaps.append(
            HistorySnapshot(
                time=state.time,
                fields=out,
                precip_accum=None if state.precip_accum is None
                else state.precip_accum.copy(),
            )
        )
        self._last_saved = state.time

    def maybe_save(self, state: State) -> bool:
        """Record if at least ``every_seconds`` has elapsed since the last
        snapshot; returns whether a snapshot was taken."""
        if state.time - self._last_saved >= self.every_seconds - 1e-9:
            self.save(state)
            return True
        return False

    def close(self) -> pathlib.Path:
        """Write the archive; further saves are rejected."""
        g = self.grid
        payload: dict[str, np.ndarray] = {
            "format_version": np.array(_FORMAT_VERSION),
            "n_snapshots": np.array(len(self._snaps)),
            "times": np.array([s.time for s in self._snaps]),
            "grid_nx": np.array(g.nx),
            "grid_ny": np.array(g.ny),
            "grid_nz": np.array(g.nz),
            "grid_dx": np.array(g.dx),
            "grid_dy": np.array(g.dy),
            "grid_ztop": np.array(g.ztop),
            "grid_z_f": g.z_f,
            "grid_zs": g.interior(g.zs[:, :, None])[:, :, 0],
        }
        for i, snap in enumerate(self._snaps):
            for name, arr in snap.fields.items():
                payload[f"snap{i}/{name}"] = arr
            if snap.precip_accum is not None:
                payload[f"snap{i}/precip_accum"] = snap.precip_accum
        self.path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(self.path, **payload)
        self._closed = True
        return self.path

    @property
    def n_snapshots(self) -> int:
        return len(self._snaps)


def read_history(path: str | pathlib.Path) -> tuple[dict, list[HistorySnapshot]]:
    """Load a history archive: ``(grid_meta, snapshots)``."""
    with np.load(path) as z:
        version = int(z["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported history format {version}")
        meta = {
            "nx": int(z["grid_nx"]), "ny": int(z["grid_ny"]),
            "nz": int(z["grid_nz"]),
            "dx": float(z["grid_dx"]), "dy": float(z["grid_dy"]),
            "ztop": float(z["grid_ztop"]),
            "z_f": z["grid_z_f"].copy(),
            "zs": z["grid_zs"].copy(),
        }
        times = z["times"]
        n = int(z["n_snapshots"])
        snaps = []
        for i in range(n):
            prefix = f"snap{i}/"
            fields = {
                k[len(prefix):]: z[k].copy()
                for k in z.files
                if k.startswith(prefix) and not k.endswith("precip_accum")
            }
            key = f"{prefix}precip_accum"
            precip = z[key].copy() if key in z.files else None
            snaps.append(HistorySnapshot(time=float(times[i]), fields=fields,
                                         precip_accum=precip))
    return meta, snaps


# ---------------------------------------------------------------------------
# checkpoint / restart
# ---------------------------------------------------------------------------

def save_checkpoint(state: State, path: str | pathlib.Path) -> pathlib.Path:
    """Serialize a full model state (halos included) so a run can restart
    *bit-identically* — asserted by tests/test_cli_history.py."""
    path = pathlib.Path(path)
    payload: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION),
        "time": np.array(state.time),
        "species": np.array(sorted(state.q), dtype="U8"),
    }
    for name in ("rho", "rhou", "rhov", "rhow", "rhotheta"):
        payload[f"field/{name}"] = state.get(name)
    for name, arr in state.q.items():
        payload[f"q/{name}"] = arr
    if state.precip_accum is not None:
        payload["precip_accum"] = state.precip_accum
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_checkpoint(path: str | pathlib.Path, grid: Grid) -> State:
    """Restore a checkpoint onto a grid of matching shape."""
    with np.load(path) as z:
        version = int(z["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint format {version}")
        fields = {}
        for name, shape in (
            ("rho", grid.shape_c), ("rhou", grid.shape_u),
            ("rhov", grid.shape_v), ("rhow", grid.shape_w),
            ("rhotheta", grid.shape_c),
        ):
            arr = z[f"field/{name}"]
            if arr.shape != shape:
                raise ValueError(
                    f"checkpoint field {name} has shape {arr.shape}, "
                    f"grid expects {shape}"
                )
            fields[name] = arr.copy()
        q = {str(name): z[f"q/{name}"].copy() for name in z["species"]}
        precip = z["precip_accum"].copy() if "precip_accum" in z.files else None
        return State(grid=grid, q=q, time=float(z["time"]),
                     precip_accum=precip, **fields)
