"""Assemble EXPERIMENTS.md from the benchmark reports.

``pytest benchmarks/ --benchmark-only`` writes each experiment's
paper-vs-reproduced report under ``benchmarks/reports/``;
``python -m repro reproduce`` (or :func:`generate_experiments_markdown`)
stitches them into the EXPERIMENTS.md document, so the record of the
reproduction is always regenerable from a benchmark run.
"""
from __future__ import annotations

import pathlib

__all__ = ["SECTIONS", "generate_experiments_markdown", "write_experiments"]

#: (section title, report file, commentary) in document order
SECTIONS: list[tuple[str, str, str]] = [
    ("Fig. 4 — Single-GPU performance vs grid size",
     "test_fig04_single_gpu_performance.txt",
     "Workload: mountain-wave benchmark cost model, nx=320, nz=48, ny swept 32..256.\n"
     "Modules: `repro.perf.costmodel` (calibrated kernel table), `repro.gpu.spec/roofline`.\n"
     "Bench: `benchmarks/test_fig04_single_gpu.py`."),
    ("Fig. 4 — Device-memory limits", "test_fig04_memory_limits.txt",
     "The 4 GiB S1070 capacity caps the sweep at 320x256x48 (SP) / 320x128x48 (DP),\n"
     "exactly as stated in Sec. IV-B.  Modules: `repro.gpu.memory`."),
    ("Fig. 5 — Roofline of the five key kernels", "test_fig05_roofline.txt",
     "Eq. 6 of the paper with the S1070 constants; kernels (1)-(4) memory bound,\n"
     "warm rain compute bound beyond the 6.75 flop/B ridge.\n"
     "Bench: `benchmarks/test_fig05_roofline.py`."),
    ("Fig. 5 — Cost-table cross-check against measured FLOPs",
     "test_fig05_advection_cost_vs_measured.txt",
     "The instrumented-array counter (PAPI substitute) runs the *real* Koren\n"
     "face-flux kernel; the analytic advection cost must sit within its band."),
    ("Fig. 9 — Short-step kernel/communication breakdown at 528 GPUs",
     "test_fig09_kernel_breakdown.txt",
     "Whole vs divided (inner/boundary) kernels and the GPU<->host / MPI components\n"
     "per variable per acoustic substep.  Modules: `repro.dist.overlap`."),
    ("Fig. 10 — Weak scaling over the Table I configurations",
     "test_fig10_weak_scaling.txt",
     "Overlapping vs non-overlapping vs CPU series; efficiency computed 528-vs-6\n"
     "GPUs.  Modules: `repro.perf.scaling`, `repro.dist.overlap`."),
    ("Table I — GPU counts and mesh sizes", "test_table1_mesh_sizes.txt",
     "Regenerated from the block law nx = 320*Px - 4*(Px-1) (a structural discovery\n"
     "of this reproduction: every row of the paper's table follows it exactly)."),
    ("Table I — decomposition feasibility",
     "test_table1_decomposition_feasible.txt", ""),
    ("Fig. 11 — One-step time breakdown at 528 GPUs",
     "test_fig11_step_breakdown.txt",
     "Non-overlapping vs overlapping totals and the compute/MPI/GPU-CPU split.\n"
     "Modules: `repro.dist.overlap` (Fig. 8 pipeline on the virtual device)."),
    ("Fig. 12 — Real-data forecast (synthetic substitution)",
     "test_fig12_real_case_forecast.txt",
     "Scaled-down stand-in for the 1900x2272x48 typhoon run: moist warm-core vortex,\n"
     "coastal terrain, hourly relaxation boundaries, full dycore + warm rain on a\n"
     "2x3 process grid.  Modules: `repro.workloads.real_case`, `repro.dist.multigpu`."),
    ("Fig. 12 — decomposed == single-domain (round-off claim)",
     "test_fig12_decomposed_equals_single.txt",
     "The paper: results agree 'within the margin of machine round-off error'.\n"
     "Here the margin is exactly zero (bit-for-bit)."),
    ("Sec. VII — TSUBAME 2.0 projection", "test_sec7_projection.txt", ""),
    ("Sec. VII — communication hidden on TSUBAME 2.0",
     "test_sec7_communication_hidden.txt", ""),
    ("Validation — nonlinear model vs linear mountain-wave theory",
     "test_linear_mountain_wave_validation.txt",
     "Beyond the paper: the dycore integrated to quasi-steady state matches the\n"
     "analytic linear solution (pattern correlation > 0.75, amplitude within ~15%).\n"
     "Modules: `repro.validation.linear_theory`."),
    ("Validation — Kelvin-Helmholtz / Miles-Howard criterion",
     "test_kh_richardson_criterion.txt",
     "A tanh shear layer grows billows iff Ri < 1/4 — an independent check of the\n"
     "momentum-buoyancy coupling.  Modules: `repro.workloads.shear_layer`."),
    ("Profile — the NumPy implementation's own phase breakdown",
     "test_phase_breakdown.txt",
     "Real wall-clock shares of the reproduction (instrumented integrator):\n"
     "advection dominates and warm rain is a few percent — the same structure the\n"
     "paper reports for the CUDA kernels.  Modules: `repro.profiling`."),
    ("Ablation — array ordering (Sec. IV-A-1)", "test_ordering_model.txt", ""),
    ("Ablation — real host-memory strides", "test_ordering_real_strides.txt", ""),
    ("Ablation — overlap methods 1/2/3 (Sec. V-A)",
     "test_overlap_method_ablation.txt", ""),
    ("Ablation — flux limiters (Sec. II design choice)",
     "test_limiter_ablation.txt", ""),
    ("Ablation — 1-D vs 2-D decomposition", "test_decomposition_1d_vs_2d.txt", ""),
    ("Extension — strong scaling on a fixed mesh", "test_strong_scaling.txt", ""),
    ("Extension — double-precision multi-GPU scaling",
     "test_double_precision_weak_scaling.txt", ""),
    ("Extension — Sec. VII physics prediction (cold rain implemented)",
     "test_more_physics_more_flops.txt", ""),
    ("Extension — cold convection produces snow",
     "test_cold_convection_produces_snow.txt", ""),
    ("Model transparency — parameter sensitivity",
     "test_parameter_sensitivity.txt", ""),
]

_HEADER = """# EXPERIMENTS — paper vs. reproduced

Every table and figure of the paper's evaluation, regenerated by
`pytest benchmarks/ --benchmark-only`; this file is rebuilt from those
runs' reports by `python -m repro reproduce`.  Each benchmark *asserts*
its tolerances, so a passing suite certifies this file's numbers.

**Substitution reminder** (details in DESIGN.md): the original experiments
ran on real Tesla S1070 GPUs and the TSUBAME 1.2 InfiniBand fabric.  This
environment has neither, so performance numbers come from a calibrated
virtual-machine model — the paper's own Eq.-6 roofline plus a faithful
schedule of its Fig.-8 overlap pipeline — driven by the same kernel
structure as the real NumPy implementation.  Calibrated anchors: the
single-GPU SP/DP GFlops, the CPU sustained rate, the per-step FLOP count
implied by Fig. 11, and the Fig. 11 ms totals.  Everything else is model
output.  Functional results (conservation, wave structure, bit-identical
decomposition, the linear-theory validation) are *measured* from the real
running code.

## Headline summary

| quantity | paper | reproduced | note |
|---|---|---|---|
| single GPU, single precision | 44.3 GFlops | 45.3 | calibrated anchor |
| single GPU, double precision | 14.6 GFlops | 14.4 | DP/SP ratio 0.33 emerges from the model |
| speedup vs 1 Opteron core (SP vs DP) | 83.4x | 85.9x | "over 80-fold" |
| speedup (DP vs DP) | 26.3x | 27.8x | output |
| warm-rain kernel share of GPU time | 1.0% | 1.4% | output |
| Table I (14 rows) | — | exact | block law 320/256/overlap-4 |
| 528 GPUs, overlap, SP | 15.0 TFlops | 15.6 | output |
| Fig. 11 total/compute/MPI/GPU-CPU | 988/763/336/145 ms | 980/765/339/137 | totals calibrated, split emerges |
| communication hidden | ~53% | 55% | output |
| overlap total-time gain | ~11% | 12% | output |
| weak-scaling efficiency | >= 93% | 95% | output |
| TSUBAME 2.0 projection | ~150 TFlops | 151 (formula) / 168 (real Fermi) | output |
| GPU == CPU within round-off | yes | decomposed == single **bit for bit** | measured |
| linear mountain-wave theory | (not in paper) | corr ~0.8, amplitude ~1.1 | measured validation |
| Miles-Howard KH criterion | (not in paper) | unstable iff Ri < 1/4 | measured validation |
"""

_FOOTER = """
## Known deviations and their reasons

* **Performance is modeled, not measured** — no GPU/cluster exists here.
  The model is deliberately constrained: four calibrated anchors, then
  every other figure must *follow* (see DESIGN.md Sec. 6 and the
  sensitivity table above: no single constant carries a claim).
* **`sync_skew`** (9 ms/barrier at 528 ranks) is an explicitly declared
  empirical term: the deterministic pipeline hides more communication
  than the real machine did, and the residual is attributed to inter-node
  arrival skew.  It is calibrated once against Fig. 11's total and reused
  unchanged by Fig. 10 and the ablations.
* **Fig. 12 is a synthetic case** (no JMA MANAL data): same code path,
  structural rather than meteorological assertions, scaled to minutes
  instead of hours.
* **13 water tracers** appear in the cost/overlap models per the paper's
  Fig. 7; the functional model carries the 7 hydrometeor species of
  Eq. (4) (warm rain active on 3 — ASUCA's 2010 status; the cold-rain
  extension activates qi and qs).
* **The dycore is a faithful re-derivation, not ASUCA's source** (the
  production code is closed).  The full discrete scheme is derived in
  docs/FORMULATION.md, including the documented simplifications.
"""


def generate_experiments_markdown(
    report_dir: str | pathlib.Path = "benchmarks/reports",
) -> str:
    """Render the document; missing reports are flagged inline."""
    report_dir = pathlib.Path(report_dir)
    parts = [_HEADER]
    for title, fname, blurb in SECTIONS:
        path = report_dir / fname
        body = (path.read_text().rstrip() if path.exists()
                else "(report missing — run `pytest benchmarks/ --benchmark-only`)")
        parts.append(f"\n## {title}\n")
        if blurb:
            parts.append(blurb + "\n")
        parts.append("```text\n" + body + "\n```\n")
    parts.append(_FOOTER)
    return "\n".join(parts)


def write_experiments(
    out: str | pathlib.Path = "EXPERIMENTS.md",
    report_dir: str | pathlib.Path = "benchmarks/reports",
) -> pathlib.Path:
    out = pathlib.Path(out)
    out.write_text(generate_experiments_markdown(report_dir))
    return out
