"""Quantitative validation against analytic solutions."""
from .linear_theory import linear_mountain_wave_w, pattern_correlation

__all__ = ["linear_mountain_wave_w", "pattern_correlation"]
