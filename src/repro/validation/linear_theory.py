"""Analytic linear mountain-wave solution (validation reference).

For steady, 2-D (x-z), non-rotating, Boussinesq flow of speed ``U`` and
constant buoyancy frequency ``N`` over small-amplitude terrain ``h(x)``,
linear theory gives the vertical velocity per Fourier mode ``k > 0``

    w^(k, z) = i k U h^(k) exp(i m z),
    m^2 = N^2/U^2 - k^2                (propagating for |k| < N/U)
    m   = +sqrt(N^2/U^2 - k^2)         (upward energy radiation)
    w^(k, z) = i k U h^(k) exp(-mu z),  mu = sqrt(k^2 - N^2/U^2)
                                       (evanescent for |k| > N/U)

(e.g. Durran, "Mountain Waves and Downslope Winds").  On a periodic
domain the transform is a plain FFT, which matches the model's periodic
benchmark exactly.  The hydrostatic bell-ridge case (``N a / U >> 1``)
has the closed-form field

    w(x, z) = U dh/dx cos(N z / U) + U h'_H(x) ... (via the FFT form)

so we always evaluate the general FFT expression.

The validation test integrates the nonlinear model to quasi-steady state
and checks the pattern correlation and amplitude ratio against this
solution in the lower half of the domain (above: the sponge).
"""
from __future__ import annotations

import numpy as np

__all__ = ["linear_mountain_wave_w", "pattern_correlation"]


def linear_mountain_wave_w(
    h_x: np.ndarray,
    dx: float,
    z_levels: np.ndarray,
    *,
    u0: float,
    n_bv: float,
) -> np.ndarray:
    """Steady linear w(x, z) over the periodic terrain profile ``h_x``.

    Parameters
    ----------
    h_x
        terrain heights at the nx cell centers [m] (periodic).
    z_levels
        heights above ground at which to evaluate w [m].
    u0, n_bv
        background wind [m/s] and Brunt-Vaisala frequency [1/s].

    Returns
    -------
    w : (nx, nz) real array.
    """
    h_x = np.asarray(h_x, dtype=np.float64)
    nx = h_x.size
    k = 2.0 * np.pi * np.fft.fftfreq(nx, d=dx)       # signed wavenumbers
    h_hat = np.fft.fft(h_x)

    kc = n_bv / u0                                    # propagation cutoff
    abs_k = np.abs(k)
    prop = abs_k < kc

    w = np.empty((nx, z_levels.size))
    # vertical wavenumber with the sign of k for upward group velocity
    m = np.where(prop, np.sqrt(np.maximum(kc ** 2 - k ** 2, 0.0)), 0.0)
    m = m * np.sign(k)
    mu = np.where(~prop, np.sqrt(np.maximum(k ** 2 - kc ** 2, 0.0)), 0.0)

    for j, z in enumerate(np.asarray(z_levels, dtype=np.float64)):
        phase = np.where(prop, np.exp(1j * m * z), np.exp(-mu * z))
        w_hat = 1j * k * u0 * h_hat * phase
        w[:, j] = np.real(np.fft.ifft(w_hat))
    return w


def pattern_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Centered pattern (Pearson) correlation of two fields."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    a = a - a.mean()
    b = b - b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0.0:
        return 0.0
    return float(a @ b / denom)
