"""In-process SPMD message passing — the MPI substitute.

All ranks live in one Python process and execute phases in lockstep, so
"MPI" reduces to a deterministic mailbox: each rank posts typed messages
(`post`), and after every rank has posted, each rank collects what was
addressed to it (`collect`).  Buffers are copied on post, mirroring real
MPI semantics (the sender may immediately reuse its buffer).

The communicator also keeps traffic statistics (message count and bytes
per rank pair) that the performance model and the Fig. 9/11 benchmarks
consume — the functional path and the timing path see the exact same
messages.  While a :class:`repro.obs.trace.TraceSession` is active, each
post/collect pair is additionally logged as a :class:`MessageRecord`
with wall-clock stamps; the comm collector turns the log into flow
arrows between rank tracks.  With no session active, nothing is logged
(tracing stays zero-cost).
"""
from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs.trace import _SESSIONS

__all__ = ["SimComm", "TrafficStats", "MessageRecord"]


@dataclass
class TrafficStats:
    """Aggregate message statistics."""

    messages: int = 0
    bytes_total: int = 0
    by_pair: dict[tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int))

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes_total += nbytes
        self.by_pair[(src, dst)] += nbytes

    def per_pair_report(self) -> str:
        """Sorted text table of bytes per (src, dst) rank pair — consumed
        by the comm collector and the trace summary exporter."""
        if not self.by_pair:
            return "(no traffic)"
        lines = [
            f"  {src} -> {dst}: {nbytes:,} B"
            for (src, dst), nbytes in sorted(self.by_pair.items())
        ]
        return "\n".join(lines)

    def reset(self) -> None:
        self.messages = 0
        self.bytes_total = 0
        self.by_pair.clear()


@dataclass
class MessageRecord:
    """One posted message, for telemetry (only logged while a trace
    session is active)."""

    seq: int
    src: int
    dst: int
    tag: object
    nbytes: int
    t_post: float                 #: absolute ``perf_counter`` stamp
    t_collect: float | None = None


class SimComm:
    """Mailbox communicator for ``n_ranks`` in-process ranks."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self._mail: dict[tuple[int, int, object], np.ndarray] = {}
        self.stats = TrafficStats()
        self.message_log: list[MessageRecord] = []
        self._inflight: dict[tuple[int, int, object], MessageRecord] = {}
        self._seq = 0

    # ------------------------------------------------------------- p2p
    def post(self, src: int, dst: int, tag: object, buf: np.ndarray) -> None:
        """Non-blocking send analogue; the buffer is copied immediately."""
        self._check_rank(src)
        self._check_rank(dst)
        key = (src, dst, tag)
        if key in self._mail:
            raise RuntimeError(f"duplicate message {key} — missing collect?")
        self._mail[key] = np.array(buf, copy=True)
        self.stats.record(src, dst, buf.nbytes)
        if _SESSIONS:
            rec = MessageRecord(self._seq, src, dst, tag, buf.nbytes,
                                time.perf_counter())
            self._seq += 1
            self.message_log.append(rec)
            self._inflight[key] = rec

    def collect(self, src: int, dst: int, tag: object) -> np.ndarray:
        """Matching receive; raises if the message was never posted."""
        key = (src, dst, tag)
        try:
            data = self._mail.pop(key)
        except KeyError:
            raise RuntimeError(
                f"rank {dst} expected message {tag!r} from rank {src}, "
                "but nothing was posted — lockstep ordering bug"
            ) from None
        rec = self._inflight.pop(key, None)
        if rec is not None:
            rec.t_collect = time.perf_counter()
        return data

    def pending(self) -> int:
        """Number of posted-but-uncollected messages (0 after a clean
        exchange — asserted by the tests)."""
        return len(self._mail)

    # ------------------------------------------------------ collectives
    def allreduce_sum(self, values: list[float]) -> float:
        """Sum across ranks (every rank contributed one value)."""
        if len(values) != self.n_ranks:
            raise ValueError("allreduce needs one value per rank")
        return float(np.sum(values))

    def allreduce_max(self, values: list[float]) -> float:
        if len(values) != self.n_ranks:
            raise ValueError("allreduce needs one value per rank")
        return float(np.max(values))

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.n_ranks:
            raise ValueError(f"rank {r} out of range [0, {self.n_ranks})")
