"""In-process SPMD message passing — the MPI substitute.

All ranks live in one Python process and execute phases in lockstep, so
"MPI" reduces to a deterministic mailbox: each rank posts typed messages
(`post`), and after every rank has posted, each rank collects what was
addressed to it (`collect`).  Buffers are copied on post, mirroring real
MPI semantics (the sender may immediately reuse its buffer).

The communicator also keeps traffic statistics (message count and bytes
per rank pair) that the performance model and the Fig. 9/11 benchmarks
consume — the functional path and the timing path see the exact same
messages.  While a :class:`repro.obs.trace.TraceSession` is active, each
post/collect pair is additionally logged as a :class:`MessageRecord`
with wall-clock stamps; the comm collector turns the log into flow
arrows between rank tracks.  With no session active, nothing is logged
(tracing stays zero-cost).

With a :class:`~repro.resilience.faults.FaultInjector` attached, the
transport becomes imperfect: a posted message can be dropped (collect
raises :class:`~repro.resilience.retry.MessageLostError`), corrupted
(bytes are flipped in flight; the receiver detects the CRC mismatch and
raises :class:`~repro.resilience.retry.MessageCorruptError`, discarding
the frame), or delayed (the first collect raises
:class:`~repro.resilience.retry.MessageDelayedError`; the data stays in
the mailbox).  :class:`~repro.dist.halo.HaloExchanger` recovers from all
three under its :class:`~repro.resilience.retry.RetryPolicy`.  With no
injector, the transport is perfect and behaves exactly as before.
"""
from __future__ import annotations

import time
import zlib
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs.trace import _SESSIONS
from ..resilience.faults import FaultKind
from ..resilience.retry import (
    MessageCorruptError,
    MessageDelayedError,
    MessageLostError,
)

__all__ = ["SimComm", "TrafficStats", "MessageRecord"]


@dataclass
class TrafficStats:
    """Aggregate message statistics."""

    messages: int = 0
    bytes_total: int = 0
    by_pair: dict[tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int))

    def record(self, src: int, dst: int, nbytes: int) -> None:
        self.messages += 1
        self.bytes_total += nbytes
        self.by_pair[(src, dst)] += nbytes

    def per_pair_report(self) -> str:
        """Sorted text table of bytes per (src, dst) rank pair — consumed
        by the comm collector and the trace summary exporter."""
        if not self.by_pair:
            return "(no traffic)"
        lines = [
            f"  {src} -> {dst}: {nbytes:,} B"
            for (src, dst), nbytes in sorted(self.by_pair.items())
        ]
        return "\n".join(lines)

    def reset(self) -> None:
        self.messages = 0
        self.bytes_total = 0
        self.by_pair.clear()


@dataclass
class MessageRecord:
    """One posted message, for telemetry (only logged while a trace
    session is active)."""

    seq: int
    src: int
    dst: int
    tag: object
    nbytes: int
    t_post: float                 #: absolute ``perf_counter`` stamp
    t_collect: float | None = None


class SimComm:
    """Mailbox communicator for ``n_ranks`` in-process ranks.

    ``fault_injector`` (a :class:`~repro.resilience.faults.FaultInjector`
    or None) makes the transport imperfect — see the module docstring.
    """

    def __init__(self, n_ranks: int, *, fault_injector=None):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.faults = fault_injector
        self._mail: dict[tuple[int, int, object], np.ndarray] = {}
        #: key -> CRC32 of the payload as sent (kept only under injection)
        self._crc: dict[tuple[int, int, object], int] = {}
        #: key -> lateness [s] of a delayed message, not yet waited out
        self._late: dict[tuple[int, int, object], float] = {}
        #: keys whose payload was dropped in flight
        self._lost: set[tuple[int, int, object]] = set()
        self.stats = TrafficStats()
        self.message_log: list[MessageRecord] = []
        self._inflight: dict[tuple[int, int, object], MessageRecord] = {}
        self._seq = 0

    # ------------------------------------------------------------- p2p
    def post(self, src: int, dst: int, tag: object, buf: np.ndarray) -> None:
        """Non-blocking send analogue; the buffer is copied immediately."""
        self._check_rank(src)
        self._check_rank(dst)
        key = (src, dst, tag)
        if key in self._mail:
            raise RuntimeError(f"duplicate message {key} — missing collect?")
        data = np.array(buf, copy=True)
        self.stats.record(src, dst, buf.nbytes)
        if _SESSIONS:
            rec = MessageRecord(self._seq, src, dst, tag, buf.nbytes,
                                time.perf_counter())
            self._seq += 1
            self.message_log.append(rec)
            self._inflight[key] = rec
        if self.faults is not None:
            ev = self.faults.on_message(src, dst)
            if ev is not None:
                if ev.kind is FaultKind.DROP:
                    self._lost.add(key)
                    return                      # nothing reaches the mailbox
                if ev.kind is FaultKind.CORRUPT:
                    self._crc[key] = zlib.crc32(data.tobytes())
                    _flip_bytes(data)
                elif ev.kind is FaultKind.DELAY:
                    self._late[key] = ev.magnitude or 1e-3
        self._mail[key] = data

    def collect(self, src: int, dst: int, tag: object) -> np.ndarray:
        """Matching receive; raises if the message was never posted.

        Under fault injection the receive can fail with a typed,
        recoverable :class:`~repro.resilience.retry.HaloMessageError`
        (lost / corrupt / delayed) — see the module docstring.
        """
        key = (src, dst, tag)
        if key in self._lost:
            self._lost.discard(key)
            raise MessageLostError(
                f"message {tag!r} from rank {src} to rank {dst} was lost "
                "in flight", src=src, dst=dst, tag=tag)
        if key in self._late:
            delay = self._late.pop(key)
            raise MessageDelayedError(
                f"message {tag!r} from rank {src} to rank {dst} is "
                f"{delay * 1e3:.2f} ms late", src=src, dst=dst, tag=tag,
                delay=delay)
        try:
            data = self._mail.pop(key)
        except KeyError:
            raise RuntimeError(
                f"rank {dst} expected message {tag!r} from rank {src}, "
                "but nothing was posted — lockstep ordering bug"
            ) from None
        crc = self._crc.pop(key, None)
        if crc is not None and zlib.crc32(data.tobytes()) != crc:
            raise MessageCorruptError(
                f"message {tag!r} from rank {src} to rank {dst} failed "
                "its checksum; frame discarded", src=src, dst=dst, tag=tag)
        rec = self._inflight.pop(key, None)
        if rec is not None:
            rec.t_collect = time.perf_counter()
        return data

    def pending(self) -> int:
        """Number of posted-but-uncollected messages (0 after a clean
        exchange — asserted by the tests)."""
        return len(self._mail)

    # ------------------------------------------------------ collectives
    def allreduce_sum(self, values: list[float]) -> float:
        """Sum across ranks (every rank contributed one value)."""
        if len(values) != self.n_ranks:
            raise ValueError("allreduce needs one value per rank")
        return float(np.sum(values))

    def allreduce_max(self, values: list[float]) -> float:
        if len(values) != self.n_ranks:
            raise ValueError("allreduce needs one value per rank")
        return float(np.max(values))

    def _check_rank(self, r: int) -> None:
        if not 0 <= r < self.n_ranks:
            raise ValueError(f"rank {r} out of range [0, {self.n_ranks})")


def _flip_bytes(data: np.ndarray) -> None:
    """Deterministically corrupt a payload in place (first byte and a
    mid-buffer byte XORed) so the CRC check is guaranteed to trip."""
    raw = data.view(np.uint8).reshape(-1)
    raw[0] ^= 0xFF
    raw[raw.size // 2] ^= 0xFF
