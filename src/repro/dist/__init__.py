"""Simulated multi-GPU cluster substrate: 2-D decomposition (Table I),
in-process MPI, halo exchange, the three overlap optimizations, and
cluster/interconnect models of TSUBAME 1.2 / 2.0."""
from .decomposition import Subdomain, decompose, table1_mesh, TABLE1_CONFIGS, make_subgrid
from .network import ClusterSpec, LinkSpec, TSUBAME_1_2, TSUBAME_2_0
from .mpi_sim import SimComm
from .halo import HaloExchanger
from .multigpu import MultiGpuAsuca
from .overlap import OverlapConfig, OverlapModel, StepTimeline, VariableBreakdown

__all__ = [
    "Subdomain", "decompose", "table1_mesh", "TABLE1_CONFIGS", "make_subgrid",
    "ClusterSpec", "LinkSpec", "TSUBAME_1_2", "TSUBAME_2_0",
    "SimComm", "HaloExchanger", "MultiGpuAsuca",
    "OverlapConfig", "OverlapModel", "StepTimeline", "VariableBreakdown",
]
