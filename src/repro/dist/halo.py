"""Halo exchange between subdomains (paper Figs. 6 and 8).

Two lockstep phases per exchange:

1. **x phase** — east/west strips of width ``halo``, spanning the full y
   extent of the local array;
2. **y phase** — north/south strips spanning the full x extent
   *including the x halos just filled*, which transports the corner
   values exactly as the paper's "copy corner values on CPU" trick does
   (Fig. 8): after both phases every diagonal halo corner holds the
   diagonal neighbor's data.

The strip geometry mirrors :mod:`repro.core.boundary`'s periodic fills
(including the staggered-face offsets), so a decomposed run reproduces the
single-domain arithmetic bit for bit — asserted by
tests/dist/test_multigpu_equivalence.py.  Whether an edge rank wraps or
applies the open (zero-gradient) fill is decided per axis by the
:class:`~repro.dist.decomposition.Topology` built from the global grid's
periodicity flags — the single place that choice lives.

Every directed message goes through :meth:`HaloExchanger._collect`, which
recovers from the imperfect transport of a fault-injected
:class:`~repro.dist.mpi_sim.SimComm` under a
:class:`~repro.resilience.retry.RetryPolicy`: lost and corrupted frames
are retransmitted by the sender after an exponential backoff, delayed
frames are waited out (or charged a timeout when too late), and the
modeled recovery time is accumulated in :class:`RetryStats` so the
distributed timeline reflects it.
"""
from __future__ import annotations

import numpy as np

from ..core.state import State
from ..obs.trace import active_session
from ..resilience.retry import (
    HaloMessageError,
    MessageDelayedError,
    RetryExhaustedError,
    RetryPolicy,
    RetryStats,
)
from .decomposition import Subdomain, Topology
from .mpi_sim import SimComm

__all__ = ["HaloExchanger", "STAGGER"]

#: (staggered_x, staggered_y) per prognostic field
STAGGER: dict[str, tuple[bool, bool]] = {
    "rho": (False, False),
    "rhou": (True, False),
    "rhov": (False, True),
    "rhow": (False, False),
    "rhotheta": (False, False),
}


def _stagger_of(name: str) -> tuple[bool, bool]:
    return STAGGER.get(name, (False, False))


class HaloExchanger:
    """Performs field exchanges for every rank of a lockstep ensemble.

    Parameters
    ----------
    comm, subdomains
        the transport and the ranks it connects.
    topology
        the per-axis boundary treatment; build it with
        :meth:`Topology.from_grid`.
    retry
        :class:`~repro.resilience.retry.RetryPolicy` governing recovery
        from transport faults; defaults to a fresh policy, so a
        fault-injected exchange self-heals out of the box.
    """

    def __init__(
        self,
        comm: SimComm,
        subdomains: list[Subdomain],
        topology: Topology,
        *,
        retry: RetryPolicy | None = None,
    ):
        self.comm = comm
        self.subs = subdomains
        self.topology = topology
        self.retry = retry or RetryPolicy()
        self.stats = RetryStats()

    # ------------------------------------------------------------ public
    def exchange(self, states: list[State], names: list[str] | None,
                 axes: tuple[int, ...] = (0, 1)) -> None:
        """Refresh halos of the named fields on every rank.

        ``axes`` selects which topology axes to exchange (default both).
        The x axis runs before the y axis — the y-strips then carry
        freshly-filled x halos, which is what transports corner values
        to diagonal neighbors in two hops.
        """
        if names is None:
            names = states[0].prognostic_names()
        for axis in sorted(axes):
            for name in names:
                self._exchange_axis(states, name, axis=axis)

    # ----------------------------------------------------------- helpers
    def _exchange_axis(self, states: list[State], name: str, axis: int) -> None:
        stag = _stagger_of(name)[axis]
        h = states[0].grid.halo

        # post — and remember how to rebuild each strip so a lost or
        # corrupted frame can be retransmitted by its sender
        senders: dict[tuple[int, int, object], tuple] = {}
        for sub, st in zip(self.subs, states):
            arr = st.get(name)
            n_loc = sub.nx if axis == 0 else sub.ny
            lo_nb = self.topology.axis_neighbor(sub, axis, -1)
            hi_nb = self.topology.axis_neighbor(sub, axis, +1)
            if hi_nb is not None:
                # data travelling toward +axis fills the neighbor's low halo:
                # the last h interior cells/faces (indices [n, n+h))
                tag = (name, axis, "+")
                senders[(sub.rank, hi_nb, tag)] = (arr, n_loc, n_loc + h)
                self._post(sub.rank, hi_nb, tag, senders)
            if lo_nb is not None:
                # toward -axis fills the neighbor's high halo: first h
                # interior cells (staggered: faces [h+1, 2h+1))
                tag = (name, axis, "-")
                if stag:
                    senders[(sub.rank, lo_nb, tag)] = (arr, h + 1, 2 * h + 1)
                else:
                    senders[(sub.rank, lo_nb, tag)] = (arr, h, 2 * h)
                self._post(sub.rank, lo_nb, tag, senders)

        # collect / open-edge fill
        for sub, st in zip(self.subs, states):
            arr = st.get(name)
            n_loc = sub.nx if axis == 0 else sub.ny
            lo_nb = self.topology.axis_neighbor(sub, axis, -1)
            hi_nb = self.topology.axis_neighbor(sub, axis, +1)
            if lo_nb is not None:
                data = self._collect(lo_nb, sub.rank, (name, axis, "+"),
                                     senders)
                _put(arr, axis, 0, h, data)
            else:
                edge = _take(arr, axis, h, h + 1)
                _put(arr, axis, 0, h, np.broadcast_to(edge, _take(arr, axis, 0, h).shape))
            if hi_nb is not None:
                data = self._collect(hi_nb, sub.rank, (name, axis, "-"),
                                     senders)
                if stag:
                    _put(arr, axis, h + n_loc + 1, arr.shape[axis], data)
                else:
                    _put(arr, axis, h + n_loc, arr.shape[axis], data)
            else:
                if stag:
                    edge = _take(arr, axis, h + n_loc, h + n_loc + 1)
                    tgt = _take(arr, axis, h + n_loc + 1, arr.shape[axis])
                else:
                    edge = _take(arr, axis, h + n_loc - 1, h + n_loc)
                    tgt = _take(arr, axis, h + n_loc, arr.shape[axis])
                _put(arr, axis, arr.shape[axis] - tgt.shape[axis], arr.shape[axis],
                     np.broadcast_to(edge, tgt.shape))

    # ------------------------------------------------- faulty transport
    def _post(self, src: int, dst: int, tag: object, senders: dict) -> None:
        arr, lo, hi = senders[(src, dst, tag)]
        axis = tag[1]
        self.comm.post(src, dst, tag, _take(arr, axis, lo, hi))

    def _collect(self, src: int, dst: int, tag: object,
                 senders: dict) -> np.ndarray:
        """Receive one message, recovering from transport faults under
        the retry policy; raises
        :class:`~repro.resilience.retry.RetryExhaustedError` when the
        fault outlasts the policy."""
        policy = self.retry
        attempt = 0
        while True:
            try:
                return self.comm.collect(src, dst, tag)
            except MessageDelayedError as err:
                if err.delay <= policy.timeout:
                    # late but within the timeout: wait it out (the data
                    # is in the mailbox; the next collect returns it)
                    self.stats.waits += 1
                    self.stats.wait_s += err.delay
                    self.stats.count("delay")
                    self._note(err, retried=False)
                    continue
                # too late: the receiver times out and charges a retry
                self.stats.timeouts += 1
                backoff = policy.timeout + policy.backoff(attempt)
                attempt = self._charge_retry(err, attempt, backoff, "timeout")
            except HaloMessageError as err:
                # lost or corrupt: the sender must retransmit
                backoff = policy.backoff(attempt)
                attempt = self._charge_retry(err, attempt, backoff,
                                             type(err).__name__)
                self._post(src, dst, tag, senders)
                self.stats.retransmits += 1

    def _charge_retry(self, err: HaloMessageError, attempt: int,
                      backoff: float, kind: str) -> int:
        if attempt >= self.retry.max_retries:
            raise RetryExhaustedError(
                f"halo message {err.tag!r} from rank {err.src} to rank "
                f"{err.dst} failed {attempt + 1} times; giving up",
                attempts=attempt + 1, last_error=err) from err
        self.stats.retries += 1
        self.stats.backoff_s += backoff
        self.stats.count(kind)
        self._note(err, retried=True, backoff=backoff)
        return attempt + 1

    @staticmethod
    def _note(err: HaloMessageError, *, retried: bool,
              backoff: float = 0.0) -> None:
        sess = active_session()
        if sess is None:
            return
        m = sess.metrics
        if retried:
            m.counter("resilience.halo_retries").inc()
            m.counter("resilience.backoff_s").inc(backoff)
        else:
            m.counter("resilience.halo_waits").inc()
        sess.record_instant(
            f"halo_{'retry' if retried else 'wait'}", cat="resilience",
            args={"src": err.src, "dst": err.dst, "tag": str(err.tag)})


def _take(arr: np.ndarray, axis: int, lo: int, hi: int) -> np.ndarray:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(lo, hi)
    return arr[tuple(sl)]


def _put(arr: np.ndarray, axis: int, lo: int, hi: int, data: np.ndarray) -> None:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(lo, hi)
    arr[tuple(sl)] = data
