"""Halo exchange between subdomains (paper Figs. 6 and 8).

Two lockstep phases per exchange:

1. **x phase** — east/west strips of width ``halo``, spanning the full y
   extent of the local array;
2. **y phase** — north/south strips spanning the full x extent
   *including the x halos just filled*, which transports the corner
   values exactly as the paper's "copy corner values on CPU" trick does
   (Fig. 8): after both phases every diagonal halo corner holds the
   diagonal neighbor's data.

The strip geometry mirrors :mod:`repro.core.boundary`'s periodic fills
(including the staggered-face offsets), so a decomposed run reproduces the
single-domain arithmetic bit for bit — asserted by
tests/dist/test_multigpu_equivalence.py.  Ranks at a non-periodic global
edge apply the open (zero-gradient) fill instead.
"""
from __future__ import annotations

import numpy as np

from ..core.state import State
from .decomposition import Subdomain
from .mpi_sim import SimComm

__all__ = ["HaloExchanger", "STAGGER"]

#: (staggered_x, staggered_y) per prognostic field
STAGGER: dict[str, tuple[bool, bool]] = {
    "rho": (False, False),
    "rhou": (True, False),
    "rhov": (False, True),
    "rhow": (False, False),
    "rhotheta": (False, False),
}


def _stagger_of(name: str) -> tuple[bool, bool]:
    return STAGGER.get(name, (False, False))


class HaloExchanger:
    """Performs field exchanges for every rank of a lockstep ensemble."""

    def __init__(
        self,
        comm: SimComm,
        subdomains: list[Subdomain],
        *,
        periodic_x: bool,
        periodic_y: bool,
    ):
        self.comm = comm
        self.subs = subdomains
        self.periodic_x = periodic_x
        self.periodic_y = periodic_y

    # ------------------------------------------------------------ public
    def exchange(self, states: list[State], names: list[str] | None) -> None:
        """Refresh halos of the named fields on every rank."""
        if names is None:
            names = states[0].prognostic_names()
        for name in names:
            self._exchange_axis(states, name, axis=0)
        for name in names:
            self._exchange_axis(states, name, axis=1)

    # ----------------------------------------------------------- helpers
    def _exchange_axis(self, states: list[State], name: str, axis: int) -> None:
        stag = _stagger_of(name)[axis]
        periodic = self.periodic_x if axis == 0 else self.periodic_y
        h = states[0].grid.halo

        # post
        for sub, st in zip(self.subs, states):
            arr = st.get(name)
            n_loc = sub.nx if axis == 0 else sub.ny
            lo_nb = self._neighbor(sub, axis, -1)
            hi_nb = self._neighbor(sub, axis, +1)
            if hi_nb is not None:
                # data travelling toward +axis fills the neighbor's low halo:
                # the last h interior cells/faces (indices [n, n+h))
                strip = _take(arr, axis, n_loc, n_loc + h)
                self.comm.post(sub.rank, hi_nb, (name, axis, "+"), strip)
            if lo_nb is not None:
                # toward -axis fills the neighbor's high halo: first h
                # interior cells (staggered: faces [h+1, 2h+1))
                if stag:
                    strip = _take(arr, axis, h + 1, 2 * h + 1)
                else:
                    strip = _take(arr, axis, h, 2 * h)
                self.comm.post(sub.rank, lo_nb, (name, axis, "-"), strip)

        # collect / open-edge fill
        for sub, st in zip(self.subs, states):
            arr = st.get(name)
            n_loc = sub.nx if axis == 0 else sub.ny
            lo_nb = self._neighbor(sub, axis, -1)
            hi_nb = self._neighbor(sub, axis, +1)
            if lo_nb is not None:
                data = self.comm.collect(lo_nb, sub.rank, (name, axis, "+"))
                _put(arr, axis, 0, h, data)
            else:
                edge = _take(arr, axis, h, h + 1)
                _put(arr, axis, 0, h, np.broadcast_to(edge, _take(arr, axis, 0, h).shape))
            if hi_nb is not None:
                data = self.comm.collect(hi_nb, sub.rank, (name, axis, "-"))
                if stag:
                    _put(arr, axis, h + n_loc + 1, arr.shape[axis], data)
                else:
                    _put(arr, axis, h + n_loc, arr.shape[axis], data)
            else:
                if stag:
                    edge = _take(arr, axis, h + n_loc, h + n_loc + 1)
                    tgt = _take(arr, axis, h + n_loc + 1, arr.shape[axis])
                else:
                    edge = _take(arr, axis, h + n_loc - 1, h + n_loc)
                    tgt = _take(arr, axis, h + n_loc, arr.shape[axis])
                _put(arr, axis, arr.shape[axis] - tgt.shape[axis], arr.shape[axis],
                     np.broadcast_to(edge, tgt.shape))

    def _neighbor(self, sub: Subdomain, axis: int, direction: int) -> int | None:
        if axis == 0:
            return sub.neighbor(direction, 0, self.periodic_x, self.periodic_y)
        return sub.neighbor(0, direction, self.periodic_x, self.periodic_y)


def _take(arr: np.ndarray, axis: int, lo: int, hi: int) -> np.ndarray:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(lo, hi)
    return arr[tuple(sl)]


def _put(arr: np.ndarray, axis: int, lo: int, hi: int, data: np.ndarray) -> None:
    sl = [slice(None)] * arr.ndim
    sl[axis] = slice(lo, hi)
    arr[tuple(sl)] = data
