"""Functional multi-GPU ASUCA: lockstep SPMD execution over subdomains.

Each rank owns a subdomain (grid slice + reference slice + its own
:class:`~repro.core.rk3.Rk3Integrator`) and all ranks advance through the
long step in lockstep, pausing at every halo-exchange point of the
generator :meth:`~repro.core.rk3.Rk3Integrator.step_phases` — exactly the
communication pattern of the paper's Sec. V (exchanges of momentum,
density and potential temperature inside the short time step, moisture
once per stage).

Because local geometry/reference arrays are *slices* of the global ones
and the halo strips mirror the single-domain periodic fills, a decomposed
run reproduces the single-domain interior bit for bit
(tests/dist/test_multigpu_equivalence.py) — the distributed analogue of
the paper's "results agree within machine round-off" claim.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.boundary import RelaxationBC
from ..core.grid import Grid
from ..core.model import ModelConfig
from ..core.pressure import eos_pressure
from ..core.reference import ReferenceState
from ..core.rk3 import Rk3Integrator
from ..core.state import State
from ..obs.trace import span
from ..physics.ice import cold_rain_step
from ..physics.kessler import kessler_step
from ..resilience.faults import RankCrash
from .decomposition import Subdomain, Topology, decompose, make_subgrid
from .halo import STAGGER, HaloExchanger
from .mpi_sim import SimComm

__all__ = ["MultiGpuAsuca"]


def _slice_ref(ref: ReferenceState, sub: Subdomain, halo: int) -> ReferenceState:
    h = halo
    sl_x = slice(sub.x0, sub.x0 + sub.nx + 2 * h)
    sl_y = slice(sub.y0, sub.y0 + sub.ny + 2 * h)
    return ReferenceState(
        theta_c=ref.theta_c[sl_x, sl_y],
        pi_c=ref.pi_c[sl_x, sl_y],
        p_c=ref.p_c[sl_x, sl_y],
        rho_c=ref.rho_c[sl_x, sl_y],
        rhotheta_c=ref.rhotheta_c[sl_x, sl_y],
        theta_wf=ref.theta_wf[sl_x, sl_y],
        rho_wf=ref.rho_wf[sl_x, sl_y],
        p_wf=ref.p_wf[sl_x, sl_y],
        cs2_c=ref.cs2_c[sl_x, sl_y],
    )


def _field_slices(sub: Subdomain, halo: int, stag: tuple[bool, bool]):
    h = halo
    ex = 1 if stag[0] else 0
    ey = 1 if stag[1] else 0
    return (
        slice(sub.x0, sub.x0 + sub.nx + 2 * h + ex),
        slice(sub.y0, sub.y0 + sub.ny + 2 * h + ey),
    )


@dataclass
class _Rank:
    sub: Subdomain
    grid: Grid
    ref: ReferenceState
    integrator: Rk3Integrator


class MultiGpuAsuca:
    """2-D-decomposed, lockstep multi-rank driver.

    Parameters mirror :class:`~repro.core.model.AsucaModel`, plus the
    process-grid shape ``(px, py)``.  The per-axis open-vs-periodic edge
    treatment lives in a single :class:`~repro.dist.decomposition.Topology`
    built from the global grid's periodicity flags; the halo exchanger
    and everything else consult it rather than re-deriving the choice.

    ``fault_injector`` (a :class:`~repro.resilience.faults.FaultInjector`)
    makes the transport and the ranks imperfect: message faults surface
    through the retrying halo exchange (governed by ``retry``), and a
    scheduled rank crash raises
    :class:`~repro.resilience.faults.RankCrash` at the top of the step —
    recovered by checkpoint-restart in :class:`repro.api.Experiment`.
    """

    def __init__(
        self,
        global_grid: Grid,
        global_ref: ReferenceState,
        px: int,
        py: int,
        config: ModelConfig | None = None,
        relaxation: RelaxationBC | None = None,
        *,
        fault_injector=None,
        retry=None,
    ):
        self.global_grid = global_grid
        self.global_ref = global_ref
        self.config = config or ModelConfig()
        #: global Davies relaxation (real-data case); applied per rank
        #: with globally sliced weights/targets
        self.relaxation = relaxation
        self.px, self.py = px, py
        #: the one place the open-vs-periodic edge decision is made
        self.topology = Topology.from_grid(global_grid, px, py)
        self.faults = fault_injector
        self.subs = decompose(global_grid.nx, global_grid.ny, px, py,
                              min_cells=global_grid.halo)
        self.comm = SimComm(len(self.subs), fault_injector=fault_injector)
        self.exchanger = HaloExchanger(self.comm, self.subs, self.topology,
                                       retry=retry)
        #: completed long steps (the fault plan and checkpoints key on it)
        self.step_index = 0
        #: per-rank virtual GPUs (telemetry path); see :meth:`attach_devices`
        self.devices: list | None = None
        #: exchanger recovery seconds already charged to the devices
        self._backoff_charged = 0.0
        self.ranks: list[_Rank] = []
        for sub in self.subs:
            grid = make_subgrid(global_grid, sub)
            ref = _slice_ref(global_ref, sub, global_grid.halo)
            rhotheta_ref_hat = ref.rhotheta_c * grid.jac[:, :, None]
            p_ref = eos_pressure(rhotheta_ref_hat, grid)
            integ = Rk3Integrator(
                grid, ref, self.config.dynamics,
                exchange=self._no_exchange, p_ref=p_ref,
            )
            self.ranks.append(_Rank(sub=sub, grid=grid, ref=ref, integrator=integ))

    @staticmethod
    def _no_exchange(state: State, names) -> None:  # pragma: no cover
        raise RuntimeError(
            "rank-local integrator must be driven through step_phases(); "
            "direct step() would skip the multi-GPU exchange"
        )

    # ------------------------------------------------------ device telemetry
    def attach_devices(self, spec=None, *, precision=None, order=None,
                       ns: int | None = None, copy_engines: int = 1,
                       counters: bool = False, counter_every: int = 1) -> list:
        """Attach one virtual :class:`~repro.gpu.device.GPUDevice` per
        rank.  Subsequent :meth:`step` calls charge the modeled kernel
        launches of the long step and the halo PCIe copies to each
        rank's timeline, so a decomposed run yields per-rank device
        tracks (kernels, H2D/D2H) alongside the message flows — the
        telemetry picture of the paper's Figs. 8/9."""
        from ..gpu.coalescing import ArrayOrder
        from ..gpu.device import GPUDevice
        from ..gpu.spec import Precision, TESLA_S1070
        from ..perf.costmodel import ASUCA_KERNELS, launch_schedule

        self._dev_precision = precision or Precision.SINGLE
        self._dev_order = order or ArrayOrder.XZY
        self._dev_schedule = launch_schedule(
            ns or self.config.dynamics.ns,
            include_ice=self.config.ice_enabled)
        self._dev_kernels = ASUCA_KERNELS
        self.devices = [
            GPUDevice(spec or TESLA_S1070, copy_engines=copy_engines,
                      label=f"rank{r}", fault_injector=self.faults)
            for r in range(len(self.subs))
        ]
        #: per-rank counting hooks (measured FLOP/byte per launch); None
        #: when the run is not counted
        self._dev_counting = None
        if counters:
            from ..gpu.counters import CountingHook

            self._dev_counting = [
                CountingHook(rank.grid, rank.ref,
                             precision=self._dev_precision,
                             sample_every=counter_every)
                for rank in self.ranks
            ]
        self._backoff_charged = 0.0
        return self.devices

    def _charge_devices(self, by_pair_before: dict, states=None) -> None:
        """Charge one step's modeled kernels plus the step's halo PCIe
        traffic (D2H on the sender, H2D on the receiver — the GPU-CPU
        leg of every exchanged strip) to the per-rank timelines.  On a
        counted run (``attach_devices(counters=True)``), the per-rank
        hook measures this step's kernels against the rank state and
        annotates the launches with measured counts."""
        nz = self.global_grid.nz
        counting = getattr(self, "_dev_counting", None)
        for r, (rank, device) in enumerate(zip(self.ranks, self.devices)):
            n_points = rank.sub.nx * rank.sub.ny * nz
            hook = counting[r] if counting is not None else None
            sampled = (hook is not None and states is not None
                       and hook.begin_step(self.step_index, states[r]))
            for name, count in self._dev_schedule:
                kernel = self._dev_kernels[name]
                for _ in range(count):
                    _, op = kernel.launch(device, n_points,
                                          precision=self._dev_precision,
                                          order=self._dev_order)
                    if sampled:
                        hook.annotate(op, name, n_points)
        for (src, dst), nbytes in self.comm.stats.by_pair.items():
            delta = nbytes - by_pair_before.get((src, dst), 0)
            if delta <= 0:
                continue
            t_d2h = delta / self.devices[src].spec.pcie_bandwidth
            self.devices[src].schedule(
                f"halo_d2h:{src}->{dst}", "d2h",
                self.devices[src].default_stream, t_d2h,
                bytes_moved=delta, tag="halo")
            t_h2d = delta / self.devices[dst].spec.pcie_bandwidth
            self.devices[dst].schedule(
                f"halo_h2d:{src}->{dst}", "h2d",
                self.devices[dst].default_stream, t_h2d,
                bytes_moved=delta, tag="halo")
        # retry/backoff waits stall the host-side network leg: charge the
        # step's newly accrued recovery time to every rank's 'mpi' engine
        # so overlap numbers reflect the cost of the recovered faults
        recovery = self.exchanger.stats.recovery_s - self._backoff_charged
        if recovery > 0:
            for device in self.devices:
                device.schedule("halo_recovery", "mpi",
                                device.default_stream, recovery,
                                tag="resilience")
            self._backoff_charged += recovery

    # -------------------------------------------------------- scatter/gather
    def scatter_state(self, global_state: State) -> list[State]:
        """Split a global state into per-rank states (copies)."""
        h = self.global_grid.halo
        states = []
        for rank in self.ranks:
            sub = rank.sub
            kw = {}
            for name in ("rho", "rhou", "rhov", "rhow", "rhotheta"):
                stag = STAGGER[name]
                sx, sy = _field_slices(sub, h, stag)
                kw[name] = global_state.get(name)[sx, sy].copy()
            sxc, syc = _field_slices(sub, h, (False, False))
            q = {k: v[sxc, syc].copy() for k, v in global_state.q.items()}
            states.append(State(grid=rank.grid, q=q, time=global_state.time, **kw))
        return states

    def gather_state(self, states: list[State]) -> State:
        """Assemble a global state from rank states (interiors only; the
        global halos are refilled by the caller if needed)."""
        g = self.global_grid
        h = g.halo
        out = State(
            grid=g,
            rho=g.zeros_c(states[0].dtype),
            rhou=g.zeros_u(states[0].dtype),
            rhov=g.zeros_v(states[0].dtype),
            rhow=g.zeros_w(states[0].dtype),
            rhotheta=g.zeros_c(states[0].dtype),
            q={k: g.zeros_c(states[0].dtype) for k in states[0].q},
            time=states[0].time,
        )
        for rank, st in zip(self.ranks, states):
            sub = rank.sub
            for name in st.prognostic_names():
                stag = STAGGER.get(name, (False, False))
                loc = st.get(name)
                glob = out.get(name)
                ex = 1 if stag[0] else 0
                ey = 1 if stag[1] else 0
                glob[
                    h + sub.x0 : h + sub.x0 + sub.nx + ex,
                    h + sub.y0 : h + sub.y0 + sub.ny + ey,
                ] = loc[h : h + sub.nx + ex, h : h + sub.ny + ey]
        # per-rank diagnostics: accumulated precipitation (interior-sized)
        if any(st.precip_accum is not None for st in states):
            acc = np.zeros((g.nx, g.ny), dtype=states[0].dtype)
            for rank, st in zip(self.ranks, states):
                if st.precip_accum is not None:
                    sub = rank.sub
                    acc[sub.x0 : sub.x0 + sub.nx,
                        sub.y0 : sub.y0 + sub.ny] = st.precip_accum
            out.precip_accum = acc
        return out

    # ---------------------------------------------------------------- step
    def exchange_all(self, states: list[State], names=None,
                     axes: tuple[int, ...] = (0, 1)) -> None:
        with span("halo_exchange", cat="comm"):
            self.exchanger.exchange(states, names, axes=axes)

    def step(self, states: list[State]) -> list[State]:
        """One long step across all ranks, lockstep.

        Raises :class:`~repro.resilience.faults.RankCrash` before any
        work when the fault plan kills a rank at this step.
        """
        if self.faults is not None:
            self.faults.begin_step(self.step_index)
            crashed = self.faults.crash_rank(self.step_index)
            if crashed is not None:
                raise RankCrash(rank=crashed, step=self.step_index)
        by_pair_before = (dict(self.comm.stats.by_pair)
                          if self.devices is not None else {})
        with span("rk3_long_step", cat="phase"):
            gens = [r.integrator.step_phases(st)
                    for r, st in zip(self.ranks, states)]
            results: list[State | None] = [None] * len(gens)
            live = list(range(len(gens)))
            while live:
                pending: list[tuple[State, list[str] | None]] = []
                for i in list(live):
                    try:
                        pending.append(next(gens[i]))
                    except StopIteration as stop:
                        results[i] = stop.value
                        live.remove(i)
                if pending:
                    if len(pending) != len(gens):
                        raise RuntimeError(
                            "ranks desynchronized at an exchange point")
                    fields = pending[0][1]
                    self.exchange_all([st for st, _ in pending], fields)
        new_states = [r for r in results if r is not None]

        if self.config.physics_enabled:
            with span("physics", cat="phase"):
                for rank, st in zip(self.ranks, new_states):
                    kessler_step(st, rank.ref, self.config.dynamics.dt,
                                 self.config.kessler)
                    if self.config.ice_enabled:
                        cold_rain_step(st, rank.ref, self.config.dynamics.dt,
                                       self.config.ice)
            fields = ["rhotheta", "qv", "qc", "qr", "rho"]
            if self.config.ice_enabled:
                fields += ["qi", "qs"]
            self.exchange_all(new_states, fields)
        if self.relaxation is not None:
            with span("boundary_relaxation", cat="phase"):
                dt = self.config.dynamics.dt
                for rank, st in zip(self.ranks, new_states):
                    self.relaxation.apply_sliced(st, dt, rank.sub.x0,
                                                 rank.sub.y0)
        if self.devices is not None:
            self._charge_devices(by_pair_before, new_states)
        self.step_index += 1
        return new_states

    def run(self, states: list[State], n_steps: int, *,
            checkpoint=None) -> list[State]:
        """Advance ``n_steps`` long steps; with a
        :class:`~repro.resilience.checkpoint.CheckpointManager` the
        per-rank states are snapshotted at the manager's cadence."""
        for _ in range(n_steps):
            states = self.step(states)
            if checkpoint is not None and checkpoint.due(self.step_index):
                checkpoint.save(self.step_index, states)
        return states

    # ---------------------------------------------------------- diagnostics
    def total_mass(self, states: list[State]) -> float:
        return self.comm.allreduce_sum([st.total_mass() for st in states])

    def max_w(self, states: list[State]) -> float:
        vals = []
        for st in states:
            _, _, w = st.velocities()
            vals.append(float(np.abs(st.grid.interior(w)).max()))
        return self.comm.allreduce_max(vals)
