"""2-D (Px x Py) domain decomposition (paper Sec. V).

"We decompose the given grid in both the x and y directions (2D
decomposition) and allocate each sub domain to a single GPU.  Since the z
dimension is relatively small ... each GPU is responsible for all the
elements in the z direction."

Table I of the paper follows a simple law this module encodes: every GPU
holds a 320 x 256 x 48 block and adjacent blocks share a 4-cell overlap
(two halo cells contributed by each side), so the global mesh is::

    nx = 320 Px - 4 (Px - 1),   ny = 256 Py - 4 (Py - 1),   nz = 48

which reproduces every row of the table exactly (e.g. 22 x 24 GPUs ->
6956 x 6052 x 48).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import Grid

__all__ = [
    "Subdomain",
    "Topology",
    "decompose",
    "table1_mesh",
    "TABLE1_CONFIGS",
    "make_subgrid",
]

#: the (Px x Py) configurations of the paper's Table I
TABLE1_CONFIGS: list[tuple[int, int]] = [
    (2, 3), (4, 5), (6, 9), (8, 10), (10, 12), (12, 14), (12, 16),
    (14, 18), (16, 20), (18, 20), (18, 22), (20, 22), (20, 24), (22, 24),
]

#: per-GPU block and shared overlap of the paper's weak-scaling runs
BLOCK_NX, BLOCK_NY, BLOCK_NZ, OVERLAP = 320, 256, 48, 4


def table1_mesh(px: int, py: int) -> tuple[int, int, int]:
    """Global mesh size for a (px x py) GPU grid — the paper's Table I."""
    return (
        BLOCK_NX * px - OVERLAP * (px - 1),
        BLOCK_NY * py - OVERLAP * (py - 1),
        BLOCK_NZ,
    )


@dataclass(frozen=True)
class Subdomain:
    """One rank's slice of the global interior grid."""

    rank: int
    cx: int                 #: x coordinate in the process grid
    cy: int
    px: int
    py: int
    x0: int                 #: global interior offset of the local interior
    y0: int
    nx: int                 #: local interior extent
    ny: int

    def neighbor(self, dx: int, dy: int, periodic_x: bool, periodic_y: bool) -> int | None:
        """Rank of the neighbor at (cx+dx, cy+dy), or None at an open
        edge.  Rank numbering is row-major in (cx, cy)."""
        nx_, ny_ = self.cx + dx, self.cy + dy
        if periodic_x:
            nx_ %= self.px
        elif not 0 <= nx_ < self.px:
            return None
        if periodic_y:
            ny_ %= self.py
        elif not 0 <= ny_ < self.py:
            return None
        return nx_ * self.py + ny_

    def __str__(self) -> str:  # pragma: no cover - debugging nicety
        return (f"Subdomain(rank={self.rank}, ({self.cx},{self.cy}) of "
                f"{self.px}x{self.py}, x0={self.x0}, y0={self.y0}, "
                f"{self.nx}x{self.ny})")


@dataclass(frozen=True)
class Topology:
    """Process-grid shape plus the per-axis boundary treatment.

    This is the *single* owner of the periodic-vs-open decision for a
    decomposed run: build it once from the global grid's periodicity
    flags (:meth:`from_grid`) and pass it to every consumer
    (:class:`~repro.dist.halo.HaloExchanger`,
    :class:`~repro.dist.multigpu.MultiGpuAsuca`).  Edge ranks of a
    non-periodic axis have no neighbor there and apply the open
    (zero-gradient) fill instead of wrapping — previously that choice
    was re-derived independently in ``halo.py`` and ``multigpu.py`` and
    could desynchronize.
    """

    px: int
    py: int
    periodic_x: bool
    periodic_y: bool

    @classmethod
    def from_grid(cls, grid: Grid, px: int, py: int) -> "Topology":
        """The canonical constructor: boundary treatment comes from the
        global grid's periodicity flags, per axis."""
        return cls(px=px, py=py, periodic_x=grid.periodic_x,
                   periodic_y=grid.periodic_y)

    def periodic(self, axis: int) -> bool:
        """Does ``axis`` (0 = x, 1 = y) wrap at the global edge?"""
        return self.periodic_x if axis == 0 else self.periodic_y

    def neighbor(self, sub: Subdomain, dx: int, dy: int) -> int | None:
        """Rank at (cx+dx, cy+dy) from ``sub``, or None at an open edge."""
        return sub.neighbor(dx, dy, self.periodic_x, self.periodic_y)

    def axis_neighbor(self, sub: Subdomain, axis: int,
                      direction: int) -> int | None:
        """Neighbor one step along ``axis`` in ``direction`` (+1/-1)."""
        if axis == 0:
            return self.neighbor(sub, direction, 0)
        return self.neighbor(sub, 0, direction)


def decompose(
    nx: int, ny: int, px: int, py: int, *, min_cells: int = 3
) -> list[Subdomain]:
    """Split an (nx, ny) interior into px x py near-equal subdomains.

    Remainder cells go to the lowest-coordinate ranks (standard block
    distribution).  Every subdomain must be at least ``min_cells`` (the
    halo width) cells wide so a halo comes from a single neighbor.
    """
    if px < 1 or py < 1:
        raise ValueError("process grid must be at least 1x1")
    if nx < min_cells * px or ny < min_cells * py:
        raise ValueError(
            f"{nx}x{ny} interior too small for a {px}x{py} decomposition "
            f"(needs >= {min_cells} cells per rank per direction)"
        )
    xs = _block_sizes(nx, px)
    ys = _block_sizes(ny, py)
    x_offsets = np.concatenate([[0], np.cumsum(xs)[:-1]])
    y_offsets = np.concatenate([[0], np.cumsum(ys)[:-1]])
    subs = []
    for cx in range(px):
        for cy in range(py):
            rank = cx * py + cy
            subs.append(
                Subdomain(
                    rank=rank, cx=cx, cy=cy, px=px, py=py,
                    x0=int(x_offsets[cx]), y0=int(y_offsets[cy]),
                    nx=int(xs[cx]), ny=int(ys[cy]),
                )
            )
    return subs


def _block_sizes(n: int, p: int) -> np.ndarray:
    base, rem = divmod(n, p)
    return np.array([base + (1 if i < rem else 0) for i in range(p)])


def make_subgrid(global_grid: Grid, sub: Subdomain) -> Grid:
    """Local grid of one rank, with geometry arrays *sliced* from the
    global grid so that distributed arithmetic is bit-identical to the
    single-domain run (halo regions carry the true neighbor geometry)."""
    g = global_grid
    h = g.halo
    # global arrays span [0, nx + 2h); local interior [x0, x0+nxl) maps to
    # global [h + x0, h + x0 + nxl); the local array spans 2h more.
    gx0 = sub.x0
    gy0 = sub.y0
    sl_x = slice(gx0, gx0 + sub.nx + 2 * h)
    sl_y = slice(gy0, gy0 + sub.ny + 2 * h)
    sl_xu = slice(gx0, gx0 + sub.nx + 2 * h + 1)
    sl_yv = slice(gy0, gy0 + sub.ny + 2 * h + 1)
    return Grid(
        nx=sub.nx, ny=sub.ny, nz=g.nz, dx=g.dx, dy=g.dy, ztop=g.ztop, halo=h,
        z_f=g.z_f, z_c=g.z_c, dz_c=g.dz_c, dz_f=g.dz_f,
        zs=g.zs[sl_x, sl_y],
        jac=g.jac[sl_x, sl_y],
        jac_u=g.jac_u[sl_xu, sl_y],
        jac_v=g.jac_v[sl_x, sl_yv],
        dzsdx_u=g.dzsdx_u[sl_xu, sl_y],
        dzsdy_v=g.dzsdy_v[sl_x, sl_yv],
        periodic_x=False,  # halos always come from exchange, never wrap
        periodic_y=False,
        decay_c=g.decay_c,
        decay_f=g.decay_f,
    )
