"""Interconnect and cluster models (TSUBAME 1.2 and 2.0).

Link numbers follow the paper: nodes join two S1070 GPUs via PCI-Express
Gen1 x8 and talk over dual-rail SDR InfiniBand whose peak throughput is
2 GB/s; the *achieved* neighbor-exchange bandwidth with Voltaire MPI is
438 MB/s (Sec. V-B / Fig. 9).  TSUBAME 2.0 (Sec. VII) moves to three Fermi
GPUs per node on full-bisection dual-rail QDR InfiniBand (8 GB/s peak),
which the paper models as "each GPU ... more than four times the
bandwidth" — we encode exactly that factor.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import DeviceSpec, FERMI_M2050, TESLA_S1070

__all__ = [
    "LinkSpec",
    "ClusterSpec",
    "TSUBAME_1_2",
    "TSUBAME_2_0",
    "PCIE_GEN1_X8",
    "PCIE_GEN2_X16",
    "IB_SDR_MPI",
    "IB_QDR_MPI",
]


@dataclass(frozen=True)
class LinkSpec:
    """Point-to-point link: latency + effective (achieved) bandwidth."""

    name: str
    bandwidth: float         #: achieved bandwidth [B/s]
    latency: float = 20e-6   #: per-message latency [s]

    def transfer_time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


#: effective rate calibrated against the paper's Fig. 11 GPU-CPU bar
#: (145 ms for the per-step halo staging volume)
PCIE_GEN1_X8 = LinkSpec("PCIe Gen1 x8", bandwidth=2.2e9, latency=10e-6)
PCIE_GEN2_X16 = LinkSpec("PCIe Gen2 x16", bandwidth=6.0e9, latency=8e-6)
#: per-neighbor MPI exchange over dual-rail SDR IB: the paper's measured
#: 438 MB/s effective
IB_SDR_MPI = LinkSpec("SDR InfiniBand + MPI", bandwidth=0.438e9, latency=25e-6)
#: TSUBAME 2.0: ">= 4x the per-GPU bandwidth" of the above (Sec. VII)
IB_QDR_MPI = LinkSpec("QDR InfiniBand + MPI", bandwidth=4 * 0.438e9, latency=15e-6)


@dataclass(frozen=True)
class ClusterSpec:
    """A GPU cluster for the multi-GPU performance model."""

    name: str
    gpu: DeviceSpec
    gpus_per_node: int
    pcie: LinkSpec
    mpi: LinkSpec
    max_gpus: int

    def mpi_time(self, nbytes: float) -> float:
        return self.mpi.transfer_time(nbytes)

    def pcie_time(self, nbytes: float) -> float:
        return self.pcie.transfer_time(nbytes)


TSUBAME_1_2 = ClusterSpec(
    name="TSUBAME 1.2",
    gpu=TESLA_S1070,
    gpus_per_node=2,
    pcie=PCIE_GEN1_X8,
    mpi=IB_SDR_MPI,
    max_gpus=680,
)

TSUBAME_2_0 = ClusterSpec(
    name="TSUBAME 2.0",
    gpu=FERMI_M2050,
    gpus_per_node=3,
    pcie=PCIE_GEN2_X16,
    mpi=IB_QDR_MPI,
    max_gpus=4224,
)
