"""Performance model of the multi-GPU step: the paper's three
communication/computation overlap methods (Sec. V-A, Figs. 7-9, 11).

One representative (slowest) rank is scheduled on a virtual
:class:`~repro.gpu.device.GPUDevice` whose engines encode the paper's
concurrency: one compute engine (GT200 runs one kernel at a time), one DMA
engine (S1070), and an 'mpi' engine for the host-side network.  Per
acoustic substep, each of the five short-step variables (momentum x/y,
vertical momentum via the Helmholtz solve, density, potential temperature)
either

* runs as a **single kernel followed by blocking communication**
  (non-overlapping reference), or
* is **divided** (method 2) into y-boundary, x-boundary and inner kernels
  scheduled on three streams exactly as the paper's Fig. 8: boundary
  kernels first, their pack/D2H/MPI/H2D chains proceed on the copy/MPI
  engines while the inner kernel runs; with method 3, density's
  communication window is fused with potential temperature's compute.

The 13 water-substance advections of the long step pipeline their
exchanges behind one another's kernels (method 1, Fig. 7).

Boundary kernels are narrow, so their per-point cost is inflated by the
device's latency-hiding saturation curve — reproducing the paper's
observation that "dividing the computation domain ... tends to degrade the
performance" while overlap still wins.

Message sizes use the 4-cell block overlap of Table I (the ``OVERLAP``
constant of :mod:`repro.dist.decomposition`), and the variables exchanged
per substep include the pressure/work fields the production code ships
with the five prognostics.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..gpu.device import Access, Event, GPUDevice
from ..gpu.kernel import Kernel
from ..gpu.spec import Precision
from ..perf.costmodel import ASUCA_KERNELS, DEFAULT_NS, N_WATER_TRACERS, launch_schedule
from .decomposition import OVERLAP
from .network import ClusterSpec, TSUBAME_1_2

__all__ = ["OverlapConfig", "VariableBreakdown", "StepTimeline", "OverlapModel",
           "METHOD_CONFIGS", "method_timelines"]


@dataclass(frozen=True)
class OverlapConfig:
    """Which of the paper's three optimizations are active."""

    method1_pipeline: bool = True    #: inter-variable pipelining (Fig. 7)
    method2_divide: bool = True      #: kernel division (Fig. 8)
    method3_fuse: bool = True        #: density+theta logical fusion
    exchange_width: int = OVERLAP    #: halo cells exchanged per side
    #: work fields shipped along with each prognostic exchange (pressure,
    #: packed metric terms); calibrated against the paper's Fig. 11 MPI bar
    extra_exchange_fields: float = 0.6
    #: slowdown of the narrow boundary kernels beyond the saturation curve
    #: (block-granularity padding of (64,4) blocks on 4-wide strips and
    #: per-launch overheads) — the paper's "reduced parallelism within each
    #: kernel"; calibrated against Fig. 11's 763 ms divided-compute bar
    boundary_factor: float = 3.0
    #: per-barrier inter-node arrival skew [s] paid when waiting for
    #: asynchronous exchanges at the end of each substep (528-GPU scale);
    #: calibrated against Fig. 11's 988 ms total
    sync_skew: float = 9.0e-3
    #: model the node's GPUs contending for the host link (TSUBAME 1.2
    #: attaches two S1070 GPUs per PCIe complex): divides the effective
    #: PCIe bandwidth by gpus_per_node.  Off by default because the
    #: measured effective link rates already include in-situ contention.
    pcie_sharing: bool = False
    #: test-only fault seed for the sanitizer fixtures: "missing-event"
    #: drops the corner-dependency edge (x MPI after y MPI) on the first
    #: short-step variable.  The schedule is unchanged — the single MPI
    #: engine still serializes the transfers — which is exactly the class
    #: of latent hazard `repro.analysis.racecheck` exists to catch.
    seed_hazard: str | None = None

    @property
    def any_overlap(self) -> bool:
        return self.method1_pipeline or self.method2_divide


#: the five short-time-step variables of the paper's Fig. 9, mapped to the
#: cost-table kernels whose per-substep work belongs to each
SHORT_STEP_VARIABLES: list[tuple[str, list[str]]] = [
    ("Momentum (x)", ["pgf_x", "momentum_update"]),
    ("Momentum (y)", ["pgf_y", "momentum_update"]),
    ("Helmholtz-like eq.", ["helmholtz", "vertical_flux"]),
    ("Density", ["continuity", "vertical_flux"]),
    ("Potential temperature", ["theta_update", "eos_pressure"]),
]


@dataclass
class VariableBreakdown:
    """Per-call times of one short-step variable (one bar group of
    Fig. 9), all in seconds."""

    name: str
    whole: float          #: single (undivided) kernel
    inner: float          #: divided: interior kernel
    boundary_y: float
    boundary_x: float
    gpu_to_host: float
    mpi: float
    host_to_gpu: float

    @property
    def divided_compute(self) -> float:
        return self.inner + self.boundary_y + self.boundary_x

    @property
    def communication(self) -> float:
        return self.gpu_to_host + self.mpi + self.host_to_gpu


@dataclass
class StepTimeline:
    """Aggregates of one long step on the slowest rank (Fig. 11 bars)."""

    total: float
    compute: float
    mpi: float
    gpu_cpu: float
    overlap: bool
    sync_skew: float = 0.0    #: barrier arrival-skew stalls (not comm)
    device: GPUDevice = field(repr=False, default=None)

    @property
    def communication(self) -> float:
        return self.mpi + self.gpu_cpu

    @property
    def hidden_fraction(self) -> float:
        """Fraction of communication hidden under computation, with the
        paper's accounting: everything that is not computation counts as
        exposed communication ("The difference of the overall and
        computation times is the communication time that was not
        overlapped")."""
        exposed = self.total - self.compute
        return max(0.0, 1.0 - exposed / self.communication) if self.communication else 0.0

    @property
    def hidden_fraction_comm_only(self) -> float:
        """Same, but excluding the barrier arrival-skew stalls — the right
        measure for the Sec. VII "communication completely hidden" claim."""
        exposed = self.total - self.compute - self.sync_skew
        return max(0.0, 1.0 - exposed / self.communication) if self.communication else 0.0


class OverlapModel:
    """Schedules one ASUCA long step for a rank with ``links_x``/``links_y``
    communicating sides (2 each for an interior rank)."""

    def __init__(
        self,
        cluster: ClusterSpec = TSUBAME_1_2,
        *,
        nx: int = 320,
        ny: int = 256,
        nz: int = 48,
        precision: Precision = Precision.SINGLE,
        ns: int = DEFAULT_NS,
        links_x: int = 2,
        links_y: int = 2,
        config: OverlapConfig = OverlapConfig(),
    ):
        self.cluster = cluster
        self.nx, self.ny, self.nz = nx, ny, nz
        self.precision = precision
        self.ns = ns
        self.links_x = links_x
        self.links_y = links_y
        self.config = config
        self.n_points = nx * ny * nz
        self.nsub = 1 + max(ns // 2, 1) + ns

    # ------------------------------------------------------------ pieces
    def _kernel_time(self, kernel: Kernel, n_points: float) -> float:
        return kernel.duration(n_points, self.cluster.gpu, self.precision)

    def _var_compute(self, kernels: list[str], n_points: float) -> float:
        return sum(self._kernel_time(ASUCA_KERNELS[k], n_points) for k in kernels)

    def _strip_bytes(self, axis: str) -> float:
        """Bytes of one boundary strip (one side, one field)."""
        w = self.config.exchange_width
        other = self.ny if axis == "x" else self.nx
        return w * other * self.nz * self.precision.itemsize

    def _fields_per_exchange(self) -> float:
        return 1 + self.config.extra_exchange_fields

    def variable_breakdown(self, name: str, kernels: list[str]) -> VariableBreakdown:
        """Fig. 9 numbers for one variable (one substep's single call)."""
        cl = self.cluster
        w = self.config.exchange_width
        inner_pts = max(self.nx - 2 * w, 1) * max(self.ny - 2 * w, 1) * self.nz
        bx_pts = w * self.ny * self.nz * self.links_x
        by_pts = w * self.nx * self.nz * self.links_y
        nf = self._fields_per_exchange()
        bytes_x = self._strip_bytes("x") * self.links_x * nf
        bytes_y = self._strip_bytes("y") * self.links_y * nf
        pcie_factor = cl.gpus_per_node if self.config.pcie_sharing else 1.0
        pcie_time = pcie_factor * (
            cl.pcie.transfer_time(bytes_x) + cl.pcie.transfer_time(bytes_y)
        )
        return VariableBreakdown(
            name=name,
            whole=self._var_compute(kernels, self.n_points),
            inner=self._var_compute(kernels, inner_pts),
            boundary_y=self.config.boundary_factor * self._var_compute(kernels, by_pts),
            boundary_x=self.config.boundary_factor * self._var_compute(kernels, bx_pts),
            gpu_to_host=pcie_time,
            mpi=cl.mpi.transfer_time(bytes_x) + cl.mpi.transfer_time(bytes_y),
            host_to_gpu=pcie_time,
        )

    # --------------------------------------------------------- scheduling
    def _schedule_substep_overlap(self, dev: GPUDevice, streams, vb_list) -> None:
        """One acoustic substep with methods 2 (+3): Fig. 8 pipeline."""
        s_bnd_y, s_bnd_x, s_inner = streams
        fuse = self.config.method3_fuse
        i = 0
        while i < len(vb_list):
            vb = vb_list[i]
            group = [vb]
            fused_inner = vb.inner
            name = vb.name
            if fuse and vb.name == "Density" and i + 1 < len(vb_list):
                # method 3: treat density + potential temperature as one
                # logical kernel so theta's compute hides rho's comm; the
                # halos of *both* variables still travel
                vb2 = vb_list[i + 1]
                group.append(vb2)
                fused_inner = vb.inner + vb2.inner
                name = "Density+Theta (fused)"
                i += 1
            # (1) y-boundary kernels of the group
            for v in group:
                dev.schedule(f"{v.name}:bnd_y", "kernel", s_bnd_y, v.boundary_y,
                             tag="compute",
                             accesses=(Access(f"{v.name}:strip_y", "w"),))
            ev_y = s_bnd_y.record_event()
            # (2) x-boundary kernels + (3) pack
            for v in group:
                dev.schedule(f"{v.name}:bnd_x", "kernel", s_bnd_x, v.boundary_x,
                             tag="compute",
                             accesses=(Access(f"{v.name}:strip_x", "w"),))
            pack = dev.schedule(f"{name}:pack", "kernel", s_bnd_x,
                                0.1 * vb.boundary_x, tag="compute")
            # (5) y exchanges: D2H -> MPI -> H2D on stream1
            s_bnd_y.wait_event(ev_y)
            mpi_y_ops = []
            for v in group:
                dev.schedule(f"{v.name}:d2h_y", "d2h", s_bnd_y, v.gpu_to_host / 2,
                             tag="gpu_cpu",
                             accesses=(Access(f"{v.name}:strip_y", "r"),
                                       Access(f"{v.name}:host_y", "w")))
                mpi_y = dev.schedule(f"{v.name}:mpi_y", "mpi", s_bnd_y, v.mpi / 2,
                                     tag="mpi",
                                     accesses=(Access(f"{v.name}:host_y", "rw"),))
                mpi_y_ops.append(mpi_y)
                dev.schedule(f"{v.name}:h2d_y", "h2d", s_bnd_y, v.host_to_gpu / 2,
                             tag="gpu_cpu",
                             accesses=(Access(f"{v.name}:host_y", "r"),
                                       Access(f"{v.name}:halo_y", "w")))
            # (6) x exchanges on stream2; the x buffers carry the corner
            # values received by the y exchange ("copy corner values on
            # CPU"), so the x MPI may start only after the y MPI lands
            corner_deps = tuple(Event(o.end, op=o) for o in mpi_y_ops)
            for v in group:
                dev.schedule(f"{v.name}:d2h_x", "d2h", s_bnd_x, v.gpu_to_host / 2,
                             tag="gpu_cpu",
                             accesses=(Access(f"{v.name}:strip_x", "r"),
                                       Access(f"{v.name}:host_x", "w")))
                if self.config.seed_hazard == "missing-event" and i == 0:
                    after_x = ()       # seeded fixture: corner edge dropped
                else:
                    after_x = corner_deps
                dev.schedule(f"{v.name}:mpi_x", "mpi", s_bnd_x, v.mpi / 2,
                             tag="mpi", after=after_x,
                             accesses=(Access(f"{v.name}:host_x", "rw"),
                                       Access(f"{v.name}:host_y", "r")))
                dev.schedule(f"{v.name}:h2d_x", "h2d", s_bnd_x, v.host_to_gpu / 2,
                             tag="gpu_cpu",
                             accesses=(Access(f"{v.name}:host_x", "r"),
                                       Access(f"{v.name}:halo_x", "w")))
            # (4) inner kernel after the pack frees the compute engine
            s_inner.wait_event(Event(pack.end, op=pack))
            dev.schedule(f"{name}:inner", "kernel", s_inner, fused_inner,
                         tag="compute",
                         accesses=(Access(f"{name}:interior", "w"),))
            # (7) unpack x after both H2D and inner
            s_bnd_x.wait_event(s_inner.record_event())
            dev.schedule(f"{name}:unpack", "kernel", s_bnd_x,
                         0.1 * vb.boundary_x, tag="compute",
                         accesses=tuple(Access(f"{v.name}:halo_x", "r")
                                        for v in group))
            i += 1
        # end-of-substep barrier: in overlap mode every rank waits for its
        # asynchronous exchanges to land, paying the inter-node arrival
        # skew explicitly (blocking exchanges absorb it inside their
        # measured 438 MB/s effective bandwidth instead)
        dev.synchronize()
        if self.config.sync_skew > 0.0:
            dev.schedule("sync_skew", "mpi", s_bnd_y, self.config.sync_skew,
                         tag="skew")
            dev.synchronize()

    def _schedule_substep_serial(self, dev: GPUDevice, stream, vb_list) -> None:
        for vb in vb_list:
            dev.schedule(f"{vb.name}:whole", "kernel", stream, vb.whole,
                         tag="compute",
                         accesses=(Access(f"{vb.name}:strip_y", "w"),
                                   Access(f"{vb.name}:strip_x", "w"),
                                   Access(f"{vb.name}:interior", "w")))
            dev.schedule(f"{vb.name}:d2h", "d2h", stream, vb.gpu_to_host,
                         tag="gpu_cpu",
                         accesses=(Access(f"{vb.name}:strip_y", "r"),
                                   Access(f"{vb.name}:strip_x", "r"),
                                   Access(f"{vb.name}:host", "w")))
            dev.schedule(f"{vb.name}:mpi", "mpi", stream, vb.mpi, tag="mpi",
                         accesses=(Access(f"{vb.name}:host", "rw"),))
            dev.schedule(f"{vb.name}:h2d", "h2d", stream, vb.host_to_gpu,
                         tag="gpu_cpu",
                         accesses=(Access(f"{vb.name}:host", "r"),
                                   Access(f"{vb.name}:halo_y", "w"),
                                   Access(f"{vb.name}:halo_x", "w")))
        dev.synchronize()

    def _schedule_water(self, dev: GPUDevice, streams, overlap: bool) -> None:
        """Method 1 (Fig. 7): the 13 tracer advections per RK stage; each
        tracer's exchange overlaps the next tracer's advection kernel."""
        adv = ASUCA_KERNELS["advection"]
        t_adv = self._kernel_time(adv, self.n_points)
        nf = 1  # tracers travel alone
        bytes_x = self._strip_bytes("x") * self.links_x * nf
        bytes_y = self._strip_bytes("y") * self.links_y * nf
        d2h = self.cluster.pcie.transfer_time(bytes_x + bytes_y)
        mpi = self.cluster.mpi.transfer_time(bytes_x) + self.cluster.mpi.transfer_time(bytes_y)
        h2d = d2h
        s_comm, _, s_comp = streams
        # tracers advect in every RK stage but their halos travel once per
        # long step, in the final stage's pipeline (Fig. 7)
        for stage in range(3):
            comm_this_stage = stage == 2
            for i in range(N_WATER_TRACERS):
                op = dev.schedule(f"q{i}:advection", "kernel", s_comp, t_adv,
                                  tag="compute",
                                  accesses=(Access(f"q{i}:halo", "r"),
                                            Access(f"q{i}:interior", "w")))
                if not comm_this_stage:
                    continue
                acc_d2h = (Access(f"q{i}:interior", "r"),
                           Access(f"q{i}:host", "w"))
                acc_mpi = (Access(f"q{i}:host", "rw"),)
                acc_h2d = (Access(f"q{i}:host", "r"),
                           Access(f"q{i}:halo", "w"))
                if overlap and self.config.method1_pipeline:
                    # communication of tracer i rides its own chain
                    s_comm.wait_event(Event(op.end, op=op))
                    dev.schedule(f"q{i}:d2h", "d2h", s_comm, d2h,
                                 tag="gpu_cpu", accesses=acc_d2h)
                    dev.schedule(f"q{i}:mpi", "mpi", s_comm, mpi, tag="mpi",
                                 accesses=acc_mpi)
                    dev.schedule(f"q{i}:h2d", "h2d", s_comm, h2d,
                                 tag="gpu_cpu", accesses=acc_h2d)
                else:
                    dev.schedule(f"q{i}:d2h", "d2h", s_comp, d2h,
                                 tag="gpu_cpu", accesses=acc_d2h)
                    dev.schedule(f"q{i}:mpi", "mpi", s_comp, mpi, tag="mpi",
                                 accesses=acc_mpi)
                    dev.schedule(f"q{i}:h2d", "h2d", s_comp, h2d,
                                 tag="gpu_cpu", accesses=acc_h2d)
            dev.synchronize()

    def _other_compute_time(self) -> float:
        """Long-step kernels with no communication of their own (momentum
        and theta advection, Coriolis, transforms, physics, copies)."""
        per_substep = {k for _, ks in SHORT_STEP_VARIABLES for k in ks}
        t = 0.0
        for name, count in launch_schedule(self.ns):
            if name in per_substep or name == "advection":
                continue
            t += count * self._kernel_time(ASUCA_KERNELS[name], self.n_points)
        # momentum + theta advection (3 stages x 4 kernels) — the tracer
        # advections are scheduled by _schedule_water
        t += 12 * self._kernel_time(ASUCA_KERNELS["advection"], self.n_points)
        return t

    # ------------------------------------------------------------- public
    def step_timeline(self, overlap: bool = True) -> StepTimeline:
        """Schedule one full long step; returns the Fig. 11 aggregates."""
        dev = GPUDevice(self.cluster.gpu, copy_engines=1)
        streams = (dev.create_stream(), dev.create_stream(), dev.create_stream())
        vb_list = [self.variable_breakdown(n, ks) for n, ks in SHORT_STEP_VARIABLES]

        use_divide = overlap and self.config.method2_divide
        for _ in range(self.nsub):
            if use_divide:
                self._schedule_substep_overlap(dev, streams, vb_list)
            else:
                self._schedule_substep_serial(dev, streams[0], vb_list)

        self._schedule_water(dev, streams, overlap)

        dev.schedule("long_step_other", "kernel", streams[2],
                     self._other_compute_time(), tag="compute")
        total = dev.synchronize()
        return StepTimeline(
            total=total,
            compute=dev.busy_time("kernel"),
            mpi=dev.busy_time("mpi") - dev.busy_time("mpi", tag="skew"),
            gpu_cpu=dev.busy_time("h2d") + dev.busy_time("d2h"),
            overlap=overlap,
            sync_skew=dev.busy_time("mpi", tag="skew"),
            device=dev,
        )

    def breakdown_rows(self) -> list[VariableBreakdown]:
        """The Fig. 9 per-variable rows."""
        return [self.variable_breakdown(n, ks) for n, ks in SHORT_STEP_VARIABLES]


#: the paper's named optimization levels, in increasing order — the
#: doctor sweeps these to recommend an overlap method, and the
#: critical-path tests validate its overlap accounting against each
METHOD_CONFIGS: dict[str, OverlapConfig] = {
    "serial": OverlapConfig(method1_pipeline=False, method2_divide=False,
                            method3_fuse=False),
    "method1": OverlapConfig(method1_pipeline=True, method2_divide=False,
                             method3_fuse=False),
    "method1+2": OverlapConfig(method1_pipeline=True, method2_divide=True,
                               method3_fuse=False),
    "method1+2+3": OverlapConfig(),
}


def method_timelines(
    cluster: ClusterSpec = TSUBAME_1_2,
    *,
    methods: "Iterable[str] | None" = None,
    **model_kwargs,
) -> dict[str, StepTimeline]:
    """One scheduled long step per named method configuration (same
    mesh / cluster for all, so the totals are directly comparable)."""
    out: dict[str, StepTimeline] = {}
    for name in (methods if methods is not None else METHOD_CONFIGS):
        config = METHOD_CONFIGS[name]
        model = OverlapModel(cluster, config=config, **model_kwargs)
        out[name] = model.step_timeline(config.any_overlap)
    return out
