"""Coriolis force on the Arakawa-C grid (f-plane / beta-plane).

Contributes to the slow tendencies of the long time step (paper Fig. 1:
"Coriolis force" is one of the long-step kernels).  The tendency of the
G-weighted momenta is::

    d(rhou)/dt = +f * rhov_at_u,   d(rhov)/dt = -f * rhou_at_v

with four-point averages moving the staggered momenta onto each other's
faces.  ``f`` may be a scalar (f-plane) or an ``(nyh,)`` profile
(beta-plane, evaluated at scalar rows).
"""
from __future__ import annotations

import numpy as np

from .. import constants as c
from .grid import Grid

__all__ = ["coriolis_parameter", "coriolis_tendencies", "CORIOLIS_FLOPS_PER_POINT"]

CORIOLIS_FLOPS_PER_POINT = 6


def coriolis_parameter(lat_deg: float) -> float:
    """f = 2 Omega sin(latitude)."""
    return 2.0 * c.OMEGA_EARTH * np.sin(np.deg2rad(lat_deg))


def coriolis_tendencies(
    rhou: np.ndarray, rhov: np.ndarray, f: float | np.ndarray, grid: Grid
) -> tuple[np.ndarray, np.ndarray]:
    """(d rhou/dt, d rhov/dt) from the Coriolis force, full-shape arrays
    valid on interior faces."""
    du = np.zeros(grid.shape_u, dtype=rhou.dtype)
    dv = np.zeros(grid.shape_v, dtype=rhov.dtype)
    if np.all(np.asarray(f) == 0.0):
        return du, dv

    f_row = np.broadcast_to(np.asarray(f, dtype=np.float64), (grid.nyh,))

    # rhov averaged to u faces: rows j use v faces j, j+1 of columns i-1, i
    v4 = 0.25 * (
        rhov[1:, :-1] + rhov[1:, 1:] + rhov[:-1, :-1] + rhov[:-1, 1:]
    )  # at u faces 1..nxh-1
    du[1:-1] = f_row[None, :, None] * v4

    # rhou averaged to v faces: v face j uses u faces i, i+1 of rows j-1, j
    u4 = 0.25 * (
        rhou[:-1, 1:] + rhou[1:, 1:] + rhou[:-1, :-1] + rhou[1:, :-1]
    )  # at v faces 1..nyh-1
    f_vface = 0.5 * (f_row[1:] + f_row[:-1])  # f at v faces 1..nyh-1
    dv[:, 1:-1] = -f_vface[None, :, None] * u4
    return du, dv
