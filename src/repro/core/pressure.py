"""Equation of state and its acoustic linearization.

ASUCA's EOS (paper Eq. 5) written with the Exner function is equivalent to::

    p = p0 * (Rd * rho * theta_m / p0) ** (cp / cv)

The acoustic (short) steps need the linearization around the long-step
start state::

    p' = (dp / d(rho theta)) * (rho theta)'  with
    dp/d(rho theta) = (cp/cv) * p / (rho theta)

In the G-weighted prognostic variables (``rhotheta_hat = G rho theta``) the
coefficient becomes ``Cp_lin = (cp/cv) * p / rhotheta_hat`` so that
``p' = Cp_lin * rhotheta_hat'`` directly — that coefficient is what the
Helmholtz assembly consumes.
"""
from __future__ import annotations

import numpy as np

from .. import constants as c
from ..stencil.spec import stencil
from .grid import Grid

__all__ = ["eos_pressure", "linearization_coefficient", "exner", "temperature"]

#: cost-model constants for the GPU substrate (validated in tests/perf)
EOS_FLOPS_PER_POINT = 6


@stencil(reads=("rhotheta_hat",), writes=("p",), halo=0,
         flops=20, loads=2, stores=1, table="eos_pressure",
         # measured ratios: 1.30 flops (pow weighted at 8), ~3.4x bytes
         flops_band=(0.8, 2.0), bytes_band=(1.5, 8.0))
def eos_pressure(rhotheta_hat: np.ndarray, grid: Grid) -> np.ndarray:
    """Full pressure from the G-weighted ``rho theta`` (paper Eq. 5)."""
    rhotheta_phys = rhotheta_hat / grid.jac[:, :, None]
    return c.P0 * (c.RD * rhotheta_phys / c.P0) ** (c.CP / c.CV)


def linearization_coefficient(p: np.ndarray, rhotheta_hat: np.ndarray) -> np.ndarray:
    """``Cp_lin`` such that ``p' = Cp_lin * (G rho theta)'``."""
    return (c.CP / c.CV) * p / rhotheta_hat


def exner(p: np.ndarray) -> np.ndarray:
    """Exner function ``pi = (p / p0) ** (Rd / cp)``."""
    return (p / c.P0) ** c.KAPPA


def temperature(p: np.ndarray, rho_phys: np.ndarray) -> np.ndarray:
    """Ideal-gas temperature from pressure and physical density."""
    return p / (c.RD * rho_phys)
