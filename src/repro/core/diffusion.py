"""Explicit diffusion and the Rayleigh sponge layer.

The paper's Eq. (1) collects diffusion and turbulence into the F^i forcing
of the long time step.  We provide a constant-coefficient 2nd-order
diffusion of the *specific* quantities (so a resting, stratified base
state is not diffused away in the vertical by default — vertical diffusion
is off unless requested) plus the sponge-layer damping used by the
mountain-wave workload.

Horizontal operators assume a valid halo of width >= 1; results are valid
on interior points.
"""
from __future__ import annotations

import numpy as np

from ..stencil.spec import stencil
from .grid import Grid

__all__ = [
    "horizontal_laplacian_c",
    "horizontal_laplacian_u",
    "horizontal_laplacian_v",
    "horizontal_laplacian_w",
    "hyperdiffusion_c",
    "vertical_diffusion_c",
    "surface_drag_tendency",
    "DIFFUSION_FLOPS_PER_POINT",
]

DIFFUSION_FLOPS_PER_POINT = 10


@stencil(reads=("phi",), writes=("lap",), halo=1,
         flops=DIFFUSION_FLOPS_PER_POINT, loads=5, stores=1)
def horizontal_laplacian_c(phi: np.ndarray, grid: Grid) -> np.ndarray:
    """5-point horizontal Laplacian of a cell-centered field, valid on
    interior cells (full-shape output, halo zero)."""
    out = np.zeros_like(phi)
    sx, sy = grid.isl
    h = grid.halo
    out[sx, sy] = (
        phi[h + 1 : h + grid.nx + 1, sy] - 2.0 * phi[sx, sy] + phi[h - 1 : h + grid.nx - 1, sy]
    ) / grid.dx ** 2 + (
        phi[sx, h + 1 : h + grid.ny + 1] - 2.0 * phi[sx, sy] + phi[sx, h - 1 : h + grid.ny - 1]
    ) / grid.dy ** 2
    return out


def _lap_on(phi: np.ndarray, sx: slice, sy: slice, dx: float, dy: float) -> np.ndarray:
    """Laplacian on an arbitrary (x, y) interior window of a 3-D array."""
    x0, x1 = sx.start, sx.stop
    y0, y1 = sy.start, sy.stop
    return (
        (phi[x0 + 1 : x1 + 1, sy] - 2.0 * phi[sx, sy] + phi[x0 - 1 : x1 - 1, sy]) / dx ** 2
        + (phi[sx, y0 + 1 : y1 + 1] - 2.0 * phi[sx, sy] + phi[sx, y0 - 1 : y1 - 1]) / dy ** 2
    )


@stencil(reads=("u",), writes=("lap_u",), halo=1,
         flops=DIFFUSION_FLOPS_PER_POINT, loads=5, stores=1)
def horizontal_laplacian_u(u: np.ndarray, grid: Grid) -> np.ndarray:
    out = np.zeros_like(u)
    sx, sy = grid.isl_u
    out[sx, sy] = _lap_on(u, sx, sy, grid.dx, grid.dy)
    return out


@stencil(reads=("v",), writes=("lap_v",), halo=1,
         flops=DIFFUSION_FLOPS_PER_POINT, loads=5, stores=1)
def horizontal_laplacian_v(v: np.ndarray, grid: Grid) -> np.ndarray:
    out = np.zeros_like(v)
    sx, sy = grid.isl_v
    out[sx, sy] = _lap_on(v, sx, sy, grid.dx, grid.dy)
    return out


@stencil(reads=("w",), writes=("lap_w",), halo=1,
         flops=DIFFUSION_FLOPS_PER_POINT, loads=5, stores=1)
def horizontal_laplacian_w(w: np.ndarray, grid: Grid) -> np.ndarray:
    out = np.zeros_like(w)
    sx, sy = grid.isl
    out[sx, sy] = _lap_on(w, sx, sy, grid.dx, grid.dy)
    return out


@stencil(reads=("phi",), writes=("hyp",), halo=2,
         flops=2 * DIFFUSION_FLOPS_PER_POINT, loads=9, stores=1)
def hyperdiffusion_c(phi: np.ndarray, grid: Grid) -> np.ndarray:
    """4th-order horizontal hyperdiffusion operator ``-lap(lap(phi))`` for
    cell-centered fields: scale-selective damping of grid noise with
    minimal impact on resolved waves (the standard mesoscale-model
    filter; apply with a positive coefficient K4 [m^4/s]).

    Needs a valid halo of width >= 2.  Valid on interior cells.
    """
    lap = horizontal_laplacian_c(phi, grid)
    # the outer Laplacian needs lap in a 1-cell ring around the interior;
    # compute it there explicitly
    h = grid.halo
    sx1 = slice(h - 1, h + grid.nx + 1)
    sy1 = slice(h - 1, h + grid.ny + 1)
    ring = np.zeros_like(phi)
    ring[sx1, sy1] = _lap_on(phi, sx1, sy1, grid.dx, grid.dy)
    out = np.zeros_like(phi)
    sx, sy = grid.isl
    out[sx, sy] = -_lap_on(ring, sx, sy, grid.dx, grid.dy)
    return out


@stencil(reads=("phi", "kv"), writes=("tend_phi",), halo=0,
         march_axis="z", flops=8, loads=4, stores=1,
         # the column solve deliberately runs against float64 grid
         # metrics and coefficient profile; backends gate on dtype
         dtype_policy="widen")
def vertical_diffusion_c(
    phi: np.ndarray, grid: Grid, kv: float | np.ndarray
) -> np.ndarray:
    """2nd-order vertical diffusion of a cell-centered *specific* quantity
    with zero-flux top/bottom boundaries.  ``kv`` may be a scalar or a
    ``(nz+1,)`` face profile [m^2/s].  Physical z spacing includes the
    terrain Jacobian.  Valid everywhere (column-local)."""
    kv_f = np.broadcast_to(np.asarray(kv, dtype=np.float64), (grid.nz + 1,))
    jac = grid.jac[:, :, None]
    dz_f_phys = grid.dz_f[None, None, :] * jac   # (nxh, nyh, nz+1)
    dz_c_phys = grid.dz_c[None, None, :] * jac
    flux = np.zeros(grid.shape_w, dtype=phi.dtype)
    flux[:, :, 1:-1] = (
        kv_f[None, None, 1:-1]
        * (phi[:, :, 1:] - phi[:, :, :-1])
        / dz_f_phys[:, :, 1:-1]
    )
    return (flux[:, :, 1:] - flux[:, :, :-1]) / dz_c_phys


def surface_drag_tendency(
    rhou: np.ndarray,
    rhov: np.ndarray,
    grid: Grid,
    cd: float,
    *,
    rho_sfc: float | np.ndarray = 1.15,
    dz_sfc: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Bulk-aerodynamic surface friction on the lowest model level:
    ``d(rho u)/dt = -Cd |V| (rho u) / dz`` applied to level k=0 only,
    with ``|V|`` recovered from the momenta using a representative
    (scalar) surface density ``rho_sfc``.

    A crude stand-in for ASUCA's boundary-layer turbulence (part of the
    paper's F^i forcing).  Returns full-shape tendencies (zero above the
    surface level).
    """
    du = np.zeros_like(rhou)
    dv = np.zeros_like(rhov)
    if cd <= 0.0:
        return du, dv
    dz = dz_sfc if dz_sfc is not None else float(grid.dz_c[0])
    rho0 = np.asarray(rho_sfc, dtype=np.float64)
    # |V| at u faces: v averaged from the 4 surrounding v faces
    v_at_u = np.zeros_like(rhou[:, :, 0])
    v_at_u[1:-1] = 0.25 * (
        rhov[1:, :-1, 0] + rhov[1:, 1:, 0] + rhov[:-1, :-1, 0] + rhov[:-1, 1:, 0]
    )
    speed_u = np.hypot(rhou[:, :, 0], v_at_u) / rho0
    du[:, :, 0] = -cd * speed_u * rhou[:, :, 0] / dz
    u_at_v = np.zeros_like(rhov[:, :, 0])
    u_at_v[:, 1:-1] = 0.25 * (
        rhou[:-1, 1:, 0] + rhou[1:, 1:, 0] + rhou[:-1, :-1, 0] + rhou[1:, :-1, 0]
    )
    speed_v = np.hypot(rhov[:, :, 0], u_at_v) / rho0
    dv[:, :, 0] = -cd * speed_v * rhov[:, :, 0] / dz
    return du, dv
