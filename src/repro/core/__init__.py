"""ASUCA dynamical core: grid, state, FVM advection with Koren limiter,
HE-VI split-explicit time integration (the paper's primary contribution)."""
from .grid import Grid, make_grid, bell_mountain, stretched_levels
from .reference import ReferenceState, make_reference_state
from .state import State, state_from_reference, zeros_state
from .rk3 import DynamicsConfig, Rk3Integrator
from .model import AsucaModel, ModelConfig, StepDiagnostics
from .diagnostics import CflReport, cfl_report, suggest_ns, energy_budget

__all__ = [
    "Grid", "make_grid", "bell_mountain", "stretched_levels",
    "ReferenceState", "make_reference_state",
    "State", "state_from_reference", "zeros_state",
    "DynamicsConfig", "Rk3Integrator",
    "AsucaModel", "ModelConfig", "StepDiagnostics",
    "CflReport", "cfl_report", "suggest_ns", "energy_budget",
]
