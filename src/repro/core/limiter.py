"""Flux limiters for the upwind-biased kappa=1/3 advection scheme.

ASUCA uses the Koren (1993) limiter (paper Sec. II) to keep the 3rd-order
upwind-biased face reconstruction monotone.  We implement the limiters in
*unnormalized* form: given the upwind gradient ``g1`` and the downwind
gradient ``g2`` of the advected quantity, ``limited(g1, g2)`` returns
``psi(g2/g1) * g1`` without ever dividing (robust at ``g1 == 0``), where
``psi`` is the classical limiter function.  The limited face value is then::

    phi_face = phi_upwind + 0.5 * limited(g1, g2)

``g1 = phi_up - phi_upup`` and ``g2 = phi_down - phi_up`` for the
flow-direction-ordered stencil.

Additional limiters (minmod, van Leer, superbee, plus the unlimited
kappa=1/3 and 1st-order upwind) are provided for the design-choice ablation
benchmark.
"""
from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "koren", "minmod", "van_leer", "superbee", "unlimited_k13", "upwind1",
    "get_limiter", "LIMITERS",
]

Limiter = Callable[[np.ndarray, np.ndarray], np.ndarray]


def koren(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """Koren (1993): ``psi(r) = max(0, min(2r, (1 + 2r)/3, 2))``.

    Third-order accurate in smooth regions (reduces to the kappa=1/3
    scheme), TVD-limited near extrema.
    """
    s = np.sign(g1)
    g1s = np.abs(g1)
    g2s = g2 * s
    t = np.minimum(np.minimum(2.0 * g2s, (g1s + 2.0 * g2s) / 3.0), 2.0 * g1s)
    return s * np.maximum(0.0, t)


def minmod(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """``psi(r) = max(0, min(r, 1))`` — the most diffusive TVD limiter."""
    s = np.sign(g1)
    return s * np.maximum(0.0, np.minimum(g2 * s, np.abs(g1)))


def van_leer(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """``psi(r) = (r + |r|) / (1 + |r|)`` — harmonic mean of the gradients."""
    prod = g1 * g2
    denom = g1 + g2
    # where prod > 0 the gradients share a sign, so denom is bounded away
    # from zero by each of them; the tiny guard only matters where we
    # discard the result anyway.
    safe = np.where(denom == 0.0, 1.0, denom)
    return np.where(prod > 0.0, 2.0 * prod / safe, 0.0)


def superbee(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """``psi(r) = max(0, min(2r, 1), min(r, 2))`` — the sharpest TVD limiter."""
    s = np.sign(g1)
    g1s = np.abs(g1)
    g2s = g2 * s
    a = np.minimum(2.0 * g2s, g1s)
    b = np.minimum(g2s, 2.0 * g1s)
    return s * np.maximum(0.0, np.maximum(a, b))


def unlimited_k13(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """Unlimited kappa=1/3 upwind-biased correction (non-monotone)."""
    return (g1 + 2.0 * g2) / 3.0


def upwind1(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
    """First-order upwind: no correction at all."""
    return np.zeros(np.broadcast(g1, g2).shape, dtype=np.result_type(g1, g2))


LIMITERS: Dict[str, Limiter] = {
    "koren": koren,
    "minmod": minmod,
    "van_leer": van_leer,
    "superbee": superbee,
    "unlimited_k13": unlimited_k13,
    "upwind1": upwind1,
}


def get_limiter(name: str) -> Limiter:
    try:
        return LIMITERS[name]
    except KeyError:
        raise ValueError(f"unknown limiter {name!r}; choose from {sorted(LIMITERS)}") from None
