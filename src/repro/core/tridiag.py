"""Batched tridiagonal (Thomas) solver.

The HE-VI scheme reduces the vertically implicit step to one tridiagonal
system per grid column (paper Sec. IV-A-3).  The paper's GPU kernel marches
threads along z while parallelizing over the (x, y) slice; the NumPy
equivalent is a Thomas recurrence over the last axis, vectorized over all
leading axes — the same memory-access structure that motivates the paper's
x-z-y array ordering.

A ``scipy.linalg.solve_banded`` cross-check path exists for the tests.
"""
from __future__ import annotations

import numpy as np
from scipy.linalg import solve_banded

__all__ = ["thomas_solve", "thomas_solve_scipy", "TRIDIAG_FLOPS_PER_POINT"]

#: floats per solved unknown (forward sweep 5, back substitution 3)
TRIDIAG_FLOPS_PER_POINT = 8


def thomas_solve(
    sub: np.ndarray, diag: np.ndarray, sup: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Solve tridiagonal systems along the LAST axis.

    All inputs have the same shape ``(..., n)``; ``sub[..., 0]`` and
    ``sup[..., n-1]`` are ignored.  The systems are::

        sub[k] x[k-1] + diag[k] x[k] + sup[k] x[k+1] = rhs[k]

    Returns ``x`` with the input shape.  No pivoting: the Helmholtz
    operator is strictly diagonally dominant by construction, which the
    assembly asserts.
    """
    n = rhs.shape[-1]
    cp = np.empty_like(rhs)
    dp = np.empty_like(rhs)
    cp[..., 0] = sup[..., 0] / diag[..., 0]
    dp[..., 0] = rhs[..., 0] / diag[..., 0]
    for k in range(1, n):
        denom = diag[..., k] - sub[..., k] * cp[..., k - 1]
        cp[..., k] = sup[..., k] / denom
        dp[..., k] = (rhs[..., k] - sub[..., k] * dp[..., k - 1]) / denom
    x = np.empty_like(rhs)
    x[..., -1] = dp[..., -1]
    for k in range(n - 2, -1, -1):
        x[..., k] = dp[..., k] - cp[..., k] * x[..., k + 1]
    return x


def thomas_solve_scipy(
    sub: np.ndarray, diag: np.ndarray, sup: np.ndarray, rhs: np.ndarray
) -> np.ndarray:
    """Reference implementation via ``scipy.linalg.solve_banded``, one
    column at a time.  Slow; used only to validate :func:`thomas_solve`."""
    flat_shape = (-1, rhs.shape[-1])
    sub2 = sub.reshape(flat_shape)
    diag2 = diag.reshape(flat_shape)
    sup2 = sup.reshape(flat_shape)
    rhs2 = rhs.reshape(flat_shape)
    out = np.empty_like(rhs2)
    n = rhs.shape[-1]
    for m in range(rhs2.shape[0]):
        ab = np.zeros((3, n))
        ab[0, 1:] = sup2[m, :-1]
        ab[1, :] = diag2[m]
        ab[2, :-1] = sub2[m, 1:]
        out[m] = solve_banded((1, 1), ab, rhs2[m])
    return out.reshape(rhs.shape)
