"""HE-VI acoustic (short) time step.

Each Runge-Kutta stage of the long step integrates the fast (acoustic and
gravity-wave) modes from the long-step start over the stage interval in
``n`` substeps of ``dtau`` (paper Sec. II: "horizontally explicit and
vertically implicit (HE-VI) scheme with a time-splitting method").

Per substep:

1. perturbation pressure ``pp = (p^t - p_ref) + Cp (Theta - Theta^t)``
   (linearized EOS about the long-step start, reference state subtracted
   so a balanced atmosphere is exactly stationary), with forward-in-time
   divergence damping ``pp_h = pp + damp * (pp - pp_prev)``;
2. explicit horizontal momentum update: metric-corrected horizontal
   gradient of ``pp_h`` plus the slow forcing;
3. explicit parts of the continuity and thermodynamic updates (updated
   horizontal fluxes, metric vertical fluxes, slow forcings);
4. vertically implicit update of W via the tridiagonal
   :class:`~repro.core.helmholtz.HelmholtzOperator` (trapezoidal
   off-centering ``beta``), then the implied vertical-flux updates of
   ``rho`` and ``rhotheta``.

The perturbation fluxes for ``rhotheta`` are taken relative to the RK
*stage* fluxes (whose full advective tendency sits in the slow forcing), so
that a uniform-theta atmosphere stays exactly uniform — the discrete
consistency property the tests assert.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import constants as c
from .advection import contravariant_mass_flux_w
from .grid import Grid
from ..profiling import profile_phase
from .helmholtz import HelmholtzOperator
from .pressure import eos_pressure, linearization_coefficient
from .reference import ReferenceState
from .state import State

__all__ = ["AcousticContext", "SlowForcing", "AcousticStepper",
           "acoustic_integrate", "build_context", "ACOUSTIC_FIELDS"]


@dataclass
class SlowForcing:
    """Slow-mode forcings and the stage fluxes they were computed with."""

    r_u: np.ndarray          # tendency of rhou (interior u faces valid)
    r_v: np.ndarray
    r_w: np.ndarray          # tendency of rhow (interior w faces valid)
    r_theta: np.ndarray      # tendency of rhotheta (interior cells valid)
    fx_s: np.ndarray         # stage-state mass fluxes
    fy_s: np.ndarray
    w_s: np.ndarray          # stage-state rhow (boundary faces zero)
    m_s: np.ndarray          # stage-state metric vertical flux


@dataclass
class AcousticContext:
    """Linearization data frozen at the long-step start ``t``."""

    grid: Grid
    p_t: np.ndarray              # full pressure at t
    cp_lin: np.ndarray           # p' = cp_lin * (G rho theta)'
    pc: np.ndarray               # p_t - p_ref - cp_lin * rhotheta_t
    rhotheta_t: np.ndarray
    rho_ref_hat: np.ndarray      # G * rho_ref (buoyancy reference)
    theta_xf: np.ndarray         # theta^t at u faces
    theta_yf: np.ndarray         # theta^t at v faces
    theta_wf: np.ndarray         # theta^t at w faces (boundary faces too)


def build_context(state: State, ref: ReferenceState, p_ref: np.ndarray) -> AcousticContext:
    """Precompute the acoustic linearization at the long-step start."""
    g = state.grid
    p_t = eos_pressure(state.rhotheta, g)
    cp_lin = linearization_coefficient(p_t, state.rhotheta)
    theta = state.rhotheta / state.rho

    theta_xf = np.empty(g.shape_u, dtype=theta.dtype)
    theta_xf[1:-1] = 0.5 * (theta[1:] + theta[:-1])
    theta_xf[0] = theta[0]
    theta_xf[-1] = theta[-1]

    theta_yf = np.empty(g.shape_v, dtype=theta.dtype)
    theta_yf[:, 1:-1] = 0.5 * (theta[:, 1:] + theta[:, :-1])
    theta_yf[:, 0] = theta[:, 0]
    theta_yf[:, -1] = theta[:, -1]

    theta_wf = np.empty(g.shape_w, dtype=theta.dtype)
    theta_wf[:, :, 1:-1] = 0.5 * (theta[:, :, 1:] + theta[:, :, :-1])
    theta_wf[:, :, 0] = theta[:, :, 0]
    theta_wf[:, :, -1] = theta[:, :, -1]

    return AcousticContext(
        grid=g,
        p_t=p_t,
        cp_lin=cp_lin,
        pc=p_t - p_ref - cp_lin * state.rhotheta,
        rhotheta_t=state.rhotheta.copy(),
        rho_ref_hat=ref.rho_c * g.jac[:, :, None],
        theta_xf=theta_xf,
        theta_yf=theta_yf,
        theta_wf=theta_wf,
    )


def _dpp_dz_centers(pp: np.ndarray, grid: Grid) -> np.ndarray:
    """(1/G) d(pp)/dx3 at cell centers (= physical d pp/dz), centered in the
    interior, one-sided at the bottom/top cells."""
    nz = grid.nz
    out = np.empty_like(pp)
    span = (grid.z_c[2:] - grid.z_c[:-2])[None, None, :]
    out[:, :, 1:-1] = (pp[:, :, 2:] - pp[:, :, :-2]) / span
    out[:, :, 0] = (pp[:, :, 1] - pp[:, :, 0]) / (grid.z_c[1] - grid.z_c[0])
    out[:, :, nz - 1] = (pp[:, :, -1] - pp[:, :, -2]) / (grid.z_c[-1] - grid.z_c[-2])
    out /= grid.jac[:, :, None]
    return out


def _metric_flux(rhou: np.ndarray, rhov: np.ndarray, grid: Grid) -> np.ndarray:
    """Metric part of the contravariant vertical mass flux (zero rhow)."""
    zero_w = np.zeros(grid.shape_w, dtype=rhou.dtype)
    return contravariant_mass_flux_w(rhou, rhov, zero_w, grid)


def _dz_center_from_faces(flux_w: np.ndarray, grid: Grid) -> np.ndarray:
    """(d/dx3) of a w-face flux, at centers: (F[k+1] - F[k]) / dz_c[k]."""
    return (flux_w[:, :, 1:] - flux_w[:, :, :-1]) / grid.dz_c[None, None, :]


#: prognostic fields refreshed after every acoustic substep — the
#: variables the paper exchanges in the short time step (Sec. V-A)
ACOUSTIC_FIELDS = ["rho", "rhou", "rhov", "rhow", "rhotheta"]


class AcousticStepper:
    """Resumable HE-VI integrator: one object per RK stage.

    ``substep()`` advances one acoustic substep *without* touching halos;
    the caller must refresh halos of :data:`ACOUSTIC_FIELDS` between
    substeps (periodic fill or multi-GPU exchange).  ``finish()`` applies
    the slow moisture tendencies and returns the stage state.  The
    single-domain :func:`acoustic_integrate` and the distributed driver
    both run on this class, which is what makes the decomposed run
    bit-identical to the single-domain run.
    """

    def __init__(
        self,
        base: State,
        forcing: SlowForcing,
        ctx: AcousticContext,
        ref: ReferenceState,
        dts: float,
        nsub: int,
        *,
        beta: float = 0.55,
        div_damp: float = 0.1,
    ):
        self.base = base
        self.forcing = forcing
        self.ctx = ctx
        self.ref = ref
        self.dts = dts
        self.nsub = nsub
        self.beta = beta
        self.div_damp = div_damp
        g = ctx.grid
        self.g = g
        self.dtau = dts / nsub
        self.st = base.copy()
        self.st.time = base.time + dts
        self.helm = HelmholtzOperator(g, ctx.theta_wf, ctx.cp_lin, self.dtau, beta)
        self.jac3 = g.jac[:, :, None]
        self.pp_prev: np.ndarray | None = None
        self.has_terrain = not g.is_flat()
        self._done = 0

    def substep(self) -> list[str]:
        """One acoustic substep; returns the field names whose halos are
        now stale and must be exchanged by the caller."""
        if self._done >= self.nsub:
            raise RuntimeError("all substeps already taken")
        with profile_phase("acoustic_substep"):
            return self._substep_impl()

    def _substep_impl(self) -> list[str]:
        ctx = self.ctx
        forcing = self.forcing
        st = self.st
        g = self.g
        h = g.halo
        sx, sy = g.isl
        dtau = self.dtau
        beta = self.beta
        jac3 = self.jac3
        has_terrain = self.has_terrain
        helm = self.helm
        pp_prev = self.pp_prev
        div_damp = self.div_damp

        # (1) perturbation pressure ------------------------------------
        pp = ctx.pc + ctx.cp_lin * st.rhotheta
        if pp_prev is not None and div_damp > 0.0:
            pp_h = pp + div_damp * (pp - pp_prev)
        else:
            pp_h = pp
        self.pp_prev = pp

        # (2) horizontal momentum (explicit) ---------------------------
        ux0, ux1 = h, h + g.nx + 1          # interior u faces
        grad_x = (pp_h[ux0:ux1, sy] - pp_h[ux0 - 1 : ux1 - 1, sy]) / g.dx
        pgf_u = -g.jac_u[ux0:ux1, sy, None] * grad_x
        if has_terrain:
            dppdz = _dpp_dz_centers(pp_h, g)
            dppdz_u = 0.5 * (dppdz[ux0:ux1, sy] + dppdz[ux0 - 1 : ux1 - 1, sy])
            pgf_u += (
                g.jac_u[ux0:ux1, sy, None]
                * g.dzsdx_u[ux0:ux1, sy, None]
                * g.decay_c[None, None, :]
                * dppdz_u
            )
        st.rhou[ux0:ux1, sy] += dtau * (pgf_u + forcing.r_u[ux0:ux1, sy])

        vy0, vy1 = h, h + g.ny + 1          # interior v faces
        grad_y = (pp_h[sx, vy0:vy1] - pp_h[sx, vy0 - 1 : vy1 - 1]) / g.dy
        pgf_v = -g.jac_v[sx, vy0:vy1, None] * grad_y
        if has_terrain:
            dppdz_v = 0.5 * (dppdz[sx, vy0:vy1] + dppdz[sx, vy0 - 1 : vy1 - 1])
            pgf_v += (
                g.jac_v[sx, vy0:vy1, None]
                * g.dzsdy_v[sx, vy0:vy1, None]
                * g.decay_c[None, None, :]
                * dppdz_v
            )
        st.rhov[sx, vy0:vy1] += dtau * (pgf_v + forcing.r_v[sx, vy0:vy1])

        # (3) explicit parts of continuity / thermodynamics ------------
        # horizontal divergence of the updated mass fluxes
        dfx = (st.rhou[h + 1 : h + g.nx + 1, sy] - st.rhou[h : h + g.nx, sy]) / g.dx
        dfy = (st.rhov[sx, h + 1 : h + g.ny + 1] - st.rhov[sx, h : h + g.ny]) / g.dy

        if has_terrain:
            m_now = _metric_flux(st.rhou, st.rhov, g)
            dm = _dz_center_from_faces(m_now, g)[sx, sy]
        else:
            m_now = None
            dm = 0.0
        rho_e = st.rho[sx, sy] - dtau * (dfx + dfy + dm)

        # theta: perturbation fluxes relative to the stage fluxes
        du_p = st.rhou - forcing.fx_s
        dv_p = st.rhov - forcing.fy_s
        thx = ctx.theta_xf
        thy = ctx.theta_yf
        dfx_t = (
            thx[h + 1 : h + g.nx + 1, sy] * du_p[h + 1 : h + g.nx + 1, sy]
            - thx[h : h + g.nx, sy] * du_p[h : h + g.nx, sy]
        ) / g.dx
        dfy_t = (
            thy[sx, h + 1 : h + g.ny + 1] * dv_p[sx, h + 1 : h + g.ny + 1]
            - thy[sx, h : h + g.ny] * dv_p[sx, h : h + g.ny]
        ) / g.dy
        if has_terrain:
            dm_p = _dz_center_from_faces(
                ctx.theta_wf * (m_now - forcing.m_s), g
            )[sx, sy]
        else:
            dm_p = 0.0
        # explicit stage-flux vertical theta transport is inside r_theta;
        # add back the w_s part that the implicit operator will replace
        dws = _dz_center_from_faces(ctx.theta_wf * forcing.w_s, g)[sx, sy] / jac3[sx, sy]
        theta_e = st.rhotheta[sx, sy] + dtau * (
            forcing.r_theta[sx, sy] - dfx_t - dfy_t - dm_p + dws
        )

        # (4) vertical implicit solve ----------------------------------
        rho_be = beta * rho_e + (1.0 - beta) * st.rho[sx, sy]
        theta_be = beta * theta_e + (1.0 - beta) * st.rhotheta[sx, sy]

        pp_be = ctx.pc[sx, sy] + ctx.cp_lin[sx, sy] * theta_be
        dz_pp = (pp_be[:, :, 1:] - pp_be[:, :, :-1]) / g.dz_f[None, None, 1:-1]
        buoy = 0.5 * (
            (rho_be - ctx.rho_ref_hat[sx, sy])[:, :, 1:]
            + (rho_be - ctx.rho_ref_hat[sx, sy])[:, :, :-1]
        )
        rhs_e = (
            st.rhow[sx, sy, 1:-1]
            + dtau * (-dz_pp - c.G * buoy + forcing.r_w[sx, sy, 1:-1])
        )
        # trapezoidal correction from the known W^n
        rhs = np.zeros((g.nxh, g.nyh, g.nz - 1), dtype=st.rho.dtype)
        rhs[sx, sy] = rhs_e
        if beta < 1.0:
            aw = helm.apply(st.rhow)
            rhs[sx, sy] += ((1.0 - beta) / beta) * (
                st.rhow[sx, sy, 1:-1] - aw[sx, sy]
            )
        with profile_phase("helmholtz_solve"):
            w_new = helm.solve(rhs)
        w_beta = beta * w_new + (1.0 - beta) * st.rhow

        # implied vertical-flux updates
        st.rho[sx, sy] = rho_e - dtau * _dz_center_from_faces(w_beta, g)[sx, sy] / jac3[sx, sy]
        st.rhotheta[sx, sy] = theta_e - dtau * _dz_center_from_faces(
            ctx.theta_wf * w_beta, g
        )[sx, sy] / jac3[sx, sy]
        st.rhow[sx, sy] = w_new[sx, sy]

        self._done += 1
        return list(ACOUSTIC_FIELDS)

    def finish(self, q_tendencies: dict[str, np.ndarray] | None = None) -> list[str]:
        """Apply the slow moisture tendencies over the full stage interval
        (moisture is a slow mode); returns the fields needing exchange."""
        if self._done != self.nsub:
            raise RuntimeError(f"finish() after {self._done}/{self.nsub} substeps")
        if not q_tendencies:
            return []
        sx, sy = self.g.isl
        for name, tend in q_tendencies.items():
            arr = self.st.q[name]
            arr[sx, sy] = self.base.q[name][sx, sy] + self.dts * tend[sx, sy]
        return list(q_tendencies.keys())


def acoustic_integrate(
    base: State,
    forcing: SlowForcing,
    ctx: AcousticContext,
    ref: ReferenceState,
    dts: float,
    nsub: int,
    *,
    beta: float = 0.55,
    div_damp: float = 0.1,
    exchange: Callable[[State, list[str]], None],
    q_tendencies: dict[str, np.ndarray] | None = None,
) -> State:
    """Single-domain driver over :class:`AcousticStepper`: integrate the
    fast modes from ``base`` over ``dts``, refreshing halos after each
    substep (the paper's short-time-step communications)."""
    stepper = AcousticStepper(
        base, forcing, ctx, ref, dts, nsub, beta=beta, div_damp=div_damp
    )
    for _ in range(nsub):
        fields = stepper.substep()
        exchange(stepper.st, fields)
    q_fields = stepper.finish(q_tendencies)
    if q_fields:
        exchange(stepper.st, q_fields)
    return stepper.st
