"""Wicker-Skamarock 3rd-order Runge-Kutta long step with HE-VI substeps.

The long time step (paper Fig. 1) evaluates the slow tendencies — advection
of momentum, density-weighted potential temperature and water substances,
Coriolis force, diffusion, sponge damping — three times (RK3 stages dt/3,
dt/2, dt), and inside each stage integrates the fast modes acoustically
from the long-step start (:mod:`repro.core.acoustic`).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from . import advection as adv
from .acoustic import (
    AcousticContext,
    AcousticStepper,
    SlowForcing,
    acoustic_integrate,
    build_context,
)
from .boundary import rayleigh_coefficient
from .coriolis import coriolis_tendencies
from .diffusion import (
    horizontal_laplacian_c,
    horizontal_laplacian_u,
    horizontal_laplacian_v,
    horizontal_laplacian_w,
    hyperdiffusion_c,
    surface_drag_tendency,
    vertical_diffusion_c,
)
from .grid import Grid
from ..profiling import profile_phase
from .limiter import Limiter, get_limiter
from .reference import ReferenceState
from .state import State

__all__ = ["DynamicsConfig", "Rk3Integrator", "slow_tendencies"]


@dataclass
class DynamicsConfig:
    """Numerical knobs of the dynamical core."""

    dt: float = 5.0                  #: long time step [s] (paper: 5 s mountain wave)
    ns: int = 6                      #: acoustic substeps per long step (even)
    beta: float = 0.55               #: vertical implicit off-centering (>= 0.5)
    div_damp: float = 0.1            #: forward divergence-damping weight
    limiter: str = "koren"           #: flux limiter name (paper: Koren)
    coriolis_f: float = 0.0          #: f-plane parameter [1/s]
    kdiff_h: float = 0.0             #: horizontal diffusion of momentum/theta [m^2/s]
    kdiff4_h: float = 0.0            #: 4th-order hyperdiffusion of theta' [m^4/s]
    kdiff_v: float = 0.0             #: vertical diffusion of theta' [m^2/s]
    drag_cd: float = 0.0             #: bulk surface-drag coefficient [-]
    rayleigh_depth: float = 0.0      #: sponge depth below the lid [m]
    rayleigh_tau: float = 60.0       #: sponge e-folding time at the lid [s]
    check_finite: bool = True        #: validate the state each long step

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.ns < 1:
            raise ValueError("ns must be >= 1")
        if not 0.5 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0.5, 1]")
        get_limiter(self.limiter)  # validate early


def slow_tendencies(
    state: State,
    ref: ReferenceState,
    cfg: DynamicsConfig,
    limiter: Limiter,
    rayleigh_w: np.ndarray | None = None,
) -> tuple[SlowForcing, dict[str, np.ndarray]]:
    """Slow-mode forcings at the given (stage) state, plus moisture
    advection tendencies.  Requires valid halos of width >= 2."""
    g = state.grid
    u, v, w = state.velocities()
    fx = state.rhou
    fy = state.rhov
    fz = adv.contravariant_mass_flux_w(state.rhou, state.rhov, state.rhow, g)

    with profile_phase("advect_momentum"):
        r_u = adv.advect_u(u, fx, fy, fz, g, limiter)
        r_v = adv.advect_v(v, fx, fy, fz, g, limiter)
        r_w = adv.advect_w(w, fx, fy, fz, g, limiter)
    with profile_phase("advect_theta"):
        theta = state.rhotheta / state.rho
        r_theta = adv.advect_scalar(theta, fx, fy, fz, g, limiter)

    if cfg.coriolis_f != 0.0:
        with profile_phase("coriolis"):
            cu, cv = coriolis_tendencies(state.rhou, state.rhov, cfg.coriolis_f, g)
            r_u += cu
            r_v += cv

    if cfg.kdiff_h > 0.0 or cfg.kdiff4_h > 0.0 or cfg.kdiff_v > 0.0:
        jac3 = g.jac[:, :, None]
        # diffuse the theta *perturbation* so the stratified base state
        # is untouched
        pert = state.rhotheta - ref.rhotheta_c * jac3
        if cfg.kdiff_h > 0.0:
            r_u += cfg.kdiff_h * horizontal_laplacian_u(state.rhou, g)
            r_v += cfg.kdiff_h * horizontal_laplacian_v(state.rhov, g)
            r_w += cfg.kdiff_h * horizontal_laplacian_w(state.rhow, g)
            r_theta += cfg.kdiff_h * horizontal_laplacian_c(pert, g)
        if cfg.kdiff4_h > 0.0:
            r_theta += cfg.kdiff4_h * hyperdiffusion_c(pert, g)
        if cfg.kdiff_v > 0.0:
            r_theta += vertical_diffusion_c(pert, g, cfg.kdiff_v)

    if cfg.drag_cd > 0.0:
        du, dv = surface_drag_tendency(state.rhou, state.rhov, g, cfg.drag_cd)
        r_u += du
        r_v += dv

    if rayleigh_w is not None:
        r_w -= rayleigh_w[None, None, :] * state.rhow

    with profile_phase("advect_moisture"):
        q_tend = {
            name: adv.advect_scalar(q_hat / state.rho, fx, fy, fz, g, limiter)
            for name, q_hat in state.q.items()
        }

    w_s = state.rhow.copy()
    w_s[:, :, 0] = 0.0
    w_s[:, :, -1] = 0.0
    if g.is_flat():
        m_s = np.zeros(g.shape_w, dtype=state.rho.dtype)
    else:
        m_s = adv.contravariant_mass_flux_w(
            state.rhou, state.rhov, np.zeros(g.shape_w, dtype=state.rho.dtype), g
        )
    forcing = SlowForcing(
        r_u=r_u, r_v=r_v, r_w=r_w, r_theta=r_theta,
        fx_s=fx.copy(), fy_s=fy.copy(), w_s=w_s, m_s=m_s,
    )
    return forcing, q_tend


class Rk3Integrator:
    """One long step of the HE-VI split-explicit integrator.

    ``exchange(state, names)`` is the halo-refresh hook (periodic fill in
    single-domain runs; the multi-GPU exchange in distributed runs).
    """

    def __init__(
        self,
        grid: Grid,
        ref: ReferenceState,
        cfg: DynamicsConfig,
        exchange: Callable[[State, list[str]], None],
        p_ref: np.ndarray,
    ):
        self.grid = grid
        self.ref = ref
        self.cfg = cfg
        self.exchange = exchange
        self.p_ref = p_ref
        self.limiter = get_limiter(cfg.limiter)
        if cfg.rayleigh_depth > 0.0:
            _, ray_f = rayleigh_coefficient(grid, cfg.rayleigh_depth, cfg.rayleigh_tau)
            self.rayleigh_w: np.ndarray | None = ray_f
        else:
            self.rayleigh_w = None

    def stage_plan(self) -> list[tuple[float, int]]:
        """(stage interval, substep count) triples of the WS-RK3 scheme."""
        dt, ns = self.cfg.dt, self.cfg.ns
        return [(dt / 3.0, 1), (dt / 2.0, max(ns // 2, 1)), (dt, ns)]

    def step_phases(self, state: State):
        """Generator form of one long step for lockstep multi-domain
        drivers: yields ``(state_to_refresh, field_names_or_None)`` at
        every halo-exchange point; the driver must refresh the halos
        before resuming.  Returns the new state via ``StopIteration``.

        Every rank of a decomposed run yields the identical sequence of
        exchange points, which is what lets :mod:`repro.dist.multigpu`
        drive all ranks in lockstep.
        """
        yield state, None  # make sure every halo is valid
        ctx = build_context(state, self.ref, self.p_ref)
        cur = state
        new = state
        for dts, nsub in self.stage_plan():
            forcing, q_tend = slow_tendencies(
                cur, self.ref, self.cfg, self.limiter, self.rayleigh_w
            )
            stepper = AcousticStepper(
                state, forcing, ctx, self.ref, dts, nsub,
                beta=self.cfg.beta, div_damp=self.cfg.div_damp,
            )
            for _ in range(nsub):
                fields = stepper.substep()
                yield stepper.st, fields
            q_fields = stepper.finish(q_tend)
            if q_fields:
                yield stepper.st, q_fields
            new = stepper.st
            cur = new
        if self.cfg.check_finite:
            new.validate()
        return new

    def step(self, state: State) -> State:
        """Advance one long step; returns a new state at t + dt."""
        gen = self.step_phases(state)
        try:
            while True:
                st, fields = next(gen)
                self.exchange(st, fields)
        except StopIteration as stop:
            return stop.value
