"""Boundary conditions: periodic halo fills, open (zero-gradient) edges,
the kinematic surface condition, and relaxation (Davies) lateral boundaries.

The paper's mountain-wave benchmark uses periodic lateral boundaries
(Sec. IV-B); the real-data run uses externally supplied boundary data with
relaxation.  Vertically the model has a rigid free-slip lid and the
kinematic terrain condition ``u^3 = 0`` at the surface.

Halo filling is *the* single-domain stand-in for the multi-GPU halo
exchange: the distributed driver replaces these fills with
:mod:`repro.dist.halo` exchanges plus physical-edge conditions, and the
equivalence tests assert both paths produce identical interiors.
"""
from __future__ import annotations

from typing import Iterable

import numpy as np

from ..stencil.spec import stencil
from .grid import Grid
from .state import State

__all__ = [
    "fill_halo_x",
    "fill_halo_y",
    "fill_halos_state",
    "apply_kinematic_surface",
    "rayleigh_coefficient",
    "RelaxationBC",
]


def fill_halo_x(arr: np.ndarray, grid: Grid, staggered: bool) -> None:
    """Fill the x halo in place.  ``staggered`` is True for u-located
    fields (one extra face along x).  Periodic wrap or zero-gradient copy
    depending on ``grid.periodic_x``."""
    h, nx = grid.halo, grid.nx
    if grid.periodic_x:
        if staggered:
            arr[:h] = arr[nx : nx + h]
            arr[h + nx + 1 :] = arr[h + 1 : 2 * h + 1]
            # the two images of the seam face must agree exactly
            arr[h + nx] = arr[h]
        else:
            arr[:h] = arr[nx : nx + h]
            arr[h + nx :] = arr[h : 2 * h]
    else:
        edge_lo = arr[h : h + 1]
        edge_hi = arr[h + nx : h + nx + 1] if staggered else arr[h + nx - 1 : h + nx]
        arr[:h] = edge_lo
        if staggered:
            arr[h + nx + 1 :] = edge_hi
        else:
            arr[h + nx :] = edge_hi


def fill_halo_y(arr: np.ndarray, grid: Grid, staggered: bool) -> None:
    """Fill the y halo in place (mirror of :func:`fill_halo_x`)."""
    h, ny = grid.halo, grid.ny
    if grid.periodic_y:
        if staggered:
            arr[:, :h] = arr[:, ny : ny + h]
            arr[:, h + ny + 1 :] = arr[:, h + 1 : 2 * h + 1]
            arr[:, h + ny] = arr[:, h]
        else:
            arr[:, :h] = arr[:, ny : ny + h]
            arr[:, h + ny :] = arr[:, h : 2 * h]
    else:
        edge_lo = arr[:, h : h + 1]
        edge_hi = arr[:, h + ny : h + ny + 1] if staggered else arr[:, h + ny - 1 : h + ny]
        arr[:, :h] = edge_lo
        if staggered:
            arr[:, h + ny + 1 :] = edge_hi
        else:
            arr[:, h + ny :] = edge_hi


_STAGGER = {"rho": (False, False), "rhou": (True, False), "rhov": (False, True),
            "rhow": (False, False), "rhotheta": (False, False)}


@stencil(reads=("prognostics",), writes=("prognostics",), halo=0,
         flops=1, loads=1, stores=1, table="boundary_ops", stage="boundary",
         # measured ratios: 3.0 flops, ~4x bytes (five fields, two axes)
         flops_band=(1.5, 4.5), bytes_band=(2.0, 8.0),
         probe=False)
def fill_halos_state(state: State, names: Iterable[str] | None = None) -> None:
    """Fill halos of the named prognostic fields (all when ``None``)."""
    g = state.grid
    for name in names if names is not None else state.prognostic_names():
        sx, sy = _STAGGER.get(name, (False, False))
        arr = state.get(name)
        fill_halo_x(arr, g, staggered=sx)
        fill_halo_y(arr, g, staggered=sy)


def apply_kinematic_surface(state: State) -> None:
    """Set the boundary w faces of ``rhow``.

    Surface: ``w = u dz/dx + v dz/dy`` (flow parallel to terrain), hence
    ``G rho w = G * (rho u dzs/dx + rho v dzs/dy)`` with metric decay 1 at
    the ground.  Lid: ``w = 0``.
    """
    g = state.grid
    if g.is_flat():
        state.rhow[:, :, 0] = 0.0
    else:
        ax = (state.rhou[:, :, 0] / g.jac_u) * g.dzsdx_u
        ay = (state.rhov[:, :, 0] / g.jac_v) * g.dzsdy_v
        horiz = 0.5 * (ax[1:] + ax[:-1]) + 0.5 * (ay[:, 1:] + ay[:, :-1])
        state.rhow[:, :, 0] = g.jac * horiz
    state.rhow[:, :, -1] = 0.0


def rayleigh_coefficient(
    grid: Grid, depth: float, tau: float
) -> tuple[np.ndarray, np.ndarray]:
    """Rayleigh sponge-layer damping rate [1/s] on centers and w faces.

    Zero below ``ztop - depth``; ``sin^2`` ramp up to ``1/tau`` at the lid.
    This absorbs vertically propagating mountain waves (st-MIP setup).
    """
    if depth <= 0.0:
        return np.zeros(grid.nz), np.zeros(grid.nz + 1)
    z0 = grid.ztop - depth

    def coef(z):
        s = np.clip((z - z0) / depth, 0.0, 1.0)
        return (np.sin(0.5 * np.pi * s) ** 2) / tau

    return coef(grid.z_c), coef(grid.z_f)


class RelaxationBC:
    """Davies lateral relaxation toward externally prescribed fields.

    Nudges each prognostic variable toward boundary data inside a band of
    ``width`` interior cells along non-periodic edges, with weight
    decreasing from ``1/tau`` at the edge to zero inward (cosine ramp).
    Boundary data may be time-dependent: :meth:`set_target` installs a new
    target (the real-case workload updates it hourly, mirroring the JMA
    forecast-driven boundaries of the paper's Fig. 12 run).
    """

    def __init__(self, grid: Grid, width: int = 5, tau: float = 60.0):
        if width < 1:
            raise ValueError("relaxation width must be >= 1")
        self.grid = grid
        self.width = width
        self.tau = tau
        self.targets: dict[str, np.ndarray] = {}
        self._weight_c = self._make_weight(grid.nxh, grid.nyh)
        self._weight_u = self._make_weight(grid.nxh + 1, grid.nyh)
        self._weight_v = self._make_weight(grid.nxh, grid.nyh + 1)

    def _make_weight(self, nx_tot: int, ny_tot: int) -> np.ndarray:
        g, w = self.grid, self.width
        h = g.halo
        wx = np.zeros(nx_tot)
        wy = np.zeros(ny_tot)
        ramp = np.cos(0.5 * np.pi * np.arange(w) / w) ** 2
        if not g.periodic_x:
            wx[h : h + w] = np.maximum(wx[h : h + w], ramp)
            wx[nx_tot - h - w : nx_tot - h] = np.maximum(
                wx[nx_tot - h - w : nx_tot - h], ramp[::-1]
            )
            wx[:h] = 1.0
            wx[nx_tot - h :] = 1.0
        if not g.periodic_y:
            wy[h : h + w] = np.maximum(wy[h : h + w], ramp)
            wy[ny_tot - h - w : ny_tot - h] = np.maximum(
                wy[ny_tot - h - w : ny_tot - h], ramp[::-1]
            )
            wy[:h] = 1.0
            wy[ny_tot - h :] = 1.0
        return np.maximum(wx[:, None], wy[None, :]) / self.tau

    def set_target(self, name: str, target: np.ndarray) -> None:
        self.targets[name] = target

    def weight_for(self, arr: np.ndarray) -> np.ndarray:
        """The (x, y) weight field matching an array's staggering."""
        if arr.shape[:2] == self._weight_u.shape:
            return self._weight_u
        if arr.shape[:2] == self._weight_v.shape:
            return self._weight_v
        return self._weight_c

    def apply(self, state: State, dt: float) -> None:
        """Relax the state toward the installed targets over ``dt``."""
        for name, target in self.targets.items():
            arr = state.get(name)
            w = self.weight_for(arr)
            factor = dt * w
            if arr.ndim == 3:
                factor = factor[:, :, None]
            arr -= factor / (1.0 + factor) * (arr - target)

    def apply_sliced(
        self, state: State, dt: float, x0: int, y0: int
    ) -> None:
        """Distributed form: relax a rank-local state using the *global*
        weights and targets sliced at the rank's offset (``x0, y0`` are
        the subdomain's interior offsets).  Point-wise, so halo cells
        relax exactly as the neighbor's interior does — no exchange is
        needed afterwards."""
        for name, target in self.targets.items():
            arr = state.get(name)
            w_glob = self.weight_for(target)
            sx = slice(x0, x0 + arr.shape[0])
            sy = slice(y0, y0 + arr.shape[1])
            factor = dt * w_glob[sx, sy]
            if arr.ndim == 3:
                factor = factor[:, :, None]
            arr -= factor / (1.0 + factor) * (arr - target[sx, sy])
