"""Finite-volume flux-form advection with limited upwind-biased fluxes.

This implements the transport operator of the paper's Eqs. (1)-(4): all
prognostic quantities are advected in flux form by the (generalized
coordinate) mass fluxes

* ``fx = G_u rho u``   at x faces  (= ``state.rhou``),
* ``fy = G_v rho v``   at y faces  (= ``state.rhov``),
* ``fz = G rho u^3``   at w faces  (contravariant vertical mass flux,
  :func:`contravariant_mass_flux_w`).

Face values of the advected specific quantity use the 4-point
upwind-biased kappa=1/3 reconstruction limited by the Koren limiter
(paper Sec. II), falling back to 1st-order upwind on the first interior
vertical faces where the wide stencil does not fit.  The outermost vertical
faces carry zero flux (rigid lid / kinematic surface condition).

The x/y directions assume a valid halo of width >= 2 on the inputs; outputs
are valid on interior cells only (halo cells of the returned tendency are
garbage and must not be read).
"""
from __future__ import annotations

import numpy as np

from ..stencil.spec import stencil
from .grid import Grid
from .limiter import Limiter, koren

__all__ = [
    "limited_face_flux",
    "flux_divergence_x",
    "flux_divergence_y",
    "flux_divergence_z",
    "contravariant_mass_flux_w",
    "mass_divergence",
    "advect_scalar",
    "advect_u",
    "advect_v",
    "advect_w",
    "ADVECTION_FLOPS_PER_FACE",
]

#: approximate floating-point operations per limited face flux, used by the
#: GPU cost model (validated against the instrumented counter in
#: tests/perf/test_costmodel.py)
ADVECTION_FLOPS_PER_FACE = 16


@stencil(reads=("phi", "flux"), writes=("face_flux",), halo=2,
         flops=ADVECTION_FLOPS_PER_FACE, loads=2, stores=1, probe=False)
def limited_face_flux(
    phi: np.ndarray, flux: np.ndarray, axis: int, limiter: Limiter = koren
) -> np.ndarray:
    """Limited upwind face fluxes along ``axis``.

    ``phi`` has N cells along ``axis``; ``flux`` has N-1 faces, where
    ``flux[m]`` sits between ``phi[m]`` and ``phi[m+1]``.  Returns fluxes on
    the N-3 interior faces ``m in [1, N-3]`` (those with a full 4-point
    stencil), i.e. the result is the face flux array sliced ``[1:-1]``.
    """
    p = np.moveaxis(phi, axis, 0)
    f = np.moveaxis(flux, axis, 0)[1:-1]
    a = p[:-3]
    b = p[1:-2]
    c = p[2:-1]
    d = p[3:]
    up_pos = b + 0.5 * limiter(b - a, c - b)
    up_neg = c + 0.5 * limiter(c - d, b - c)
    face = np.where(f >= 0.0, up_pos, up_neg)
    return np.moveaxis(f * face, 0, axis)


def _div_along(face_flux: np.ndarray, axis: int) -> np.ndarray:
    """Difference of consecutive face fluxes along ``axis``."""
    ff = np.moveaxis(face_flux, axis, 0)
    return np.moveaxis(ff[1:] - ff[:-1], 0, axis)


def flux_divergence_x(
    phi: np.ndarray, fx: np.ndarray, dx: float, limiter: Limiter = koren
) -> np.ndarray:
    """d(fx * phi_face)/dx for cells ``2..N-3`` along axis 0.

    ``phi``: (N, ...) cells; ``fx``: (N+1, ...) at faces with ``fx[i]``
    on the *left* face of cell ``i`` (the staggering of this package).
    Result shape: (N-4, ...) covering cells ``2..N-3``.
    """
    # convert to the between-cells convention: flux[m] = fx[m+1]
    ff = limited_face_flux(phi, fx[1:-1], axis=0, limiter=limiter)
    return _div_along(ff, 0) / dx


def flux_divergence_y(
    phi: np.ndarray, fy: np.ndarray, dy: float, limiter: Limiter = koren
) -> np.ndarray:
    """Same as :func:`flux_divergence_x` along axis 1."""
    ff = limited_face_flux(phi, fy[:, 1:-1], axis=1, limiter=limiter)
    return _div_along(ff, 1) / dy


def flux_divergence_z(
    phi: np.ndarray, fz: np.ndarray, dz_c: np.ndarray, limiter: Limiter = koren
) -> np.ndarray:
    """Vertical flux divergence for all cells along the last axis.

    ``phi``: (..., nz); ``fz``: (..., nz+1) with ``fz[..., 0]`` and
    ``fz[..., nz]`` the boundary faces (their flux is used as given —
    callers enforce the kinematic/rigid-lid conditions there).  Faces
    ``2..nz-2`` use the limited reconstruction; faces 1 and nz-1 use
    1st-order upwind.  ``dz_c``: (nz,) cell thicknesses.
    """
    nz = phi.shape[-1]
    if nz < 4:
        # tiny columns: everything 1st-order upwind
        face = np.where(fz[..., 1:-1] >= 0.0, phi[..., :-1], phi[..., 1:])
        ff = fz[..., 1:-1] * face
    else:
        ff = np.empty(fz[..., 1:-1].shape, dtype=np.result_type(phi, fz))
        ff[..., 1:-1] = limited_face_flux(phi, fz[..., 1:-1], axis=-1, limiter=limiter)
        f_lo = fz[..., 1]
        ff[..., 0] = f_lo * np.where(f_lo >= 0.0, phi[..., 0], phi[..., 1])
        f_hi = fz[..., nz - 1]
        ff[..., -1] = f_hi * np.where(f_hi >= 0.0, phi[..., nz - 2], phi[..., nz - 1])
    full = np.concatenate([fz[..., :1], ff, fz[..., -1:]], axis=-1)
    return (full[..., 1:] - full[..., :-1]) / dz_c


def contravariant_mass_flux_w(
    rhou: np.ndarray, rhov: np.ndarray, rhow: np.ndarray, grid: Grid
) -> np.ndarray:
    """Generalized-coordinate vertical mass flux ``G rho u^3`` at w faces.

    ``G rho u^3 = rho w - rho u dz/dx - rho v dz/dy``; the boundary faces
    (surface and lid) are set to exactly zero, which *is* the kinematic
    boundary condition in these coordinates.
    """
    out = np.zeros(grid.shape_w, dtype=rhow.dtype)
    # rho w = rhow / G
    out[:, :, 1:-1] = rhow[:, :, 1:-1] / grid.jac[:, :, None]
    if not grid.is_flat():
        # rho u dz/dx at (cell center, center level): average the u faces
        ax = (rhou / grid.jac_u[:, :, None]) * grid.dzsdx_u[:, :, None]
        ax_c = 0.5 * (ax[1:] + ax[:-1])
        ay = (rhov / grid.jac_v[:, :, None]) * grid.dzsdy_v[:, :, None]
        ay_c = 0.5 * (ay[:, 1:] + ay[:, :-1])
        horiz = ax_c + ay_c
        # to w faces (interior): vertical average, metric decays linearly
        out[:, :, 1:-1] -= (
            0.5 * (horiz[:, :, 1:] + horiz[:, :, :-1]) * grid.decay_f[None, None, 1:-1]
        )
    return out


def mass_divergence(
    fx: np.ndarray, fy: np.ndarray, fz: np.ndarray, grid: Grid
) -> np.ndarray:
    """Divergence of the mass flux on interior cells (full-shape output,
    halo cells zero).  This is the continuity-equation operator."""
    out = np.zeros(grid.shape_c, dtype=fx.dtype)
    sx, sy = grid.isl
    h = grid.halo
    dfx = (fx[h + 1 : h + grid.nx + 1, sy] - fx[h : h + grid.nx, sy]) / grid.dx
    dfy = (fy[sx, h + 1 : h + grid.ny + 1] - fy[sx, h : h + grid.ny]) / grid.dy
    dfz = (fz[sx, sy, 1:] - fz[sx, sy, :-1]) / grid.dz_c[None, None, :]
    out[sx, sy] = dfx + dfy + dfz
    return out


@stencil(reads=("phi", "fx", "fy", "fz"), writes=("tend_phi",), halo=2,
         flops=80, loads=9, stores=1, table="advection",
         # measured/table ratios sit at ~1.15-1.25 flops and ~19-21x
         # streamed bytes (NumPy materializes every temporary); these
         # bands hold a 1.5-2x margin and are far tighter than the
         # counters' defaults of (0.2, 5.0) / (0.25, 64.0)
         flops_band=(0.7, 2.0), bytes_band=(8.0, 40.0))
def advect_scalar(
    phi: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    grid: Grid,
    limiter: Limiter = koren,
) -> np.ndarray:
    """Advection tendency ``-div(F phi)`` of a cell-centered specific
    quantity ``phi`` (theta or q).  Returns a full-shape array valid on
    interior cells."""
    out = np.zeros(grid.shape_c, dtype=phi.dtype)
    h = grid.halo
    sx, sy = grid.isl

    divx = flux_divergence_x(phi, fx, grid.dx, limiter)
    out[sx, sy] = -divx[h - 2 : h - 2 + grid.nx, sy]

    divy = flux_divergence_y(phi, fy, grid.dy, limiter)
    out[sx, sy] -= divy[sx, h - 2 : h - 2 + grid.ny]

    divz = flux_divergence_z(phi[sx, sy], fz[sx, sy], grid.dz_c, limiter)
    out[sx, sy] -= divz
    return out


@stencil(reads=("u", "fx", "fy", "fz"), writes=("tend_u",), halo=2,
         flops=80, loads=9, stores=1, table="advection")
def advect_u(
    u: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    grid: Grid,
    limiter: Limiter = koren,
) -> np.ndarray:
    """Advection tendency of x-momentum.

    ``u`` is the specific velocity at u faces; the control volume around a
    u face has x faces at cell centers, y faces at cell corners, and z faces
    at (u face, w level).  Mass fluxes are interpolated there by two-point
    averages, which keeps the discrete conservation telescoping.
    Valid on interior u faces ``[h, h+nx]``.
    """
    out = np.zeros(grid.shape_u, dtype=u.dtype)
    h = grid.halo
    slu_x, slu_y = grid.isl_u

    # x fluxes at cell centers: average neighboring u faces
    fxc = 0.5 * (fx[1:] + fx[:-1])          # (nxh, nyh, nz)
    ff = limited_face_flux(u, fxc, axis=0, limiter=limiter)
    # ff covers "faces" between u columns m,m+1 for m in [1, nxh-2];
    # the u face i has neighbors at centers i-1 (index i-2 in ff) and i.
    # u face i has right CV face at center i (ff position i-1) and left CV
    # face at center i-1 (position i-2); interior faces i in [h, h+nx].
    out[slu_x, slu_y] = -(
        ff[h - 1 : h + grid.nx, slu_y] - ff[h - 2 : h + grid.nx - 1, slu_y]
    ) / grid.dx

    # y fluxes at cell corners: average fy in x
    fyc = 0.5 * (fy[1:] + fy[:-1])          # (nxh-1? no: (nxh+1-1, nyh+1, nz))
    # fyc[i] sits at the corner column between u faces... u faces count nxh+1;
    # fyc has nxh entries aligned with u faces 0.5 shifted; corner for u face i
    # uses fy averaged from scalar columns i-1 and i -> index i-1 above.  We
    # need, for u face i, the y faces at (i, j+-1/2): fyc[i-1].
    ffy = limited_face_flux(u[1:-1], fyc[:, 1:-1], axis=1, limiter=limiter)
    # ffy indexed by (u face - 1) in x; along y it covers corner faces
    # m in [1, nyh-3] at position m-1.  The u CV at row j has corners m=j
    # (north) and m=j-1 (south).
    out[slu_x, slu_y] -= (
        ffy[h - 1 : h + grid.nx, h - 1 : h + grid.ny - 1]
        - ffy[h - 1 : h + grid.nx, h - 2 : h + grid.ny - 2]
    ) / grid.dy

    # z fluxes at (u face, w level): average fz in x
    fzu = np.empty((grid.nxh + 1, grid.nyh, grid.nz + 1), dtype=fz.dtype)
    fzu[1:-1] = 0.5 * (fz[1:] + fz[:-1])
    fzu[0] = fz[0]
    fzu[-1] = fz[-1]
    divz = flux_divergence_z(u[slu_x, slu_y], fzu[slu_x, slu_y], grid.dz_c, limiter)
    out[slu_x, slu_y] -= divz
    return out


@stencil(reads=("v", "fx", "fy", "fz"), writes=("tend_v",), halo=2,
         flops=80, loads=9, stores=1, table="advection")
def advect_v(
    v: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    grid: Grid,
    limiter: Limiter = koren,
) -> np.ndarray:
    """Advection tendency of y-momentum (mirror of :func:`advect_u`)."""
    out = np.zeros(grid.shape_v, dtype=v.dtype)
    h = grid.halo
    slv_x, slv_y = grid.isl_v

    fyc = 0.5 * (fy[:, 1:] + fy[:, :-1])
    ff = limited_face_flux(v, fyc, axis=1, limiter=limiter)
    out[slv_x, slv_y] = -(
        ff[slv_x, h - 1 : h + grid.ny] - ff[slv_x, h - 2 : h + grid.ny - 1]
    ) / grid.dy

    # x mass fluxes at corners: fx averaged over rows j, j+1 sits at v face
    # j+1; the (nxh+1, nyh-1) result is aligned with v faces 1..nyh-1.
    fxc = 0.5 * (fx[:, 1:] + fx[:, :-1])
    ffx = limited_face_flux(v[:, 1:-1], fxc[1:-1], axis=0, limiter=limiter)
    # v face (i, j): east corner at u face i+1 (ffx position i-1),
    # west corner at u face i (position i-2), for i in [h, h+nx).
    out[slv_x, slv_y] -= (
        ffx[h - 1 : h + grid.nx - 1, h - 1 : h + grid.ny]
        - ffx[h - 2 : h + grid.nx - 2, h - 1 : h + grid.ny]
    ) / grid.dx

    fzv = np.empty((grid.nxh, grid.nyh + 1, grid.nz + 1), dtype=fz.dtype)
    fzv[:, 1:-1] = 0.5 * (fz[:, 1:] + fz[:, :-1])
    fzv[:, 0] = fz[:, 0]
    fzv[:, -1] = fz[:, -1]
    divz = flux_divergence_z(v[slv_x, slv_y], fzv[slv_x, slv_y], grid.dz_c, limiter)
    out[slv_x, slv_y] -= divz
    return out


@stencil(reads=("w", "fx", "fy", "fz"), writes=("tend_w",), halo=2,
         flops=80, loads=9, stores=1, table="advection")
def advect_w(
    w: np.ndarray,
    fx: np.ndarray,
    fy: np.ndarray,
    fz: np.ndarray,
    grid: Grid,
    limiter: Limiter = koren,
) -> np.ndarray:
    """Advection tendency of vertical momentum.

    ``w`` is the specific vertical velocity at w faces.  Control volumes
    are centered on w faces: horizontal fluxes are the x/y mass fluxes
    averaged to w levels, vertical fluxes are ``fz`` averaged to cell
    centers.  Valid on interior w faces ``k = 1..nz-1`` of interior
    columns; the boundary faces (k=0, k=nz) are left untouched (they are
    set by boundary conditions, not prognosed).
    """
    out = np.zeros(grid.shape_w, dtype=w.dtype)
    h = grid.halo
    sx, sy = grid.isl
    nz = grid.nz

    # vertical spacing of w control volumes = dz_f (distance between centers)
    # horizontal x fluxes at (u face, w level)
    fxw = np.empty((grid.nxh + 1, grid.nyh, nz + 1), dtype=fx.dtype)
    fxw[:, :, 1:-1] = 0.5 * (fx[:, :, 1:] + fx[:, :, :-1])
    fxw[:, :, 0] = fx[:, :, 0]
    fxw[:, :, -1] = fx[:, :, -1]
    divx = flux_divergence_x(w, fxw, grid.dx, limiter)
    out[sx, sy] = -divx[h - 2 : h - 2 + grid.nx, sy]

    fyw = np.empty((grid.nxh, grid.nyh + 1, nz + 1), dtype=fy.dtype)
    fyw[:, :, 1:-1] = 0.5 * (fy[:, :, 1:] + fy[:, :, :-1])
    fyw[:, :, 0] = fy[:, :, 0]
    fyw[:, :, -1] = fy[:, :, -1]
    divy = flux_divergence_y(w, fyw, grid.dy, limiter)
    out[sx, sy] -= divy[sx, h - 2 : h - 2 + grid.ny]

    # vertical fluxes at cell centers: average fz
    fzc = 0.5 * (fz[..., 1:] + fz[..., :-1])           # (..., nz) at centers
    wi = w[sx, sy]
    fzi = fzc[sx, sy]
    # between-w-faces convention along z: w has nz+1 "cells", fzi nz faces
    if nz + 1 >= 4:
        ffz = np.empty(fzi.shape, dtype=w.dtype)
        ffz[..., 1:-1] = limited_face_flux(wi, fzi, axis=-1, limiter=limiter)
        ffz[..., 0] = fzi[..., 0] * np.where(fzi[..., 0] >= 0.0, wi[..., 0], wi[..., 1])
        ffz[..., -1] = fzi[..., -1] * np.where(
            fzi[..., -1] >= 0.0, wi[..., -2], wi[..., -1]
        )
    else:
        ffz = fzi * np.where(fzi >= 0.0, wi[..., :-1], wi[..., 1:])
    out[sx, sy, 1:-1] -= (ffz[..., 1:] - ffz[..., :-1]) / grid.dz_f[None, None, 1:-1]
    # boundary w faces are not prognosed
    out[sx, sy, 0] = 0.0
    out[sx, sy, nz] = 0.0
    return out
