"""Prognostic model state in generalized-coordinate flux form.

The conserved (prognostic) variables follow the paper's Eqs. (1)-(4): the
density-weighted quantities divided by the coordinate Jacobian.  With our
Jacobian convention ``G = dz/dx3`` (``G = 1/J`` in the paper's notation) the
variables stored here are

=========== ========================= ============================
attribute   meaning                   grid location
=========== ========================= ============================
``rho``     G * rho                   cell centers
``rhou``    G_u * rho * u             x faces
``rhov``    G_v * rho * v             y faces
``rhow``    G * rho * w               z faces
``rhotheta``G * rho * theta_m         cell centers
``q[name]`` G * rho * q_alpha         cell centers (7 species)
=========== ========================= ============================

Integrating ``rho * dx * dy * dx3`` over computational cells gives physical
mass exactly, which is what the conservation tests assert.

All arrays carry the horizontal halo of the owning :class:`~repro.core.grid.Grid`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from .. import constants as c
from .grid import Grid
from .reference import ReferenceState

__all__ = ["State", "zeros_state", "state_from_reference"]


@dataclass
class State:
    """Container of prognostic arrays.  Mutable; kernels update in place or
    produce new instances via :meth:`copy`."""

    grid: Grid
    rho: np.ndarray
    rhou: np.ndarray
    rhov: np.ndarray
    rhow: np.ndarray
    rhotheta: np.ndarray
    q: Dict[str, np.ndarray] = field(default_factory=dict)
    time: float = 0.0
    #: accumulated surface precipitation [kg m^-2 == mm], interior cells;
    #: created by the microphysics on first use
    precip_accum: np.ndarray | None = None

    # ------------------------------------------------------------- basics
    @property
    def dtype(self) -> np.dtype:
        return self.rho.dtype

    def copy(self) -> "State":
        return State(
            grid=self.grid,
            rho=self.rho.copy(),
            rhou=self.rhou.copy(),
            rhov=self.rhov.copy(),
            rhow=self.rhow.copy(),
            rhotheta=self.rhotheta.copy(),
            q={k: v.copy() for k, v in self.q.items()},
            time=self.time,
            precip_accum=None if self.precip_accum is None else self.precip_accum.copy(),
        )

    def prognostic_names(self) -> list[str]:
        return ["rho", "rhou", "rhov", "rhow", "rhotheta", *self.q.keys()]

    def get(self, name: str) -> np.ndarray:
        if name in self.q:
            return self.q[name]
        return getattr(self, name)

    def set(self, name: str, value: np.ndarray) -> None:
        if name in self.q:
            self.q[name] = value
        else:
            setattr(self, name, value)

    def validate(self) -> None:
        """Raise if any array is non-finite or density is non-positive in the
        interior — the model driver calls this when ``check_finite`` is on."""
        g = self.grid
        for name in self.prognostic_names():
            arr = self.get(name)
            if not np.all(np.isfinite(g.interior(arr))):
                raise FloatingPointError(f"non-finite values in {name!r} at t={self.time}")
        if np.any(g.interior(self.rho) <= 0):
            raise FloatingPointError(f"non-positive density at t={self.time}")

    # --------------------------------------------------------- diagnostics
    def velocities(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Physical velocities (u at x faces, v at y faces, w at z faces)
        reconstructed from the G-weighted momenta.  Uses simple two-point
        averages for face densities, one-sided at domain edges."""
        g = self.grid
        rho_u = np.empty(g.shape_u, dtype=self.dtype)
        rho_u[1:-1] = 0.5 * (self.rho[1:] + self.rho[:-1])
        rho_u[0] = self.rho[0]
        rho_u[-1] = self.rho[-1]
        # self.rho is G-weighted with the scalar-column G; face G cancels
        # approximately -- we reconstruct with the G-weighted face density,
        # which is exactly consistent with how rhou was built.
        u = self.rhou / rho_u

        rho_v = np.empty(g.shape_v, dtype=self.dtype)
        rho_v[:, 1:-1] = 0.5 * (self.rho[:, 1:] + self.rho[:, :-1])
        rho_v[:, 0] = self.rho[:, 0]
        rho_v[:, -1] = self.rho[:, -1]
        v = self.rhov / rho_v

        rho_w = np.empty(g.shape_w, dtype=self.dtype)
        rho_w[:, :, 1:-1] = 0.5 * (self.rho[:, :, 1:] + self.rho[:, :, :-1])
        rho_w[:, :, 0] = self.rho[:, :, 0]
        rho_w[:, :, -1] = self.rho[:, :, -1]
        w = self.rhow / rho_w
        return u, v, w

    def theta_m(self) -> np.ndarray:
        """Moist potential temperature ``theta_m = rhotheta / rho``."""
        return self.rhotheta / self.rho

    def pressure(self) -> np.ndarray:
        """Full pressure from the equation of state (paper Eq. 5),
        ``p = p0 * (Rd * rho * theta_m / p0) ** (cp/cv)``.

        The G weights cancel in ``rhotheta / G`` only when divided out; we
        need the physical ``rho * theta_m`` so divide by G here."""
        jac = self.grid.jac[:, :, None]
        rhotheta_phys = self.rhotheta / jac
        return c.P0 * (c.RD * rhotheta_phys / c.P0) ** (c.CP / c.CV)

    def total_mass(self) -> float:
        """Physical mass of the interior domain (exact FVM invariant)."""
        g = self.grid
        cell = g.interior(self.rho) * g.dz_c[None, None, :]
        return float(cell.sum() * g.dx * g.dy)

    def total_water_mass(self) -> float:
        g = self.grid
        tot = 0.0
        for arr in self.q.values():
            tot += float((g.interior(arr) * g.dz_c[None, None, :]).sum())
        return tot * g.dx * g.dy

    def mixing_ratio(self, name: str) -> np.ndarray:
        """Diagnostic mixing ratio ``q_alpha = (G rho q) / (G rho)``."""
        return self.q[name] / self.rho


def zeros_state(grid: Grid, dtype=np.float64, species=c.WATER_SPECIES) -> State:
    return State(
        grid=grid,
        rho=grid.zeros_c(dtype),
        rhou=grid.zeros_u(dtype),
        rhov=grid.zeros_v(dtype),
        rhow=grid.zeros_w(dtype),
        rhotheta=grid.zeros_c(dtype),
        q={name: grid.zeros_c(dtype) for name in species},
    )


def state_from_reference(
    grid: Grid,
    ref: ReferenceState,
    *,
    u0: float = 0.0,
    v0: float = 0.0,
    dtype=np.float64,
    species=c.WATER_SPECIES,
) -> State:
    """Initialize a state in exact discrete hydrostatic balance with an
    optional uniform horizontal wind.  ``rhow`` starts at zero; with terrain
    the flow is *not* initially parallel to coordinate surfaces, which is the
    standard impulsive start of the mountain-wave test."""
    st = zeros_state(grid, dtype=dtype, species=species)
    jac3 = grid.jac[:, :, None]
    st.rho[...] = (ref.rho_c * jac3).astype(dtype)
    st.rhotheta[...] = (ref.rho_c * ref.theta_c * jac3).astype(dtype)

    # u faces: average neighboring G*rho columns
    grho = ref.rho_c * jac3
    grho_u = np.empty(grid.shape_u)
    grho_u[1:-1] = 0.5 * (grho[1:] + grho[:-1])
    grho_u[0] = grho[0]
    grho_u[-1] = grho[-1]
    st.rhou[...] = (u0 * grho_u).astype(dtype)

    grho_v = np.empty(grid.shape_v)
    grho_v[:, 1:-1] = 0.5 * (grho[:, 1:] + grho[:, :-1])
    grho_v[:, 0] = grho[:, 0]
    grho_v[:, -1] = grho[:, -1]
    st.rhov[...] = (v0 * grho_v).astype(dtype)
    return st
