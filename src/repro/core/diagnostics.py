"""Stability and budget diagnostics.

Practical tools a model operator needs: the CFL numbers that govern the
long/short step choices (the paper's dt = 5 s mountain wave vs dt = 0.5 s
at 500 m resolution are exactly these constraints), energy budgets, and
the residual hydrostatic imbalance.

The acoustic constraint is the HE-VI selling point (paper Sec. II): sound
is integrated explicitly only *horizontally*, so the substep limit is
``dtau < min(dx, dy) / (sqrt(2) c_s)`` — the vertical grid spacing, which
would otherwise dictate a far smaller step, drops out.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as c
from .grid import Grid
from .pressure import eos_pressure
from .state import State

__all__ = ["CflReport", "cfl_report", "suggest_ns", "EnergyBudget",
           "energy_budget", "hydrostatic_imbalance"]


@dataclass
class CflReport:
    """Courant numbers of a state for a given (dt, ns) choice."""

    advective_x: float        #: max |u| dt / dx
    advective_y: float
    advective_z: float        #: max |u3| dt / dz (terrain-aware)
    acoustic_horizontal: float  #: c_s dtau sqrt(1/dx^2 + 1/dy^2)
    acoustic_vertical_explicit: float  #: c_s dtau / dz — what HE-VI avoids
    dtau: float

    @property
    def advective_max(self) -> float:
        return max(self.advective_x, self.advective_y, self.advective_z)

    @property
    def stable(self) -> bool:
        """Rule-of-thumb stability: advective CFL under ~1 for RK3 with
        the Koren scheme, acoustic horizontal under ~0.7 with divergence
        damping."""
        return self.advective_max < 1.0 and self.acoustic_horizontal < 0.7


def cfl_report(state: State, dt: float, ns: int) -> CflReport:
    """Courant numbers for the current state."""
    g = state.grid
    u, v, w = state.velocities()
    dtau = dt / max(ns, 1)

    p = eos_pressure(state.rhotheta, g)
    jac3 = g.jac[:, :, None]
    cs = np.sqrt(c.sound_speed_squared(p, state.rho / jac3))
    cs_max = float(g.interior(cs).max())

    dz_phys_min = float((g.dz_c[None, None, :] * jac3).min())
    adv_x = float(np.abs(u[g.isl_u]).max()) * dt / g.dx
    adv_y = float(np.abs(v[g.isl_v]).max()) * dt / g.dy
    adv_z = float(np.abs(g.interior(w)).max()) * dt / dz_phys_min
    return CflReport(
        advective_x=adv_x,
        advective_y=adv_y,
        advective_z=adv_z,
        acoustic_horizontal=cs_max * dtau * float(np.hypot(1.0 / g.dx, 1.0 / g.dy)),
        acoustic_vertical_explicit=cs_max * dtau / dz_phys_min,
        dtau=dtau,
    )


def suggest_ns(grid: Grid, dt: float, *, cs: float = 350.0,
               target_cfl: float = 0.5) -> int:
    """Smallest even acoustic substep count keeping the horizontal
    acoustic CFL at or under ``target_cfl``."""
    dtau_max = target_cfl / (cs * float(np.hypot(1.0 / grid.dx, 1.0 / grid.dy)))
    ns = max(int(np.ceil(dt / dtau_max)), 1)
    return ns + (ns % 2)  # even, as the RK3 stage plan wants


@dataclass
class EnergyBudget:
    """Domain-integrated energies [J]."""

    kinetic: float
    internal: float            #: cv T rho
    potential: float           #: g z rho
    total: float


def energy_budget(state: State, ref=None) -> EnergyBudget:
    """Integrate the energy reservoirs over the interior.

    The split-explicit scheme is not exactly energy conserving (no such
    scheme is), but the total should drift slowly and boundedly — the
    integration tests track it.
    """
    g = state.grid
    sx, sy = g.isl
    jac3 = g.jac[:, :, None]
    vol_phys = g.dx * g.dy * (g.dz_c[None, None, :] * jac3[sx, sy])

    rho_phys = state.rho[sx, sy] / jac3[sx, sy]
    u, v, w = state.velocities()
    u_c = 0.5 * (u[g.isl_u][:-1] + u[g.isl_u][1:])
    v_c = 0.5 * (v[g.isl_v][:, :-1] + v[g.isl_v][:, 1:])
    w_c = 0.5 * (w[sx, sy][:, :, :-1] + w[sx, sy][:, :, 1:])
    ke = float((0.5 * rho_phys * (u_c ** 2 + v_c ** 2 + w_c ** 2) * vol_phys).sum())

    p = eos_pressure(state.rhotheta, g)[sx, sy]
    T = p / (c.RD * rho_phys)
    ie = float((c.CV * T * rho_phys * vol_phys).sum())

    z3 = g.z3d_c()[sx, sy]
    pe = float((c.G * z3 * rho_phys * vol_phys).sum())
    return EnergyBudget(kinetic=ke, internal=ie, potential=pe,
                        total=ke + ie + pe)


def hydrostatic_imbalance(state: State, p_ref: np.ndarray,
                          rho_ref_hat: np.ndarray) -> float:
    """Max residual vertical force per unit volume [N/m^3] relative to the
    discrete reference, ``| -d(p - p_ref)/dx3 - g (rho^ - rho_ref^) |`` at
    interior w faces — exactly the forcing the acoustic step integrates,
    so a balanced state returns 0 to round-off."""
    g = state.grid
    sx, sy = g.isl
    p = eos_pressure(state.rhotheta, g)
    dp = (p - p_ref)[sx, sy]
    dz_pp = (dp[:, :, 1:] - dp[:, :, :-1]) / g.dz_f[None, None, 1:-1]
    drho = (state.rho - rho_ref_hat)[sx, sy]
    buoy = 0.5 * (drho[:, :, 1:] + drho[:, :, :-1])
    return float(np.abs(-dz_pp - c.G * buoy).max())
