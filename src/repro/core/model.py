"""Top-level ASUCA model driver.

``AsucaModel`` wires together the grid, reference state, RK3/HE-VI
integrator, boundary handling and (optionally) the warm-rain physics into
the execution flow of the paper's Fig. 1: initialize -> iterate long steps
(each containing short acoustic steps) -> physics -> output.

This class is the single-domain ("one GPU worth of work") driver; the
multi-GPU wrapper in :mod:`repro.dist.multigpu` runs one of these per rank
with halo exchanges replacing the periodic fills.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from .. import constants as c
from ..obs.trace import span
from ..profiling import profile_phase
from ..physics.ice import IceConfig, cold_rain_step
from ..physics.surface import (
    SurfaceConfig,
    apply_newtonian_cooling,
    apply_surface_heating,
    diurnal_cycle_flux,
)
from ..physics.kessler import KesslerConfig, kessler_step
from .boundary import RelaxationBC, fill_halos_state
from .grid import Grid
from .pressure import eos_pressure
from .reference import ReferenceState
from .rk3 import DynamicsConfig, Rk3Integrator
from .state import State, state_from_reference

__all__ = ["ModelConfig", "AsucaModel", "StepDiagnostics"]


@dataclass
class ModelConfig:
    """Full model configuration: dynamics + physics switches."""

    dynamics: DynamicsConfig = field(default_factory=DynamicsConfig)
    physics_enabled: bool = False
    kessler: KesslerConfig = field(default_factory=KesslerConfig)
    #: ice-phase (cold rain) extension — the paper's stated future work
    ice_enabled: bool = False
    ice: IceConfig = field(default_factory=IceConfig)
    #: surface sensible heating + Newtonian radiative cooling
    surface: SurfaceConfig = field(default_factory=SurfaceConfig)


@dataclass
class StepDiagnostics:
    """Cheap per-step scalars for monitoring and tests."""

    time: float
    max_w: float
    max_wind: float
    total_mass: float
    min_theta: float
    max_theta: float


class AsucaModel:
    """Single-domain non-hydrostatic model.

    Parameters
    ----------
    grid, ref
        geometry and balanced base state.
    config
        :class:`ModelConfig`; ``config.dynamics.dt`` is the long step.
    exchange
        optional halo-refresh hook ``exchange(state, names|None)``; the
        default applies the grid's periodic/open fills.  The distributed
        driver passes its own exchanger here.
    relaxation
        optional :class:`~repro.core.boundary.RelaxationBC` applied after
        every long step (real-case workload).
    """

    def __init__(
        self,
        grid: Grid,
        ref: ReferenceState,
        config: ModelConfig | None = None,
        *,
        exchange: Callable[[State, list[str] | None], None] | None = None,
        relaxation: RelaxationBC | None = None,
    ):
        self.grid = grid
        self.ref = ref
        self.config = config or ModelConfig()
        self.relaxation = relaxation
        self._exchange = exchange or self._default_exchange
        # discrete reference pressure via the same EOS the model uses, so
        # that an unperturbed state is exactly stationary
        rhotheta_ref_hat = ref.rhotheta_c * grid.jac[:, :, None]
        self.p_ref = eos_pressure(rhotheta_ref_hat, grid)
        self.integrator = Rk3Integrator(
            grid, ref, self.config.dynamics, self._exchange, self.p_ref
        )

    # ------------------------------------------------------------------
    def _default_exchange(self, state: State, names: list[str] | None) -> None:
        with span("halo_fill", cat="comm"):
            fill_halos_state(state, names)

    def initial_state(self, *, u0: float = 0.0, v0: float = 0.0, dtype=np.float64) -> State:
        """Balanced initial state with uniform wind (halos filled)."""
        st = state_from_reference(self.grid, self.ref, u0=u0, v0=v0, dtype=dtype)
        self._exchange(st, None)
        return st

    # ------------------------------------------------------------------
    def step(self, state: State) -> State:
        """One long time step: dynamics, then physics, then lateral
        relaxation (paper Fig. 1 flow)."""
        with span("dynamics_rk3", cat="phase"):
            new = self.integrator.step(state)
        if self.config.physics_enabled:
            with profile_phase("physics_warm_rain"):
                kessler_step(new, self.ref, self.config.dynamics.dt, self.config.kessler)
            if self.config.ice_enabled:
                with profile_phase("physics_cold_rain"):
                    cold_rain_step(new, self.ref, self.config.dynamics.dt,
                                   self.config.ice)
                self._exchange(new, ["rhotheta", "rho", "qv", "qc", "qr",
                                     "qi", "qs"])
            else:
                self._exchange(new, ["rhotheta", "qv", "qc", "qr"])
        sc = self.config.surface
        if sc.heat_flux != 0.0 or sc.radiation_tau > 0.0:
            with span("physics_surface", cat="phase"):
                dt = self.config.dynamics.dt
                flux = sc.heat_flux
                if sc.diurnal:
                    flux = diurnal_cycle_flux(sc.heat_flux, new.time,
                                              sc.day_length)
                apply_surface_heating(new, self.ref, dt, flux)
                apply_newtonian_cooling(new, self.ref, dt, sc.radiation_tau)
                self._exchange(new, ["rhotheta"])
        if self.relaxation is not None:
            with span("boundary_relaxation", cat="phase"):
                self.relaxation.apply(new, self.config.dynamics.dt)
                self._exchange(new, None)
        return new

    def run(
        self,
        state: State,
        n_steps: int,
        *,
        callback: Callable[[int, State], None] | None = None,
        checkpoint=None,
        start_step: int = 0,
    ) -> State:
        """Advance ``n_steps`` long steps.

        ``checkpoint`` (a
        :class:`~repro.resilience.checkpoint.CheckpointManager`) snapshots
        the state at the manager's cadence, keyed by the absolute step
        counter ``start_step + i + 1`` — restart a run bit-identically by
        loading the latest checkpoint and passing its step here.
        """
        for i in range(n_steps):
            state = self.step(state)
            if callback is not None:
                callback(i, state)
            if checkpoint is not None and checkpoint.due(start_step + i + 1):
                checkpoint.save(start_step + i + 1, state)
        return state

    # ------------------------------------------------------------- output
    def diagnostics(self, state: State) -> StepDiagnostics:
        g = self.grid
        u, v, w = state.velocities()
        theta = g.interior(state.theta_m())
        return StepDiagnostics(
            time=state.time,
            max_w=float(np.abs(g.interior(w)).max()),
            max_wind=float(
                max(np.abs(u[g.isl_u]).max(), np.abs(v[g.isl_v]).max())
            ),
            total_mass=state.total_mass(),
            min_theta=float(theta.min()),
            max_theta=float(theta.max()),
        )

    def pressure_perturbation(self, state: State) -> np.ndarray:
        """p - p_ref on the full (halo-inclusive) grid."""
        return eos_pressure(state.rhotheta, self.grid) - self.p_ref
