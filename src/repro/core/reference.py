"""Hydrostatically balanced reference (base) state.

The HE-VI acoustic step linearizes pressure and buoyancy around a dry,
hydrostatically balanced base state ``(rho_bar, theta_bar, p_bar)`` that
depends on physical height only.  Given a potential-temperature profile
``theta(z)`` the Exner function follows from hydrostatic balance::

    d(pi)/dz = -g / (cp * theta(z)),   pi(0) = (p_sfc / p0)^(Rd/cp)

and then ``p = p0 * pi**(cp/Rd)``, ``T = theta * pi``,
``rho = p / (Rd * T)``.

Because the grid is terrain following, base-state fields are 3-D: they are
the 1-D balanced profiles evaluated at the physical height of every cell.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import constants as c
from .grid import Grid

__all__ = ["ReferenceState", "make_reference_state", "hydrostatic_exner"]


def hydrostatic_exner(
    theta_of_z: Callable[[np.ndarray], np.ndarray],
    z_max: float,
    *,
    p_surface: float = c.P0,
    n_points: int = 4001,
) -> tuple[np.ndarray, np.ndarray]:
    """Integrate hydrostatic balance on a fine 1-D grid.

    Returns ``(z_fine, pi_fine)`` suitable for interpolation.  Uses the
    trapezoidal rule on ``d(pi)/dz = -g / (cp * theta)``, which is exact
    enough (4th-order profiles change nothing at n=4001) for every test in
    this repository.
    """
    z = np.linspace(0.0, z_max, n_points)
    theta = np.asarray(theta_of_z(z), dtype=np.float64)
    if np.any(theta <= 0):
        raise ValueError("theta(z) must be positive")
    integrand = -c.G / (c.CP * theta)
    dpi = np.concatenate(
        ([0.0], np.cumsum(0.5 * (integrand[1:] + integrand[:-1]) * np.diff(z)))
    )
    pi0 = (p_surface / c.P0) ** c.KAPPA
    pi = pi0 + dpi
    if np.any(pi <= 0):
        raise ValueError("hydrostatic Exner function became non-positive; "
                         "z_max too large for this sounding")
    return z, pi


@dataclass
class ReferenceState:
    """Base-state fields on the terrain-following grid (halo included).

    ``*_c`` live at cell centers, ``*_wf`` at w (vertical) faces.
    ``rhotheta_c`` is the base-state ``rho_bar * theta_bar`` used by the
    linearized equation of state.
    """

    theta_c: np.ndarray      # (nxh, nyh, nz)
    pi_c: np.ndarray
    p_c: np.ndarray
    rho_c: np.ndarray
    rhotheta_c: np.ndarray
    theta_wf: np.ndarray     # (nxh, nyh, nz+1)
    rho_wf: np.ndarray
    p_wf: np.ndarray
    cs2_c: np.ndarray        # sound speed squared at centers

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.theta_c.shape


def make_reference_state(
    grid: Grid,
    theta_of_z: Callable[[np.ndarray], np.ndarray],
    *,
    p_surface: float = c.P0,
) -> ReferenceState:
    """Evaluate the balanced profiles on every grid column."""
    z_c3 = grid.z3d_c()
    z_f3 = grid.z3d_f()
    z_max = float(z_f3.max()) * 1.0 + 1.0
    z_fine, pi_fine = hydrostatic_exner(theta_of_z, z_max, p_surface=p_surface)

    def eval_at(z3: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pi = np.interp(z3.ravel(), z_fine, pi_fine).reshape(z3.shape)
        theta = np.asarray(theta_of_z(z3.ravel()), dtype=np.float64).reshape(z3.shape)
        return theta, pi

    theta_c, pi_c = eval_at(z_c3)
    theta_wf, pi_wf = eval_at(z_f3)

    p_c = c.P0 * pi_c ** (c.CP / c.RD)
    p_wf = c.P0 * pi_wf ** (c.CP / c.RD)
    rho_c = p_c / (c.RD * theta_c * pi_c)
    rho_wf = p_wf / (c.RD * theta_wf * pi_wf)
    return ReferenceState(
        theta_c=theta_c,
        pi_c=pi_c,
        p_c=p_c,
        rho_c=rho_c,
        rhotheta_c=rho_c * theta_c,
        theta_wf=theta_wf,
        rho_wf=rho_wf,
        p_wf=p_wf,
        cs2_c=c.sound_speed_squared(p_c, rho_c),
    )
