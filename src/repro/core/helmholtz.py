"""The 1-D Helmholtz-like vertical implicit operator of the HE-VI scheme.

Eliminating the trapezoidally-implicit pressure and buoyancy couplings from
the vertical momentum equation (paper Sec. IV-A-3) leaves, per grid column,
a tridiagonal system for the new vertical momentum ``W = G rho w`` at the
interior w faces ``k = 1..nz-1``::

    A(W) = W - (dtau beta)^2 / G * [ Dz'( Cp * Dz(theta_f W) ) + g avg_z(Dz W) ]

where ``Dz`` is the face->center difference, ``Dz'`` the center->face
difference, ``Cp`` the EOS linearization coefficient (``p' = Cp (G rho
theta)'``), ``theta_f`` the base ``theta`` at w faces, and ``beta`` the
implicit off-centering (>= 0.5).  Boundary faces carry ``W = 0`` (zero
contravariant flux: rigid lid and the kinematic terrain condition).

The paper solves exactly this system with threads marching in z over the
(x, y) slice; :func:`repro.core.tridiag.thomas_solve` is the batched NumPy
equivalent.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as c
from ..stencil.spec import stencil
from .grid import Grid
from .tridiag import thomas_solve

__all__ = ["HelmholtzOperator", "helmholtz_solve", "HELMHOLTZ_FLOPS_PER_POINT"]

HELMHOLTZ_FLOPS_PER_POINT = 20


@dataclass
class HelmholtzOperator:
    """Assembled vertical implicit operator for one linearization state.

    ``theta_f``: (nxh, nyh, nz+1) base theta at w faces;
    ``cp_lin``:  (nxh, nyh, nz) EOS linearization coefficient;
    built for a fixed acoustic substep ``dtau`` and off-centering ``beta``.
    """

    grid: Grid
    theta_f: np.ndarray
    cp_lin: np.ndarray
    dtau: float
    beta: float

    def __post_init__(self) -> None:
        g = self.grid
        nz = g.nz
        dz_c = g.dz_c
        dz_f = g.dz_f
        s = (self.dtau * self.beta) ** 2 / g.jac[:, :, None]  # (nxh, nyh, 1)

        thf = self.theta_f
        cp = self.cp_lin
        # interior w faces k = 1..nz-1 -> array index m = k-1
        k = np.arange(1, nz)
        inv_dzf = 1.0 / dz_f[k]
        inv_dzc_k = 1.0 / dz_c[k]        # dz of the cell above face k
        inv_dzc_km = 1.0 / dz_c[k - 1]   # below

        cp_k = cp[:, :, 1:]              # Cp[k] for k=1..nz-1
        cp_km = cp[:, :, :-1]
        th_kp = thf[:, :, 2:]            # theta_f[k+1]
        th_k = thf[:, :, 1:-1]
        th_km = thf[:, :, :-2]

        half_g = 0.5 * c.G
        self.sup = -s * (
            cp_k * th_kp * inv_dzf * inv_dzc_k + half_g * inv_dzc_k
        )
        self.sub = -s * (
            cp_km * th_km * inv_dzf * inv_dzc_km - half_g * inv_dzc_km
        )
        self.diag = 1.0 + s * (
            th_k * (cp_k * inv_dzc_k + cp_km * inv_dzc_km) * inv_dzf
            - half_g * (inv_dzc_km - inv_dzc_k)
        )
        if np.any(self.diag <= 0.0):
            raise ValueError(
                "Helmholtz diagonal not positive; dtau/beta/stratification "
                "outside the operator's validity range"
            )

    # ------------------------------------------------------------------ ops
    def apply(self, w_full: np.ndarray) -> np.ndarray:
        """Apply A to a full (nxh, nyh, nz+1) w-momentum array; returns the
        result at interior faces, shape (nxh, nyh, nz-1).  Boundary faces
        of the input participate as known values."""
        w_km = w_full[:, :, :-2]
        w_k = w_full[:, :, 1:-1]
        w_kp = w_full[:, :, 2:]
        return self.sub * w_km + self.diag * w_k + self.sup * w_kp

    def solve(self, rhs_interior: np.ndarray) -> np.ndarray:
        """Solve ``A(W) = rhs`` with zero boundary faces; returns the full
        (nxh, nyh, nz+1) array with zeros at faces 0 and nz."""
        return helmholtz_solve(self, rhs_interior)

    def residual(self, w_full: np.ndarray, rhs_interior: np.ndarray) -> float:
        """Max-norm residual of a candidate solution (testing hook)."""
        return float(np.abs(self.apply(w_full) - rhs_interior).max())


@stencil(reads=("sub", "diag", "sup", "rhs"), writes=("w",), halo=0,
         march_axis="z", flops=40, loads=7, stores=2, table="helmholtz",
         stage="solver",
         # measured ratios: ~0.33 flops (the table prices assembly the
         # NumPy path amortizes into the operator), ~2.5x bytes
         flops_band=(0.2, 0.7), bytes_band=(1.0, 6.0))
def helmholtz_solve(op: HelmholtzOperator, rhs_interior: np.ndarray) -> np.ndarray:
    """Batched Thomas solve of the assembled operator (column-local; the
    paper marches threads in z over the (x, y) slice)."""
    g = op.grid
    w = np.zeros((rhs_interior.shape[0], rhs_interior.shape[1], g.nz + 1),
                 dtype=rhs_interior.dtype)
    w[:, :, 1:-1] = thomas_solve(op.sub, op.diag, op.sup, rhs_interior)
    return w
