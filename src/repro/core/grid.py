"""Arakawa-C staggered grid with terrain-following generalized coordinates.

ASUCA (paper Sec. II) solves the flux-form compressible equations in
generalized coordinates ``(x1, x2, x3)`` on an Arakawa-C grid with Lorenz
vertical staggering.  We implement the common Gal-Chen/basic
terrain-following (BTF) realization of those coordinates:

* ``x1 = x`` and ``x2 = y`` are unchanged Cartesian horizontal coordinates,
* ``x3`` is a flat-terrain height coordinate on ``[0, ztop]``; the physical
  height of a point is ``z = zs(x, y) + x3 * (1 - zs / ztop)``.

With that mapping the Jacobian of the transformation,
``J = dz/dx3 = 1 - zs/ztop``, depends on ``(x, y)`` only, and the metric
terms are ``dz/dx|_{x3} = dzs/dx * (1 - x3/ztop)`` (similarly for ``y``).
The contravariant vertical velocity used to advect through coordinate
surfaces is::

    u3 = ( w - u * dz/dx|x3 - v * dz/dy|x3 ) / J

Index conventions
-----------------
All fields carry a horizontal halo of width ``halo`` in both x and y; the
vertical direction has no halo.  The 4-point advection stencil needs width
2; the default is 3 so that *no interior result depends on the one-sided
edge treatment of derived face quantities* (face densities, face thetas) —
that extra cell is what makes a domain-decomposed run bit-identical to the
single-domain run (tests/dist).  Shapes:

=================== =============================== =========================
field               location                        shape
=================== =============================== =========================
scalar (rho, ...)   cell center                     (nx+2h, ny+2h, nz)
u-momentum          x face i at x = (i-h)*dx        (nx+2h+1, ny+2h, nz)
v-momentum          y face                          (nx+2h, ny+2h+1, nz)
w-momentum          z face k at z3 = z_f[k]         (nx+2h, ny+2h, nz+1)
=================== =============================== =========================

Interior cells are ``i in [h, h+nx)``; interior x faces ``i in [h, h+nx]``.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["Grid", "make_grid", "bell_mountain", "stretched_levels"]


def _as_levels(nz: int, ztop: float, z_faces: np.ndarray | None) -> np.ndarray:
    if z_faces is None:
        return np.linspace(0.0, ztop, nz + 1)
    z_faces = np.asarray(z_faces, dtype=np.float64)
    if z_faces.shape != (nz + 1,):
        raise ValueError(f"z_faces must have shape ({nz + 1},), got {z_faces.shape}")
    if z_faces[0] != 0.0 or not np.all(np.diff(z_faces) > 0):
        raise ValueError("z_faces must start at 0 and increase monotonically")
    return z_faces


@dataclass
class Grid:
    """Geometry container; construct through :func:`make_grid`.

    Attributes of interest to kernel code:

    * ``jac`` — the Jacobian J at scalar columns, shape (nx+2h, ny+2h).
    * ``jac_u`` / ``jac_v`` — J averaged to u/v faces.
    * ``dzdx_u[k-profile]`` — the metric ``dz/dx`` at u faces is separable:
      ``dzdx_u[:, :, None] * decay_c[None, None, :]`` with
      ``decay_c[k] = 1 - z_c[k]/ztop`` (and ``decay_f`` on w levels).
    """

    nx: int
    ny: int
    nz: int
    dx: float
    dy: float
    ztop: float
    halo: int

    # vertical structure (computational coordinate x3)
    z_f: np.ndarray        # (nz+1,) face levels
    z_c: np.ndarray        # (nz,)   center levels
    dz_c: np.ndarray       # (nz,)   cell thickness in x3
    dz_f: np.ndarray       # (nz+1,) distance between neighboring centers,
    #                        clamped to half-cells at top/bottom

    # terrain (includes halo)
    zs: np.ndarray         # (nxh, nyh) surface height at scalar points
    jac: np.ndarray        # (nxh, nyh) J at scalar points
    jac_u: np.ndarray      # (nxh+1, nyh)
    jac_v: np.ndarray      # (nxh, nyh+1)
    dzsdx_u: np.ndarray    # (nxh+1, nyh) d(zs)/dx at u faces
    dzsdy_v: np.ndarray    # (nxh, nyh+1) d(zs)/dy at v faces

    periodic_x: bool = True
    periodic_y: bool = True

    # decay profiles of the metric terms: 1 - x3/ztop
    decay_c: np.ndarray = field(default=None)  # (nz,)
    decay_f: np.ndarray = field(default=None)  # (nz+1,)

    def __post_init__(self) -> None:
        if self.decay_c is None:
            self.decay_c = 1.0 - self.z_c / self.ztop
        if self.decay_f is None:
            self.decay_f = 1.0 - self.z_f / self.ztop

    # ------------------------------------------------------------------ sizes
    @property
    def nxh(self) -> int:
        """x extent including halo."""
        return self.nx + 2 * self.halo

    @property
    def nyh(self) -> int:
        """y extent including halo."""
        return self.ny + 2 * self.halo

    @property
    def shape_c(self) -> tuple[int, int, int]:
        """halo-inclusive shape of a cell-centered field."""
        return (self.nxh, self.nyh, self.nz)

    @property
    def shape_u(self) -> tuple[int, int, int]:
        return (self.nxh + 1, self.nyh, self.nz)

    @property
    def shape_v(self) -> tuple[int, int, int]:
        return (self.nxh, self.nyh + 1, self.nz)

    @property
    def shape_w(self) -> tuple[int, int, int]:
        return (self.nxh, self.nyh, self.nz + 1)

    @property
    def n_interior_cells(self) -> int:
        return self.nx * self.ny * self.nz

    # ------------------------------------------------------------- slicing
    @property
    def isl(self) -> tuple[slice, slice]:
        """(x, y) slices selecting interior cells of a centered field."""
        h = self.halo
        return (slice(h, h + self.nx), slice(h, h + self.ny))

    @property
    def isl_u(self) -> tuple[slice, slice]:
        """(x, y) slices selecting interior x faces of a u field
        (both boundary faces included)."""
        h = self.halo
        return (slice(h, h + self.nx + 1), slice(h, h + self.ny))

    @property
    def isl_v(self) -> tuple[slice, slice]:
        h = self.halo
        return (slice(h, h + self.nx), slice(h, h + self.ny + 1))

    def interior(self, arr: np.ndarray) -> np.ndarray:
        """View of the interior cells of a cell-centered (or w) field."""
        sx, sy = self.isl
        return arr[sx, sy]

    # --------------------------------------------------------- allocation
    def zeros_c(self, dtype=np.float64) -> np.ndarray:
        return np.zeros(self.shape_c, dtype=dtype)

    def zeros_u(self, dtype=np.float64) -> np.ndarray:
        return np.zeros(self.shape_u, dtype=dtype)

    def zeros_v(self, dtype=np.float64) -> np.ndarray:
        return np.zeros(self.shape_v, dtype=dtype)

    def zeros_w(self, dtype=np.float64) -> np.ndarray:
        return np.zeros(self.shape_w, dtype=dtype)

    # --------------------------------------------------------- coordinates
    def x_c(self) -> np.ndarray:
        """x of cell centers, halo included; interior starts at dx/2."""
        return (np.arange(self.nxh) - self.halo + 0.5) * self.dx

    def y_c(self) -> np.ndarray:
        return (np.arange(self.nyh) - self.halo + 0.5) * self.dy

    def x_u(self) -> np.ndarray:
        """x of u faces, halo included."""
        return (np.arange(self.nxh + 1) - self.halo) * self.dx

    def y_v(self) -> np.ndarray:
        return (np.arange(self.nyh + 1) - self.halo) * self.dy

    def z3d_c(self) -> np.ndarray:
        """Physical height of cell centers, shape (nxh, nyh, nz)."""
        return self.zs[:, :, None] + self.z_c[None, None, :] * self.jac[:, :, None]

    def z3d_f(self) -> np.ndarray:
        """Physical height of w faces, shape (nxh, nyh, nz+1)."""
        return self.zs[:, :, None] + self.z_f[None, None, :] * self.jac[:, :, None]

    # ----------------------------------------------------------- metrics
    def dzdx_at_u(self) -> np.ndarray:
        """Metric dz/dx|_{x3} at u faces and cell-center levels,
        shape (nxh+1, nyh, nz)."""
        return self.dzsdx_u[:, :, None] * self.decay_c[None, None, :]

    def dzdy_at_v(self) -> np.ndarray:
        return self.dzsdy_v[:, :, None] * self.decay_c[None, None, :]

    def is_flat(self) -> bool:
        """True when there is no terrain (all metric terms vanish)."""
        return bool(np.all(self.zs == 0.0))

    # ------------------------------------------------------------- memory
    def field_bytes(self, dtype=np.float64) -> int:
        """Bytes of one interior cell-centered field (no halo), used by the
        GPU-capacity accounting mirroring the paper's 4-GB limit."""
        return self.nx * self.ny * self.nz * np.dtype(dtype).itemsize


def make_grid(
    nx: int,
    ny: int,
    nz: int,
    dx: float,
    dy: float,
    ztop: float,
    *,
    halo: int = 3,
    terrain: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
    z_faces: np.ndarray | None = None,
    periodic_x: bool = True,
    periodic_y: bool = True,
) -> Grid:
    """Build a :class:`Grid`.

    Parameters
    ----------
    terrain
        ``zs = terrain(X, Y)`` evaluated on 2-D meshes of scalar-point
        coordinates; ``None`` means flat.  Terrain must stay well below
        ``ztop`` (we require ``zs < 0.8 * ztop``).
    z_faces
        optional stretched vertical face levels (``(nz+1,)``, starting at 0).
    """
    if nx < 1 or ny < 1 or nz < 2:
        raise ValueError("grid must have nx,ny >= 1 and nz >= 2")
    if halo < 2:
        raise ValueError("halo must be >= 2 for the 4-point advection stencil")
    z_f = _as_levels(nz, ztop, z_faces)
    z_c = 0.5 * (z_f[:-1] + z_f[1:])
    dz_c = np.diff(z_f)
    # distance between neighboring centers, defined on faces; the boundary
    # faces use the half cell so that one-sided differences stay scaled.
    dz_f = np.empty(nz + 1)
    dz_f[1:-1] = z_c[1:] - z_c[:-1]
    dz_f[0] = z_c[0] - z_f[0]
    dz_f[-1] = z_f[-1] - z_c[-1]

    nxh, nyh = nx + 2 * halo, ny + 2 * halo
    xc = (np.arange(nxh) - halo + 0.5) * dx
    yc = (np.arange(nyh) - halo + 0.5) * dy
    if terrain is None:
        zs = np.zeros((nxh, nyh))
    else:
        X, Y = np.meshgrid(xc, yc, indexing="ij")
        zs = np.asarray(terrain(X, Y), dtype=np.float64)
        if zs.shape != (nxh, nyh):
            raise ValueError("terrain() must return an (nxh, nyh) array")
        if np.any(zs < 0) or np.any(zs >= 0.8 * ztop):
            raise ValueError("terrain must satisfy 0 <= zs < 0.8 * ztop")
        if periodic_x:
            # make the terrain consistent with periodic wrap-around
            zs[:halo] = zs[nx : nx + halo]
            zs[nx + halo :] = zs[halo : 2 * halo]
        if periodic_y:
            zs[:, :halo] = zs[:, ny : ny + halo]
            zs[:, ny + halo :] = zs[:, halo : 2 * halo]

    jac = 1.0 - zs / ztop

    # u faces: average/difference of the two neighboring scalar columns.
    zs_u = np.empty((nxh + 1, nyh))
    zs_u[1:-1] = 0.5 * (zs[1:] + zs[:-1])
    zs_u[0] = zs[0]
    zs_u[-1] = zs[-1]
    jac_u = 1.0 - zs_u / ztop
    dzsdx_u = np.zeros((nxh + 1, nyh))
    dzsdx_u[1:-1] = (zs[1:] - zs[:-1]) / dx

    zs_v = np.empty((nxh, nyh + 1))
    zs_v[:, 1:-1] = 0.5 * (zs[:, 1:] + zs[:, :-1])
    zs_v[:, 0] = zs[:, 0]
    zs_v[:, -1] = zs[:, -1]
    jac_v = 1.0 - zs_v / ztop
    dzsdy_v = np.zeros((nxh, nyh + 1))
    dzsdy_v[:, 1:-1] = (zs[:, 1:] - zs[:, :-1]) / dy

    return Grid(
        nx=nx, ny=ny, nz=nz, dx=dx, dy=dy, ztop=ztop, halo=halo,
        z_f=z_f, z_c=z_c, dz_c=dz_c, dz_f=dz_f,
        zs=zs, jac=jac, jac_u=jac_u, jac_v=jac_v,
        dzsdx_u=dzsdx_u, dzsdy_v=dzsdy_v,
        periodic_x=periodic_x, periodic_y=periodic_y,
    )


def bell_mountain(height: float, half_width: float, x0: float, y0: float | None = None):
    """Witch-of-Agnesi bell mountain used by the paper's mountain-wave test
    (Satomura et al. st-MIP setup).  2-D ridge when ``y0 is None``."""

    def zs(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        r2 = ((X - x0) / half_width) ** 2
        if y0 is not None:
            r2 = r2 + ((Y - y0) / half_width) ** 2
        return height / (1.0 + r2)

    return zs


def stretched_levels(nz: int, dz0: float, ratio: float) -> np.ndarray:
    """Geometrically stretched vertical face levels: the first cell is
    ``dz0`` thick and each cell above is ``ratio`` times thicker — the
    usual boundary-layer-resolving vertical grid.  Returns an (nz+1,) face
    array starting at 0, ready for ``make_grid(..., z_faces=...)``."""
    if nz < 1 or dz0 <= 0 or ratio < 1.0:
        raise ValueError("need nz >= 1, dz0 > 0, ratio >= 1")
    dz = dz0 * ratio ** np.arange(nz)
    return np.concatenate([[0.0], np.cumsum(dz)])
