"""Surface and radiative forcings: sensible heat flux and Newtonian
cooling.

ASUCA's F^i collects "diabatic effects" beyond the cloud microphysics;
these two are the minimal pair that lets the model run diurnally forced
convection (daytime surface heating destabilizes the boundary layer,
radiation relaxes the column): a bulk sensible heat flux deposited in the
lowest model level, and Newtonian relaxation of theta toward the base
state on a long radiative timescale.

Both operate point-wise on the ``rhotheta`` prognostic and conserve mass
exactly (they only exchange heat).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as c
from ..core.pressure import eos_pressure, exner
from ..core.reference import ReferenceState
from ..core.state import State
from ..stencil.spec import stencil

__all__ = ["SurfaceConfig", "apply_surface_heating", "apply_newtonian_cooling",
           "diurnal_cycle_flux"]


@dataclass
class SurfaceConfig:
    """Forcing constants."""

    heat_flux: float = 0.0        #: surface sensible heat flux [W m^-2]
    diurnal: bool = False         #: modulate by a clipped sine of model time
    day_length: float = 86400.0   #: [s]
    radiation_tau: float = 0.0    #: Newtonian cooling timescale [s]; 0 = off


def diurnal_cycle_flux(peak_flux: float, t: float, day_length: float = 86400.0) -> float:
    """Surface flux at model time ``t``: ``max(0, sin)`` day-night cycle
    with sunrise at t = 0 and the peak at a quarter day."""
    return max(0.0, peak_flux * np.sin(2.0 * np.pi * t / day_length))


@stencil(reads=("rho", "rhotheta"), writes=("rhotheta",), halo=0,
         flops=12, loads=2, stores=1, stage="physics", probe=False)
def apply_surface_heating(
    state: State, ref: ReferenceState, dt: float, flux_wm2: float
) -> None:
    """Deposit a sensible heat flux [W/m^2] into the lowest model level:
    ``d(theta)/dt = H / (rho cp dz_phys pi)`` at k = 0 (in place)."""
    if flux_wm2 == 0.0:
        return
    g = state.grid
    sx, sy = g.isl
    jac = g.jac[sx, sy]
    dz_phys = g.dz_c[0] * jac
    rho_phys = state.rho[sx, sy, 0] / jac
    p = eos_pressure(state.rhotheta, g)[sx, sy, 0]
    pi = exner(p)
    dtheta = flux_wm2 * dt / (rho_phys * c.CP * dz_phys * pi)
    state.rhotheta[sx, sy, 0] += state.rho[sx, sy, 0] * dtheta


@stencil(reads=("rhotheta",), writes=("rhotheta",), halo=0,
         flops=6, loads=1, stores=1, stage="physics", probe=False)
def apply_newtonian_cooling(
    state: State, ref: ReferenceState, dt: float, tau: float
) -> None:
    """Relax the theta *perturbation* toward zero on timescale ``tau``
    (radiative restoring), implicitly for unconditional stability."""
    if tau <= 0.0:
        return
    g = state.grid
    sx, sy = g.isl
    jac3 = g.jac[sx, sy][:, :, None]
    target = (ref.rhotheta_c * g.jac[:, :, None])[sx, sy]
    factor = dt / tau
    state.rhotheta[sx, sy] -= factor / (1.0 + factor) * (
        state.rhotheta[sx, sy] - target
    )
