"""Kessler-type warm-rain microphysics (paper Sec. II: "a Kessler-type
warm-rain scheme ... also used in the JMA-NHM").

Processes, applied point-wise on interior cells after the dynamics step:

1. rain **sedimentation** (:mod:`repro.physics.sedimentation`), including
   the precipitation mass sink on total density (the paper's ``F_rho``);
2. **autoconversion** of cloud to rain above a threshold
   (``k1 (qc - a)+``) and **accretion** (``k2 qc qr^0.875``), Kessler 1969
   constants as in Klemp & Wilhelmson 1978;
3. **rain evaporation** in sub-saturated air;
4. **saturation adjustment** of vapor/cloud with latent heating.

The heating enters the model's ``rhotheta`` prognostic through
``d(theta) = Lv d(qc+qr->v) / (cp pi)``; the moist correction
``theta_m != theta`` is neglected inside the microphysics (documented in
DESIGN.md).  This module is the paper's compute-bound "warm rain" kernel
(5) in Fig. 5 — note the transcendental-heavy, low-memory-traffic profile.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as c
from ..core.grid import Grid
from ..core.pressure import eos_pressure, exner
from ..stencil.spec import stencil
from ..core.reference import ReferenceState
from ..core.state import State
from .saturation import dqs_dT, saturation_mixing_ratio
from .sedimentation import sediment_rain

__all__ = ["KesslerConfig", "kessler_step", "KESSLER_FLOPS_PER_POINT"]

#: per-point floating-point cost (log/exp/pow heavy) for the GPU model;
#: high arithmetic intensity is what puts this kernel near the roofline
#: ridge in the paper's Fig. 5
KESSLER_FLOPS_PER_POINT = 120


@dataclass
class KesslerConfig:
    """Kessler constants (Klemp & Wilhelmson 1978 defaults)."""

    autoconv_rate: float = 1.0e-3      #: k1 [1/s]
    autoconv_threshold: float = 1.0e-3 #: a [kg/kg]
    accretion_rate: float = 2.2        #: k2 [1/s per (kg/kg)^0.875]
    evaporation: bool = True
    saturation_adjust: bool = True
    sedimentation: bool = True


@stencil(reads=("rho", "rhotheta", "qv", "qc", "qr"),
         writes=("rhotheta", "qv", "qc", "qr", "precip"), halo=0,
         flops=400, loads=5, stores=3, table="warm_rain", stage="physics",
         # measured ratios: ~0.74-0.76 flops, ~37x streamed bytes (the
         # saturation/evaporation chain allocates aggressively)
         flops_band=(0.4, 1.5), bytes_band=(15.0, 60.0),
         probe=False)
def kessler_step(
    state: State,
    ref: ReferenceState,
    dt: float,
    cfg: KesslerConfig | None = None,
) -> np.ndarray:
    """Apply one warm-rain physics step in place; returns the surface
    precipitation rate [kg m^-2 s^-1] on interior cells and accumulates
    ``state.precip_accum`` [kg m^-2 == mm]."""
    cfg = cfg or KesslerConfig()
    g = state.grid
    sx, sy = g.isl
    jac = g.jac[sx, sy][:, :, None]

    precip = np.zeros((g.nx, g.ny), dtype=state.rho.dtype)
    if cfg.sedimentation:
        precip = sediment_rain(state.q["qr"], state.rho, g, dt)

    rho = state.rho[sx, sy]
    rhotheta = state.rhotheta[sx, sy]
    qv = state.q["qv"][sx, sy] / rho
    qc = state.q["qc"][sx, sy] / rho
    qr = state.q["qr"][sx, sy] / rho

    # thermodynamic state from the EOS (same discrete EOS as the dynamics)
    p = eos_pressure(state.rhotheta, g)[sx, sy]
    pi = exner(p)
    theta = rhotheta / rho
    T = theta * pi
    lv_cp_pi = c.LV / (c.CP * pi)

    # --- autoconversion + accretion (qc -> qr) -------------------------
    auto = cfg.autoconv_rate * np.maximum(qc - cfg.autoconv_threshold, 0.0)
    accr = cfg.accretion_rate * np.maximum(qc, 0.0) * np.maximum(qr, 0.0) ** 0.875
    dqc2qr = np.minimum((auto + accr) * dt, np.maximum(qc, 0.0))
    qc -= dqc2qr
    qr += dqc2qr

    # --- rain evaporation (qr -> qv, cooling) ---------------------------
    if cfg.evaporation:
        qvs = saturation_mixing_ratio(p, T)
        subsat = np.maximum(qvs - qv, 0.0) / qvs
        rho_qr = np.maximum(qr, 0.0) * rho / jac
        vent = 1.6 + 124.9 * rho_qr ** 0.2046
        evap_rate = (
            subsat * vent * rho_qr ** 0.525
            / ((5.4e5 + 2.55e6 / (p * qvs)) * (rho / jac))
        )
        dqr2qv = np.minimum(
            np.minimum(evap_rate * dt, np.maximum(qr, 0.0)),
            np.maximum(qvs - qv, 0.0),
        )
        qr -= dqr2qv
        qv += dqr2qv
        theta = theta - lv_cp_pi * dqr2qv
        T = theta * pi

    # --- saturation adjustment (qv <-> qc, heating/cooling) -------------
    if cfg.saturation_adjust:
        qvs = saturation_mixing_ratio(p, T)
        # single Newton step of the adjustment (standard Kessler practice)
        dq = (qv - qvs) / (1.0 + (c.LV / c.CP) * dqs_dT(p, T))
        cond = np.clip(dq, -np.maximum(qc, 0.0), None)  # evaporate at most qc
        qv -= cond
        qc += cond
        theta = theta + lv_cp_pi * cond

    # --- write back ------------------------------------------------------
    state.rhotheta[sx, sy] = theta * rho
    state.q["qv"][sx, sy] = np.maximum(qv, 0.0) * rho
    state.q["qc"][sx, sy] = np.maximum(qc, 0.0) * rho
    state.q["qr"][sx, sy] = np.maximum(qr, 0.0) * rho

    accum = getattr(state, "precip_accum", None)
    if accum is None:
        accum = np.zeros((g.nx, g.ny), dtype=state.rho.dtype)
        state.precip_accum = accum  # type: ignore[attr-defined]
    accum += precip * dt
    return precip
