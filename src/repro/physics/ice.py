"""Cold-rain (ice phase) microphysics — the paper's stated future work.

The paper's conclusion: "supporting a wider variety of physics processes
such as snow is a subject of future work" and "future developments of
ASUCA will introduce more computationally intensive physics processes"
(Sec. VII).  This module implements that extension: a simplified
three-ice-process chain in the spirit of the Lin/Rutledge–Hobbs schemes
the JMA-NHM family uses, activating the ``qi`` (cloud ice) and ``qs``
(snow) slots that already advect passively in the warm-rain configuration:

* **freezing** of cloud water: instantaneous below the homogeneous
  nucleation threshold (~-38 C), gradual (Bigg-type, exponential in
  supercooling) between 0 C and that threshold;
* **depositional growth** of cloud ice from vapor in ice-supersaturated,
  sub-freezing air (and sublimation in sub-saturated air), with the
  saturation adjustment done against ice saturation;
* **autoconversion** of cloud ice to snow above a threshold and
  **accretion** of cloud ice and cloud water (riming) by snow;
* **melting** of snow (and cloud ice) to rain/cloud above 0 C, cooling
  the air by the latent heat of fusion;
* **snow sedimentation** with a slower fall speed than rain.

All conversions are point-wise, conservative (total water changes only
through surface snowfall), clipped to available reservoirs, and feed the
``rhotheta`` prognostic through the appropriate latent heats
(Lv condensation, Ls deposition, Lf freezing/melting).
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants as c
from ..core.pressure import eos_pressure, exner
from ..core.reference import ReferenceState
from ..core.state import State
from ..stencil.spec import stencil
from .saturation import saturation_mixing_ratio
from .sedimentation import SEDIMENTATION_FLOPS_PER_POINT  # noqa: F401 (re-export pattern)

__all__ = [
    "IceConfig",
    "cold_rain_step",
    "ice_saturation_mixing_ratio",
    "snow_terminal_velocity",
    "COLD_RAIN_FLOPS_PER_POINT",
]

#: the extension is transcendental-heavy like the warm-rain kernel — the
#: paper predicts such physics "can easily extract GPU's performance"
COLD_RAIN_FLOPS_PER_POINT = 220

# Tetens constants over ice
_AI = 21.875
_BI = 7.66
_ES0 = 610.78
_T00 = 273.16

#: homogeneous freezing threshold [K]
T_HOMOGENEOUS = 235.0


def ice_saturation_vapor_pressure(T: np.ndarray) -> np.ndarray:
    """e_si(T) [Pa], Tetens over ice (steeper than over liquid)."""
    T = np.asarray(T)
    return _ES0 * np.exp(_AI * (T - _T00) / (T - _BI))


def ice_saturation_mixing_ratio(p: np.ndarray, T: np.ndarray) -> np.ndarray:
    """q_si = 0.622 e_si / (p - e_si)."""
    es = ice_saturation_vapor_pressure(T)
    denom = np.maximum(p - es, 0.1 * np.asarray(p))
    return (c.RD / c.RV) * es / denom


#: snow fall-speed constants (Locatelli-Hobbs-like, much slower than rain)
_VS_COEF = 4.0
_VS_EXP = 0.06


def snow_terminal_velocity(rho_qs: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Mass-weighted snow fall speed [m/s]; ~1 m/s, far below rain's."""
    rq = np.maximum(rho_qs, 0.0)
    return _VS_COEF * rq ** _VS_EXP * np.sqrt(1.2 / np.maximum(rho, 1e-10)) * 0.25


@dataclass
class IceConfig:
    """Cold-rain constants (simplified Lin-type defaults)."""

    freeze_rate: float = 0.01          #: Bigg freezing base rate [1/s]
    freeze_efold: float = 0.5          #: exponential supercooling factor [1/K]
    deposition_timescale: float = 300.0  #: vapor->ice relaxation [s]
    autoconv_rate: float = 1.0e-3      #: qi -> qs [1/s]
    autoconv_threshold: float = 6.0e-4 #: [kg/kg]
    accretion_rate: float = 1.0        #: snow collecting qi/qc [1/s per (kg/kg)]
    melt_timescale: float = 600.0      #: snow melt relaxation above 0 C [s]
    sedimentation: bool = True


def _sediment_species(
    q_hat: np.ndarray, rho_hat: np.ndarray, grid, dt: float, vt: np.ndarray
) -> np.ndarray:
    """Upstream fall-out of one species over ``dt`` (single pass; the
    caller guarantees the CFL via the small snow fall speeds).  Returns
    the surface flux [kg m^-2 s^-1] on interior cells."""
    sx, sy = grid.isl
    jac = grid.jac[sx, sy][:, :, None]
    dz = grid.dz_c[None, None, :]
    q = q_hat[sx, sy]
    rho = rho_hat[sx, sy]
    flux = np.maximum(q, 0.0) / jac * vt
    dq = np.empty_like(q)
    dq[:, :, :-1] = (flux[:, :, 1:] - flux[:, :, :-1]) / dz[:, :, :-1]
    dq[:, :, -1] = -flux[:, :, -1] / dz[:, :, -1]
    q += dt * dq
    rho += dt * dq
    np.maximum(q, 0.0, out=q)
    return flux[:, :, 0]


@stencil(reads=("rho", "rhotheta", "qv", "qc", "qr", "qi", "qs"),
         writes=("rho", "rhotheta", "qv", "qc", "qr", "qi", "qs",
                 "precip"),
         halo=0, flops=300, loads=7, stores=8, stage="physics",
         # in-place column physics: the probe harness cannot restore it
         probe=False)
def cold_rain_step(
    state: State,
    ref: ReferenceState,
    dt: float,
    cfg: IceConfig | None = None,
) -> np.ndarray:
    """Apply the ice-phase processes in place (after the warm-rain step).

    Returns the surface *snowfall* rate [kg m^-2 s^-1] on interior cells
    and adds it to ``state.precip_accum`` (total precipitation).
    """
    cfg = cfg or IceConfig()
    g = state.grid
    sx, sy = g.isl
    jac = g.jac[sx, sy][:, :, None]

    rho = state.rho[sx, sy]
    qv = state.q["qv"][sx, sy] / rho
    qc = state.q["qc"][sx, sy] / rho
    qi = state.q["qi"][sx, sy] / rho
    qs = state.q["qs"][sx, sy] / rho

    p = eos_pressure(state.rhotheta, g)[sx, sy]
    pi = exner(p)
    theta = state.rhotheta[sx, sy] / rho
    T = theta * pi
    lf_cp_pi = c.LF / (c.CP * pi)
    ls_cp_pi = c.LS / (c.CP * pi)

    cold = T < c.T0
    supercooling = np.maximum(c.T0 - T, 0.0)

    # --- freezing of cloud water (qc -> qi, heats by Lf) ---------------
    rate = cfg.freeze_rate * np.expm1(cfg.freeze_efold * supercooling)
    frac = 1.0 - np.exp(-np.maximum(rate, 0.0) * dt)
    frac = np.where(T <= T_HOMOGENEOUS, 1.0, frac)
    dfreeze = np.where(cold, frac * np.maximum(qc, 0.0), 0.0)
    qc -= dfreeze
    qi += dfreeze
    theta = theta + lf_cp_pi * dfreeze
    T = theta * pi

    # --- deposition / sublimation (qv <-> qi, Ls) -----------------------
    qsi = ice_saturation_mixing_ratio(p, T)
    excess = qv - qsi
    ddep = np.where(
        cold, (1.0 - np.exp(-dt / cfg.deposition_timescale)) * excess, 0.0
    )
    # sublimation cannot remove more ice than exists
    ddep = np.maximum(ddep, -np.maximum(qi, 0.0))
    qv -= ddep
    qi += ddep
    theta = theta + ls_cp_pi * ddep
    T = theta * pi

    # --- autoconversion qi -> qs + accretion by snow --------------------
    auto = cfg.autoconv_rate * np.maximum(qi - cfg.autoconv_threshold, 0.0)
    accr_i = cfg.accretion_rate * np.maximum(qs, 0.0) * np.maximum(qi, 0.0)
    di2s = np.minimum((auto + accr_i) * dt, np.maximum(qi, 0.0))
    qi -= di2s
    qs += di2s
    # riming: snow collects supercooled cloud water (freezes on contact)
    rim = np.where(
        cold,
        np.minimum(cfg.accretion_rate * np.maximum(qs, 0.0)
                   * np.maximum(qc, 0.0) * dt, np.maximum(qc, 0.0)),
        0.0,
    )
    qc -= rim
    qs += rim
    theta = theta + lf_cp_pi * rim
    T = theta * pi

    # --- melting above 0 C (qs -> qr, qi -> qc; cools by Lf) ------------
    warm = T >= c.T0
    melt_frac = 1.0 - np.exp(-dt / cfg.melt_timescale)
    dmelt_s = np.where(warm, melt_frac * np.maximum(qs, 0.0), 0.0)
    dmelt_i = np.where(warm, np.maximum(qi, 0.0), 0.0)  # cloud ice melts fast
    qs -= dmelt_s
    qi -= dmelt_i
    qr = state.q["qr"][sx, sy] / rho + dmelt_s
    qc += dmelt_i
    theta = theta - lf_cp_pi * (dmelt_s + dmelt_i)

    # --- write back ------------------------------------------------------
    state.rhotheta[sx, sy] = theta * rho
    state.q["qv"][sx, sy] = np.maximum(qv, 0.0) * rho
    state.q["qc"][sx, sy] = np.maximum(qc, 0.0) * rho
    state.q["qr"][sx, sy] = np.maximum(qr, 0.0) * rho
    state.q["qi"][sx, sy] = np.maximum(qi, 0.0) * rho
    state.q["qs"][sx, sy] = np.maximum(qs, 0.0) * rho

    # --- snow sedimentation ---------------------------------------------
    snowfall = np.zeros((g.nx, g.ny), dtype=state.rho.dtype)
    if cfg.sedimentation:
        rho_qs = np.maximum(state.q["qs"][sx, sy], 0.0) / jac
        vt = snow_terminal_velocity(rho_qs, state.rho[sx, sy] / jac)
        # snow falls ~1 m/s: a single upstream pass is CFL safe for any
        # reasonable dt/dz; clamp just in case
        vt = np.minimum(vt, 0.9 * float(g.dz_c.min()) / dt)
        snowfall = _sediment_species(state.q["qs"], state.rho, g, dt, vt)

    accum = state.precip_accum
    if accum is None:
        accum = np.zeros((g.nx, g.ny), dtype=state.rho.dtype)
        state.precip_accum = accum
    accum += snowfall * dt
    return snowfall
