"""Rain sedimentation: Marshall-Palmer terminal velocity and upstream
flux-form fall-out.

The paper's Eq. (4) advects each water substance with ``u^i + u^i_t`` where
``u_t`` is the terminal fall velocity; only rain falls in the warm-rain
scheme.  Fall is along physical z, which in the terrain-following
coordinate is a pure x3 flux of magnitude ``rho q_r V_t`` (the Jacobians
cancel), handled here with first-order upstream (downward) differencing and
CFL sub-stepping.

Returns the surface precipitation rate, the paper's Fig. 12 "precipitation"
diagnostic.
"""
from __future__ import annotations

import numpy as np

from ..core.grid import Grid

__all__ = ["terminal_velocity", "sediment_rain", "SEDIMENTATION_FLOPS_PER_POINT"]

SEDIMENTATION_FLOPS_PER_POINT = 12

#: Kessler/Marshall-Palmer constants (Klemp & Wilhelmson 1978)
_VT_COEF = 36.34          # m/s per (kg/m^3 of rain water)^0.1364
_VT_EXP = 0.1364
_RHO_SFC = 1.2            # density normalization [kg/m^3]


def terminal_velocity(rho_qr: np.ndarray, rho: np.ndarray) -> np.ndarray:
    """Mass-weighted rain fall speed [m/s], >= 0.

    ``V_t = 36.34 (rho q_r)^0.1364 sqrt(rho_0 / rho)``.
    """
    rq = np.maximum(rho_qr, 0.0)
    return _VT_COEF * rq ** _VT_EXP * np.sqrt(_RHO_SFC / np.maximum(rho, 1e-10))


def sediment_rain(
    qr_hat: np.ndarray,
    rho_hat: np.ndarray,
    grid: Grid,
    dt: float,
    *,
    max_cfl: float = 0.9,
) -> np.ndarray:
    """Fall out rain over ``dt`` (in place on ``qr_hat`` and ``rho_hat``,
    interior columns only) and return the surface precipitation rate
    [kg m^-2 s^-1] on the interior (nx, ny) cells.

    Removing rain mass also removes total air-parcel mass: the density
    update implements the paper's ``F_rho`` precipitation mass sink.
    """
    g = grid
    sx, sy = g.isl
    jac = g.jac[sx, sy][:, :, None]
    dz = g.dz_c[None, None, :]
    precip = np.zeros((g.nx, g.ny), dtype=qr_hat.dtype)

    qr = qr_hat[sx, sy]          # views: updates write through
    rho = rho_hat[sx, sy]

    remaining = dt
    for _ in range(64):  # hard bound; CFL substepping exits earlier
        rho_qr = np.maximum(qr, 0.0) / jac       # physical rho * q_r
        rho_phys = rho / jac
        vt = terminal_velocity(rho_qr, rho_phys)
        vmax = float(vt.max())
        if vmax <= 0.0:
            break
        dt_sub = min(remaining, max_cfl * float(g.dz_c.min()) / vmax)
        # downward upstream flux through the bottom face of each cell
        flux = rho_qr * vt                        # [kg m^-2 s^-1] per cell
        # d(G rho q_r)/dt = dF/dx3 exactly (the G of the weighting and the
        # 1/G of d/dz = (1/G) d/dx3 cancel)
        dq = np.empty_like(qr)
        dq[:, :, :-1] = (flux[:, :, 1:] - flux[:, :, :-1]) / dz[:, :, :-1]
        dq[:, :, -1] = -flux[:, :, -1] / dz[:, :, -1]
        qr += dt_sub * dq
        rho += dt_sub * dq
        precip += dt_sub / dt * flux[:, :, 0]
        remaining -= dt_sub
        if remaining <= 1e-12:
            break
    np.maximum(qr, 0.0, out=qr)
    return precip
