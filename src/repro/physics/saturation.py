"""Saturation vapor pressure and saturation mixing ratio (Tetens formula).

Used by the Kessler warm-rain scheme for condensation/evaporation, as in
the JMA-NHM physics the paper inherits (Ikawa & Saito 1991).
"""
from __future__ import annotations

import numpy as np

from .. import constants as c

__all__ = ["saturation_vapor_pressure", "saturation_mixing_ratio", "dqs_dT"]

#: Tetens constants over liquid water
_A = 17.269
_B = 35.86
_ES0 = 610.78  # Pa at T0 = 273.16 K
_T00 = 273.16


def saturation_vapor_pressure(T: np.ndarray) -> np.ndarray:
    """e_s(T) [Pa], Tetens over liquid water.  Valid well below freezing
    too (supercooled water), which is all the warm-rain scheme needs."""
    T = np.asarray(T)
    return _ES0 * np.exp(_A * (T - _T00) / (T - _B))


def saturation_mixing_ratio(p: np.ndarray, T: np.ndarray) -> np.ndarray:
    """q_vs = 0.622 e_s / (p - e_s), clipped to keep the denominator sane
    in extreme (hot/low-pressure) corners."""
    es = saturation_vapor_pressure(T)
    denom = np.maximum(p - es, 0.1 * np.asarray(p))
    return (c.RD / c.RV) * es / denom


def dqs_dT(p: np.ndarray, T: np.ndarray) -> np.ndarray:
    """d(q_vs)/dT at constant pressure (analytic Tetens derivative),
    used by the single-step saturation adjustment.

    ``qs = eps es/(p - es)`` gives
    ``dqs/dT = qs * (d ln es/dT) * p / (p - es)``.
    """
    es = saturation_vapor_pressure(T)
    qs = saturation_mixing_ratio(p, T)
    dlnes = _A * (_T00 - _B) / (T - _B) ** 2
    return qs * dlnes * np.asarray(p) / np.maximum(p - es, 0.1 * np.asarray(p))
