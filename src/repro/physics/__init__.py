"""Physics processes: Kessler warm rain, rain sedimentation, and the
cold-rain (ice/snow) extension."""
from .ice import IceConfig, cold_rain_step
from .kessler import KesslerConfig, kessler_step
from .surface import SurfaceConfig, apply_newtonian_cooling, apply_surface_heating
from .sedimentation import sediment_rain, terminal_velocity

__all__ = ["KesslerConfig", "kessler_step", "IceConfig", "cold_rain_step",
           "SurfaceConfig", "apply_newtonian_cooling", "apply_surface_heating",
           "sediment_rain", "terminal_velocity"]
