"""repro.serve — forecast-as-a-service on a virtual GPU fleet.

The paper's endgame is *operational* weather prediction on a shared
cluster: 528 Tesla S1070 GPUs on TSUBAME 1.2, projected to TSUBAME 2.0
(Sec. VI/VII), serving many forecast configurations at once.  This
subsystem turns the repo's single-run facade into that regime:

* :class:`GpuFleet` — N identical devices with atomic gang allocation
  and per-GPU modeled busy-time (:mod:`repro.serve.fleet`);
* :class:`GangScheduler` — FIFO / priority / shortest-job-first queue
  ordering, EASY-style gang reservations with backfill, and bounded-
  queue backpressure returning typed :class:`QueueFull` shed records
  (:mod:`repro.serve.scheduler`);
* :class:`Job` — a :class:`~repro.api.RunSpec` wrapped with priority,
  deadline, gang width, modeled service time, and the QUEUED ->
  SCHEDULED -> RUNNING -> DONE/FAILED/EVICTED/CACHED lifecycle
  (:mod:`repro.serve.jobs`);
* :class:`ResultCache` — content-addressed LRU over
  :meth:`~repro.api.RunSpec.spec_hash`, so duplicate submissions return
  bit-identical cached results for free (:mod:`repro.serve.cache`);
* :class:`ForecastService` — the modeled-time event loop that schedules,
  really executes each job through :class:`~repro.api.Experiment`,
  charges fleet seconds from the perf cost model, recovers injected
  crashes via the resilience retry policy, and traces everything into
  one :class:`~repro.obs.TraceSession` (:mod:`repro.serve.service`);
* workload files and the seeded Poisson generator
  (:mod:`repro.serve.workload`), replayed by the ``repro serve`` CLI.

See docs/SERVING.md for architecture, policies, and the report format.
"""
from .cache import ResultCache
from .fleet import GpuFleet
from .jobs import Job, JobState
from .scheduler import GangScheduler, Policy, QueueFull
from .service import ForecastService, ServiceReport
from .workload import (
    Submission,
    dump_workload,
    load_workload,
    poisson_workload,
)

__all__ = [
    "GpuFleet",
    "GangScheduler", "Policy", "QueueFull",
    "Job", "JobState",
    "ResultCache",
    "ForecastService", "ServiceReport",
    "Submission", "load_workload", "dump_workload", "poisson_workload",
]
