"""Jobs: the unit of work a :class:`~repro.serve.service.ForecastService`
schedules.

A :class:`Job` wraps one :class:`~repro.api.RunSpec` with the service's
own concerns: priority, an optional deadline, gang width (how many fleet
GPUs a ``px x py`` decomposition needs *atomically*), the modeled service
time the scheduler plans with, and the lifecycle state machine

    QUEUED -> SCHEDULED -> RUNNING -> DONE
                                   -> FAILED   (rejected / errored)
                                   -> EVICTED  (crashed past max attempts)
              CACHED               (answered from the result cache)
              SHED                 (bounced by queue backpressure)

All timestamps are *modeled* seconds on the service clock — never wall
time — so a replayed workload is bit-for-bit deterministic.
"""
from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..api import RunResult, RunSpec
from ..gpu.spec import DeviceSpec, Precision, TESLA_S1070
from ..perf.costmodel import modeled_run_seconds

__all__ = ["JobState", "Job"]


class JobState(str, enum.Enum):
    """Where a job is in its service lifecycle."""

    QUEUED = "queued"
    SCHEDULED = "scheduled"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    EVICTED = "evicted"
    CACHED = "cached"
    SHED = "shed"

TERMINAL_STATES = frozenset({
    JobState.DONE, JobState.FAILED, JobState.EVICTED, JobState.CACHED,
    JobState.SHED,
})


@dataclass
class Job:
    """One submission, tracked through the service."""

    index: int                     #: submission order (stable tiebreaker)
    spec: RunSpec                  #: the *normalized* run spec
    priority: int = 0              #: larger = more urgent
    deadline: float | None = None  #: max turnaround [modeled s], or None
    #: ensemble member index this job computes (repro.ensemble); None for
    #: ordinary submissions.  Metadata only — scheduling ignores it.
    member: int | None = None
    arrival: float = 0.0           #: modeled submission time
    gpus_needed: int = 1           #: gang width (px*py for multigpu)
    est_seconds: float = 0.0       #: modeled service time of one attempt
    spec_hash: str = ""            #: cache key (RunSpec.spec_hash)

    state: JobState = JobState.QUEUED
    attempts: int = 0              #: execution attempts started
    crashes: int = 0               #: attempts killed by an injected crash
    #: fraction of the run already safe in a modeled checkpoint (a
    #: checkpointing job's retry only pays for the remainder)
    progress: float = 0.0
    started_at: float | None = None    #: start of the *last* attempt
    finished_at: float | None = None
    gpu_ids: tuple[int, ...] = ()      #: fleet GPUs held while running
    result: RunResult | None = None
    error: str | None = None
    #: (t, event) log: scheduled / crashed / requeued / ... for reports
    log: list[tuple[float, str]] = field(default_factory=list)

    # ------------------------------------------------------ construction
    @classmethod
    def from_spec(
        cls,
        index: int,
        spec: RunSpec,
        *,
        arrival: float = 0.0,
        priority: int = 0,
        deadline: float | None = None,
        member: int | None = None,
        device: DeviceSpec = TESLA_S1070,
    ) -> "Job":
        """Build a job from a raw spec: normalize it, derive the gang
        width and the modeled service time, and stamp the cache key."""
        norm = spec.normalized()
        gpus = 1
        if norm.backend == "multigpu":
            px, py = norm.ranks
            gpus = px * py
        case_defaults = _grid_defaults(norm.workload)
        nx = norm.nx or case_defaults[0]
        ny = norm.ny or case_defaults[1]
        nz = norm.nz or case_defaults[2]
        precision = norm.precision or Precision.SINGLE
        est = modeled_run_seconds(
            nx, ny, nz, norm.steps, spec=device, precision=precision,
            ranks=norm.ranks, backend=norm.backend, include_ice=norm.ice)
        return cls(index=index, spec=norm, priority=priority,
                   deadline=deadline, member=member, arrival=arrival,
                   gpus_needed=gpus, est_seconds=est,
                   spec_hash=norm.spec_hash())

    # ----------------------------------------------------------- queries
    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def wait(self) -> float | None:
        """Modeled seconds from arrival to the *first* execution start
        (0 for cache hits, None while still waiting)."""
        if self.state is JobState.CACHED:
            return 0.0
        if self.started_at is None:
            return None
        first_start = next((t for t, ev in self.log if ev == "start"),
                           self.started_at)
        return first_start - self.arrival

    @property
    def turnaround(self) -> float | None:
        """Modeled seconds from arrival to completion."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.arrival

    @property
    def deadline_missed(self) -> bool:
        return (self.deadline is not None
                and self.turnaround is not None
                and self.turnaround > self.deadline)

    def note(self, t: float, event: str) -> None:
        self.log.append((t, event))

    def __repr__(self) -> str:  # concise: job listings appear in reports
        return (f"Job({self.index}, {self.spec.workload}, "
                f"{self.gpus_needed}g, {self.state.value})")


def _grid_defaults(workload: str) -> tuple[int, int, int]:
    """Default mesh of each workload factory (used only to price jobs
    that do not override the grid)."""
    return {
        "warm-bubble": (24, 24, 20),
        "mountain-wave": (64, 16, 24),
        "real-case": (48, 40, 16),
        "shear-layer": (32, 4, 40),
        "vortex": (32, 32, 12),
    }.get(workload, (32, 32, 32))
