"""The forecast service: a modeled-time event loop over the fleet.

:class:`ForecastService` turns the repo's single-run facade into an
operated service.  Submissions arrive on a modeled clock; each is either
answered from the result cache, shed by queue backpressure, or gang-
scheduled onto the :class:`~repro.serve.fleet.GpuFleet` where it
occupies its GPUs for the modeled service time priced by
:func:`repro.perf.costmodel.modeled_run_seconds`.  A *running* job
really executes — the :class:`~repro.api.Experiment` facade drives the
actual dycore — so cached results are bit-identical to fresh ones.

Failure handling consults the resilience layer: a service-level
:class:`~repro.resilience.faults.FaultPlan` whose CRASH events are keyed
by *job index* kills that job's attempt partway through; the
:class:`~repro.resilience.retry.RetryPolicy` then prices the backoff
before the requeue and bounds the attempts before eviction.  A job spec
that checkpoints (``checkpoint_every``) restarts its retry from the last
modeled checkpoint instead of from scratch — the same economics the
checkpoint-restart machinery buys a single run.

Everything observable flows through one :class:`~repro.obs.TraceSession`
when given: per-job spans on per-GPU fleet tracks (modeled time),
cache/shed/evict instants, and queue-depth / GPUs-in-use counter series
— a whole service run exports as one Chrome trace.

Determinism: no wall clock anywhere on this path.  Replaying the same
workload against the same configuration yields an identical
:class:`ServiceReport`, asserted by tests/serve/test_service.py.
"""
from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any

from ..api import Experiment, RunResult
from ..obs.doctor.health import HealthMonitor
from ..obs.metrics import percentile_summary
from ..obs.recorder import FlightRecorder
from ..obs.telemetry import SchedulerProfile
from ..obs.trace import TraceSession
from ..resilience.faults import FaultInjector, FaultPlan
from ..resilience.retry import RetryPolicy
from .cache import ResultCache
from .fleet import GpuFleet
from .jobs import Job, JobState
from .scheduler import GangScheduler, Policy
from .workload import Submission

__all__ = ["ForecastService", "ServiceReport"]

#: fraction of an attempt's modeled duration that elapses before an
#: injected crash kills it (deterministic by design)
CRASH_FRACTION = 0.5

#: cache value for runs completed with ``execute=False`` — the schedule
#: is real but no arrays were computed
_MODELED = object()


@dataclass
class ServiceReport:
    """What a service run hands back — modeled quantities only, so a
    replay reproduces it exactly."""

    fleet: str
    n_gpus: int
    policy: str
    queue_limit: int
    backfill: bool
    n_submitted: int = 0
    n_done: int = 0
    n_cached: int = 0
    n_shed: int = 0
    n_evicted: int = 0
    n_failed: int = 0
    crashes: int = 0
    retries: int = 0
    backfills: int = 0
    deadline_misses: int = 0
    makespan_s: float = 0.0
    throughput_jobs_per_s: float = 0.0
    utilization: float = 0.0
    peak_gpus: int = 0
    wait_s: dict[str, float] = field(default_factory=dict)
    turnaround_s: dict[str, float] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    shed_rate: float = 0.0
    #: fired health alerts (SLO violations / anomalies), in firing order
    alerts: list[dict[str, Any]] = field(default_factory=list)
    #: SLO expressions the run was monitored against
    slo_rules: list[str] = field(default_factory=list)
    #: per-metric rolling-window summaries from the health monitor
    health: dict[str, dict[str, float]] = field(default_factory=dict)
    jobs: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready (and replay-comparable) form of the report."""
        out = dict(self.__dict__)
        out["jobs"] = [dict(j) for j in self.jobs]
        out["alerts"] = [dict(a) for a in self.alerts]
        return out

    def render(self, *, jobs_table: bool = False) -> str:
        completed = self.n_done + self.n_cached
        lines = [
            f"forecast service report — {self.fleet}",
            f"  policy {self.policy} (backfill "
            f"{'on' if self.backfill else 'off'}), "
            f"queue limit {self.queue_limit}",
            f"  jobs: {self.n_submitted} submitted, {self.n_done} run, "
            f"{self.n_cached} cached, {self.n_shed} shed, "
            f"{self.n_evicted} evicted, {self.n_failed} failed",
            f"  completed {completed} in {self.makespan_s:.3f} modeled s "
            f"-> {self.throughput_jobs_per_s:.3f} jobs/s",
            f"  wait       p50 {self.wait_s.get('p50', 0):.3f}s  "
            f"p95 {self.wait_s.get('p95', 0):.3f}s  "
            f"mean {self.wait_s.get('mean', 0):.3f}s",
            f"  turnaround p50 {self.turnaround_s.get('p50', 0):.3f}s  "
            f"p95 {self.turnaround_s.get('p95', 0):.3f}s  "
            f"mean {self.turnaround_s.get('mean', 0):.3f}s",
            f"  fleet utilization {100 * self.utilization:.1f}%  "
            f"(peak {self.peak_gpus}/{self.n_gpus} GPUs)",
            f"  cache: {self.cache_hits} hits / {self.cache_misses} "
            f"misses ({100 * self.cache_hit_rate:.1f}% hit rate)",
            f"  backpressure: {self.n_shed} shed "
            f"({100 * self.shed_rate:.1f}%)",
            f"  resilience: {self.crashes} crashes, {self.retries} "
            f"retries, {self.n_evicted} evictions",
        ]
        if self.deadline_misses:
            lines.append(f"  deadlines missed: {self.deadline_misses}")
        if self.backfills:
            lines.append(f"  backfilled starts: {self.backfills}")
        if self.slo_rules:
            state = (f"{len(self.alerts)} alert(s)" if self.alerts
                     else "all objectives met")
            lines.append(f"  SLO [{', '.join(self.slo_rules)}]: {state}")
        for a in self.alerts:
            lines.append(f"    ALERT [{a['kind']}] t={a['t']:.3f}s "
                         f"{a['metric']}: {a['message']}")
        if jobs_table and self.jobs:
            lines.append("")
            lines.append(f"  {'job':>4} {'workload':<14} {'g':>2} "
                         f"{'state':<9} {'arrive':>8} {'start':>8} "
                         f"{'finish':>8} {'wait':>7} {'att':>3} hash")
            def _col(v, width):
                return f"{'-':>{width}}" if v is None else f"{v:>{width}.3f}"

            for j in self.jobs:
                lines.append(
                    f"  {j['index']:>4} {j['workload']:<14} "
                    f"{j['gpus']:>2} {j['state']:<9} "
                    f"{j['arrival']:>8.3f} "
                    f"{_col(j['started_at'], 8)} "
                    f"{_col(j['finished_at'], 8)} "
                    f"{_col(j['wait'], 7)} "
                    f"{j['attempts']:>3} {j['spec_hash'][:8]}")
        return "\n".join(lines)


class ForecastService:
    """Operate a fleet: queue, schedule, execute, cache, recover."""

    def __init__(
        self,
        fleet: GpuFleet,
        *,
        policy: "Policy | str" = Policy.FIFO,
        queue_limit: int = 64,
        backfill: bool = True,
        cache: "ResultCache | None" = None,
        cache_capacity: int = 64,
        retry: "RetryPolicy | None" = None,
        faults: "FaultPlan | str | None" = None,
        session: "TraceSession | None" = None,
        slo: "str | list | None" = None,
        monitor: "HealthMonitor | None" = None,
        recorder: "FlightRecorder | None" = None,
        execute: bool = True,
        on_job_done=None,
    ):
        self.fleet = fleet
        self.scheduler = GangScheduler(policy, max_depth=queue_limit,
                                       backfill=backfill)
        self.cache = cache if cache is not None else ResultCache(cache_capacity)
        self.retry = retry if retry is not None else RetryPolicy(max_retries=2)
        plan = FaultPlan.parse(faults)
        self.injector = FaultInjector(plan) if len(plan) else None
        self.session = session
        #: fleet health: SLO rules and anomaly screening on the modeled
        #: clock; pass ``slo="p95_wait_s<0.5,queue_depth<32"`` or a
        #: preconfigured monitor (docs/DOCTOR.md)
        if monitor is not None:
            self.monitor = monitor
        elif slo is not None:
            self.monitor = HealthMonitor(slo)
        else:
            self.monitor = None
        #: optional flight recorder (black box): structured service
        #: events land in its bounded ring; it observes but never feeds
        #: back, so runs are bit-identical with or without it
        #: (tests/obs/test_recorder.py)
        self.recorder = recorder
        #: always-on self-profile of the event loop and scheduler —
        #: wall-clock phase timers, kept OFF the replay-comparable
        #: ServiceReport (docs/OBSERVABILITY.md)
        self.profile = SchedulerProfile()
        #: False skips the real Experiment execution (pure scheduling
        #: studies on huge fleets); results/cache hits are then modeled
        self.execute = execute
        #: ``on_job_done(job)`` fires once per job at its terminal state
        #: (DONE / CACHED / SHED / FAILED / EVICTED), on the modeled
        #: clock.  The ensemble runner folds members here incrementally
        #: and then releases the held result (:meth:`release_result`),
        #: so N members never sit in memory at once.
        self.on_job_done = on_job_done
        self.jobs: list[Job] = []
        self._running: dict[int, float] = {}    # job index -> finish time
        self._events: list[tuple[float, int, str, Any]] = []
        self._seq = 0
        self._clock = 0.0
        self._alerts: list[dict[str, Any]] = []
        #: executed results by spec hash: identical specs reuse the
        #: computed arrays (runs are deterministic) even after the LRU
        #: cache evicted the entry — an execution shortcut, not a cache
        #: hit, because the job still pays its full modeled service time
        self._computed: dict[str, RunResult] = {}

    # ------------------------------------------------------------ events
    def _push(self, t: float, kind: str, payload: Any) -> None:
        heapq.heappush(self._events, (t, self._seq, kind, payload))
        self._seq += 1

    def _sample_counters(self) -> None:
        t = self._clock
        if self.session is not None:
            self.session.record_counter("queue.depth", self.scheduler.depth,
                                        t, pid="service")
            self.session.record_counter("fleet.gpus_in_use",
                                        self.fleet.in_use, t, pid="service")
            self.session.record_counter("jobs.running", len(self._running),
                                        t, pid="service")
        self._observe("queue_depth", float(self.scheduler.depth))
        self._observe("gpus_in_use", float(self.fleet.in_use))
        self._observe("utilization",
                      self.fleet.in_use / self.fleet.n_gpus
                      if self.fleet.n_gpus else 0.0)
        self._observe("jobs_running", float(len(self._running)))

    def _observe(self, metric: str, value: float) -> None:
        """Feed one health sample; fired alerts land on the trace (as
        instant events on an ``alerts`` track) and in the run report."""
        if self.monitor is None:
            return
        for alert in self.monitor.observe(metric, value, self._clock):
            self._alerts.append(alert.as_dict())
            self._rec("alert", alert=alert.kind, metric=alert.metric,
                      observed=alert.observed, rule=alert.rule)
            if self.session is not None:
                self.session.record_instant(
                    f"alert {alert.metric}", self._clock, pid="service",
                    tid="alerts", cat="alert",
                    args={"kind": alert.kind, "metric": alert.metric,
                          "observed": alert.observed,
                          "threshold": alert.threshold,
                          "rule": alert.rule,
                          "message": alert.message})

    def _instant(self, name: str, **args) -> None:
        if self.session is not None:
            self.session.record_instant(name, self._clock, pid="service",
                                        tid="events", cat="serve",
                                        args=args or None)

    def _rec(self, kind: str, **fields: Any) -> None:
        """Flight-recorder tap: O(1), pure observation."""
        if self.recorder is not None:
            self.recorder.record(kind, self._clock, **fields)

    def _sample_latency(self, job: Job) -> None:
        """One exact wait/turnaround sample per completed job, on the
        trace as counter records — `repro top` recomputes the report's
        percentile summaries from these, bitwise equal by construction."""
        if self.session is None:
            return
        if job.wait is not None:
            self.session.record_counter("job.wait_s", job.wait,
                                        self._clock, pid="service")
        if job.turnaround is not None:
            self.session.record_counter("job.turnaround_s", job.turnaround,
                                        self._clock, pid="service")

    # -------------------------------------------------------------- run
    def run(self, submissions: list[Submission]) -> ServiceReport:
        """Replay ``submissions`` to completion and report."""
        if self.jobs:
            raise RuntimeError("a ForecastService instance runs once")
        for i, sub in enumerate(submissions):
            job = Job.from_spec(i, sub.spec, arrival=sub.t,
                                priority=sub.priority,
                                deadline=sub.deadline,
                                member=sub.member,
                                device=self.fleet.spec)
            self.jobs.append(job)
            self._push(sub.t, "arrive", job)

        wall0 = time.perf_counter()
        while self._events:
            t, _, kind, payload = heapq.heappop(self._events)
            self._clock = max(self._clock, t)
            self._rec("pop", event=kind,
                      job=getattr(payload, "index", None))
            h0 = time.perf_counter()
            getattr(self, f"_on_{kind}")(payload)
            self.profile.on_event(kind, time.perf_counter() - h0)
            # batch-process simultaneous events before scheduling, so a
            # same-instant release + arrival see one consistent fleet
            if self._events and self._events[0][0] <= self._clock:
                continue
            p0 = time.perf_counter()
            scanned = self.scheduler.depth
            started = self._schedule_pass()
            self.profile.on_pass(scanned, started,
                                 time.perf_counter() - p0)
            self._rec("pass", scanned=scanned, started=started,
                      gpus_in_use=self.fleet.in_use)
            self._sample_counters()
        rep = self._report()
        self.profile.finalize(makespan_s=rep.makespan_s,
                              run_wall_s=time.perf_counter() - wall0,
                              scheduler=self.scheduler)
        if self.recorder is not None:
            self.recorder.flush_if_untripped()
        return rep

    # ---------------------------------------------------- event handlers
    def _finalize(self, job: Job) -> None:
        """A job just reached a terminal state: notify the subscriber."""
        if self.on_job_done is not None:
            self.on_job_done(job)

    def release_result(self, job: Job) -> None:
        """Drop the service's hold on an executed result after the
        subscriber has consumed it (the ensemble reducer folds a member
        and releases it, bounding resident member states).  The bounded
        LRU cache entry survives — a later duplicate submission is still
        a hit — but the unbounded executed-results shortcut does not."""
        self._computed.pop(job.spec_hash, None)
        job.result = None

    def _on_arrive(self, job: Job) -> None:
        if job.gpus_needed > self.fleet.n_gpus:
            job.state = JobState.FAILED
            job.finished_at = self._clock
            job.error = (f"needs {job.gpus_needed} GPUs, fleet has "
                         f"{self.fleet.n_gpus}")
            job.note(self._clock, "rejected")
            self._instant(f"reject job{job.index}", reason=job.error)
            self._rec("reject", job=job.index, reason=job.error)
            self._finalize(job)
            return
        cached = self.cache.get(job.spec_hash)
        if cached is not None:
            job.state = JobState.CACHED
            job.result = cached if isinstance(cached, RunResult) else None
            job.finished_at = self._clock
            job.note(self._clock, "cache-hit")
            self._instant(f"cache-hit job{job.index}",
                          spec_hash=job.spec_hash[:12])
            self._rec("cache_hit", job=job.index,
                      spec_hash=job.spec_hash[:12])
            self._sample_latency(job)
            self._observe("cache_hit_rate", self.cache.hit_rate)
            self._finalize(job)
            return
        shed = self.scheduler.submit(job, self._clock)
        if shed is not None:
            self._instant(f"shed job{job.index}", depth=shed.depth,
                          limit=shed.limit)
            self._rec("shed", job=job.index, depth=shed.depth)
            self._finalize(job)
        else:
            self._rec("admit", job=job.index,
                      depth=self.scheduler.depth)
        self._observe("cache_hit_rate", self.cache.hit_rate)

    def _on_requeue(self, job: Job) -> None:
        self._rec("requeue", job=job.index, attempt=job.attempts)
        self.scheduler.requeue(job, self._clock)

    def _on_finish(self, job: Job) -> None:
        dur = self._release(job)
        job.state = JobState.DONE
        job.finished_at = self._clock
        job.note(self._clock, "done")
        self._job_span(job, dur, ok=True)
        self._rec("finish", job=job.index, gpus=job.gpus_needed,
                  held_s=round(dur, 9))
        self._sample_latency(job)
        self.cache.put(job.spec_hash,
                       job.result if job.result is not None else _MODELED)
        if job.turnaround is not None:
            self._observe("turnaround_s", job.turnaround)
        self._finalize(job)

    def _on_crash(self, job: Job) -> None:
        dur = self._release(job)
        job.crashes += 1
        job.note(self._clock, f"crashed (attempt {job.attempts})")
        self._rec("crash", job=job.index, attempt=job.attempts,
                  held_s=round(dur, 9))
        self._job_span(job, dur, ok=False)
        # a checkpointing job resumes its retry from the last modeled
        # checkpoint; others restart the attempt from scratch
        spec = job.spec
        if spec.checkpoint_every > 0 and spec.steps > 0:
            frac = spec.checkpoint_every / spec.steps
            reached = job.progress + CRASH_FRACTION * (1.0 - job.progress)
            job.progress = min(1.0, int(reached / frac) * frac)
        if self.retry.allows(job.crashes):
            backoff = self.retry.backoff(job.crashes - 1)
            job.state = JobState.QUEUED
            self._push(self._clock + backoff, "requeue", job)
            self._instant(f"retry job{job.index}", attempt=job.attempts,
                          backoff_s=backoff)
            self._rec("retry", job=job.index, attempt=job.attempts,
                      backoff_s=backoff)
        else:
            job.state = JobState.EVICTED
            job.finished_at = self._clock
            job.error = (f"evicted after {job.attempts} attempts "
                         f"({job.crashes} crashes)")
            job.note(self._clock, "evicted")
            self._instant(f"evict job{job.index}", attempts=job.attempts)
            self._rec("evict", job=job.index, attempts=job.attempts)
            self._finalize(job)

    # -------------------------------------------------------- scheduling
    def _schedule_pass(self) -> int:
        running = [(finish, self.jobs[idx].gpus_needed)
                   for idx, finish in self._running.items()]
        selected = self.scheduler.select(self.fleet, running, self._clock)
        for job in selected:
            self._start(job)
        return len(selected)

    def _start(self, job: Job) -> None:
        gpus = self.fleet.acquire(job.index, job.gpus_needed)
        assert gpus is not None, "scheduler started more than fits"
        job.gpu_ids = gpus
        job.attempts += 1
        job.started_at = self._clock
        job.state = JobState.RUNNING
        job.note(self._clock, "start")
        self._rec("start", job=job.index, gpus=job.gpus_needed,
                  attempt=job.attempts)
        if job.wait is not None:
            self._observe("wait_s", job.wait)
        attempt_s = job.est_seconds * (1.0 - job.progress)
        crashed = None
        if self.injector is not None:
            self.injector.begin_step(job.index)
            crashed = self.injector.crash_rank(job.index)
        if crashed is not None:
            finish = self._clock + CRASH_FRACTION * attempt_s
            self._running[job.index] = finish
            self._push(finish, "crash", job)
            return
        if self.execute and job.result is None:
            job.result = self._computed.get(job.spec_hash)
            if job.result is None:
                try:
                    job.result = Experiment(job.spec).prepare().run()
                    self._computed[job.spec_hash] = job.result
                except Exception as exc:     # surfaced in the report
                    job.error = f"{type(exc).__name__}: {exc}"
        if job.error is not None:
            # an errored run still occupied its modeled slot; it just
            # completes as FAILED rather than DONE
            finish = self._clock + attempt_s
            self._running[job.index] = finish
            self._push(finish, "fail", job)
            return
        finish = self._clock + attempt_s
        self._running[job.index] = finish
        self._push(finish, "finish", job)

    def _on_fail(self, job: Job) -> None:
        dur = self._release(job)
        job.state = JobState.FAILED
        job.finished_at = self._clock
        job.note(self._clock, "failed")
        self._job_span(job, dur, ok=False)
        self._instant(f"fail job{job.index}", error=job.error)
        self._rec("fail", job=job.index, error=job.error)
        self._finalize(job)

    def _release(self, job: Job) -> float:
        """Free the job's GPUs, charging the modeled seconds it held
        them; returns that duration."""
        del self._running[job.index]
        dur = self._clock - job.started_at
        self.fleet.release(job.index, busy_seconds=dur)
        return dur

    def _job_span(self, job: Job, dur: float, *, ok: bool) -> None:
        if self.session is None:
            return
        name = f"job{job.index} {job.spec.workload}"
        args = {"state": "ok" if ok else job.state.value,
                "attempt": job.attempts, "gpus": list(job.gpu_ids),
                "spec_hash": job.spec_hash[:12]}
        for g in job.gpu_ids:
            self.session.record_span(
                name, job.started_at, dur, pid="fleet",
                tid=f"gpu{g:03d}", cat="job", args=args)

    # ---------------------------------------------------------- reporting
    def _report(self) -> ServiceReport:
        jobs = self.jobs
        by_state = {s: sum(1 for j in jobs if j.state is s)
                    for s in JobState}
        completed = [j for j in jobs
                     if j.state in (JobState.DONE, JobState.CACHED)]
        waits = [j.wait for j in completed if j.wait is not None]
        turnarounds = [j.turnaround for j in completed
                       if j.turnaround is not None]
        makespan = max((j.finished_at for j in jobs
                        if j.finished_at is not None), default=0.0)
        rep = ServiceReport(
            fleet=self.fleet.name,
            n_gpus=self.fleet.n_gpus,
            policy=self.scheduler.policy.value,
            queue_limit=self.scheduler.max_depth,
            backfill=self.scheduler.backfill,
            n_submitted=len(jobs),
            n_done=by_state[JobState.DONE],
            n_cached=by_state[JobState.CACHED],
            n_shed=by_state[JobState.SHED],
            n_evicted=by_state[JobState.EVICTED],
            n_failed=by_state[JobState.FAILED],
            crashes=sum(j.crashes for j in jobs),
            retries=sum(max(0, j.attempts - 1) for j in jobs),
            backfills=self.scheduler.backfills,
            deadline_misses=sum(1 for j in jobs if j.deadline_missed),
            makespan_s=makespan,
            throughput_jobs_per_s=(len(completed) / makespan
                                   if makespan > 0 else 0.0),
            utilization=self.fleet.utilization(makespan),
            peak_gpus=self.fleet.peak_in_use,
            wait_s=percentile_summary(waits),
            turnaround_s=percentile_summary(turnarounds),
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            cache_hit_rate=self.cache.hit_rate,
            shed_rate=(by_state[JobState.SHED] / len(jobs)
                       if jobs else 0.0),
            alerts=list(self._alerts),
            slo_rules=([r.expr for r in self.monitor.rules]
                       if self.monitor is not None else []),
            health=(self.monitor.summary()
                    if self.monitor is not None else {}),
            jobs=[{
                "index": j.index,
                "workload": j.spec.workload,
                "state": j.state.value,
                # ensemble member metadata rides only when set, keeping
                # pre-ensemble report payloads byte-identical
                **({"member": j.member} if j.member is not None else {}),
                "gpus": j.gpus_needed,
                "priority": j.priority,
                "arrival": round(j.arrival, 9),
                "started_at": (None if j.started_at is None
                               else round(j.started_at, 9)),
                "finished_at": (None if j.finished_at is None
                                else round(j.finished_at, 9)),
                "wait": None if j.wait is None else round(j.wait, 9),
                "turnaround": (None if j.turnaround is None
                               else round(j.turnaround, 9)),
                "attempts": j.attempts,
                "spec_hash": j.spec_hash,
            } for j in jobs],
        )
        if self.session is not None:
            m = self.session.metrics
            for key, value in (
                ("serve.jobs.submitted", rep.n_submitted),
                ("serve.jobs.done", rep.n_done),
                ("serve.jobs.cached", rep.n_cached),
                ("serve.jobs.shed", rep.n_shed),
                ("serve.jobs.evicted", rep.n_evicted),
                ("serve.jobs.failed", rep.n_failed),
                ("serve.crashes", rep.crashes),
                ("serve.retries", rep.retries),
            ):
                self.session.metrics.counter(key).inc(value)
            for w in waits:
                m.histogram("serve.wait_s").observe(w)
            for ta in turnarounds:
                m.histogram("serve.turnaround_s").observe(ta)
            m.gauge("serve.fleet.gpus").set(rep.n_gpus)
            m.gauge("serve.utilization").set(rep.utilization)
            m.gauge("serve.cache.hit_rate").set(rep.cache_hit_rate)
            m.gauge("serve.makespan_s").set(rep.makespan_s)
            m.gauge("serve.throughput_jobs_per_s").set(
                rep.throughput_jobs_per_s)
        return rep
