"""Workloads for the forecast service: JSONL replay files and a seeded
synthetic Poisson-arrival generator.

A workload file is one JSON object per line; the reserved keys ``t``
(modeled arrival time, seconds), ``priority`` and ``deadline`` describe
the submission, and every remaining key is a :class:`~repro.api.RunSpec`
field::

    {"t": 0.0, "priority": 1, "workload": "warm-bubble", "steps": 3}
    {"t": 0.4, "workload": "shear-layer", "steps": 2, "ranks": "2x2",
     "backend": "multigpu"}

:func:`poisson_workload` generates a reproducible open-loop arrival
stream (exponential inter-arrival gaps) over a small palette of job
shapes — single-GPU small/medium/large forecasts plus ``2x2`` gang jobs
— and resubmits earlier specs at a configurable rate, because duplicate
configurations are exactly what a production forecast service sees (and
what the result cache exists for).  The same seed always yields the
same workload, byte for byte; that is what makes a replayed service run
deterministic end to end.
"""
from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import numpy as np

from ..api import RunSpec

__all__ = ["Submission", "load_workload", "dump_workload",
           "poisson_workload"]

_RESERVED = ("t", "priority", "deadline", "member")


@dataclass(frozen=True)
class Submission:
    """One arrival: when, what, and how urgent."""

    t: float
    spec: RunSpec
    priority: int = 0
    deadline: float | None = None
    #: ensemble member index (repro.ensemble); metadata carried through
    #: to the job and the service report, never into the spec hash
    member: int | None = None

    def as_line(self) -> dict:
        """The JSONL form (spec defaults elided for readability)."""
        line: dict = {"t": self.t}
        if self.priority:
            line["priority"] = self.priority
        if self.deadline is not None:
            line["deadline"] = self.deadline
        if self.member is not None:
            line["member"] = self.member
        defaults = RunSpec()
        for f in dataclasses.fields(self.spec):
            v = getattr(self.spec, f.name)
            if v != getattr(defaults, f.name):
                line[f.name] = v
        return line


def load_workload(path: str) -> list[Submission]:
    """Parse a JSONL workload file into submissions, sorted by arrival."""
    subs: list[Submission] = []
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            raw = raw.strip()
            if not raw or raw.startswith("#"):
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}") from None
            if not isinstance(obj, dict):
                raise ValueError(f"{path}:{lineno}: each line must be a "
                                 f"JSON object")
            spec_kwargs = {k: v for k, v in obj.items()
                           if k not in _RESERVED}
            try:
                spec = RunSpec(**spec_kwargs)
            except TypeError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            member = obj.get("member")
            subs.append(Submission(
                t=float(obj.get("t", 0.0)), spec=spec,
                priority=int(obj.get("priority", 0)),
                deadline=obj.get("deadline"),
                member=None if member is None else int(member)))
    return sorted(subs, key=lambda s: s.t)


def dump_workload(submissions: list[Submission], path: str) -> str:
    """Write submissions as a JSONL workload file (replayable)."""
    with open(path, "w") as fh:
        for sub in submissions:
            fh.write(json.dumps(sub.as_line(), sort_keys=True) + "\n")
    return path


#: the synthetic palette: (RunSpec kwargs, relative weight).  Meshes are
#: deliberately small — a served job really executes through the run
#: facade — while spanning ~40x in modeled service time so SJF vs FIFO
#: has something to reorder, with one 2x2 gang shape for the scheduler.
_PALETTE: list[tuple[dict, float]] = [
    ({"workload": "warm-bubble", "nx": 16, "ny": 16, "nz": 8}, 4.0),
    ({"workload": "shear-layer", "nx": 32, "ny": 4, "nz": 16}, 3.0),
    ({"workload": "warm-bubble", "nx": 32, "ny": 32, "nz": 12}, 2.0),
    ({"workload": "warm-bubble", "nx": 24, "ny": 24, "nz": 10,
      "backend": "multigpu", "ranks": (2, 2)}, 1.5),
]


def poisson_workload(
    n_jobs: int = 30,
    *,
    rate: float = 80.0,
    seed: int = 0,
    duplicate_fraction: float = 0.3,
    steps_range: tuple[int, int] = (2, 5),
    priorities: tuple[int, ...] = (0, 0, 1, 2),
    ensemble_fraction: float = 0.0,
    ensemble_members: int = 4,
) -> list[Submission]:
    """A seeded open-loop workload: ``n_jobs`` Poisson arrivals at
    ``rate`` jobs per modeled second.

    The default rate deliberately saturates a 4-8 GPU fleet for the
    default palette (the modeled service times are fractions of a
    second), so queueing discipline actually matters — an underloaded
    service makes every policy look identical.

    Each arrival either resubmits an earlier spec verbatim (probability
    ``duplicate_fraction``; cache-hit fodder) or draws a palette shape
    with a step count from ``steps_range``.  With probability
    ``ensemble_fraction`` the arrival is instead a *correlated member
    burst*: ``ensemble_members`` perturbed copies of one palette shape
    land at the same instant, distinguished only by ``spec.seed`` and
    tagged with their member index — the arrival pattern an ensemble
    gang imposes on a shared fleet.  Every burst counts its members
    against ``n_jobs``.  Deterministic per seed.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    rng = np.random.default_rng(seed)
    weights = np.array([w for _, w in _PALETTE])
    weights = weights / weights.sum()
    lo, hi = steps_range

    def _draw_spec() -> RunSpec:
        kwargs = dict(_PALETTE[int(rng.choice(len(_PALETTE),
                                              p=weights))][0])
        kwargs["steps"] = int(rng.integers(lo, hi + 1))
        return RunSpec(**kwargs)

    def _priority() -> int:
        return int(priorities[int(rng.integers(len(priorities)))])

    subs: list[Submission] = []
    t = 0.0
    while len(subs) < n_jobs:
        t += float(rng.exponential(1.0 / rate))
        if ensemble_fraction and float(rng.random()) < ensemble_fraction:
            base = _draw_spec()
            gang_seed = int(rng.integers(2 ** 31))
            pri = _priority()
            n = min(ensemble_members, n_jobs - len(subs))
            for m in range(n):
                spec = dataclasses.replace(base, seed=gang_seed + m)
                subs.append(Submission(t=t, spec=spec, priority=pri,
                                       member=m))
            continue
        if subs and float(rng.random()) < duplicate_fraction:
            spec = subs[int(rng.integers(len(subs)))].spec
        else:
            spec = _draw_spec()
        subs.append(Submission(t=t, spec=spec, priority=_priority()))
    return subs
