"""The gang scheduler: a bounded priority queue over the GPU fleet.

Three ordering policies (all stable, tie-broken by arrival then
submission index, so replays are deterministic):

* **fifo** — arrival order;
* **priority** — higher :attr:`Job.priority` first, FIFO within a level;
* **sjf** — shortest modeled service time first (the classic latency
  winner for mixed-size workloads; the serve benchmark asserts its p95
  wait beats FIFO's).

**Gang scheduling**: a ``px x py`` job needs all its GPUs *atomically*
(:meth:`GpuFleet.acquire` is all-or-nothing).  When the head job cannot
fit, the scheduler takes an EASY-style reservation for it — the earliest
modeled time enough GPUs will have been released — and **backfills**
later jobs into the hole only if they fit the free GPUs *now* and finish
by the reservation, so backfill never delays the blocked gang job
(tested in tests/serve/test_scheduler.py).

**Backpressure**: the queue is bounded.  A submission beyond
``max_depth`` is not an exception but a typed :class:`QueueFull` result
— load shedding is an expected operating mode of a service, and the
caller (service loop, CLI report) accounts for it explicitly.
"""
from __future__ import annotations

import enum
import time
from dataclasses import dataclass

from .fleet import GpuFleet
from .jobs import Job, JobState

__all__ = ["Policy", "QueueFull", "GangScheduler"]


class Policy(str, enum.Enum):
    """Queue ordering policy."""

    FIFO = "fifo"
    PRIORITY = "priority"
    SJF = "sjf"


@dataclass(frozen=True)
class QueueFull:
    """Typed shed result: the queue was at its bound when ``job``
    arrived.  The job is marked :attr:`JobState.SHED` and never runs."""

    job: Job
    depth: int            #: queue depth at rejection (== limit)
    limit: int
    t: float              #: modeled time of the rejection

    def __str__(self) -> str:
        return (f"queue full ({self.depth}/{self.limit}): shed job "
                f"{self.job.index} at t={self.t:.3f}s")


class GangScheduler:
    """Policy-ordered bounded queue with gang reservations + backfill."""

    def __init__(self, policy: "Policy | str" = Policy.FIFO, *,
                 max_depth: int = 64, backfill: bool = True):
        self.policy = Policy(policy)
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.backfill = backfill
        self.queue: list[Job] = []
        self.shed: list[QueueFull] = []
        self.backfills = 0        #: jobs started ahead of a reservation
        # self-profiling accumulators (read by SchedulerProfile): the
        # O(jobs x gpus) select loop is the fleet-scale hotspot ROADMAP
        # item 2 names, so its cost is always measured, never sampled
        self.select_calls = 0
        self.jobs_scanned = 0     #: queue length summed over selects
        self.select_wall_s = 0.0

    # ------------------------------------------------------- submission
    @property
    def depth(self) -> int:
        return len(self.queue)

    def submit(self, job: Job, now: float) -> QueueFull | None:
        """Admit ``job`` or shed it; returns the :class:`QueueFull`
        record when the bound was hit, None on admission."""
        if len(self.queue) >= self.max_depth:
            job.state = JobState.SHED
            job.finished_at = now
            job.note(now, "shed")
            rec = QueueFull(job=job, depth=len(self.queue),
                            limit=self.max_depth, t=now)
            self.shed.append(rec)
            return rec
        job.state = JobState.QUEUED
        job.note(now, "queued")
        self.queue.append(job)
        return None

    def requeue(self, job: Job, now: float) -> None:
        """Re-admit a crashed job for its retry.  Bypasses the depth
        bound: the job was already admitted once, and shedding it here
        would turn backpressure into data loss."""
        job.state = JobState.QUEUED
        job.note(now, "requeued")
        self.queue.append(job)

    # -------------------------------------------------------- selection
    def _ordered(self) -> list[Job]:
        if self.policy is Policy.PRIORITY:
            key = lambda j: (-j.priority, j.arrival, j.index)
        elif self.policy is Policy.SJF:
            key = lambda j: (j.est_seconds, j.arrival, j.index)
        else:
            key = lambda j: (j.arrival, j.index)
        return sorted(self.queue, key=key)

    def select(self, fleet: GpuFleet,
               running: list[tuple[float, int]], now: float) -> list[Job]:
        """The jobs to start now, removed from the queue.

        ``running`` is ``[(finish_time, gpus_held), ...]`` for the jobs
        currently on the fleet — what the reservation shadow time is
        computed from.  The caller starts each returned job (its state
        is already SCHEDULED).
        """
        wall0 = time.perf_counter()
        self.select_calls += 1
        self.jobs_scanned += len(self.queue)
        started: list[Job] = []
        free = fleet.free_gpus
        shadow: float | None = None      # reservation time of the head
        for job in self._ordered():
            if shadow is None:
                if job.gpus_needed <= free:
                    free -= job.gpus_needed
                    started.append(job)
                    continue
                if not self.backfill:
                    break
                # reserve for the head; jobs that not even a drained
                # fleet fits get no reservation (admission control
                # rejects them upstream — belt and braces here)
                shadow = _shadow_time(free, job.gpus_needed, running, now)
                continue
            # behind a reservation: backfill only what cannot delay it
            if (job.gpus_needed <= free
                    and now + job.est_seconds <= shadow):
                free -= job.gpus_needed
                started.append(job)
                self.backfills += 1
                job.note(now, "backfilled")
        for job in started:
            self.queue.remove(job)
            job.state = JobState.SCHEDULED
            job.note(now, "scheduled")
        self.select_wall_s += time.perf_counter() - wall0
        return started


def _shadow_time(free: int, needed: int,
                 running: list[tuple[float, int]], now: float) -> float | None:
    """Earliest modeled time at which ``needed`` GPUs are free, assuming
    no new work: walk the running jobs' release times in order."""
    if needed <= free:
        return now
    for finish, gpus in sorted(running):
        free += gpus
        if free >= needed:
            return finish
    return None
