"""Content-addressed result cache: duplicate forecasts are free.

The operational insight behind serving ASUCA as a fleet (and behind the
Hybrid Fortran line of work) is that production workloads resubmit the
*same* configurations constantly — the 9-hour mesoscale forecast on the
standard mesh, the regression grid of Table-I shapes.  Keying completed
:class:`~repro.api.RunResult`\\ s by :meth:`~repro.api.RunSpec.spec_hash`
(the canonical content hash of the normalized spec) lets the service
answer a duplicate submission instantly without consuming fleet time —
and because the run facade is deterministic, the cached result is
bit-identical to what a fresh run would have produced (tested in
tests/serve/test_service.py).

Plain LRU with a capacity bound and hit/miss/eviction counters; nothing
here knows about the scheduler.
"""
from __future__ import annotations

from collections import OrderedDict
from typing import Any

from ..api import RunResult

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU of ``spec_hash -> RunResult`` (the service also
    stores a sentinel for modeled-only runs; values are opaque here)."""

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (0 disables caching)")
        self.capacity = capacity
        self._store: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------ access
    def get(self, key: str) -> "RunResult | Any | None":
        """The cached result for ``key`` (refreshing its recency), or
        None; every call counts as a hit or a miss."""
        try:
            result = self._store[key]
        except KeyError:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return result

    def put(self, key: str, result: "RunResult | Any") -> None:
        """Insert/refresh ``key``, evicting the least recently used
        entry beyond ``capacity``."""
        if self.capacity == 0:
            return
        self._store[key] = result
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)
            self.evictions += 1

    # ----------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        # membership tests do not disturb recency or the counters
        return key in self._store

    def keys(self) -> list[str]:
        """Keys from least to most recently used."""
        return list(self._store)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def __repr__(self) -> str:
        return (f"ResultCache({len(self)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
