"""The virtual GPU fleet: a pool of identical devices jobs are gang-
scheduled onto.

The paper's production setting is a shared cluster — 528 Tesla S1070
GPUs on TSUBAME 1.2 (Sec. VI), with the Sec. VII projection moving to
Fermi-class TSUBAME 2.0.  :class:`GpuFleet` models that resource:
``n_gpus`` devices of one :class:`~repro.gpu.spec.DeviceSpec`, each
either free or owned by exactly one job, with per-GPU modeled busy-time
accounting so a service run can report fleet utilization.

Allocation is *atomic*: :meth:`acquire` either hands over all requested
GPUs or none — the invariant gang scheduling rests on (a ``px x py``
job must never hold a partial allocation while waiting for the rest,
or two gang jobs deadlock the fleet).
"""
from __future__ import annotations

from ..gpu.spec import DeviceSpec, TESLA_S1070, FERMI_M2050, device_spec

__all__ = ["GpuFleet"]


class GpuFleet:
    """``n_gpus`` identical devices with atomic gang allocation."""

    def __init__(self, n_gpus: int, spec: "DeviceSpec | str" = TESLA_S1070,
                 *, name: str | None = None):
        if n_gpus < 1:
            raise ValueError("a fleet needs at least one GPU")
        self.spec = device_spec(spec)
        self.n_gpus = n_gpus
        self.name = name or f"{n_gpus}x {self.spec.name}"
        #: gpu index -> owning job index (None = free)
        self._owner: list[int | None] = [None] * n_gpus
        #: modeled seconds each GPU has spent running jobs
        self.busy_s: list[float] = [0.0] * n_gpus
        self.peak_in_use = 0

    # ------------------------------------------------------ constructors
    @classmethod
    def tsubame12(cls) -> "GpuFleet":
        """The paper's full machine: 528 S1070 GPUs (Sec. VI)."""
        return cls(528, TESLA_S1070, name="TSUBAME 1.2 (528x S1070)")

    @classmethod
    def tsubame20(cls, n_gpus: int = 4224) -> "GpuFleet":
        """The Sec. VII projection target: Fermi M2050 GPUs."""
        return cls(n_gpus, FERMI_M2050, name=f"TSUBAME 2.0 ({n_gpus}x M2050)")

    # -------------------------------------------------------- allocation
    @property
    def free_gpus(self) -> int:
        return sum(1 for owner in self._owner if owner is None)

    @property
    def in_use(self) -> int:
        return self.n_gpus - self.free_gpus

    def owner_of(self, gpu: int) -> int | None:
        return self._owner[gpu]

    def holding(self, job_index: int) -> tuple[int, ...]:
        """The GPUs currently owned by ``job_index``."""
        return tuple(g for g, owner in enumerate(self._owner)
                     if owner == job_index)

    def acquire(self, job_index: int, n: int) -> tuple[int, ...] | None:
        """Atomically allocate ``n`` GPUs to a job: all or nothing.

        Returns the GPU indices (lowest free first, so placements are
        deterministic) or None when fewer than ``n`` are free.
        """
        if n < 1:
            raise ValueError("a job needs at least one GPU")
        if self.holding(job_index):
            raise RuntimeError(f"job {job_index} already holds GPUs")
        free = [g for g, owner in enumerate(self._owner) if owner is None]
        if len(free) < n:
            return None
        taken = tuple(free[:n])
        for g in taken:
            self._owner[g] = job_index
        self.peak_in_use = max(self.peak_in_use, self.in_use)
        return taken

    def release(self, job_index: int, *, busy_seconds: float = 0.0,
                ) -> tuple[int, ...]:
        """Free every GPU held by ``job_index``, charging each for the
        modeled seconds the job occupied it."""
        held = self.holding(job_index)
        if not held:
            raise RuntimeError(f"job {job_index} holds no GPUs")
        if busy_seconds < 0:
            raise ValueError("busy_seconds must be >= 0")
        for g in held:
            self._owner[g] = None
            self.busy_s[g] += busy_seconds
        return held

    # --------------------------------------------------------- reporting
    @property
    def total_busy_s(self) -> float:
        return sum(self.busy_s)

    def utilization(self, makespan: float) -> float:
        """Fraction of fleet capacity (n_gpus x makespan) spent running
        jobs over a service run of ``makespan`` modeled seconds."""
        if makespan <= 0:
            return 0.0
        return self.total_busy_s / (self.n_gpus * makespan)

    def __repr__(self) -> str:
        return (f"GpuFleet({self.name!r}, {self.in_use}/{self.n_gpus} "
                f"in use)")
