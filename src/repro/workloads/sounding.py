"""Analytic atmospheric soundings (base-state potential-temperature
profiles) used to build hydrostatically balanced reference states.

The mountain-wave benchmark of the paper (Sec. IV-B, after Satomura et al.
st-MIP) uses a constant Brunt-Vaisala-frequency atmosphere with a uniform
10 m/s wind; the warm-bubble and real-case workloads use a
conditionally-realistic troposphere profile.
"""
from __future__ import annotations

from typing import Callable

import numpy as np

from .. import constants as c

__all__ = [
    "isothermal_sounding",
    "constant_stability_sounding",
    "isentropic_sounding",
    "tropospheric_sounding",
]

Sounding = Callable[[np.ndarray], np.ndarray]


def isentropic_sounding(theta0: float = 300.0) -> Sounding:
    """Neutral atmosphere: constant potential temperature."""

    def theta(z: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(z, dtype=np.float64), theta0)

    return theta


def constant_stability_sounding(theta0: float = 288.0, n_bv: float = 0.01) -> Sounding:
    """Constant Brunt-Vaisala frequency N: ``theta = theta0 exp(N^2 z / g)``.

    This is the standard stratification of linear mountain-wave theory and
    of the st-MIP intercomparison the paper benchmarks against.
    """

    def theta(z: np.ndarray) -> np.ndarray:
        return theta0 * np.exp(n_bv ** 2 * np.asarray(z, dtype=np.float64) / c.G)

    return theta


def isothermal_sounding(t0: float = 250.0) -> Sounding:
    """Isothermal atmosphere T = t0: ``theta = t0 exp(kappa g z / (Rd t0))``
    (exact for constant T with hydrostatic balance)."""

    def theta(z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        return t0 * np.exp(c.KAPPA * c.G * z / (c.RD * t0))

    return theta


def tropospheric_sounding(
    theta_sfc: float = 300.0,
    dthdz_trop: float = 0.004,
    z_tropopause: float = 12000.0,
    dthdz_strat: float = 0.02,
) -> Sounding:
    """Piecewise-linear theta: weakly stable troposphere, strongly stable
    stratosphere — a serviceable stand-in for the JMA analysis profiles."""

    def theta(z: np.ndarray) -> np.ndarray:
        z = np.asarray(z, dtype=np.float64)
        th_trop = theta_sfc + dthdz_trop * z
        th_top = theta_sfc + dthdz_trop * z_tropopause
        th_strat = th_top + dthdz_strat * (z - z_tropopause)
        return np.where(z <= z_tropopause, th_trop, th_strat)

    return theta
