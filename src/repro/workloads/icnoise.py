"""Seeded initial-condition noise shared by every workload factory.

Ensemble forecasting (``repro.ensemble``, docs/ENSEMBLE.md) perturbs a
control run into N members by stamping each expanded
:class:`~repro.api.RunSpec` with a distinct ``seed``.  The run facade
threads that seed into the workload factory, and the factory calls
:func:`apply_ic_noise` *after* building its deterministic initial state:
a seeded multiplicative potential-temperature perturbation plus an
optional additive wind perturbation, both vanishing when ``seed`` is
None — an unseeded case is bit-identical to what the factory built
before this module existed.

The noise amplitudes are physical (Kelvin, m/s) so perturbation
magnitudes are comparable across workloads; the shear-layer case keeps
its own historical ``seed``/``noise`` knobs (its noise *is* the
workload) and does not go through here.
"""
from __future__ import annotations

import numpy as np

from ..core.state import State

__all__ = ["apply_ic_noise"]


def apply_ic_noise(
    state: State,
    *,
    seed: int | None,
    theta_noise: float = 0.3,
    wind_noise: float = 0.0,
) -> None:
    """Perturb ``state`` in place with seeded noise (no-op when ``seed``
    is None).

    ``theta_noise`` is the standard deviation [K] of an additive
    potential-temperature perturbation (applied as ``rho * dtheta`` on
    the conserved ``rhotheta``, mirroring how the warm-bubble anomaly is
    built); ``wind_noise`` is the standard deviation [m/s] of additive
    u/v perturbations applied through the face-averaged G-weighted
    density, mirroring how the factories impose mean winds.  The same
    seed always produces the same perturbation, bitwise.
    """
    if seed is None:
        return
    rng = np.random.default_rng(seed)
    dtype = state.dtype
    if theta_noise:
        noise = rng.standard_normal(state.rhotheta.shape)
        state.rhotheta += (state.rho * theta_noise * noise).astype(dtype)
    if wind_noise:
        rho = state.rho
        grho_u = np.empty(state.rhou.shape)
        grho_u[1:-1] = 0.5 * (rho[1:] + rho[:-1])
        grho_u[0], grho_u[-1] = rho[0], rho[-1]
        grho_v = np.empty(state.rhov.shape)
        grho_v[:, 1:-1] = 0.5 * (rho[:, 1:] + rho[:, :-1])
        grho_v[:, 0], grho_v[:, -1] = rho[:, 0], rho[:, -1]
        du = rng.standard_normal(state.rhou.shape)
        dv = rng.standard_normal(state.rhov.shape)
        state.rhou += (wind_noise * grho_u * du).astype(dtype)
        state.rhov += (wind_noise * grho_v * dv).astype(dtype)
