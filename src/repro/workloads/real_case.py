"""Synthetic "real data" forecast case — the Fig. 12 substitution.

The paper demonstrates the GPU ASUCA on a real typhoon case (southern
islands of Japan, October 2009): JMA mesoscale analysis (MANAL) initial
data, hourly boundary data from a global spectral model, 1900x2272x48 mesh
at 500 m on 54 GPUs, dt = 0.5 s, full dynamical core + warm rain; the
figure shows horizontal wind, pressure and precipitation after 2/4/6 h.

We have no MANAL data, so this module builds a meteorologically structured
synthetic equivalent that exercises the same code path (DESIGN.md Sec. 2):

* a non-periodic domain with coastal-ridge terrain,
* a moist warm-core cyclonic vortex in gradient-wind-like balance embedded
  in a uniform steering flow,
* Davies relaxation boundaries whose targets are rebuilt every simulated
  "hour" from the steered environment (the stand-in for the global-model
  forecast data), and
* the full dycore + Kessler warm rain, optionally domain-decomposed.

Diagnostics mirror the figure: horizontal wind, surface pressure
perturbation, and accumulated precipitation at checkpoint times.
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.boundary import RelaxationBC
from ..core.grid import Grid, make_grid
from ..core.model import AsucaModel, ModelConfig
from ..core.pressure import eos_pressure, exner
from ..core.reference import ReferenceState, make_reference_state
from ..core.rk3 import DynamicsConfig
from ..core.state import State, state_from_reference
from ..physics.saturation import saturation_mixing_ratio
from .icnoise import apply_ic_noise
from .sounding import tropospheric_sounding

__all__ = ["RealCase", "make_real_case", "RealCaseSnapshot"]


@dataclass
class RealCaseSnapshot:
    """Fig.-12-style output at one checkpoint."""

    hours: float
    u: np.ndarray            #: (nx, ny) near-surface u [m/s]
    v: np.ndarray
    p_surface_pert: np.ndarray   #: (nx, ny) [Pa]
    precip_mm: np.ndarray        #: accumulated [mm]
    max_wind: float
    min_pressure_pert: float
    total_precip_mm: float


def _ridge_terrain(lx: float, ly: float, height: float):
    """A coastal ridge along the western third of the domain."""

    def zs(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        ridge = height * np.exp(-(((X - 0.3 * lx) / (0.08 * lx)) ** 2))
        bumps = 0.3 * height * np.exp(
            -(((X - 0.55 * lx) / (0.05 * lx)) ** 2)
            - (((Y - 0.5 * ly) / (0.2 * ly)) ** 2)
        )
        return np.clip(ridge + bumps, 0.0, None)

    return zs


@dataclass
class RealCase:
    grid: Grid
    ref: ReferenceState
    model: AsucaModel
    state: State
    steering_u: float
    vortex_center: tuple[float, float]
    vortex_radius: float
    vortex_amp: float
    boundary_update_hours: float = 1.0
    _last_boundary_update: float = field(default=-1.0)

    # ------------------------------------------------------------ boundary
    def environment_state(self, t: float) -> State:
        """The steered large-scale environment at time ``t`` — the
        stand-in for the global-model forecast used as boundary data."""
        st = state_from_reference(self.grid, self.ref, u0=self.steering_u)
        return st

    def refresh_boundary_targets(self, t: float) -> None:
        env = self.environment_state(t)
        bc = self.model.relaxation
        for name in ("rho", "rhou", "rhov", "rhotheta"):
            bc.set_target(name, env.get(name))
        bc.set_target("rhow", np.zeros_like(env.rhow))
        p = eos_pressure(env.rhotheta, self.grid)
        T = (env.rhotheta / env.rho) * exner(p)
        qv_env = 0.6 * saturation_mixing_ratio(p, T) * env.rho
        bc.set_target("qv", qv_env)
        for name in ("qc", "qr"):
            bc.set_target(name, np.zeros_like(env.rho))
        self._last_boundary_update = t

    # ---------------------------------------------------------------- run
    def run_hours(
        self, hours: float, *, checkpoint_hours: list[float] | None = None
    ) -> list[RealCaseSnapshot]:
        """Integrate, refreshing boundary data on the hourly schedule and
        returning Fig.-12-style snapshots."""
        dt = self.model.config.dynamics.dt
        n_steps = int(round(hours * 3600.0 / dt))
        checkpoints = sorted(checkpoint_hours or [hours])
        snaps: list[RealCaseSnapshot] = []
        next_cp = 0
        for i in range(n_steps):
            t = self.state.time
            if t - self._last_boundary_update >= self.boundary_update_hours * 3600.0 - 1e-9:
                self.refresh_boundary_targets(t)
            self.state = self.model.step(self.state)
            t_hours = self.state.time / 3600.0
            while next_cp < len(checkpoints) and t_hours >= checkpoints[next_cp] - 1e-9:
                snaps.append(self.snapshot(checkpoints[next_cp]))
                next_cp += 1
        return snaps

    def snapshot(self, hours: float) -> RealCaseSnapshot:
        g = self.grid
        # states assembled by gather_state carry empty halos; refresh them
        # before deriving velocities
        from ..core.boundary import fill_halos_state

        fill_halos_state(self.state)
        u, v, w = self.state.velocities()
        h = g.halo
        u_sfc = 0.5 * (u[h : h + g.nx, h : h + g.ny, 0] + u[h + 1 : h + g.nx + 1, h : h + g.ny, 0])
        v_sfc = 0.5 * (v[h : h + g.nx, h : h + g.ny, 0] + v[h : h + g.nx, h + 1 : h + g.ny + 1, 0])
        pp = self.model.pressure_perturbation(self.state)[g.isl][:, :, 0]
        acc = self.state.precip_accum
        precip = acc.copy() if acc is not None else np.zeros((g.nx, g.ny))
        wind = np.hypot(u_sfc, v_sfc)
        return RealCaseSnapshot(
            hours=hours,
            u=u_sfc, v=v_sfc,
            p_surface_pert=pp,
            precip_mm=precip,
            max_wind=float(wind.max()),
            min_pressure_pert=float(pp.min()),
            total_precip_mm=float(precip.sum()),
        )


def make_real_case(
    *,
    nx: int = 48,
    ny: int = 40,
    nz: int = 16,
    dx: float = 2500.0,
    ztop: float = 16000.0,
    dt: float = 5.0,
    ns: int = 6,
    steering_u: float = 6.0,
    vortex_amp: float = 8.0,
    vortex_radius: float = 15000.0,
    vortex_rh: float = 0.95,
    terrain_height: float = 500.0,
    relax_width: int = 5,
    relax_tau: float = 120.0,
    seed: int | None = None,
    theta_noise: float = 0.3,
    wind_noise: float = 0.0,
    dtype=np.float64,
) -> RealCase:
    """Build the synthetic forecast case (defaults are laptop-sized; the
    Fig. 12 benchmark scales nx/ny up and decomposes over 54 ranks)."""
    lx, ly = nx * dx, ny * dx
    grid = make_grid(
        nx=nx, ny=ny, nz=nz, dx=dx, dy=dx, ztop=ztop,
        terrain=_ridge_terrain(lx, ly, terrain_height),
        periodic_x=False, periodic_y=False,
    )
    ref = make_reference_state(grid, tropospheric_sounding())
    config = ModelConfig(
        dynamics=DynamicsConfig(dt=dt, ns=ns, rayleigh_depth=ztop / 4.0,
                                rayleigh_tau=60.0),
        physics_enabled=True,
    )
    relaxation = RelaxationBC(grid, width=relax_width, tau=relax_tau)
    model = AsucaModel(grid, ref, config, relaxation=relaxation)
    state = model.initial_state(u0=steering_u, dtype=dtype)

    # --- embed a moist warm-core vortex --------------------------------
    cx, cy = 0.65 * lx, 0.45 * ly
    X, Y = np.meshgrid(grid.x_c(), grid.y_c(), indexing="ij")
    Xu, Yu = np.meshgrid(grid.x_u(), grid.y_c(), indexing="ij")
    Xv, Yv = np.meshgrid(grid.x_c(), grid.y_v(), indexing="ij")
    z3 = grid.z3d_c()
    vertical = np.exp(-z3 / 6000.0)

    def tangential(Xp, Yp):
        rx, ry = Xp - cx, Yp - cy
        r = np.hypot(rx, ry)
        vmag = vortex_amp * (r / vortex_radius) * np.exp(
            0.5 * (1.0 - (r / vortex_radius) ** 2)
        )
        safe_r = np.maximum(r, 1.0)
        return -vmag * ry / safe_r, vmag * rx / safe_r  # cyclonic (CCW)

    up, _ = tangential(Xu, Yu)
    _, vp = tangential(Xv, Yv)
    # G rho at the staggered points
    grho = ref.rho_c * grid.jac[:, :, None]
    grho_u = np.empty(grid.shape_u)
    grho_u[1:-1] = 0.5 * (grho[1:] + grho[:-1])
    grho_u[0], grho_u[-1] = grho[0], grho[-1]
    grho_v = np.empty(grid.shape_v)
    grho_v[:, 1:-1] = 0.5 * (grho[:, 1:] + grho[:, :-1])
    grho_v[:, 0], grho_v[:, -1] = grho[:, 0], grho[:, -1]
    state.rhou += (grho_u * up[:, :, None] * np.exp(-grid.z_c[None, None, :] / 6000.0)).astype(dtype)
    state.rhov += (grho_v * vp[:, :, None] * np.exp(-grid.z_c[None, None, :] / 6000.0)).astype(dtype)

    # warm core (gives the low pressure) + moisture
    r2 = ((X[:, :, None] - cx) ** 2 + (Y[:, :, None] - cy) ** 2) / vortex_radius ** 2
    core = np.exp(-r2) * vertical
    state.rhotheta += (state.rho * 2.0 * core).astype(dtype)

    p = eos_pressure(state.rhotheta, grid)
    T = (state.rhotheta / state.rho) * exner(p)
    qvs = saturation_mixing_ratio(p, T)
    rh = 0.6 + (vortex_rh - 0.6) * np.minimum(1.0, 1.5 * np.exp(-r2))
    state.q["qv"][...] = (rh * qvs * state.rho).astype(dtype)

    apply_ic_noise(state, seed=seed, theta_noise=theta_noise,
                   wind_noise=wind_noise)
    model._exchange(state, None)
    case = RealCase(
        grid=grid, ref=ref, model=model, state=state,
        steering_u=steering_u, vortex_center=(cx, cy),
        vortex_radius=vortex_radius, vortex_amp=vortex_amp,
    )
    case.refresh_boundary_targets(0.0)
    return case
