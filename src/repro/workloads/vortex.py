"""Balanced warm-core vortex — the ensemble flagship case.

The GPU-accelerated tropical-cyclone rapid-intensification study in
PAPERS.md (Kang et al.) is the operational shape ensemble forecasting
serves: a perturbed-vortex ensemble whose track and intensity spread is
the product.  This workload builds the deterministic control member —
a Rankine-like tangential wind field in gradient-wind and hydrostatic
balance — so that seeded perturbations (``seed`` / ``theta_noise`` /
``wind_noise``, plus parameter jitter from :mod:`repro.ensemble`) are
the *only* source of member spread.

Construction (all discrete, on the model's own grid and EOS):

* tangential wind ``V(r) = vmax * r/rmax`` inside the radius of maximum
  wind and ``vmax * (rmax/r)**alpha`` outside (Rankine for ``alpha=1``),
  tapered smoothly to zero before the periodic boundary and decaying
  with height as ``exp(-z/depth)``;
* the pressure field integrates gradient-wind balance radially,
  ``dp/dr = rho (V^2/r + f V)``, from the taper edge (where ``p'=0``)
  inward — the warm-core low;
* the density perturbation makes the column hydrostatic again,
  ``rho' = -(1/g) dp'/dz``, and ``rhotheta`` is set from the model EOS
  inverse of the balanced pressure, so an unperturbed vortex is close to
  stationary (small initial tendencies, asserted by
  tests/workloads/test_vortex.py).

The case records a per-step *track series* (pressure-centroid center,
max wind, minimum surface pressure perturbation) that rides back on
:attr:`repro.api.RunResult.series` — the point product the ensemble
layer reduces into track/intensity spread.

Defaults are CFL-safe by construction: the advective Courant number
``(vmax + margin) * dt / dx`` and the acoustic Courant number
``c_s * (dt/ns) / dx`` both stay below 0.5 (tested).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants as c
from ..core.grid import Grid, make_grid
from ..core.model import AsucaModel, ModelConfig
from ..core.pressure import eos_pressure
from ..core.reference import ReferenceState, make_reference_state
from ..core.rk3 import DynamicsConfig
from ..core.state import State
from .icnoise import apply_ic_noise
from .sounding import tropospheric_sounding

__all__ = ["VortexCase", "make_vortex_case", "rankine_wind"]

#: sound-speed bound used by the CFL accounting [m/s]
SOUND_SPEED = 350.0


def rankine_wind(r: np.ndarray, vmax: float, rmax: float,
                 alpha: float = 0.75) -> np.ndarray:
    """Rankine-like tangential wind profile: solid-body rotation inside
    ``rmax``, a ``(rmax/r)**alpha`` tail outside (classic Rankine is
    ``alpha=1``; observed TC wind fields are flatter)."""
    r = np.asarray(r, dtype=np.float64)
    safe = np.maximum(r, 1e-12)
    inner = vmax * (r / rmax)
    outer = vmax * (rmax / safe) ** alpha
    return np.where(r <= rmax, inner, outer)


def _taper(r: np.ndarray, r_cut: float) -> np.ndarray:
    """Cosine taper from 0.6*r_cut (1) to r_cut (0): the wind must
    vanish before the periodic wrap."""
    r0 = 0.6 * r_cut
    t = np.clip((r - r0) / (r_cut - r0), 0.0, 1.0)
    return 0.5 * (1.0 + np.cos(np.pi * t))


@dataclass
class VortexCase:
    grid: Grid
    ref: ReferenceState
    model: AsucaModel
    state: State
    vmax: float
    rmax: float
    center: tuple[float, float]
    #: per-step track points keyed by model time (idempotent under
    #: crash-recovery replay), recorded by the wrapped model step
    track: dict = field(default_factory=dict)

    def run(self, n_steps: int) -> State:
        self.state = self.model.run(self.state, n_steps)
        return self.state

    # --------------------------------------------------------- products
    def max_wind(self) -> float:
        """Interior max horizontal wind speed [m/s]."""
        g = self.grid
        u, v, _ = self.state.velocities()
        return float(max(np.abs(u[g.isl_u]).max(),
                         np.abs(v[g.isl_v]).max()))

    def center_of_low(self) -> tuple[float, float]:
        """Pressure-deficit centroid of the surface level [m] — the
        vortex center the track series follows."""
        return _pressure_centroid(self.state, self.model)

    def min_surface_p_pert(self) -> float:
        g = self.grid
        pp = self.model.pressure_perturbation(self.state)[g.isl][:, :, 0]
        return float(pp.min())

    def series(self) -> dict[str, list]:
        """The recorded track series in time order (the shape
        :attr:`repro.api.RunResult.series` carries)."""
        times = sorted(self.track)
        pts = [self.track[t] for t in times]
        return {
            "t": [float(t) for t in times],
            "cx": [p[0] for p in pts],
            "cy": [p[1] for p in pts],
            "max_wind": [p[2] for p in pts],
            "min_p_pert": [p[3] for p in pts],
        }

    # ------------------------------------------------------------- CFL
    def courant_numbers(self) -> tuple[float, float]:
        """(advective, acoustic) Courant numbers of the configuration;
        defaults keep both below 0.5."""
        dyn = self.model.config.dynamics
        dx = min(self.grid.dx, self.grid.dy)
        adv = (self.vmax + 5.0) * dyn.dt / dx
        acoustic = SOUND_SPEED * (dyn.dt / dyn.ns) / dx
        return adv, acoustic


def _pressure_centroid(state: State, model: AsucaModel) -> tuple[float, float]:
    g = state.grid
    pp = model.pressure_perturbation(state)[g.isl][:, :, 0]
    deficit = np.maximum(0.0, -(pp - pp.max()))
    total = float(deficit.sum())
    x = g.x_c()[g.isl[0]]
    y = g.y_c()[g.isl[1]]
    if total <= 0.0:
        return float(x.mean()), float(y.mean())
    cx = float((deficit.sum(axis=1) * x).sum() / total)
    cy = float((deficit.sum(axis=0) * y).sum() / total)
    return cx, cy


def make_vortex_case(
    *,
    nx: int = 32,
    ny: int = 32,
    nz: int = 12,
    dx: float = 2000.0,
    ztop: float = 12000.0,
    dt: float = 4.0,
    ns: int = 6,
    vmax: float = 15.0,
    rmax: float = 8000.0,
    alpha: float = 0.75,
    depth: float = 6000.0,
    f: float = 0.0,
    seed: int | None = None,
    theta_noise: float = 0.3,
    wind_noise: float = 0.2,
    physics: bool = False,
    vortex_rh: float = 0.9,
    dtype=np.float64,
) -> VortexCase:
    """Build the balanced vortex.  ``seed`` switches on the member
    perturbation (theta + wind noise); ``vmax``/``rmax`` are the
    parameter-jitter targets of the default ensemble catalogue."""
    grid = make_grid(nx=nx, ny=ny, nz=nz, dx=dx, dy=dx, ztop=ztop)
    ref = make_reference_state(grid, tropospheric_sounding())
    config = ModelConfig(
        dynamics=DynamicsConfig(dt=dt, ns=ns, coriolis_f=f,
                                rayleigh_depth=ztop / 4.0,
                                rayleigh_tau=60.0),
        physics_enabled=physics,
    )
    model = AsucaModel(grid, ref, config)
    state = model.initial_state(dtype=dtype)

    # --- geometry: radii from the domain-center vortex ----------------
    lx, ly = nx * dx, ny * dx
    cx, cy = lx / 2.0, ly / 2.0
    r_cut = 0.45 * min(lx, ly)
    # the radius of maximum wind must sit inside the untapered core;
    # clamp rather than raise so an ensemble-jittered rmax stays valid
    # on any domain (the clamp is deterministic, so a clamped member
    # still reproduces standalone)
    rmax = min(rmax, 0.55 * r_cut)

    def radius(X, Y):
        return np.hypot(X - cx, Y - cy)

    def wind(r):
        return rankine_wind(r, vmax, rmax, alpha) * _taper(r, r_cut)

    # --- radial gradient-wind integrals (shared 1-D table) ------------
    r_tab = np.linspace(0.0, r_cut, 4096)
    v_tab = wind(r_tab)
    centrifugal = np.zeros_like(r_tab)
    centrifugal[1:] = v_tab[1:] ** 2 / r_tab[1:]
    dr = r_tab[1] - r_tab[0]
    # I2(r) = int_r^rcut V^2/r' dr',  I1(r) = int_r^rcut V dr'
    i2_tab = (centrifugal[::-1].cumsum()[::-1] - 0.5 * centrifugal) * dr
    i1_tab = (v_tab[::-1].cumsum()[::-1] - 0.5 * v_tab) * dr

    # halo-inclusive cell-center coordinates: halos carry the analytic
    # fields directly (the periodic wrap sees tapered-to-zero wind there)
    Xc, Yc = np.meshgrid(grid.x_c(), grid.y_c(), indexing="ij")
    r_c = radius(Xc, Yc)
    i2_c = np.interp(r_c, r_tab, i2_tab, right=0.0)
    i1_c = np.interp(r_c, r_tab, i1_tab, right=0.0)

    decay = np.exp(-grid.z_c / depth)                    # (nz,)
    rho_col = ref.rho_c                                  # (nxh, nyh, nz)
    # gradient-wind pressure deficit: p' = -rho (D^2 I2 + f D I1)
    p_pert = -rho_col * (decay[None, None, :] ** 2 * i2_c[:, :, None]
                         + f * decay[None, None, :] * i1_c[:, :, None])

    # hydrostatic re-balance: rho' = -(1/g) dp'/dz on the cell columns
    z = grid.z_c
    dpdz = np.gradient(p_pert, z, axis=2)
    rho_pert = -dpdz / c.G

    jac3 = grid.jac[:, :, None]
    p_ref = eos_pressure(ref.rhotheta_c * jac3, grid)
    p_total = p_ref + p_pert
    # EOS inverse (paper Eq. 5): G rho theta_m from the balanced pressure
    rhotheta_phys = (c.P0 / c.RD) * (p_total / c.P0) ** (c.CV / c.CP)
    state.rho[...] = ((rho_col + rho_pert) * jac3).astype(dtype)
    state.rhotheta[...] = (rhotheta_phys * jac3).astype(dtype)

    # --- momenta: tangential wind at the staggered faces --------------
    Xu, Yu = np.meshgrid(grid.x_u(), grid.y_c(), indexing="ij")
    Xv, Yv = np.meshgrid(grid.x_c(), grid.y_v(), indexing="ij")

    def tangential(Xp, Yp):
        rx, ry = Xp - cx, Yp - cy
        r = radius(Xp, Yp)
        vmag = wind(r)
        safe = np.maximum(r, 1.0)
        return -vmag * ry / safe, vmag * rx / safe       # cyclonic (CCW)

    up, _ = tangential(Xu, Yu)
    _, vp = tangential(Xv, Yv)
    grho = state.rho.astype(np.float64)
    grho_u = np.empty(grid.shape_u)
    grho_u[1:-1] = 0.5 * (grho[1:] + grho[:-1])
    grho_u[0], grho_u[-1] = grho[0], grho[-1]
    grho_v = np.empty(grid.shape_v)
    grho_v[:, 1:-1] = 0.5 * (grho[:, 1:] + grho[:, :-1])
    grho_v[:, 0], grho_v[:, -1] = grho[:, 0], grho[:, -1]
    state.rhou[...] = (grho_u * up[:, :, None] * decay[None, None, :]).astype(dtype)
    state.rhov[...] = (grho_v * vp[:, :, None] * decay[None, None, :]).astype(dtype)

    if physics:
        from ..core.pressure import exner
        from ..physics.saturation import saturation_mixing_ratio

        p = eos_pressure(state.rhotheta, grid)
        T = (state.rhotheta / state.rho) * exner(p)
        qvs = saturation_mixing_ratio(p, T)
        r2 = (r_c / rmax) ** 2
        rh = 0.6 + (vortex_rh - 0.6) * np.minimum(1.0, 1.5 * np.exp(-r2))
        state.q["qv"][...] = (rh[:, :, None] * qvs * state.rho).astype(dtype)

    apply_ic_noise(state, seed=seed, theta_noise=theta_noise,
                   wind_noise=wind_noise)
    model._exchange(state, None)
    case = VortexCase(grid=grid, ref=ref, model=model, state=state,
                      vmax=vmax, rmax=rmax, center=(cx, cy))

    # wrap the model step so every long step drops a track point; keyed
    # by model time, so a crash-recovery replay overwrites rather than
    # duplicates
    orig_step = model.step

    def _recording_step(st: State) -> State:
        new = orig_step(st)
        case.track[float(new.time)] = (
            *_pressure_centroid(new, model),
            _interior_max_wind(new),
            float(model.pressure_perturbation(new)[grid.isl][:, :, 0].min()),
        )
        return new

    model.step = _recording_step
    return case


def _interior_max_wind(state: State) -> float:
    g = state.grid
    u, v, _ = state.velocities()
    return float(max(np.abs(u[g.isl_u]).max(), np.abs(v[g.isl_v]).max()))
