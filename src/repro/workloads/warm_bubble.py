"""Moist warm-bubble convection case: the workload that exercises the
full warm-rain path (condensation -> autoconversion -> accretion -> rain
-> surface precipitation), i.e. the paper's "physical processes" kernels.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import Grid, make_grid
from ..core.model import AsucaModel, ModelConfig
from ..core.pressure import eos_pressure, exner
from ..core.reference import ReferenceState, make_reference_state
from ..core.rk3 import DynamicsConfig
from ..core.state import State
from ..physics.saturation import saturation_mixing_ratio
from .icnoise import apply_ic_noise
from .sounding import tropospheric_sounding

__all__ = ["WarmBubbleCase", "make_warm_bubble_case"]


@dataclass
class WarmBubbleCase:
    grid: Grid
    ref: ReferenceState
    model: AsucaModel
    state: State

    def run(self, n_steps: int) -> State:
        self.state = self.model.run(self.state, n_steps)
        return self.state

    def cloud_water_path(self) -> float:
        """Domain-integrated cloud water [kg]."""
        g = self.grid
        return float(
            (g.interior(self.state.q["qc"]) * g.dz_c[None, None, :]).sum()
            * g.dx * g.dy
        )

    def max_precip_mm(self) -> float:
        acc = self.state.precip_accum
        return float(acc.max()) if acc is not None else 0.0


def make_warm_bubble_case(
    *,
    nx: int = 24,
    ny: int = 24,
    nz: int = 20,
    dx: float = 1000.0,
    ztop: float = 10000.0,
    dt: float = 3.0,
    ns: int = 6,
    bubble_dtheta: float = 3.0,
    bubble_radius_h: float = 2500.0,
    bubble_radius_v: float = 1500.0,
    bubble_height: float = 2000.0,
    env_rh: float = 0.6,
    bubble_rh: float = 0.98,
    seed: int | None = None,
    theta_noise: float = 0.3,
    wind_noise: float = 0.0,
    dtype=np.float64,
) -> WarmBubbleCase:
    """A warm, nearly saturated bubble in a conditionally unstable
    troposphere; deep convection and rain develop within ~10 minutes of
    model time."""
    grid = make_grid(nx=nx, ny=ny, nz=nz, dx=dx, dy=dx, ztop=ztop)
    ref = make_reference_state(grid, tropospheric_sounding())
    config = ModelConfig(
        dynamics=DynamicsConfig(dt=dt, ns=ns, rayleigh_depth=ztop / 4.0,
                                rayleigh_tau=60.0),
        physics_enabled=True,
    )
    model = AsucaModel(grid, ref, config)
    state = model.initial_state(dtype=dtype)

    X, Y = np.meshgrid(grid.x_c(), grid.y_c(), indexing="ij")
    z3 = grid.z3d_c()
    cx, cy = nx * dx / 2.0, ny * dx / 2.0
    r2 = (
        ((X[:, :, None] - cx) / bubble_radius_h) ** 2
        + ((Y[:, :, None] - cy) / bubble_radius_h) ** 2
        + ((z3 - bubble_height) / bubble_radius_v) ** 2
    )
    shape = np.maximum(0.0, 1.0 - np.sqrt(r2))
    state.rhotheta += (state.rho * bubble_dtheta * shape).astype(dtype)

    p = eos_pressure(state.rhotheta, grid)
    T = (state.rhotheta / state.rho) * exner(p)
    qvs = saturation_mixing_ratio(p, T)
    rh = env_rh + (bubble_rh - env_rh) * np.minimum(1.0, 2.0 * shape)
    state.q["qv"][...] = (rh * qvs * state.rho).astype(dtype)

    apply_ic_noise(state, seed=seed, theta_noise=theta_noise,
                   wind_noise=wind_noise)
    model._exchange(state, None)
    return WarmBubbleCase(grid=grid, ref=ref, model=model, state=state)
