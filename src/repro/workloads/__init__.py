"""Benchmark and demonstration workloads (mountain wave, warm bubble,
shear layer, synthetic real-data case, balanced vortex)."""
from .icnoise import apply_ic_noise
from .mountain_wave import MountainWaveCase, make_mountain_wave_case
from .real_case import RealCase, make_real_case
from .shear_layer import ShearLayerCase, make_shear_layer_case
from .vortex import VortexCase, make_vortex_case
from .warm_bubble import WarmBubbleCase, make_warm_bubble_case
from .sounding import (
    constant_stability_sounding,
    isentropic_sounding,
    isothermal_sounding,
    tropospheric_sounding,
)

__all__ = [
    "constant_stability_sounding",
    "isentropic_sounding",
    "isothermal_sounding",
    "tropospheric_sounding",
    "MountainWaveCase", "make_mountain_wave_case",
    "WarmBubbleCase", "make_warm_bubble_case",
    "ShearLayerCase", "make_shear_layer_case",
    "RealCase", "make_real_case",
    "VortexCase", "make_vortex_case",
    "apply_ic_noise",
]
