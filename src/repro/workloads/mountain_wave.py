"""The paper's mountain-wave benchmark (Sec. IV-B, after Satomura et al.'s
st-MIP setup): "an ideal mountain is placed at the center of the
calculation domain.  As an initial condition, 10.0 m/sec wind blows in the
x direction and normal pressure, temperature, density and the amount of
water substances are given.  The time integration step is 5.0 sec ...
periodic boundary condition[s] are adopted."

This is the workload behind the paper's Fig. 4 (single GPU), Fig. 10
(weak scaling) and the ablation benchmarks.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import Grid, bell_mountain, make_grid
from ..core.model import AsucaModel, ModelConfig
from ..core.reference import ReferenceState, make_reference_state
from ..core.rk3 import DynamicsConfig
from ..core.state import State
from .icnoise import apply_ic_noise
from .sounding import constant_stability_sounding

__all__ = ["MountainWaveCase", "make_mountain_wave_case", "linear_wave_w_scale"]


@dataclass
class MountainWaveCase:
    """Bundled grid/reference/model/state of one mountain-wave setup."""

    grid: Grid
    ref: ReferenceState
    model: AsucaModel
    state: State
    u0: float
    mountain_height: float
    half_width: float

    def run(self, n_steps: int) -> State:
        self.state = self.model.run(self.state, n_steps)
        return self.state


def make_mountain_wave_case(
    *,
    nx: int = 64,
    ny: int = 16,
    nz: int = 24,
    dx: float = 2000.0,
    ztop: float = 18000.0,
    mountain_height: float = 300.0,
    half_width: float | None = None,
    u0: float = 10.0,
    dt: float = 5.0,
    ns: int = 6,
    n_bv: float = 0.01,
    theta0: float = 288.0,
    sponge_depth: float | None = None,
    seed: int | None = None,
    theta_noise: float = 0.3,
    wind_noise: float = 0.0,
    dtype=np.float64,
    physics: bool = False,
) -> MountainWaveCase:
    """Build the benchmark.  Defaults give a linear, hydrostatic-regime
    wave (``N a / U = 4``) on a laptop-scale mesh; pass larger nx/ny to
    match the paper's per-GPU block."""
    half_width = half_width if half_width is not None else 4.0 * dx
    sponge = sponge_depth if sponge_depth is not None else ztop / 3.0
    terr = bell_mountain(mountain_height, half_width, x0=nx * dx / 2.0)
    grid = make_grid(nx=nx, ny=ny, nz=nz, dx=dx, dy=dx, ztop=ztop, terrain=terr)
    ref = make_reference_state(grid, constant_stability_sounding(theta0, n_bv))
    config = ModelConfig(
        dynamics=DynamicsConfig(
            dt=dt, ns=ns, rayleigh_depth=sponge, rayleigh_tau=30.0,
        ),
        physics_enabled=physics,
    )
    model = AsucaModel(grid, ref, config)
    state = model.initial_state(u0=u0, dtype=dtype)
    if seed is not None:
        apply_ic_noise(state, seed=seed, theta_noise=theta_noise,
                       wind_noise=wind_noise)
        model._exchange(state, None)
    return MountainWaveCase(
        grid=grid, ref=ref, model=model, state=state,
        u0=u0, mountain_height=mountain_height, half_width=half_width,
    )


def linear_wave_w_scale(u0: float, height: float, half_width: float) -> float:
    """Linear-theory vertical-velocity scale ``U h / a`` used by the tests
    to sanity-check wave amplitudes."""
    return u0 * height / half_width
