"""Stratified shear-layer (Kelvin-Helmholtz) workload.

A classic dynamical-core test orthogonal to the mountain wave: a tanh
shear layer in uniform stratification is unstable when the minimum
gradient Richardson number

    Ri = N^2 / (du/dz)^2 = N^2 h^2 / U0^2      (at the layer center)

drops below 1/4 (Miles-Howard).  The workload builds the layer, seeds it
with small noise, and exposes the perturbation kinetic energy so tests
can verify that billows grow for Ri < 1/4 and do not for Ri well above
it — a sharp, theory-backed discriminator of the momentum advection +
buoyancy coupling.
"""
from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import Grid, make_grid
from ..core.model import AsucaModel, ModelConfig
from ..core.reference import ReferenceState, make_reference_state
from ..core.rk3 import DynamicsConfig
from ..core.state import State, state_from_reference
from .sounding import constant_stability_sounding

__all__ = ["ShearLayerCase", "make_shear_layer_case"]


@dataclass
class ShearLayerCase:
    grid: Grid
    ref: ReferenceState
    model: AsucaModel
    state: State
    richardson: float

    def run(self, n_steps: int) -> State:
        self.state = self.model.run(self.state, n_steps)
        return self.state

    def perturbation_ke(self) -> float:
        """Domain-mean kinetic energy of (w, u - <u>_xy) [J/kg-ish]."""
        g = self.grid
        u, v, w = self.state.velocities()
        ui = u[g.isl_u]
        u_mean = ui.mean(axis=(0, 1), keepdims=True)
        wi = g.interior(w)
        return float(0.5 * ((ui - u_mean) ** 2).mean() + 0.5 * (wi ** 2).mean())


def make_shear_layer_case(
    *,
    richardson: float = 0.12,
    u_half: float = 5.0,
    layer_depth: float = 300.0,
    nx: int = 32,
    ny: int = 4,
    nz: int = 40,
    ztop: float = 3000.0,
    dt: float = 1.0,
    ns: int = 6,
    noise: float = 0.02,
    seed: int = 0,
) -> ShearLayerCase:
    """Build a tanh shear layer ``u(z) = U0 tanh((z - zm)/h)`` whose
    center Richardson number equals ``richardson`` (the stratification is
    derived from it: ``N = sqrt(Ri) U0 / h``)."""
    n_bv = float(np.sqrt(richardson) * u_half / layer_depth)
    # fastest KH mode has wavelength ~ 7 h: fit ~2 wavelengths in x
    dx = 14.0 * layer_depth / nx * 2.0
    grid = make_grid(nx=nx, ny=ny, nz=nz, dx=dx, dy=dx, ztop=ztop)
    ref = make_reference_state(grid, constant_stability_sounding(288.0, n_bv))
    config = ModelConfig(dynamics=DynamicsConfig(
        dt=dt, ns=ns, rayleigh_depth=ztop / 6.0, rayleigh_tau=60.0,
    ))
    model = AsucaModel(grid, ref, config)
    state = model.initial_state()

    zm = ztop / 2.0
    u_prof = u_half * np.tanh((grid.z_c - zm) / layer_depth)
    grho = ref.rho_c * grid.jac[:, :, None]
    grho_u = np.empty(grid.shape_u)
    grho_u[1:-1] = 0.5 * (grho[1:] + grho[:-1])
    grho_u[0], grho_u[-1] = grho[0], grho[-1]
    state.rhou[...] = grho_u * u_prof[None, None, :]

    r = np.random.default_rng(seed)
    state.rhotheta *= 1.0 + noise * 1e-2 * r.standard_normal(grid.shape_c)
    model._exchange(state, None)
    return ShearLayerCase(grid=grid, ref=ref, model=model, state=state,
                          richardson=richardson)
