"""Phase profiler: wall-clock breakdown of the *reproduction's own*
execution.  (Top-level module: it imports only the stdlib-only tracing
core :mod:`repro.obs.trace`, so the core integrator can use it without
import cycles; ``repro.perf`` re-exports it.)

The paper profiles its CUDA kernels (Fig. 9); this profiles the NumPy
twin.  The integrator and physics are instrumented with
:func:`profile_phase` context managers that are no-ops unless a
:class:`PhaseTimer` is activated::

    timer = PhaseTimer()
    with use_timer(timer):
        model.run(state, 10)
    print(timer.report())

:func:`profile_phase` is also the host-span shim of the unified tracing
layer: while a :class:`repro.obs.trace.TraceSession` is active (via
:func:`repro.obs.trace.use_session`), every phase is additionally
recorded as a span on that session — so the existing instrumentation
feeds Chrome-trace exports without any call-site changes.  With neither
a timer nor a session active, the overhead is two empty-list checks.

Following the repository's coding guides ("no optimization without
measuring"), this is the measurement half of the optimization workflow —
the throughput benchmarks are its regression harness.
"""
from __future__ import annotations

import contextlib
import time
from collections import defaultdict
from dataclasses import dataclass, field

from .obs.trace import _SESSIONS

__all__ = ["PhaseTimer", "use_timer", "profile_phase"]

_ACTIVE: list["PhaseTimer"] = []


@dataclass
class PhaseTimer:
    """Accumulates (count, total seconds) per named phase."""

    seconds: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def add(self, name: str, dt: float) -> None:
        self.seconds[name] += dt
        self.calls[name] += 1

    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, name: str) -> float:
        t = self.total()
        return self.seconds.get(name, 0.0) / t if t > 0 else 0.0

    def report(self) -> str:
        """Sorted text table of the accumulated phases."""
        rows = sorted(self.seconds.items(), key=lambda kv: -kv[1])
        total = self.total() or 1.0
        lines = [f"{'phase':<24} {'calls':>6} {'seconds':>9} {'share':>7}"]
        for name, sec in rows:
            lines.append(
                f"{name:<24} {self.calls[name]:>6} {sec:>9.4f} "
                f"{100 * sec / total:>6.1f}%"
            )
        lines.append(f"{'total':<24} {'':>6} {self.total():>9.4f}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()


@contextlib.contextmanager
def use_timer(timer: PhaseTimer):
    """Activate a timer for the enclosed block (re-entrant, LIFO)."""
    _ACTIVE.append(timer)
    try:
        yield timer
    finally:
        _ACTIVE.pop()


@contextlib.contextmanager
def profile_phase(name: str):
    """Charge the enclosed block to the innermost active timer and/or
    record it as a span on the innermost active trace session (a no-op —
    two list lookups — when neither is active)."""
    if not _ACTIVE and not _SESSIONS:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        t1 = time.perf_counter()
        if _ACTIVE:
            _ACTIVE[-1].add(name, t1 - t0)
        if _SESSIONS:
            session = _SESSIONS[-1]
            session.record_span(name, t0 - session.epoch, t1 - t0,
                                cat="phase")
