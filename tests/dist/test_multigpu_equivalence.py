"""THE multi-GPU correctness test: a domain-decomposed run reproduces the
single-domain run bit for bit (the distributed analogue of the paper's
"numerical results ... agree with those from the CPU code within the
margin of machine round-off error" — here the margin is exactly zero).
"""
import numpy as np
import pytest

from repro.core import (
    AsucaModel,
    DynamicsConfig,
    ModelConfig,
    bell_mountain,
    make_grid,
    make_reference_state,
)
from repro.dist.multigpu import MultiGpuAsuca
from repro.workloads.sounding import constant_stability_sounding, tropospheric_sounding


def _setup(terrain=None, sounding=None, physics=False, nx=16, ny=12, nz=8):
    g = make_grid(nx=nx, ny=ny, nz=nz, dx=2000.0, dy=2000.0, ztop=12000.0,
                  terrain=terrain)
    ref = make_reference_state(g, sounding or constant_stability_sounding())
    cfg = ModelConfig(
        dynamics=DynamicsConfig(dt=4.0, ns=4, rayleigh_depth=4000.0,
                                rayleigh_tau=30.0),
        physics_enabled=physics,
    )
    return g, ref, cfg


def _perturbed_initial(model):
    st = model.initial_state(u0=10.0)
    g = model.grid
    X = g.x_c()[:, None, None]
    Y = g.y_c()[None, :, None]
    st.rhotheta += st.rho * 1.5 * np.exp(
        -(((X - 16000.0) / 4000.0) ** 2) - (((Y - 12000.0) / 4000.0) ** 2)
    )
    model._exchange(st, None)
    return st


@pytest.mark.parametrize("px,py", [(2, 2), (1, 2), (3, 1), (2, 3)])
def test_bitwise_equivalence_flat(px, py):
    g, ref, cfg = _setup()
    single = AsucaModel(g, ref, cfg)
    st = _perturbed_initial(single)

    machine = MultiGpuAsuca(g, ref, px, py, cfg)
    rank_states = machine.scatter_state(st)
    machine.exchange_all(rank_states, None)

    st_single = st
    for _ in range(3):
        st_single = single.step(st_single)
        rank_states = machine.step(rank_states)
    gathered = machine.gather_state(rank_states)
    for name in st_single.prognostic_names():
        a = st_single.get(name)
        b = gathered.get(name)
        h = g.halo
        np.testing.assert_array_equal(
            a[h : h + g.nx, h : h + g.ny], b[h : h + g.nx, h : h + g.ny],
            err_msg=f"{name} differs for {px}x{py}",
        )


def test_bitwise_equivalence_terrain():
    terr = bell_mountain(height=300.0, half_width=4000.0, x0=16000.0)
    g, ref, cfg = _setup(terrain=terr)
    single = AsucaModel(g, ref, cfg)
    st = single.initial_state(u0=10.0)

    machine = MultiGpuAsuca(g, ref, 2, 2, cfg)
    rank_states = machine.scatter_state(st)
    machine.exchange_all(rank_states, None)

    st_single = st
    for _ in range(3):
        st_single = single.step(st_single)
        rank_states = machine.step(rank_states)
    gathered = machine.gather_state(rank_states)
    h = g.halo
    for name in st_single.prognostic_names():
        np.testing.assert_array_equal(
            st_single.get(name)[h : h + g.nx, h : h + g.ny],
            gathered.get(name)[h : h + g.nx, h : h + g.ny],
            err_msg=name,
        )
    # and the wave is actually active (the test is not comparing zeros)
    assert machine.max_w(rank_states) > 1e-4


def test_bitwise_equivalence_with_physics():
    g, ref, cfg = _setup(sounding=tropospheric_sounding(), physics=True)
    single = AsucaModel(g, ref, cfg)
    st = _perturbed_initial(single)
    # moisten so the Kessler path activates
    from repro.core.pressure import eos_pressure, exner
    from repro.physics.saturation import saturation_mixing_ratio

    p = eos_pressure(st.rhotheta, g)
    T = (st.rhotheta / st.rho) * exner(p)
    # supersaturate the lower levels so the Kessler path definitely fires
    qvs = saturation_mixing_ratio(p, T)
    st.q["qv"][...] = 0.9 * qvs * st.rho
    st.q["qv"][:, :, :3] = 1.1 * qvs[:, :, :3] * st.rho[:, :, :3]
    single._exchange(st, None)

    machine = MultiGpuAsuca(g, ref, 2, 2, cfg)
    rank_states = machine.scatter_state(st)
    machine.exchange_all(rank_states, None)

    st_single = st
    for _ in range(3):
        st_single = single.step(st_single)
        rank_states = machine.step(rank_states)
    gathered = machine.gather_state(rank_states)
    h = g.halo
    for name in st_single.prognostic_names():
        np.testing.assert_array_equal(
            st_single.get(name)[h : h + g.nx, h : h + g.ny],
            gathered.get(name)[h : h + g.nx, h : h + g.ny],
            err_msg=name,
        )
    assert float(gathered.q["qc"].max()) > 0.0  # cloud formed somewhere


def test_mass_conservation_distributed():
    g, ref, cfg = _setup()
    machine = MultiGpuAsuca(g, ref, 2, 2, cfg)
    single = AsucaModel(g, ref, cfg)
    st = _perturbed_initial(single)
    rank_states = machine.scatter_state(st)
    machine.exchange_all(rank_states, None)
    m0 = machine.total_mass(rank_states)
    rank_states = machine.run(rank_states, 5)
    assert machine.total_mass(rank_states) == pytest.approx(m0, rel=1e-8)


def test_comm_traffic_recorded():
    g, ref, cfg = _setup()
    machine = MultiGpuAsuca(g, ref, 2, 2, cfg)
    single = AsucaModel(g, ref, cfg)
    st = _perturbed_initial(single)
    rank_states = machine.scatter_state(st)
    machine.exchange_all(rank_states, None)
    machine.comm.stats.reset()
    machine.step(rank_states)
    stats = machine.comm.stats
    assert stats.messages > 0
    assert stats.bytes_total > 0
    # every rank pair that talks is a grid neighbor
    for (src, dst), nbytes in stats.by_pair.items():
        ssrc = machine.subs[src]
        sdst = machine.subs[dst]
        dx = min(abs(ssrc.cx - sdst.cx), machine.px - abs(ssrc.cx - sdst.cx))
        dy = min(abs(ssrc.cy - sdst.cy), machine.py - abs(ssrc.cy - sdst.cy))
        assert dx + dy <= 1, "non-neighbor communication"
