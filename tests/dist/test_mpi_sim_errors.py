"""Error paths and telemetry of the simulated communicator — previously
unexercised (duplicate post, collect of a never-posted message,
out-of-range ranks), plus the typed per-pair stats and the
session-gated message log."""
import numpy as np
import pytest

from repro.dist.mpi_sim import SimComm
from repro.obs import TraceSession, use_session


def test_needs_at_least_one_rank():
    with pytest.raises(ValueError, match="at least one rank"):
        SimComm(0)


def test_duplicate_post_raises():
    comm = SimComm(2)
    buf = np.zeros(4)
    comm.post(0, 1, "halo", buf)
    with pytest.raises(RuntimeError, match="duplicate message"):
        comm.post(0, 1, "halo", buf)


def test_collect_never_posted_raises():
    comm = SimComm(2)
    with pytest.raises(RuntimeError, match="nothing was posted"):
        comm.collect(0, 1, "missing")


def test_out_of_range_ranks_raise():
    comm = SimComm(2)
    buf = np.zeros(4)
    with pytest.raises(ValueError, match="out of range"):
        comm.post(2, 0, "t", buf)
    with pytest.raises(ValueError, match="out of range"):
        comm.post(0, -1, "t", buf)


def test_allreduce_needs_one_value_per_rank():
    comm = SimComm(3)
    with pytest.raises(ValueError):
        comm.allreduce_sum([1.0, 2.0])
    with pytest.raises(ValueError):
        comm.allreduce_max([1.0])


def test_by_pair_typed_and_per_pair_report():
    comm = SimComm(3)
    comm.post(0, 1, "a", np.zeros(4))
    comm.post(1, 2, "b", np.zeros(8))
    comm.collect(0, 1, "a")
    comm.collect(1, 2, "b")
    stats = comm.stats
    assert all(isinstance(k, tuple) and len(k) == 2
               and all(isinstance(r, int) for r in k)
               for k in stats.by_pair)
    assert stats.by_pair[(0, 1)] == 32
    assert stats.by_pair[(1, 2)] == 64
    rep = stats.per_pair_report()
    assert "0 -> 1: 32 B" in rep
    assert "1 -> 2: 64 B" in rep
    assert SimComm(2).stats.per_pair_report() == "(no traffic)"


def test_message_log_gated_on_active_session():
    comm = SimComm(2)
    comm.post(0, 1, "quiet", np.zeros(4))
    comm.collect(0, 1, "quiet")
    assert comm.message_log == []  # zero-cost when not tracing

    with use_session(TraceSession("t")):
        comm.post(0, 1, "loud", np.zeros(4))
        comm.collect(0, 1, "loud")
    assert len(comm.message_log) == 1
    rec = comm.message_log[0]
    assert (rec.src, rec.dst, rec.tag, rec.nbytes) == (0, 1, "loud", 32)
    assert rec.t_collect is not None and rec.t_collect >= rec.t_post
