"""Tests of the mailbox communicator and the halo exchange."""
import numpy as np
import pytest

from repro.core.boundary import fill_halos_state
from repro.core.grid import make_grid
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.dist.decomposition import decompose
from repro.dist.halo import HaloExchanger
from repro.dist.mpi_sim import SimComm
from repro.dist.multigpu import MultiGpuAsuca
from repro.core.model import ModelConfig
from repro.workloads.sounding import constant_stability_sounding


# ------------------------------------------------------------------ SimComm
class TestSimComm:
    def test_post_collect_roundtrip(self):
        comm = SimComm(2)
        data = np.arange(12.0).reshape(3, 4)
        comm.post(0, 1, "halo", data)
        data[...] = -1  # sender reuses the buffer: receiver must not see it
        out = comm.collect(0, 1, "halo")
        np.testing.assert_array_equal(out, np.arange(12.0).reshape(3, 4))
        assert comm.pending() == 0

    def test_missing_message_raises(self):
        comm = SimComm(2)
        with pytest.raises(RuntimeError, match="lockstep"):
            comm.collect(0, 1, "nope")

    def test_duplicate_post_raises(self):
        comm = SimComm(2)
        comm.post(0, 1, "t", np.zeros(3))
        with pytest.raises(RuntimeError, match="duplicate"):
            comm.post(0, 1, "t", np.zeros(3))

    def test_traffic_stats(self):
        comm = SimComm(3)
        comm.post(0, 1, "a", np.zeros(10))
        comm.post(1, 2, "b", np.zeros(5))
        assert comm.stats.messages == 2
        assert comm.stats.bytes_total == 15 * 8
        assert comm.stats.by_pair[(0, 1)] == 80
        comm.collect(0, 1, "a")
        comm.collect(1, 2, "b")

    def test_rank_validation(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.post(0, 5, "t", np.zeros(1))

    def test_allreduce(self):
        comm = SimComm(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0
        assert comm.allreduce_max([1.0, 5.0, 3.0]) == 5.0
        with pytest.raises(ValueError):
            comm.allreduce_sum([1.0])


# ------------------------------------------------------- halo vs periodic
def _random_states_and_machinery(px, py, seed=0):
    """A global periodic grid + its decomposition with random fields."""
    g = make_grid(nx=12, ny=9, nz=4, dx=500.0, dy=500.0, ztop=4000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    machine = MultiGpuAsuca(g, ref, px, py, ModelConfig())
    gstate = state_from_reference(g, ref)
    r = np.random.default_rng(seed)
    for name in gstate.prognostic_names():
        arr = gstate.get(name)
        arr += r.normal(size=arr.shape)
    # real computations keep the periodic seam faces identical (both are
    # computed interior faces); random data must be made consistent or the
    # single-domain fill (which forces the seam) will not be comparable
    h = g.halo
    gstate.rhou[h + g.nx] = gstate.rhou[h]
    gstate.rhov[:, h + g.ny] = gstate.rhov[:, h]
    return g, machine, gstate


@pytest.mark.parametrize("px,py", [(2, 2), (1, 3), (4, 1), (3, 3)])
def test_exchange_matches_periodic_fill(px, py):
    """After scattering a random global state and exchanging halos, every
    rank's full local array equals the corresponding slice of the
    periodically-filled global array — bit for bit, corners included."""
    g, machine, gstate = _random_states_and_machinery(px, py)
    states = machine.scatter_state(gstate)
    machine.exchange_all(states, None)
    assert machine.comm.pending() == 0

    fill_halos_state(gstate)  # single-domain reference behaviour
    h = g.halo
    for rank, st in zip(machine.ranks, states):
        sub = rank.sub
        for name in st.prognostic_names():
            loc = st.get(name)
            if name == "rhou":
                glob = gstate.rhou[sub.x0 : sub.x0 + sub.nx + 2 * h + 1,
                                   sub.y0 : sub.y0 + sub.ny + 2 * h]
            elif name == "rhov":
                glob = gstate.rhov[sub.x0 : sub.x0 + sub.nx + 2 * h,
                                   sub.y0 : sub.y0 + sub.ny + 2 * h + 1]
            else:
                glob = gstate.get(name)[sub.x0 : sub.x0 + sub.nx + 2 * h,
                                        sub.y0 : sub.y0 + sub.ny + 2 * h]
            np.testing.assert_array_equal(loc, glob, err_msg=name)


def test_scatter_gather_roundtrip():
    g, machine, gstate = _random_states_and_machinery(2, 3)
    states = machine.scatter_state(gstate)
    back = machine.gather_state(states)
    for name in gstate.prognostic_names():
        np.testing.assert_array_equal(
            g.interior(back.get(name))
            if name not in ("rhou", "rhov")
            else back.get(name)[g.isl_u if name == "rhou" else g.isl_v],
            g.interior(gstate.get(name))
            if name not in ("rhou", "rhov")
            else gstate.get(name)[g.isl_u if name == "rhou" else g.isl_v],
            err_msg=name,
        )


def test_open_boundary_zero_gradient():
    """Edge ranks of a non-periodic domain extrapolate instead of wrap."""
    g = make_grid(nx=12, ny=9, nz=4, dx=500.0, dy=500.0, ztop=4000.0,
                  periodic_x=False, periodic_y=False)
    ref = make_reference_state(g, constant_stability_sounding())
    machine = MultiGpuAsuca(g, ref, 2, 2, ModelConfig())
    gstate = state_from_reference(g, ref)
    r = np.random.default_rng(1)
    gstate.rho += r.normal(size=gstate.rho.shape)
    states = machine.scatter_state(gstate)
    machine.exchange_all(states, ["rho"])
    west_rank = machine.ranks[0]
    st = states[0]
    h = g.halo
    for k in range(h):
        np.testing.assert_array_equal(st.rho[k], st.rho[h])
