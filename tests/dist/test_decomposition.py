"""Tests of the 2-D decomposition and the Table I mesh law."""
import numpy as np
import pytest

from repro.dist.decomposition import (
    TABLE1_CONFIGS,
    Subdomain,
    decompose,
    make_subgrid,
    table1_mesh,
)
from repro.core.grid import make_grid, bell_mountain

#: (GPUs, mesh) rows exactly as printed in the paper's Table I
PAPER_TABLE1 = {
    (2, 3): (636, 760, 48),
    (4, 5): (1268, 1264, 48),
    (6, 9): (1900, 2272, 48),
    (8, 10): (2532, 2524, 48),
    (10, 12): (3164, 3028, 48),
    (12, 14): (3796, 3532, 48),
    (12, 16): (3796, 4036, 48),
    (14, 18): (4428, 4540, 48),
    (16, 20): (5060, 5044, 48),
    (18, 20): (5692, 5044, 48),
    (18, 22): (5692, 5548, 48),
    (20, 22): (6324, 5548, 48),
    (20, 24): (6324, 6052, 48),
    (22, 24): (6956, 6052, 48),
}


def test_table1_reproduced_exactly():
    """Every row of the paper's Table I follows from the 320x256 block +
    4-cell overlap law."""
    for (px, py), mesh in PAPER_TABLE1.items():
        assert table1_mesh(px, py) == mesh, (px, py)


def test_table1_configs_match_gpu_counts():
    counts = [px * py for px, py in TABLE1_CONFIGS]
    assert counts == [6, 20, 54, 80, 120, 168, 192, 252, 320, 360, 396, 440,
                      480, 528]


def test_decompose_covers_domain():
    subs = decompose(100, 77, 4, 3)
    assert len(subs) == 12
    # exact cover, no overlap
    cover = np.zeros((100, 77), dtype=int)
    for s in subs:
        cover[s.x0 : s.x0 + s.nx, s.y0 : s.y0 + s.ny] += 1
    assert np.all(cover == 1)


def test_decompose_balance():
    subs = decompose(101, 50, 4, 5)
    sizes = {(s.nx, s.ny) for s in subs}
    xs = {s.nx for s in subs}
    assert max(xs) - min(xs) <= 1


def test_decompose_validation():
    with pytest.raises(ValueError):
        decompose(10, 10, 0, 1)
    with pytest.raises(ValueError):
        decompose(8, 8, 4, 1)  # 2 cells per rank < min_cells=3


def test_neighbors_periodic_and_open():
    subs = decompose(30, 30, 3, 2)
    s = subs[0]  # (cx=0, cy=0)
    assert s.neighbor(-1, 0, True, True) == 2 * 2  # wraps to cx=2
    assert s.neighbor(-1, 0, False, True) is None
    assert s.neighbor(0, -1, True, True) == 1      # wraps to cy=1
    assert s.neighbor(0, -1, True, False) is None
    assert s.neighbor(1, 0, False, False) == 2     # rank = cx*py + cy


def test_rank_numbering_row_major():
    subs = decompose(30, 30, 3, 2)
    for s in subs:
        assert s.rank == s.cx * 2 + s.cy


def test_make_subgrid_slices_geometry():
    terr = bell_mountain(height=300.0, half_width=3000.0, x0=8000.0)
    g = make_grid(16, 12, 6, 1000.0, 1000.0, 8000.0, terrain=terr)
    subs = decompose(16, 12, 2, 2)
    for sub in subs:
        loc = make_subgrid(g, sub)
        assert loc.nx == sub.nx and loc.ny == sub.ny
        # terrain in the local interior matches the global interior slice
        h = g.halo
        np.testing.assert_array_equal(
            loc.zs[h : h + sub.nx, h : h + sub.ny],
            g.zs[h + sub.x0 : h + sub.x0 + sub.nx, h + sub.y0 : h + sub.y0 + sub.ny],
        )
        # including the halo region (true neighbor geometry, not a copy)
        np.testing.assert_array_equal(
            loc.zs, g.zs[sub.x0 : sub.x0 + sub.nx + 2 * h,
                         sub.y0 : sub.y0 + sub.ny + 2 * h],
        )
        assert not loc.periodic_x and not loc.periodic_y
