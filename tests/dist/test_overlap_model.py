"""Tests of the overlap performance model (Figs. 8, 9, 10, 11)."""
import pytest

from repro.dist.network import TSUBAME_1_2, TSUBAME_2_0
from repro.dist.overlap import OverlapConfig, OverlapModel
from repro.perf.costmodel import asuca_step_cost
from repro.perf.scaling import weak_scaling_efficiency, weak_scaling_sweep


@pytest.fixture(scope="module")
def model():
    return OverlapModel()


@pytest.fixture(scope="module")
def tl_overlap(model):
    return model.step_timeline(True)


@pytest.fixture(scope="module")
def tl_serial(model):
    return model.step_timeline(False)


def test_fig11_anchor_totals(tl_overlap):
    """Fig. 11 (overlap): total 988 ms, compute 763, MPI 336, GPU-CPU 145."""
    assert tl_overlap.total == pytest.approx(0.988, rel=0.05)
    assert tl_overlap.compute == pytest.approx(0.763, rel=0.05)
    assert tl_overlap.mpi == pytest.approx(0.336, rel=0.10)
    assert tl_overlap.gpu_cpu == pytest.approx(0.145, rel=0.15)


def test_fig11_hidden_fraction(tl_overlap):
    """~53% of the communication hides under computation."""
    assert tl_overlap.hidden_fraction == pytest.approx(0.53, abs=0.08)


def test_overlap_beats_serial(tl_overlap, tl_serial):
    """Overlap wins ~11% total time (paper Sec. V-B)."""
    gain = 1.0 - tl_overlap.total / tl_serial.total
    assert 0.08 < gain < 0.18


def test_divided_kernels_cost_more_compute(tl_overlap, tl_serial):
    """The paper's Fig. 9/11 observation: dividing kernels *increases*
    compute time, yet the total still drops."""
    assert tl_overlap.compute > tl_serial.compute
    assert tl_overlap.total < tl_serial.total


def test_fifteen_tflops_at_528(tl_overlap):
    c = asuca_step_cost(320, 256, 48)
    tflops = 528 * c.total_flops / tl_overlap.total / 1e12
    assert tflops == pytest.approx(15.0, rel=0.07)


def test_fig9_breakdown_shape(model):
    """Fig. 9 relations: inner < whole; boundary kernels are a sizable
    minority; density's compute cannot hide its own communication (the
    motivation for method 3)."""
    rows = {vb.name: vb for vb in model.breakdown_rows()}
    for vb in rows.values():
        assert vb.inner < vb.whole
        assert 0.05 * vb.inner < vb.boundary_x < vb.inner
        assert 0.05 * vb.inner < vb.boundary_y < vb.inner
        assert vb.divided_compute > vb.whole  # reduced parallelism costs
    density = rows["Density"]
    assert density.communication > density.inner


def test_method_ablation():
    """Disabling each optimization hurts (or at least never helps)."""
    full = OverlapModel().step_timeline(True).total
    no1 = OverlapModel(config=OverlapConfig(method1_pipeline=False)).step_timeline(True).total
    no2 = OverlapModel(config=OverlapConfig(method2_divide=False)).step_timeline(True).total
    no3 = OverlapModel(config=OverlapConfig(method3_fuse=False)).step_timeline(True).total
    assert no1 >= full - 1e-12
    assert no2 > full          # method 2 is the big one
    assert no3 >= full - 1e-12


def test_tsubame2_hides_communication():
    """Sec. VII: with >= 4x bandwidth the communication hides (almost)
    completely."""
    m1 = OverlapModel(TSUBAME_1_2)
    m2 = OverlapModel(TSUBAME_2_0)
    t1 = m1.step_timeline(True)
    t2 = m2.step_timeline(True)
    assert t2.hidden_fraction_comm_only > 0.9
    assert t2.hidden_fraction_comm_only > t1.hidden_fraction_comm_only


def test_weak_scaling_efficiency_band():
    pts = weak_scaling_sweep()
    eff = weak_scaling_efficiency(pts)
    assert 0.90 < eff <= 1.0      # paper: >= 93%
    assert pts[-1].tflops_overlap == pytest.approx(15.0, rel=0.07)
    # monotone TFlops growth along Table I
    tf = [p.tflops_overlap for p in pts]
    assert all(b > a for a, b in zip(tf, tf[1:]))
    # GPU crushes the CPU line everywhere (the figure's point)
    assert all(p.tflops_overlap > 20 * p.tflops_cpu for p in pts)


def test_fewer_links_less_communication():
    interior = OverlapModel(links_x=2, links_y=2).step_timeline(True)
    corner = OverlapModel(links_x=1, links_y=1).step_timeline(True)
    assert corner.mpi < interior.mpi
    assert corner.total <= interior.total


def test_projection_sec7():
    from repro.perf.projection import model_projection, paper_formula_projection

    pp = paper_formula_projection()
    assert pp.tflops == pytest.approx(150.0, rel=0.07)
    mp_cons = model_projection(fermi_throughput=False)
    mp_real = model_projection(fermi_throughput=True)
    # "the actual overall performance ... will likely be higher"
    assert mp_real.tflops > mp_cons.tflops
    assert mp_real.tflops > 100.0


def test_pcie_node_sharing_penalty():
    """Modeling two GPUs contending for the host link slows the staging
    and the total step (the reason TSUBAME 2.0 moved to wider PCIe)."""
    base = OverlapModel(config=OverlapConfig()).step_timeline(True)
    shared = OverlapModel(
        config=OverlapConfig(pcie_sharing=True)
    ).step_timeline(True)
    assert shared.gpu_cpu > 1.5 * base.gpu_cpu
    assert shared.total >= base.total
