"""The per-axis exchange contract of HaloExchanger.exchange(axes=...):
an axis-0-only exchange must leave y halos untouched, and staging the
axes across two calls must equal one combined exchange (x before y is
what transports the corner values)."""
import numpy as np

from repro.core.boundary import fill_halos_state
from repro.core.grid import make_grid
from repro.core.model import ModelConfig
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.dist.multigpu import MultiGpuAsuca
from repro.workloads.sounding import constant_stability_sounding

SENTINEL = -1.2345e30


def make_machine(nx=12, ny=12, px=2, py=2):
    g = make_grid(nx=nx, ny=ny, nz=3, dx=500.0, dy=500.0, ztop=3000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    machine = MultiGpuAsuca(g, ref, px, py, ModelConfig())
    gstate = state_from_reference(g, ref)
    r = np.random.default_rng(7)
    for name in gstate.prognostic_names():
        gstate.get(name)[...] += r.normal(size=gstate.get(name).shape)
    h = g.halo
    gstate.rhou[h + g.nx] = gstate.rhou[h]
    gstate.rhov[:, h + g.ny] = gstate.rhov[:, h]
    return machine, gstate


def poison_y_halos(machine, states, name="rho"):
    h = states[0].grid.halo
    for rank, stt in zip(machine.ranks, states):
        arr = stt.get(name)
        ny_loc = rank.sub.ny
        arr[:, :h] = SENTINEL
        arr[:, h + ny_loc:] = SENTINEL


def test_axis0_exchange_leaves_y_halos_untouched():
    machine, gstate = make_machine()
    states = machine.scatter_state(gstate)
    poison_y_halos(machine, states)
    machine.exchange_all(states, ["rho"], axes=(0,))
    h = states[0].grid.halo
    for rank, stt in zip(machine.ranks, states):
        arr = stt.get("rho")
        ny_loc = rank.sub.ny
        # the y strips were never exchanged: the sentinel survives on
        # the interior-x columns (x halos got neighbor data, which may
        # itself carry the neighbor's poisoned y rows)
        nx_loc = rank.sub.nx
        interior_x = slice(h, h + nx_loc)
        assert np.all(arr[interior_x, :h] == SENTINEL)
        assert np.all(arr[interior_x, h + ny_loc:] == SENTINEL)
        # and the x halos on interior-y rows are real data, not sentinel
        interior_y = slice(h, h + ny_loc)
        assert np.all(arr[:h, interior_y] != SENTINEL)
        assert np.all(arr[h + nx_loc:, interior_y] != SENTINEL)


def test_staged_axes_match_one_combined_exchange():
    machine_a, gstate_a = make_machine()
    machine_b, gstate_b = make_machine()
    states_a = machine_a.scatter_state(gstate_a)
    states_b = machine_b.scatter_state(gstate_b)

    machine_a.exchange_all(states_a, None)                 # (0, 1) at once
    machine_b.exchange_all(states_b, None, axes=(0,))      # staged x...
    machine_b.exchange_all(states_b, None, axes=(1,))      # ...then y

    for sa, sb in zip(states_a, states_b):
        for name in sa.prognostic_names():
            np.testing.assert_array_equal(sa.get(name), sb.get(name))


def test_full_exchange_matches_periodic_fill_including_corners():
    machine, gstate = make_machine()
    states = machine.scatter_state(gstate)
    machine.exchange_all(states, None)
    fill_halos_state(gstate)
    for rank, stt in zip(machine.ranks, states):
        sub = rank.sub
        for name in stt.prognostic_names():
            ex = 1 if name == "rhou" else 0
            ey = 1 if name == "rhov" else 0
            h = gstate.grid.halo
            x0, y0 = sub.x0, sub.y0
            nxh = sub.nx + 2 * h + ex
            nyh = sub.ny + 2 * h + ey
            glob = gstate.get(name)[x0:x0 + nxh, y0:y0 + nyh]
            np.testing.assert_array_equal(stt.get(name), glob)
