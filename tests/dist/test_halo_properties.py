"""Property-based tests of decomposition + halo exchange: for arbitrary
domain sizes, process grids and random field content, the exchange must
reproduce the single-domain periodic fill on every rank."""
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boundary import fill_halos_state
from repro.core.grid import make_grid
from repro.core.model import ModelConfig
from repro.core.reference import make_reference_state
from repro.core.state import state_from_reference
from repro.dist.decomposition import decompose
from repro.dist.multigpu import MultiGpuAsuca
from repro.workloads.sounding import constant_stability_sounding


@settings(max_examples=10, deadline=None)
@given(
    nx=st.integers(9, 20),
    ny=st.integers(9, 20),
    px=st.integers(1, 3),
    py=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_exchange_equals_periodic_fill_random(nx, ny, px, py, seed):
    if nx < 3 * px or ny < 3 * py:
        return  # decomposition infeasible for this draw
    g = make_grid(nx=nx, ny=ny, nz=3, dx=500.0, dy=500.0, ztop=3000.0)
    ref = make_reference_state(g, constant_stability_sounding())
    machine = MultiGpuAsuca(g, ref, px, py, ModelConfig())
    gstate = state_from_reference(g, ref)
    r = np.random.default_rng(seed)
    for name in gstate.prognostic_names():
        gstate.get(name)[...] += r.normal(size=gstate.get(name).shape)
    # make the periodic seams consistent (computed fields always are)
    h = g.halo
    gstate.rhou[h + g.nx] = gstate.rhou[h]
    gstate.rhov[:, h + g.ny] = gstate.rhov[:, h]

    states = machine.scatter_state(gstate)
    machine.exchange_all(states, None)
    assert machine.comm.pending() == 0

    fill_halos_state(gstate)
    for rank, stt in zip(machine.ranks, states):
        sub = rank.sub
        for name in stt.prognostic_names():
            loc = stt.get(name)
            ex = 1 if name == "rhou" else 0
            ey = 1 if name == "rhov" else 0
            glob = gstate.get(name)[
                sub.x0 : sub.x0 + sub.nx + 2 * h + ex,
                sub.y0 : sub.y0 + sub.ny + 2 * h + ey,
            ]
            np.testing.assert_array_equal(loc, glob, err_msg=f"{name}@{sub.rank}")


@settings(max_examples=25, deadline=None)
@given(
    nx=st.integers(6, 200),
    ny=st.integers(6, 200),
    px=st.integers(1, 8),
    py=st.integers(1, 8),
)
def test_decompose_partition_properties(nx, ny, px, py):
    if nx < 3 * px or ny < 3 * py:
        with_room = False
    else:
        with_room = True
    if not with_room:
        with pytest.raises(ValueError):
            decompose(nx, ny, px, py)
        return
    subs = decompose(nx, ny, px, py)
    assert len(subs) == px * py
    # exact, non-overlapping cover
    cover = np.zeros((nx, ny), dtype=int)
    for s in subs:
        assert s.nx >= 3 and s.ny >= 3
        cover[s.x0 : s.x0 + s.nx, s.y0 : s.y0 + s.ny] += 1
    assert np.all(cover == 1)
    # balance within one cell
    assert max(s.nx for s in subs) - min(s.nx for s in subs) <= 1
    assert max(s.ny for s in subs) - min(s.ny for s in subs) <= 1
    # rank numbering bijective and row-major
    assert sorted(s.rank for s in subs) == list(range(px * py))
    for s in subs:
        assert s.rank == s.cx * py + s.cy


@settings(max_examples=15, deadline=None)
@given(
    px=st.integers(1, 4), py=st.integers(1, 4),
    periodic_x=st.booleans(), periodic_y=st.booleans(),
)
def test_neighbor_relation_symmetric(px, py, periodic_x, periodic_y):
    """If A says B is its +x neighbor, B must say A is its -x neighbor."""
    subs = decompose(3 * px + 1, 3 * py + 1, px, py)
    by_rank = {s.rank: s for s in subs}
    for s in subs:
        for (dx, dy) in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nb = s.neighbor(dx, dy, periodic_x, periodic_y)
            if nb is None:
                continue
            back = by_rank[nb].neighbor(-dx, -dy, periodic_x, periodic_y)
            assert back == s.rank
