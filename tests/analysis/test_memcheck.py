"""Unit tests of the DeviceArray lifecycle tracker."""
import numpy as np
import pytest

from repro.analysis import MemcheckTracker, memcheck_session
from repro.gpu.device import GPUDevice
from repro.gpu.memory import DeviceArray
from repro.gpu.spec import TESLA_S1070


@pytest.fixture
def dev():
    return GPUDevice(TESLA_S1070)


def _codes(findings):
    return [f.code for f in findings]


def test_clean_lifecycle_has_no_findings(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.copy_from_host(np.ones(8, np.float32))
        out = np.empty(8, np.float32)
        arr.copy_to_host(out)
        arr.free()
        assert tracker.finish() == []
    assert dev.memcheck is None          # session detached its hook


def test_use_after_free_is_mem01(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.copy_from_host(np.ones(8, np.float32))
        arr.free()
        arr.copy_to_host(np.empty(8, np.float32))
        findings = tracker.finish()
    assert _codes(findings) == ["MEM01"]
    assert findings[0].buffer == arr.buffer


def test_device_write_after_free_is_mem01(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.free()
        arr.fill_from(np.zeros(8, np.float32))
        findings = tracker.finish()
    assert _codes(findings) == ["MEM01"]


def test_double_free_is_mem02(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.free()
        arr.free()
        findings = tracker.finish()
    assert _codes(findings) == ["MEM02"]


def test_leak_at_teardown_is_mem03(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="leaky")
        arr.copy_from_host(np.ones(8, np.float32))
        findings = tracker.finish()
    codes = _codes(findings)
    assert "MEM03" in codes
    # the still-allocated bytes also show up as drift vs an empty pool?
    # no: the allocation is live on the device too, so no MEM05
    assert "MEM05" not in codes


def test_leak_check_can_be_deferred(dev):
    with memcheck_session(dev) as tracker:
        DeviceArray(dev, (8,), np.float32, name="live")
        assert tracker.finish(expect_teardown=False) == []


def test_uninitialized_download_is_mem04(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.copy_to_host(np.empty(8, np.float32))
        arr.free()
        findings = tracker.finish()
    assert _codes(findings) == ["MEM04"]


def test_device_write_counts_as_initialization(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.fill_from(np.zeros(8, np.float32))
        arr.copy_to_host(np.empty(8, np.float32))
        arr.free()
        assert tracker.finish() == []


def test_allocator_drift_is_mem05(dev):
    with memcheck_session(dev) as tracker:
        arr = DeviceArray(dev, (8,), np.float32, name="x")
        arr.copy_from_host(np.ones(8, np.float32))
        dev.allocated_bytes += 64        # corrupt the accounting
        findings = tracker.finish(expect_teardown=False)
    assert _codes(findings) == ["MEM05"]


def test_tracker_attach_is_idempotent(dev):
    tracker = MemcheckTracker()
    tracker.attach(dev)
    tracker.attach(dev)
    assert tracker.devices == [dev]
    tracker.detach_all()
    assert dev.memcheck is None and tracker.devices == []
