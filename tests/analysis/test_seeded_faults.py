"""Seeded-fault acceptance tests: a planted hazard in one overlap method
and a planted use-after-free in the runner teardown path must each yield
EXACTLY the expected finding — and the clean paths zero findings."""
from repro.analysis import racecheck_device
from repro.analysis.driver import (
    racecheck_overlap_methods,
    sanitized_gpu_smoke,
    sanitized_multigpu_smoke,
)
from repro.dist.overlap import OverlapConfig, OverlapModel


# ------------------------------------------------------------ clean paths
def test_all_overlap_methods_are_race_free():
    assert racecheck_overlap_methods() == []


def test_clean_gpu_smoke_has_no_findings():
    assert sanitized_gpu_smoke(steps=1) == []


def test_clean_multigpu_smoke_has_no_findings():
    assert sanitized_multigpu_smoke(steps=1) == []


# --------------------------------------------------- seeded missing event
def test_seeded_missing_event_yields_exactly_one_race():
    """Dropping the corner dependency (x MPI waits on y MPI, Fig. 8) in
    the kernel-division schedule: one RACE01, on the right ops, streams
    and buffer — and recurring across all substeps as one deduped
    finding."""
    cfg = OverlapConfig(seed_hazard="missing-event")
    model = OverlapModel(config=cfg)
    timeline = model.step_timeline(True)
    findings = racecheck_device(timeline.device)

    assert len(findings) == 1
    f = findings[0]
    assert f.code == "RACE01"
    assert f.op == "Momentum (x):mpi_y"
    assert f.op_other == "Momentum (x):mpi_x"
    assert f.buffer == "Momentum (x):host_y"
    assert f.stream == 1              # y-exchange stream of the Fig. 8 trio
    assert f.occurrences == model.nsub
    assert f.t0 is not None and f.t0 >= 0.0


def test_seeded_schedule_is_timing_identical():
    """The seed removes an ordering edge, not time: the single MPI engine
    still serializes the transfers, so the hazard is invisible to the
    clock — the exact class racecheck exists for."""
    clean = OverlapModel(config=OverlapConfig()).step_timeline(True)
    seeded = OverlapModel(
        config=OverlapConfig(seed_hazard="missing-event")).step_timeline(True)
    assert seeded.total == clean.total


# -------------------------------------------------------- seeded teardown
def test_seeded_uaf_yields_exactly_one_mem01():
    findings = sanitized_gpu_smoke(steps=1, seed="uaf")
    assert len(findings) == 1
    f = findings[0]
    assert f.code == "MEM01"
    assert f.buffer is not None and f.buffer.startswith("rhou@")
    assert f.op is not None and f.op.startswith("d2h:")
    assert f.device == "gpu0"
