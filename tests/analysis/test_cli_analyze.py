"""End-to-end tests of ``repro analyze`` (exit statuses, output modes,
trace integration)."""
import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).parents[2] / "src" / "repro")


def test_lint_only_clean_repo_exits_zero(capsys):
    assert main(["analyze", "--lint", REPO_SRC]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "asuca-lint" in out


def test_racecheck_only_clean_exits_zero(capsys):
    assert main(["analyze", "--racecheck"]) == 0
    assert "racecheck" in capsys.readouterr().out


def test_full_default_run_is_clean(capsys):
    assert main(["analyze", "--lint", REPO_SRC, "--racecheck", "--smoke",
                 "--steps", "1"]) == 0
    out = capsys.readouterr().out
    for passname in ("asuca-lint", "racecheck", "memcheck",
                     "multigpu-smoke"):
        assert passname in out


def test_seeded_hazard_fails_with_race01(capsys):
    status = main(["analyze", "--racecheck",
                   "--seed-hazard", "missing-event"])
    assert status == 1
    out = capsys.readouterr().out
    assert "RACE01" in out
    assert "mpi_y" in out and "mpi_x" in out


def test_seeded_uaf_fails_with_mem01(capsys):
    status = main(["analyze", "--smoke", "--steps", "1",
                   "--seed-hazard", "uaf"])
    assert status == 1
    assert "MEM01" in capsys.readouterr().out


def test_json_output_is_machine_readable(capsys):
    status = main(["analyze", "--racecheck", "--json",
                   "--seed-hazard", "missing-event"])
    assert status == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is False
    assert doc["passes"] == ["racecheck"]
    codes = {f["code"] for f in doc["findings"]}
    assert codes == {"RACE01"}
    f = doc["findings"][0]
    assert f["occurrences"] > 1
    assert "location" in f and "stream" in f


def test_trace_files_findings_on_device_tracks(tmp_path, capsys):
    out_json = tmp_path / "analyze_trace.json"
    status = main(["analyze", "--smoke", "--steps", "1",
                   "--seed-hazard", "uaf", "--trace", str(out_json)])
    assert status == 1
    doc = json.loads(out_json.read_text())
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    finding_events = [e for e in events
                      if str(e.get("name", "")).startswith("finding:")]
    assert len(finding_events) == 1
    ev = finding_events[0]
    assert ev["name"] == "finding:MEM01"
    # CTF uses integer pids with process_name metadata: resolve the label
    names = {e["pid"]: e["args"]["name"] for e in events
             if e.get("ph") == "M" and e.get("name") == "process_name"}
    assert names[ev["pid"]] == "gpu0"   # filed on the offending device
    assert ev["args"]["code"] == "MEM01"


def test_bad_seed_value_rejected():
    with pytest.raises(SystemExit):
        main(["analyze", "--seed-hazard", "bogus"])


# ------------------------------------------------------- dataflow + SARIF
def test_list_codes_prints_the_registry(capsys):
    assert main(["analyze", "--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in ("LINT04", "LINT05", "LINT06", "LINT07", "LINT08",
                 "SUPP01", "RACE01", "MEM01"):
        assert code in out
    assert "dataflow" in out


def test_dataflow_only_clean_repo_exits_zero(capsys):
    assert main(["analyze", "--dataflow"]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out
    assert "dataflow" in out


def test_dataflow_json_reports_passes_and_notes(capsys):
    assert main(["analyze", "--dataflow", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert "dataflow" in doc["passes"]
    assert "suppressions" in doc["passes"]
    # the walker's conservative assumptions are surfaced, not hidden
    assert any("opaque" in n for n in doc["notes"])


def test_dataflow_sarif_export_is_valid(tmp_path, capsys):
    out = tmp_path / "analysis.sarif"
    assert main(["analyze", "--dataflow", "--sarif", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    rules = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert {"LINT04", "LINT05", "LINT06", "LINT07", "LINT08"} <= rules
    assert doc["runs"][0]["results"] == []  # clean repo


def test_dataflow_disabled_baseline_still_clean(capsys):
    assert main(["analyze", "--dataflow", "--baseline", "none"]) == 0
