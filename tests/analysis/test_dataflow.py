"""Tests of the dataflow analyzer (LINT04..LINT08): each seeded-bug
fixture fires exactly once at the pinned file:line, suppression comments
and the baseline file gate findings, and the real repo is clean."""
import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis.dataflow import (
    apply_baseline,
    dataflow_pass,
    fusion_findings,
    graph_findings,
    load_baseline,
    precision_findings,
)
from repro.analysis.findings import origin_suppressed
from repro.analysis.stepgraph import build_graph_for_function
from repro.stencil.spec import StencilSpec

from .fixtures import backend_bugs as bb
from .fixtures import flow_bugs as fb
from .test_stepgraph import FIXTURES, fixture_registry

FLOW = FIXTURES / "flow_bugs.py"


def run_flow(fn):
    """graph_findings over one fixture step, split by inline suppression
    exactly as dataflow_pass does."""
    g = build_graph_for_function(FLOW, fn, registry=fixture_registry())
    found = graph_findings(g)
    live = [f for f in found
            if not origin_suppressed(f.file, f.line, f.code)]
    supp = [f for f in found if origin_suppressed(f.file, f.line, f.code)]
    return live, supp


def backend_specs():
    spec = StencilSpec(name="blend", reads=("phi",), writes=("out",),
                       halo=1)
    return {"blend": SimpleNamespace(spec=spec, reference=bb.blend_ref)}


# ----------------------------------------------------------- LINT04 stale
def test_lint04_stale_halo_fires_exactly_once_at_the_read():
    live, _ = run_flow("stale_halo_step")
    assert [(f.code, f.line) for f in live] == [
        ("LINT04", fb.LINE_STALE_HALO)]
    assert live[0].file.endswith("flow_bugs.py")
    assert "rhou" in live[0].message and "smooth_u" in live[0].message


def test_lint04_exchange_after_write_is_clean():
    live, supp = run_flow("fresh_halo_step")
    assert live == [] and supp == []


def test_lint04_partial_axis_exchange_flags_the_missing_axis():
    live, _ = run_flow("axis_partial_step")
    assert [(f.code, f.line) for f in live] == [
        ("LINT04", fb.LINE_AXIS_PARTIAL)]
    assert "y-axis" in live[0].message
    assert "x/y" not in live[0].message  # x was exchanged: only y is stale


# ------------------------------------------------------- LINT05 liveness
def test_lint05_read_before_write_fires_exactly_once():
    live, _ = run_flow("read_before_write_step")
    assert [(f.code, f.line) for f in live] == [
        ("LINT05", fb.LINE_READ_BEFORE_WRITE)]
    assert "acc" in live[0].message


# ----------------------------------------------------- LINT06 dead store
def test_lint06_dead_store_fires_exactly_once():
    live, _ = run_flow("dead_store_step")
    assert [(f.code, f.line) for f in live] == [
        ("LINT06", fb.LINE_DEAD_STORE)]
    assert "tmp" in live[0].message


def test_lint06_intervening_read_keeps_the_store_alive():
    live, supp = run_flow("live_store_step")
    assert live == [] and supp == []


# -------------------------------------------------- LINT07 fusion drift
def test_lint07_signature_drift_fires_exactly_once():
    found = fusion_findings(
        specs=backend_specs(),
        fused={"blend": bb.blend_fused_bad_signature}, numba={})
    assert [(f.code, f.line) for f in found] == [
        ("LINT07", bb.LINE_BAD_SIGNATURE)]
    assert found[0].file.endswith("backend_bugs.py")
    assert "grid" in found[0].message or "signature" in found[0].message


def test_lint07_matching_impls_are_clean():
    assert fusion_findings(
        specs=backend_specs(),
        fused={"blend": bb.blend_fused_ok},
        numba={"blend": bb.blend_numba_clean}) == []


def test_lint07_unknown_name_is_flagged():
    found = fusion_findings(specs=backend_specs(),
                            fused={"ghost": bb.blend_fused_ok}, numba={})
    assert [f.code for f in found] == ["LINT07"]
    assert "no @stencil declaration" in found[0].message


# ---------------------------------------------- LINT08 precision flow
def test_lint08_upcast_fires_exactly_once():
    found = precision_findings(
        specs=backend_specs(), fused={},
        numba={"blend": bb.blend_numba_upcast})
    assert [(f.code, f.line) for f in found] == [
        ("LINT08", bb.LINE_UPCAST)]
    assert "float64" in found[0].message


def test_lint08_dtype_preserving_impls_are_clean():
    assert precision_findings(
        specs=backend_specs(),
        fused={"blend": bb.blend_fused_ok},
        numba={"blend": bb.blend_numba_clean}) == []


def test_lint08_widen_policy_exempts_the_kernel():
    spec = StencilSpec(name="blend", reads=("phi",), writes=("out",),
                       halo=1, dtype_policy="widen")
    specs = {"blend": SimpleNamespace(spec=spec, reference=bb.blend_ref)}
    assert precision_findings(
        specs=specs, fused={},
        numba={"blend": bb.blend_numba_upcast}) == []


# ------------------------------------------------ inline suppressions
@pytest.mark.parametrize("fn,code", [
    ("suppressed_stale_halo_step", "LINT04"),
    ("suppressed_read_before_write_step", "LINT05"),
    ("suppressed_dead_store_step", "LINT06"),
])
def test_allow_comment_suppresses_graph_finding(fn, code):
    live, supp = run_flow(fn)
    assert live == []
    assert [f.code for f in supp] == [code]


def test_allow_comment_suppresses_lint07():
    found = fusion_findings(
        specs=backend_specs(),
        fused={"blend": bb.blend_fused_suppressed}, numba={})
    assert all(origin_suppressed(f.file, f.line, f.code) for f in found)
    assert found  # the finding itself still exists pre-filter


def test_allow_comment_suppresses_lint08():
    found = precision_findings(
        specs=backend_specs(), fused={},
        numba={"blend": bb.blend_numba_suppressed})
    assert all(origin_suppressed(f.file, f.line, f.code) for f in found)
    assert found


# ------------------------------------------------------------ baseline
def _baseline(tmp_path, entries):
    p = tmp_path / "baseline.json"
    p.write_text(json.dumps({"version": 1, "suppressions": entries}))
    return p


def test_baseline_suppresses_a_matching_finding(tmp_path):
    live, _ = run_flow("stale_halo_step")
    p = _baseline(tmp_path, [{
        "code": "LINT04", "file": "flow_bugs.py",
        "reason": "fixture"}])
    kept, suppressed, stale = apply_baseline(live, load_baseline(p),
                                             baseline_path=p)
    assert kept == [] and stale == []
    assert [f.code for f in suppressed] == ["LINT04"]
    # provenance tag for the SARIF export
    assert getattr(suppressed[0], "_suppressed_via") == "baseline"


def test_baseline_contains_filter_must_match(tmp_path):
    live, _ = run_flow("stale_halo_step")
    p = _baseline(tmp_path, [{
        "code": "LINT04", "file": "flow_bugs.py",
        "contains": "no-such-substring", "reason": "fixture"}])
    kept, suppressed, stale = apply_baseline(live, load_baseline(p),
                                             baseline_path=p)
    assert [f.code for f in kept] == ["LINT04"]
    assert suppressed == []
    assert [f.code for f in stale] == ["SUPP01"]


def test_stale_baseline_entry_warns_supp01(tmp_path):
    p = _baseline(tmp_path, [{
        "code": "LINT06", "file": "never_existed.py",
        "reason": "gone"}])
    kept, suppressed, stale = apply_baseline([], load_baseline(p),
                                             baseline_path=p)
    assert kept == [] and suppressed == []
    assert [f.code for f in stale] == ["SUPP01"]
    assert stale[0].severity == "warning"
    assert stale[0].file == str(p)


def test_baseline_version_is_validated(tmp_path):
    p = tmp_path / "b.json"
    p.write_text(json.dumps({"version": 99, "suppressions": []}))
    with pytest.raises(ValueError):
        load_baseline(p)


# ------------------------------------------------------ the real repo
def test_clean_repo_has_zero_dataflow_findings():
    findings, suppressed, notes = dataflow_pass(baseline="none")
    assert findings == [], "\n".join(f.text() for f in findings)
    assert suppressed == []
    # conservative-assumption notes only for genuinely opaque calls
    for n in notes:
        assert "opaque" in n or "cannot resolve" in n


def test_checked_in_baseline_is_empty_and_loads():
    from repro.analysis.dataflow import DEFAULT_BASELINE

    assert Path(DEFAULT_BASELINE).exists()
    assert load_baseline(DEFAULT_BASELINE) == []


# --------------------------------------------- stale inline suppressions
def test_stale_allow_comment_warns_supp01_via_run_all(tmp_path):
    from repro.analysis import run_all

    src = tmp_path / "mod.py"
    src.write_text(
        "def helper(x):\n"
        "    return x  # sanitizer: allow[LINT04] nothing fires here\n")
    report = run_all(src_root=tmp_path, lint=True, dataflow=True,
                     racecheck=False, smoke=False, baseline="none")
    supp01 = [f for f in report.findings if f.code == "SUPP01"]
    assert [(f.file, f.line) for f in supp01] == [(str(src), 2)]
    assert supp01[0].severity == "warning"
    # warnings do not gate: the report is still ok / exit 0
    assert report.ok and report.exit_status() == 0


def test_docstring_mention_of_allow_syntax_is_not_a_suppression(tmp_path):
    from repro.analysis.findings import scan_suppressions

    src = tmp_path / "mod.py"
    src.write_text(
        '"""Docs: write ``# sanitizer: allow[LINT04]`` to suppress."""\n'
        "X = 1  # sanitizer: allow[LINT06] a real comment\n")
    assert scan_suppressions(src) == [(2, "LINT06")]
